// Attack forensics: given a clean snapshot and a suspicious graph, use
// the library's metrics to reconstruct WHAT the attacker did — the
// Sec. IV-A analysis of the paper as a reusable workflow. It reports the
// Add/Del x Same/Diff breakdown, the shift in cross-label neighborhood
// similarity, and the degree profile of the attacked endpoints.
//
//   ./build/examples/attack_forensics
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/metattack.h"
#include "core/peega.h"
#include "graph/generators.h"
#include "graph/metrics.h"

namespace {

using namespace repro;

void Analyze(const char* attacker_name, const graph::Graph& clean,
             const graph::Graph& suspicious) {
  std::printf("--- forensics: %s ---\n", attacker_name);
  const auto diff = graph::ComputeEdgeDiff(clean, suspicious);
  std::printf("edge edits: +same %d, +diff %d, -same %d, -diff %d "
              "(feature edits: %lld)\n",
              diff.add_same, diff.add_diff, diff.del_same, diff.del_diff,
              static_cast<long long>(
                  graph::FeatureDiffCount(clean, suspicious)));

  const auto clean_sim = graph::SummarizeLabelSimilarity(
      graph::CrossLabelSimilarity(clean));
  const auto sus_sim = graph::SummarizeLabelSimilarity(
      graph::CrossLabelSimilarity(suspicious));
  std::printf("context similarity: intra %.3f -> %.3f, inter %.3f -> "
              "%.3f\n",
              clean_sim.intra, sus_sim.intra, clean_sim.inter,
              sus_sim.inter);

  // Degree profile of attacked endpoints: attackers favor low-degree
  // nodes, whose representations are cheap to move.
  std::vector<int> touched_degrees;
  auto record = [&](int u, int v) {
    touched_degrees.push_back(static_cast<int>(clean.Neighbors(u).size()));
    touched_degrees.push_back(static_cast<int>(clean.Neighbors(v).size()));
  };
  for (const auto& [u, v] : suspicious.EdgeList()) {
    if (!clean.HasEdge(u, v)) record(u, v);
  }
  for (const auto& [u, v] : clean.EdgeList()) {
    if (!suspicious.HasEdge(u, v)) record(u, v);
  }
  double graph_mean = 0.0;
  for (int v = 0; v < clean.num_nodes; ++v) {
    graph_mean += static_cast<double>(clean.Neighbors(v).size());
  }
  graph_mean /= clean.num_nodes;
  double touched_mean = 0.0;
  for (int d : touched_degrees) touched_mean += d;
  if (!touched_degrees.empty()) touched_mean /= touched_degrees.size();
  std::printf("attacked endpoints: mean degree %.2f (graph mean %.2f)\n\n",
              touched_mean, graph_mean);
}

}  // namespace

int main() {
  linalg::Rng rng(5);
  const graph::Graph clean = graph::MakeCoraLike(&rng);
  attack::AttackOptions options;
  options.perturbation_rate = 0.1;

  {
    core::PeegaAttack attacker;
    linalg::Rng attack_rng(31);
    Analyze("PEEGA (black-box)", clean,
            attacker.Attack(clean, options, &attack_rng).poisoned);
  }
  {
    attack::Metattack attacker;
    linalg::Rng attack_rng(32);
    Analyze("Metattack (gray-box)", clean,
            attacker.Attack(clean, options, &attack_rng).poisoned);
  }
  std::printf("signature of GNN poisoning: inter-class ADDITIONS dominate "
              "and inter-label context similarity rises — the pattern "
              "GNAT's augmentations counteract\n");
  return 0;
}
