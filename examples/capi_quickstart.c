/* capi_quickstart.c — embedding graphguard from plain C11.
 *
 * Builds a 6-node ring from caller-owned CSR buffers, runs the PEEGA
 * black-box attack through the stable ABI (src/capi/graphguard.h), and
 * prints the committed flip sequence. No C++ anywhere in this file:
 * it compiles with `gcc -std=c11` and links against the library.
 *
 * Every call site shows the intended error discipline: check the
 * gg_status, read gg_last_error() for context, and always gg_free().
 */
#include <stdio.h>
#include <stdint.h>

#include "capi/graphguard.h"

int main(void) {
  /* Undirected 6-ring: node i <-> (i+1) mod 6, stored symmetrically. */
  enum { kNodes = 6 };
  int64_t row_ptr[kNodes + 1];
  int32_t col_idx[2 * kNodes];
  int32_t labels[kNodes];
  for (int32_t i = 0; i < kNodes; ++i) {
    row_ptr[i] = 2 * (int64_t)i;
    col_idx[2 * i] = (i + kNodes - 1) % kNodes;
    col_idx[2 * i + 1] = (i + 1) % kNodes;
    labels[i] = i % 2;
  }
  row_ptr[kNodes] = 2 * kNodes;

  gg_ctx* gg = gg_init();
  if (gg == NULL) {
    fprintf(stderr, "gg_init failed\n");
    return 1;
  }

  gg_status status = gg_set_graph_csr(gg, kNodes, /*num_classes=*/2,
                                      row_ptr, col_idx,
                                      /*num_features=*/0,
                                      /*features=*/NULL, labels);
  if (status != GG_OK) {
    fprintf(stderr, "set_graph_csr: %s: %s\n", gg_status_name(status),
            gg_last_error(gg));
    gg_free(gg);
    return 1;
  }
  printf("graph: %d nodes, %lld edges\n", gg_num_nodes(gg),
         (long long)gg_num_edges(gg));

  gg_attack_options options;
  gg_attack_options_init(&options);
  options.rate = 0.5;   /* budget = 3 flips on a 6-edge ring */
  options.mode = "tm";  /* identity features: topology only */
  options.seed = 7;

  status = gg_attack(gg, &options);
  if (status != GG_OK) {
    fprintf(stderr, "attack: %s: %s\n", gg_status_name(status),
            gg_last_error(gg));
    gg_free(gg);
    return 1;
  }

  printf("%s committed %d flips (objective %.4f, %.3fs):\n",
         gg_result_name(gg), gg_num_flips(gg), gg_final_objective(gg),
         gg_elapsed_seconds(gg));
  for (int32_t i = 0; i < gg_num_flips(gg); ++i) {
    gg_flip flip;
    if (gg_get_flip(gg, i, &flip) != GG_OK) break;
    if (flip.is_feature) {
      printf("  flip feature bit %d of node %d\n", flip.b, flip.a);
    } else {
      printf("  flip edge %d -- %d\n", flip.a, flip.b);
    }
  }

  gg_free(gg);
  return 0;
}
