// Robust training under unknown attacks: a practitioner receives a graph
// that may or may not have been poisoned, and must pick a model. This
// example stages the scenario end-to-end: three differently poisoned
// copies of a citation graph (white-box PGD, gray-box Metattack,
// black-box PEEGA) plus the clean graph, evaluated by the undefended
// GCN, two published defenses, and GNAT.
//
//   ./build/examples/robust_training
#include <cstdio>
#include <memory>
#include <vector>

#include "attack/metattack.h"
#include "attack/pgd.h"
#include "core/gnat.h"
#include "core/peega.h"
#include "defense/jaccard.h"
#include "defense/model_defenders.h"
#include "defense/svd.h"
#include "graph/generators.h"
#include "nn/trainer.h"

int main() {
  using namespace repro;

  linalg::Rng rng(11);
  const graph::Graph clean = graph::MakeCiteseerLike(&rng);
  std::printf("citation graph: %d nodes, %lld edges\n\n", clean.num_nodes,
              static_cast<long long>(clean.NumEdges()));

  // Stage the threat landscape.
  attack::AttackOptions attack_options;
  attack_options.perturbation_rate = 0.1;
  std::vector<std::pair<std::string, graph::Graph>> scenarios;
  scenarios.emplace_back("clean", clean);
  {
    attack::PgdAttack pgd;
    linalg::Rng attack_rng(21);
    scenarios.emplace_back(
        "PGD", pgd.Attack(clean, attack_options, &attack_rng).poisoned);
  }
  {
    attack::Metattack metattack;
    linalg::Rng attack_rng(22);
    scenarios.emplace_back(
        "Metattack",
        metattack.Attack(clean, attack_options, &attack_rng).poisoned);
  }
  {
    core::PeegaAttack peega;
    linalg::Rng attack_rng(23);
    scenarios.emplace_back(
        "PEEGA",
        peega.Attack(clean, attack_options, &attack_rng).poisoned);
  }

  // The defender line-up.
  std::vector<std::unique_ptr<defense::Defender>> defenders;
  defenders.push_back(std::make_unique<defense::GcnDefender>());
  defenders.push_back(std::make_unique<defense::JaccardDefender>());
  defenders.push_back(std::make_unique<defense::SvdDefender>());
  defenders.push_back(std::make_unique<core::GnatDefender>());

  nn::TrainOptions train;
  std::printf("%-12s", "scenario");
  for (const auto& defender : defenders) {
    std::printf(" %12s", defender->name().c_str());
  }
  std::printf("\n");
  std::vector<double> worst_case(defenders.size(), 1.0);
  for (const auto& [name, graph] : scenarios) {
    std::printf("%-12s", name.c_str());
    for (size_t d = 0; d < defenders.size(); ++d) {
      linalg::Rng run_rng(100 + d);
      const double accuracy =
          defenders[d]->Run(graph, train, &run_rng).test_accuracy;
      if (name != "clean") {
        worst_case[d] = std::min(worst_case[d], accuracy);
      }
      std::printf(" %12.4f", accuracy);
    }
    std::printf("\n");
  }
  std::printf("%-12s", "worst-case");
  for (double w : worst_case) std::printf(" %12.4f", w);
  std::printf("\n\npick by worst-case accuracy across unknown attackers "
              "— GNAT's augmented views make it the safest default\n");
  return 0;
}
