// Privacy-preserving data publication (the paper's introduction
// scenario): before releasing a social graph, the platform perturbs user
// links and profiles so that individual connections cannot be trusted,
// then measures how much downstream GNN utility survives.
//
// PEEGA doubles as the perturbation engine here: its representation-
// difference objective finds the modifications that change node contexts
// the most per unit of edit budget — exactly what a privacy perturbation
// wants — and because it is black-box, the publisher needs no labels.
//
//   ./build/examples/privacy_publication
#include <cstdio>

#include "core/peega.h"
#include "defense/model_defenders.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "nn/trainer.h"

int main() {
  using namespace repro;

  // A blog-style social network: users, follow links, interest profiles.
  linalg::Rng rng(2026);
  const graph::Graph social = graph::MakeBlogLike(&rng);
  std::printf("social graph: %d users, %lld links\n", social.num_nodes,
              static_cast<long long>(social.NumEdges()));

  nn::TrainOptions train;
  defense::GcnDefender downstream;
  linalg::Rng eval_rng(3);
  const double utility_before =
      downstream.Run(social, train, &eval_rng).test_accuracy;
  std::printf("downstream GNN utility before publication: %.4f\n",
              utility_before);

  // Publish at increasing perturbation levels and watch the
  // privacy/utility trade-off: links become less trustworthy (more of
  // them are synthetic) while classification utility decays gracefully.
  for (const double rate : {0.05, 0.1, 0.2}) {
    core::PeegaAttack perturber;
    attack::AttackOptions options;
    options.perturbation_rate = rate;
    linalg::Rng perturb_rng(17);
    const attack::AttackResult published =
        perturber.Attack(social, options, &perturb_rng);

    const auto diff = graph::ComputeEdgeDiff(social, published.poisoned);
    const double link_noise =
        static_cast<double>(diff.add_same + diff.add_diff) /
        static_cast<double>(published.poisoned.NumEdges());
    linalg::Rng run_rng(3);
    const double utility =
        downstream.Run(published.poisoned, train, &run_rng).test_accuracy;
    std::printf("rate %.2f: %4d link edits, %4d profile edits, "
                "%.1f%% of published links synthetic, utility %.4f\n",
                rate, published.edge_modifications,
                published.feature_modifications, 100.0 * link_noise,
                utility);

    // The published artifact can be persisted for consumers.
    if (rate == 0.1) {
      const std::string path = "published_graph.txt";
      if (graph::SaveGraph(published.poisoned, path).ok()) {
        std::printf("          wrote %s\n", path.c_str());
      }
    }
  }
  std::printf("\ntrade-off: stronger perturbation = more plausible "
              "deniability per link, less downstream utility\n");
  return 0;
}
