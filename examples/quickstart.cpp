// Quickstart: generate a citation-style graph, run the black-box PEEGA
// attacker against it, and defend with GNAT — the full pipeline of the
// library in ~60 lines.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/gnat.h"
#include "core/peega.h"
#include "defense/model_defenders.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "nn/trainer.h"

int main() {
  using namespace repro;

  // 1. A Cora-like citation graph: 500 publications, 7 areas, binary
  //    bag-of-words features, 10%/10%/80% train/val/test split.
  linalg::Rng rng(42);
  const graph::Graph clean = graph::MakeCoraLike(&rng);
  std::printf("graph: %d nodes, %lld edges, homophily %.2f\n",
              clean.num_nodes, static_cast<long long>(clean.NumEdges()),
              graph::HomophilyRatio(clean));

  // 2. Train a plain GCN on the clean graph.
  nn::TrainOptions train;
  defense::GcnDefender gcn;
  linalg::Rng train_rng(7);
  const double clean_acc = gcn.Run(clean, train, &train_rng).test_accuracy;
  std::printf("GCN on clean graph:     %.4f test accuracy\n", clean_acc);

  // 3. Attack with PEEGA. The attacker sees ONLY the adjacency matrix
  //    and the feature matrix — no labels, no model, no predictions —
  //    and may flip up to 10%% of the edge count (edges or feature bits).
  core::PeegaAttack attacker;
  attack::AttackOptions attack_options;
  attack_options.perturbation_rate = 0.1;
  linalg::Rng attack_rng(13);
  const attack::AttackResult attack =
      attacker.Attack(clean, attack_options, &attack_rng);
  std::printf("PEEGA poisoned the graph: %d edge flips, %d feature flips "
              "(%.1fs)\n",
              attack.edge_modifications, attack.feature_modifications,
              attack.elapsed_seconds);

  // 4. The undefended GCN suffers on the poison graph...
  linalg::Rng poison_rng(7);
  const double poisoned_acc =
      gcn.Run(attack.poisoned, train, &poison_rng).test_accuracy;
  std::printf("GCN on poisoned graph:  %.4f test accuracy\n", poisoned_acc);

  // 5. ...while GNAT recovers most of it by training one GCN jointly on
  //    three augmented views (k_t-hop topology, top-k_f feature
  //    similarity, self-loop-emphasized ego graph).
  core::GnatDefender gnat;
  linalg::Rng gnat_rng(7);
  const double defended_acc =
      gnat.Run(attack.poisoned, train, &gnat_rng).test_accuracy;
  std::printf("GNAT on poisoned graph: %.4f test accuracy\n", defended_acc);

  std::printf("\nattack cost GCN %.1f accuracy points; GNAT recovered "
              "%.1f of them\n",
              100.0 * (clean_acc - poisoned_acc),
              100.0 * (defended_acc - poisoned_acc));
  return 0;
}
