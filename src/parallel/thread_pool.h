#ifndef PEEGA_PARALLEL_THREAD_POOL_H_
#define PEEGA_PARALLEL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace repro::parallel {

/// Deterministic fork-join parallelism for the numerical kernels.
///
/// The design goal is NOT maximum throughput but *bitwise-identical
/// results at any thread count*, so that every number in the paper's
/// reproduced tables is independent of the machine it ran on. The
/// contract that delivers this is **static chunking**:
///
///  * `ParallelFor(begin, end, grain, fn)` splits `[begin, end)` into
///    fixed chunks of exactly `grain` iterations (the last chunk may be
///    ragged). The partition depends ONLY on `(end - begin, grain)` —
///    never on the thread count — and each chunk is executed exactly
///    once, with its internal iteration order unchanged from the serial
///    loop.
///  * Reductions (`ParallelReduce`) combine per-chunk partial results
///    sequentially in ascending chunk order on the calling thread, so
///    floating-point association is also a function of `(n, grain)`
///    alone.
///
/// Consequently a kernel whose chunks write disjoint outputs (all the
/// row-parallel kernels in `linalg/ops.cc`) produces bitwise-identical
/// output at 1, 2, or 64 threads, and a reduction produces
/// bitwise-identical output as long as `grain` is unchanged.
///
/// Pool lifecycle: one process-wide pool, lazily created on the first
/// parallel call. The worker count comes from, in priority order,
/// `SetNumThreads()` (runtime override), the `PEEGA_NUM_THREADS`
/// environment variable, then `std::thread::hardware_concurrency()`.
/// With an effective count of 1 every call degenerates to the plain
/// serial loop on the calling thread — zero threads are spawned and
/// there is no synchronization overhead.
///
/// Thread-safety: `ParallelFor`/`ParallelReduce` may be called from any
/// single orchestrating thread at a time (the library's kernels are
/// driven by one experiment thread). Calls issued from *inside* a
/// parallel region (nesting) are detected and run serially on the
/// worker, which preserves both correctness and determinism.

/// Number of chunks the static partition of `n` iterations at grain
/// `grain` produces: ceil(n / max(grain, 1)); 0 when n <= 0.
int64_t NumChunks(int64_t n, int64_t grain);

/// Effective thread count the next parallel region will use (>= 1).
int NumThreads();

/// Overrides the pool size at runtime. `n <= 0` resets to the
/// environment/hardware default. Growing the pool spawns workers
/// lazily on the next parallel call; shrinking leaves the extra
/// workers parked (they are reused if the count grows again).
/// Must not be called from inside a parallel region.
void SetNumThreads(int n);

/// Runs `fn(chunk_begin, chunk_end)` for every chunk of the static
/// partition of `[begin, end)` at grain `grain`. Chunks may run on any
/// worker and in any order; outputs must therefore be disjoint per
/// chunk (row-parallel kernels satisfy this by construction). Blocks
/// until all chunks finish. Empty ranges return immediately.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Like `ParallelFor` but `fn` also receives the chunk index
/// (0-based, ascending with `chunk_begin`), for kernels that keep
/// per-chunk scratch state (e.g. per-chunk argmax candidates).
void ParallelForChunked(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn);

/// Deterministic map-reduce: `map(chunk_begin, chunk_end)` produces one
/// partial result per chunk (in parallel); `combine(acc, partial)` folds
/// the partials into `identity` in ascending chunk order on the calling
/// thread. The result is bitwise-reproducible at any thread count and
/// changes only if `grain` (and hence the partition) changes.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 const MapFn& map, const CombineFn& combine) {
  const int64_t chunks = NumChunks(end - begin, grain);
  if (chunks <= 0) return identity;
  std::vector<T> partials(static_cast<size_t>(chunks), identity);
  ParallelForChunked(begin, end, grain,
                     [&](int64_t b, int64_t e, int64_t chunk) {
                       partials[static_cast<size_t>(chunk)] = map(b, e);
                     });
  T acc = identity;
  for (const T& partial : partials) acc = combine(acc, partial);
  return acc;
}

}  // namespace repro::parallel

#endif  // PEEGA_PARALLEL_THREAD_POOL_H_
