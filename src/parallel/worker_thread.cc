#include "parallel/worker_thread.h"

#include <thread>
#include <utility>

namespace repro::parallel {

struct WorkerThread::Impl {
  std::thread thread;
};

WorkerThread::WorkerThread(std::function<void()> body)
    : impl_(std::make_unique<Impl>()) {
  impl_->thread = std::thread(std::move(body));
}

WorkerThread::~WorkerThread() { Join(); }

void WorkerThread::Join() {
  if (impl_->thread.joinable()) impl_->thread.join();
}

}  // namespace repro::parallel
