#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace repro::parallel {

namespace {

// True while the current thread is executing chunks of a parallel
// region; nested parallel calls then run serially (see header).
thread_local bool t_in_parallel_region = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("PEEGA_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Process-wide fork-join pool. The calling thread is always executor 0;
// workers_[i] is executor i+1. Workers park on a condition variable and
// are woken by a generation bump; every woken worker checks in through
// `pending_` so the caller knows the region has fully drained before
// the next one starts.
class Pool {
 public:
  static Pool& Instance() {
    static Pool* pool = new Pool();  // leaked: workers may outlive main
    return *pool;
  }

  int num_threads() {
    const int override_n = override_threads_.load(std::memory_order_relaxed);
    return override_n > 0 ? override_n : default_threads_;
  }

  void set_num_threads(int n) {
    override_threads_.store(n > 0 ? n : 0, std::memory_order_relaxed);
  }

  // Executes `executor(e)` for e in [0, want_threads) across the pool,
  // main thread included. Blocks until every executor returned.
  void Run(int want_threads, const std::function<void(int)>& executor) {
    EnsureWorkers(want_threads - 1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ = &executor;
      task_threads_ = want_threads;
      pending_ = static_cast<int>(workers_.size());
      ++generation_;
      work_cv_.notify_all();
    }
    // Executor 0 (the calling thread) must carry the in-parallel-region
    // flag exactly like the workers do: a nested ParallelFor issued from
    // inside `executor` would otherwise re-enter Run() and clobber the
    // in-flight task_/pending_/generation_ state.
    t_in_parallel_region = true;
    executor(0);
    t_in_parallel_region = false;
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
  }

 private:
  Pool() : default_threads_(DefaultNumThreads()) {}

  void EnsureWorkers(int want) {
    std::unique_lock<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < want) {
      const int executor_id = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, executor_id] { WorkerLoop(executor_id); });
    }
  }

  void WorkerLoop(int executor_id) {
    uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (executor_id < task_threads_) task = task_;
      }
      if (task != nullptr) {
        t_in_parallel_region = true;
        (*task)(executor_id);
        t_in_parallel_region = false;
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  const int default_threads_;
  std::atomic<int> override_threads_{0};

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;  // executor ids 1..size()
  const std::function<void(int)>* task_ = nullptr;
  int task_threads_ = 0;
  int pending_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace

int64_t NumChunks(int64_t n, int64_t grain) {
  if (n <= 0) return 0;
  grain = std::max<int64_t>(grain, 1);
  return (n + grain - 1) / grain;
}

int NumThreads() { return Pool::Instance().num_threads(); }

void SetNumThreads(int n) { Pool::Instance().set_num_threads(n); }

void ParallelForChunked(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  const int64_t chunks = NumChunks(n, grain);
  if (chunks <= 0) return;
  // Dispatch observability: the chunk count depends only on (n, grain)
  // — never on the worker assignment — so both counters are part of the
  // determinism contract checked by tests/obs_test.cc.
  static obs::Counter* const region_count =
      obs::GetCounter("parallel.regions");
  static obs::Counter* const chunk_count = obs::GetCounter("parallel.chunks");
  region_count->Add(1);
  chunk_count->Add(static_cast<uint64_t>(chunks));
  const obs::TraceSpan span("parallel.region");
  grain = std::max<int64_t>(grain, 1);
  const int threads = static_cast<int>(std::min<int64_t>(
      t_in_parallel_region ? 1 : NumThreads(), chunks));
  static obs::Gauge* const thread_gauge = obs::GetGauge("parallel.threads");
  thread_gauge->Set(static_cast<double>(threads));
  if (threads <= 1) {
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t b = begin + c * grain;
      fn(b, std::min(b + grain, end), c);
    }
    return;
  }
  // Static round-robin chunk assignment: executor e owns chunks
  // e, e + threads, e + 2*threads, ... Assignment affects only which
  // thread runs a chunk, never the chunk boundaries, so it is free to
  // vary with the thread count without breaking determinism.
  Pool::Instance().Run(threads, [&](int executor) {
    for (int64_t c = executor; c < chunks; c += threads) {
      const int64_t b = begin + c * grain;
      fn(b, std::min(b + grain, end), c);
    }
  });
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForChunked(begin, end, grain,
                     [&fn](int64_t b, int64_t e, int64_t) { fn(b, e); });
}

}  // namespace repro::parallel
