#ifndef PEEGA_PARALLEL_WORKER_THREAD_H_
#define PEEGA_PARALLEL_WORKER_THREAD_H_

#include <functional>
#include <memory>

namespace repro::parallel {

/// A single owned OS thread. `src/parallel` is the only layer allowed to
/// own threads (the `no-raw-thread` analyzer pass enforces this), so any
/// module that needs a long-lived background thread — e.g. the serve
/// scheduler — takes one of these instead of a `std::thread`.
///
/// The body runs exactly once. Join() is idempotent; the destructor
/// joins if the caller has not, so a WorkerThread can never outlive the
/// state its body captures by reference.
class WorkerThread {
 public:
  explicit WorkerThread(std::function<void()> body);
  ~WorkerThread();

  WorkerThread(const WorkerThread&) = delete;
  WorkerThread& operator=(const WorkerThread&) = delete;

  /// Blocks until the body returns. Safe to call more than once.
  void Join();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace repro::parallel

#endif  // PEEGA_PARALLEL_WORKER_THREAD_H_
