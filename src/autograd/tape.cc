#include "autograd/tape.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "debug/check.h"
#include "debug/numerics.h"
#include "linalg/ops.h"

namespace repro::autograd {

using linalg::Matrix;
using linalg::SparseMatrix;

namespace {

// Accumulates `delta` scaled by `scale` into the parent's gradient if it
// participates in differentiation.
void Accumulate(internal::Node* parent, const Matrix& delta,
                float scale = 1.0f) {
  if (parent == nullptr) return;
  linalg::Axpy(&parent->EnsureGrad(), delta, scale);
}

}  // namespace

internal::Node* Tape::NewNode(Matrix value, bool requires_grad,
                              const char* op,
                              std::initializer_list<internal::Node*> parents) {
  nodes_.push_back(std::make_unique<internal::Node>());
  internal::Node* node = nodes_.back().get();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->op = op;
  node->index = static_cast<int>(nodes_.size()) - 1;
  node->recorded_rows = node->value.rows();
  node->recorded_cols = node->value.cols();
  node->parents.assign(parents.begin(), parents.end());
  return node;
}

Var Tape::Input(Matrix value, bool requires_grad) {
  return Var(NewNode(std::move(value), requires_grad, "Input", {}));
}

Var Tape::MatMul(Var a, Var b) {
  internal::Node* na = a.node_;
  internal::Node* nb = b.node_;
  internal::Node* out = NewNode(linalg::MatMul(na->value, nb->value),
                                na->requires_grad || nb->requires_grad, "MatMul", {na, nb});
  out->backward = [na, nb](internal::Node* self) {
    if (na->requires_grad) {
      Accumulate(na, linalg::MatMulTransB(self->grad, nb->value));
    }
    if (nb->requires_grad) {
      Accumulate(nb, linalg::MatMulTransA(na->value, self->grad));
    }
  };
  return Var(out);
}

Var Tape::SpMMConst(const SparseMatrix& s, Var b) {
  internal::Node* nb = b.node_;
  internal::Node* out =
      NewNode(linalg::SpMM(s, nb->value), nb->requires_grad, "SpMMConst", {nb});
  if (nb->requires_grad) {
    // Capture the transpose once; S is immutable for the tape's lifetime.
    auto st = std::make_shared<SparseMatrix>(s.Transposed());
    out->backward = [nb, st](internal::Node* self) {
      Accumulate(nb, linalg::SpMM(*st, self->grad));
    };
  }
  return Var(out);
}

Var Tape::Transpose(Var a) {
  internal::Node* na = a.node_;
  internal::Node* out =
      NewNode(linalg::Transpose(na->value), na->requires_grad, "Transpose", {na});
  out->backward = [na](internal::Node* self) {
    if (na->requires_grad) Accumulate(na, linalg::Transpose(self->grad));
  };
  return Var(out);
}

Var Tape::Add(Var a, Var b) {
  internal::Node* na = a.node_;
  internal::Node* nb = b.node_;
  internal::Node* out = NewNode(linalg::Add(na->value, nb->value),
                                na->requires_grad || nb->requires_grad, "Add", {na, nb});
  out->backward = [na, nb](internal::Node* self) {
    if (na->requires_grad) Accumulate(na, self->grad);
    if (nb->requires_grad) Accumulate(nb, self->grad);
  };
  return Var(out);
}

Var Tape::Sub(Var a, Var b) {
  internal::Node* na = a.node_;
  internal::Node* nb = b.node_;
  internal::Node* out = NewNode(linalg::Sub(na->value, nb->value),
                                na->requires_grad || nb->requires_grad, "Sub", {na, nb});
  out->backward = [na, nb](internal::Node* self) {
    if (na->requires_grad) Accumulate(na, self->grad);
    if (nb->requires_grad) Accumulate(nb, self->grad, -1.0f);
  };
  return Var(out);
}

Var Tape::Mul(Var a, Var b) {
  internal::Node* na = a.node_;
  internal::Node* nb = b.node_;
  internal::Node* out = NewNode(linalg::Mul(na->value, nb->value),
                                na->requires_grad || nb->requires_grad, "Mul", {na, nb});
  out->backward = [na, nb](internal::Node* self) {
    if (na->requires_grad) {
      Accumulate(na, linalg::Mul(self->grad, nb->value));
    }
    if (nb->requires_grad) {
      Accumulate(nb, linalg::Mul(self->grad, na->value));
    }
  };
  return Var(out);
}

Var Tape::Scale(Var a, float s) {
  internal::Node* na = a.node_;
  internal::Node* out =
      NewNode(linalg::Affine(na->value, s), na->requires_grad, "Scale", {na});
  out->backward = [na, s](internal::Node* self) {
    if (na->requires_grad) Accumulate(na, self->grad, s);
  };
  return Var(out);
}

Var Tape::AddConst(Var a, const Matrix& c) {
  internal::Node* na = a.node_;
  internal::Node* out =
      NewNode(linalg::Add(na->value, c), na->requires_grad, "AddConst", {na});
  out->backward = [na](internal::Node* self) {
    if (na->requires_grad) Accumulate(na, self->grad);
  };
  return Var(out);
}

Var Tape::MulConst(Var a, const Matrix& c) {
  internal::Node* na = a.node_;
  internal::Node* out =
      NewNode(linalg::Mul(na->value, c), na->requires_grad, "MulConst", {na});
  // The constant must outlive backward; copy it into the closure.
  Matrix c_copy = c;
  out->backward = [na, c_copy](internal::Node* self) {
    if (na->requires_grad) Accumulate(na, linalg::Mul(self->grad, c_copy));
  };
  return Var(out);
}

Var Tape::Relu(Var a) {
  internal::Node* na = a.node_;
  internal::Node* out = NewNode(linalg::Relu(na->value), na->requires_grad, "Relu", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix masked = self->grad;
    const float* v = na->value.data();
    float* g = masked.data();
    for (int64_t i = 0; i < masked.size(); ++i) {
      if (v[i] <= 0.0f) g[i] = 0.0f;
    }
    Accumulate(na, masked);
  };
  return Var(out);
}

Var Tape::LeakyRelu(Var a, float slope) {
  internal::Node* na = a.node_;
  internal::Node* out =
      NewNode(linalg::LeakyRelu(na->value, slope), na->requires_grad, "LeakyRelu", {na});
  out->backward = [na, slope](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix scaled = self->grad;
    const float* v = na->value.data();
    float* g = scaled.data();
    for (int64_t i = 0; i < scaled.size(); ++i) {
      if (v[i] <= 0.0f) g[i] *= slope;
    }
    Accumulate(na, scaled);
  };
  return Var(out);
}

Var Tape::Sigmoid(Var a) {
  internal::Node* na = a.node_;
  internal::Node* out =
      NewNode(linalg::Sigmoid(na->value), na->requires_grad, "Sigmoid", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d = self->grad;
    const float* s = self->value.data();
    float* g = d.data();
    for (int64_t i = 0; i < d.size(); ++i) g[i] *= s[i] * (1.0f - s[i]);
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::Exp(Var a) {
  internal::Node* na = a.node_;
  Matrix value(na->value.rows(), na->value.cols());
  {
    const float* v = na->value.data();
    float* o = value.data();
    for (int64_t i = 0; i < value.size(); ++i) o[i] = std::exp(v[i]);
  }
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "Exp", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Accumulate(na, linalg::Mul(self->grad, self->value));
  };
  return Var(out);
}

Var Tape::Log(Var a, float eps) {
  internal::Node* na = a.node_;
  Matrix value(na->value.rows(), na->value.cols());
  {
    const float* v = na->value.data();
    float* o = value.data();
    for (int64_t i = 0; i < value.size(); ++i) o[i] = std::log(v[i] + eps);
  }
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "Log", {na});
  out->backward = [na, eps](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d = self->grad;
    const float* v = na->value.data();
    float* g = d.data();
    for (int64_t i = 0; i < d.size(); ++i) g[i] /= (v[i] + eps);
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::PowNonNeg(Var a, float exponent) {
  internal::Node* na = a.node_;
  Matrix value(na->value.rows(), na->value.cols());
  {
    const float* v = na->value.data();
    float* o = value.data();
    for (int64_t i = 0; i < value.size(); ++i) {
      o[i] = v[i] > 0.0f ? std::pow(v[i], exponent) : 0.0f;
    }
  }
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "PowNonNeg", {na});
  out->backward = [na, exponent](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d = self->grad;
    const float* v = na->value.data();
    float* g = d.data();
    for (int64_t i = 0; i < d.size(); ++i) {
      g[i] *= v[i] > 0.0f ? exponent * std::pow(v[i], exponent - 1.0f) : 0.0f;
    }
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::RsqrtNonNeg(Var a) {
  internal::Node* na = a.node_;
  Matrix value(na->value.rows(), na->value.cols());
  {
    const float* v = na->value.data();
    float* o = value.data();
    for (int64_t i = 0; i < value.size(); ++i) {
      o[i] = v[i] > 0.0f ? 1.0f / std::sqrt(v[i]) : 0.0f;
    }
  }
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "RsqrtNonNeg", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d = self->grad;
    const float* v = na->value.data();
    float* g = d.data();
    for (int64_t i = 0; i < d.size(); ++i) {
      g[i] *= v[i] > 0.0f ? -0.5f * std::pow(v[i], -1.5f) : 0.0f;
    }
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::Dropout(Var a, const Matrix& mask) {
  return MulConst(a, mask);
}

Var Tape::RowSums(Var a) {
  internal::Node* na = a.node_;
  const std::vector<float> sums = linalg::RowSums(na->value);
  Matrix value(na->value.rows(), 1);
  for (int i = 0; i < value.rows(); ++i) value(i, 0) = sums[i];
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "RowSums", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d(na->value.rows(), na->value.cols());
    for (int i = 0; i < d.rows(); ++i) {
      const float g = self->grad(i, 0);
      float* drow = d.row(i);
      for (int j = 0; j < d.cols(); ++j) drow[j] = g;
    }
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::ColSums(Var a) {
  internal::Node* na = a.node_;
  Matrix value(1, na->value.cols());
  for (int i = 0; i < na->value.rows(); ++i) {
    const float* arow = na->value.row(i);
    for (int j = 0; j < na->value.cols(); ++j) value(0, j) += arow[j];
  }
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "ColSums", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d(na->value.rows(), na->value.cols());
    for (int i = 0; i < d.rows(); ++i) {
      float* drow = d.row(i);
      for (int j = 0; j < d.cols(); ++j) drow[j] = self->grad(0, j);
    }
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::Sum(Var a) {
  internal::Node* na = a.node_;
  Matrix value(1, 1);
  value(0, 0) = static_cast<float>(linalg::Sum(na->value));
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "Sum", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d(na->value.rows(), na->value.cols(), self->grad(0, 0));
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::BroadcastCol(Var a, int cols) {
  internal::Node* na = a.node_;
  PEEGA_CHECK_EQ(na->value.cols(), 1);
  Matrix value(na->value.rows(), cols);
  for (int i = 0; i < value.rows(); ++i) {
    const float v = na->value(i, 0);
    float* row = value.row(i);
    for (int j = 0; j < cols; ++j) row[j] = v;
  }
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "BroadcastCol", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d(na->value.rows(), 1);
    for (int i = 0; i < self->grad.rows(); ++i) {
      const float* grow = self->grad.row(i);
      float acc = 0.0f;
      for (int j = 0; j < self->grad.cols(); ++j) acc += grow[j];
      d(i, 0) = acc;
    }
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::BroadcastRow(Var a, int rows) {
  internal::Node* na = a.node_;
  PEEGA_CHECK_EQ(na->value.rows(), 1);
  Matrix value(rows, na->value.cols());
  for (int i = 0; i < rows; ++i) {
    float* row = value.row(i);
    for (int j = 0; j < value.cols(); ++j) row[j] = na->value(0, j);
  }
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "BroadcastRow", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d(1, na->value.cols());
    for (int i = 0; i < self->grad.rows(); ++i) {
      const float* grow = self->grad.row(i);
      for (int j = 0; j < self->grad.cols(); ++j) d(0, j) += grow[j];
    }
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::ScaleRowsVar(Var a, Var s) {
  internal::Node* na = a.node_;
  internal::Node* ns = s.node_;
  PEEGA_CHECK_EQ(ns->value.cols(), 1);
  PEEGA_CHECK_EQ(ns->value.rows(), na->value.rows());
  Matrix value(na->value.rows(), na->value.cols());
  for (int i = 0; i < value.rows(); ++i) {
    const float sv = ns->value(i, 0);
    const float* arow = na->value.row(i);
    float* vrow = value.row(i);
    for (int j = 0; j < value.cols(); ++j) vrow[j] = arow[j] * sv;
  }
  internal::Node* out = NewNode(std::move(value),
                                na->requires_grad || ns->requires_grad, "ScaleRowsVar", {na, ns});
  out->backward = [na, ns](internal::Node* self) {
    if (na->requires_grad) {
      Matrix d(na->value.rows(), na->value.cols());
      for (int i = 0; i < d.rows(); ++i) {
        const float sv = ns->value(i, 0);
        const float* grow = self->grad.row(i);
        float* drow = d.row(i);
        for (int j = 0; j < d.cols(); ++j) drow[j] = grow[j] * sv;
      }
      Accumulate(na, d);
    }
    if (ns->requires_grad) {
      Matrix d(ns->value.rows(), 1);
      for (int i = 0; i < d.rows(); ++i) {
        const float* grow = self->grad.row(i);
        const float* arow = na->value.row(i);
        float acc = 0.0f;
        for (int j = 0; j < na->value.cols(); ++j) acc += grow[j] * arow[j];
        d(i, 0) = acc;
      }
      Accumulate(ns, d);
    }
  };
  return Var(out);
}

Var Tape::ScaleColsVar(Var a, Var s) {
  internal::Node* na = a.node_;
  internal::Node* ns = s.node_;
  PEEGA_CHECK_EQ(ns->value.cols(), 1);
  PEEGA_CHECK_EQ(ns->value.rows(), na->value.cols());
  Matrix value(na->value.rows(), na->value.cols());
  for (int i = 0; i < value.rows(); ++i) {
    const float* arow = na->value.row(i);
    float* vrow = value.row(i);
    for (int j = 0; j < value.cols(); ++j) {
      vrow[j] = arow[j] * ns->value(j, 0);
    }
  }
  internal::Node* out = NewNode(std::move(value),
                                na->requires_grad || ns->requires_grad, "ScaleColsVar", {na, ns});
  out->backward = [na, ns](internal::Node* self) {
    if (na->requires_grad) {
      Matrix d(na->value.rows(), na->value.cols());
      for (int i = 0; i < d.rows(); ++i) {
        const float* grow = self->grad.row(i);
        float* drow = d.row(i);
        for (int j = 0; j < d.cols(); ++j) {
          drow[j] = grow[j] * ns->value(j, 0);
        }
      }
      Accumulate(na, d);
    }
    if (ns->requires_grad) {
      Matrix d(ns->value.rows(), 1);
      for (int i = 0; i < na->value.rows(); ++i) {
        const float* grow = self->grad.row(i);
        const float* arow = na->value.row(i);
        for (int j = 0; j < na->value.cols(); ++j) {
          d(j, 0) += grow[j] * arow[j];
        }
      }
      Accumulate(ns, d);
    }
  };
  return Var(out);
}

Var Tape::AddRowVector(Var a, Var bias) {
  Var broadcast = BroadcastRow(bias, a.rows());
  return Add(a, broadcast);
}

Var Tape::RowSoftmax(Var a) {
  internal::Node* na = a.node_;
  internal::Node* out =
      NewNode(linalg::RowSoftmax(na->value), na->requires_grad, "RowSoftmax", {na});
  out->backward = [na](internal::Node* self) {
    if (!na->requires_grad) return;
    // d a = (g - (g . s) 1) ⊙ s  row-wise.
    Matrix d(na->value.rows(), na->value.cols());
    for (int i = 0; i < d.rows(); ++i) {
      const float* srow = self->value.row(i);
      const float* grow = self->grad.row(i);
      float dot = 0.0f;
      for (int j = 0; j < d.cols(); ++j) dot += grow[j] * srow[j];
      float* drow = d.row(i);
      for (int j = 0; j < d.cols(); ++j) {
        drow[j] = (grow[j] - dot) * srow[j];
      }
    }
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::MaskedRowSoftmax(Var a, const Matrix& mask) {
  internal::Node* na = a.node_;
  PEEGA_CHECK(na->value.SameShape(mask));
  Matrix value(na->value.rows(), na->value.cols());
  for (int i = 0; i < value.rows(); ++i) {
    const float* arow = na->value.row(i);
    const float* mrow = mask.row(i);
    float* vrow = value.row(i);
    float row_max = -std::numeric_limits<float>::infinity();
    for (int j = 0; j < value.cols(); ++j) {
      if (mrow[j] > 0.0f) row_max = std::max(row_max, arow[j]);
    }
    if (row_max == -std::numeric_limits<float>::infinity()) continue;
    float denom = 0.0f;
    for (int j = 0; j < value.cols(); ++j) {
      if (mrow[j] > 0.0f) {
        vrow[j] = std::exp(arow[j] - row_max);
        denom += vrow[j];
      }
    }
    const float inv = 1.0f / denom;
    for (int j = 0; j < value.cols(); ++j) vrow[j] *= inv;
  }
  internal::Node* out = NewNode(std::move(value), na->requires_grad, "MaskedRowSoftmax", {na});
  Matrix mask_copy = mask;
  out->backward = [na, mask_copy](internal::Node* self) {
    if (!na->requires_grad) return;
    Matrix d(na->value.rows(), na->value.cols());
    for (int i = 0; i < d.rows(); ++i) {
      const float* srow = self->value.row(i);
      const float* grow = self->grad.row(i);
      const float* mrow = mask_copy.row(i);
      float dot = 0.0f;
      for (int j = 0; j < d.cols(); ++j) dot += grow[j] * srow[j];
      float* drow = d.row(i);
      for (int j = 0; j < d.cols(); ++j) {
        drow[j] = mrow[j] > 0.0f ? (grow[j] - dot) * srow[j] : 0.0f;
      }
    }
    Accumulate(na, d);
  };
  return Var(out);
}

Var Tape::SoftmaxCrossEntropy(Var logits, const Matrix& labels,
                              const std::vector<float>& row_mask) {
  internal::Node* nl = logits.node_;
  PEEGA_CHECK(nl->value.SameShape(labels));
  PEEGA_CHECK_EQ(static_cast<int>(row_mask.size()), nl->value.rows());
  Matrix probs = linalg::RowSoftmax(nl->value);
  double loss = 0.0;
  double count = 0.0;
  for (int i = 0; i < probs.rows(); ++i) {
    if (row_mask[i] <= 0.0f) continue;
    count += 1.0;
    const float* prow = probs.row(i);
    const float* lrow = labels.row(i);
    for (int j = 0; j < probs.cols(); ++j) {
      if (lrow[j] > 0.0f) {
        loss -= lrow[j] * std::log(std::max(prow[j], 1e-12f));
      }
    }
  }
  if (count > 0.0) loss /= count;
  Matrix value(1, 1);
  value(0, 0) = static_cast<float>(loss);
  internal::Node* out = NewNode(std::move(value), nl->requires_grad, "SoftmaxCrossEntropy", {nl});
  PEEGA_CHECK_FINITE_MAT(out->value, "SoftmaxCrossEntropy");
  if (nl->requires_grad) {
    auto probs_ptr = std::make_shared<Matrix>(std::move(probs));
    Matrix labels_copy = labels;
    std::vector<float> mask_copy = row_mask;
    const float inv_count = count > 0.0 ? static_cast<float>(1.0 / count)
                                        : 0.0f;
    out->backward = [nl, probs_ptr, labels_copy, mask_copy,
                     inv_count](internal::Node* self) {
      const float g = self->grad(0, 0) * inv_count;
      Matrix d(nl->value.rows(), nl->value.cols());
      for (int i = 0; i < d.rows(); ++i) {
        if (mask_copy[i] <= 0.0f) continue;
        const float* prow = probs_ptr->row(i);
        const float* lrow = labels_copy.row(i);
        float* drow = d.row(i);
        for (int j = 0; j < d.cols(); ++j) {
          drow[j] = g * (prow[j] - lrow[j]);
        }
      }
      Accumulate(nl, d);
    };
  }
  return Var(out);
}

namespace {

// Shared kernel for the PEEGA norms. Computes sum over (v, ref_row) pairs
// of || x[v] - ref[ref_row] ||_p and, in backward, scatters the gradient
// of each pair into x[v].
struct PNormPair {
  int x_row;
  int ref_row;
};

}  // namespace

Var Tape::SumRowPNorm(Var x, const Matrix& ref, int p) {
  PEEGA_CHECK(x.value().SameShape(ref));
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(x.rows());
  for (int v = 0; v < x.rows(); ++v) pairs.emplace_back(v, v);
  return SumEdgePNorm(x, ref, pairs, p);
}

Var Tape::SumEdgePNorm(Var x, const Matrix& ref,
                       const std::vector<std::pair<int, int>>& edges,
                       int p) {
  internal::Node* nx = x.node_;
  PEEGA_CHECK_EQ(nx->value.cols(), ref.cols());
  PEEGA_CHECK_GE(p, 1);
  const int d = nx->value.cols();
  double total = 0.0;
  // Cache per-pair norms for backward.
  auto norms = std::make_shared<std::vector<float>>();
  norms->reserve(edges.size());
  for (const auto& [v, u] : edges) {
    double acc = 0.0;
    const float* xrow = nx->value.row(v);
    const float* rrow = ref.row(u);
    for (int j = 0; j < d; ++j) {
      const double diff = std::fabs(xrow[j] - rrow[j]);
      acc += p == 1 ? diff : (p == 2 ? diff * diff : std::pow(diff, p));
    }
    const double norm = p == 1 ? acc : std::pow(acc, 1.0 / p);
    norms->push_back(static_cast<float>(norm));
    total += norm;
  }
  Matrix value(1, 1);
  value(0, 0) = static_cast<float>(total);
  internal::Node* out = NewNode(std::move(value), nx->requires_grad, "SumEdgePNorm", {nx});
  if (nx->requires_grad) {
    Matrix ref_copy = ref;
    std::vector<std::pair<int, int>> edges_copy = edges;
    out->backward = [nx, ref_copy, edges_copy, norms,
                     p](internal::Node* self) {
      const float g = self->grad(0, 0);
      Matrix dx(nx->value.rows(), nx->value.cols());
      const int d = nx->value.cols();
      for (size_t e = 0; e < edges_copy.size(); ++e) {
        const auto [v, u] = edges_copy[e];
        const float norm = (*norms)[e];
        if (norm < 1e-12f) continue;
        const float* xrow = nx->value.row(v);
        const float* rrow = ref_copy.row(u);
        float* drow = dx.row(v);
        // d||d||_p / d d_j = sign(d_j) |d_j|^{p-1} / ||d||_p^{p-1}.
        const float denom = p == 1 ? 1.0f : std::pow(norm, p - 1);
        for (int j = 0; j < d; ++j) {
          const float diff = xrow[j] - rrow[j];
          if (diff == 0.0f) continue;
          const float mag =
              p == 1 ? 1.0f
                     : (p == 2 ? std::fabs(diff)
                               : std::pow(std::fabs(diff), p - 1));
          drow[j] += g * (diff > 0.0f ? 1.0f : -1.0f) * mag / denom;
        }
      }
      Accumulate(nx, dx);
    };
  }
  return Var(out);
}

Var Tape::GcnNormalizeDense(Var a) {
  const int n = a.rows();
  PEEGA_CHECK_EQ(n, a.cols());
  Var a_hat = AddConst(a, Matrix::Identity(n));
  Var deg = RowSums(a_hat);                 // (n x 1)
  Var inv_sqrt = RsqrtNonNeg(deg);          // D^{-1/2} diagonal as column
  Var scaled_rows = ScaleRowsVar(a_hat, inv_sqrt);
  return ScaleColsVar(scaled_rows, inv_sqrt);
}

namespace {

// "#12 MatMul[3x4]" — one node in an op-trace line.
void AppendNodeDesc(std::ostream& os, const internal::Node* n) {
  os << "#" << n->index << " " << n->op << "[" << n->value.rows() << "x"
     << n->value.cols() << "]";
}

// Renders `node` and up to `depth` generations of its ancestors, one line
// per node, so a validation failure names the op chain that produced the
// malformed region instead of a bare pointer.
void AppendOpTrace(std::ostream& os, const internal::Node* node, int depth) {
  os << "\n    ";
  AppendNodeDesc(os, node);
  if (!node->parents.empty()) {
    os << " <- ";
    bool first = true;
    for (const internal::Node* p : node->parents) {
      if (!first) os << ", ";
      first = false;
      AppendNodeDesc(os, p);
    }
  }
  if (depth > 0) {
    for (const internal::Node* p : node->parents) {
      AppendOpTrace(os, p, depth - 1);
    }
  }
}

[[noreturn]] void FailValidation(const char* file, int line,
                                 const std::string& why,
                                 const internal::Node* node) {
  std::ostringstream os;
  os << "CHECK failed: tape graph validation: " << why;
  if (node != nullptr) {
    os << "\n  op-trace (offending node, then ancestors):";
    AppendOpTrace(os, node, 3);
  }
  { debug::internal::CheckMessage message(file, line, os.str()); }
  std::abort();  // unreachable: CheckMessage aborts in its destructor
}

}  // namespace

void Tape::ValidateForBackward(Var loss) const {
  if (!loss.valid()) {
    FailValidation(__FILE__, __LINE__,
                   "Backward called on a default-constructed Var", nullptr);
  }
  const internal::Node* root = loss.node_;
  const bool owned = root->index >= 0 &&
                     root->index < static_cast<int>(nodes_.size()) &&
                     nodes_[root->index].get() == root;
  if (!owned) {
    FailValidation(__FILE__, __LINE__,
                   "loss Var does not belong to this tape", nullptr);
  }
  for (int i = 0; i <= root->index; ++i) {
    const internal::Node* n = nodes_[i].get();
    if (n->value.rows() != n->recorded_rows ||
        n->value.cols() != n->recorded_cols) {
      std::ostringstream why;
      why << "node value shape " << n->value.rows() << "x" << n->value.cols()
          << " diverged from the " << n->recorded_rows << "x"
          << n->recorded_cols << " recorded at creation";
      FailValidation(__FILE__, __LINE__, why.str(), n);
    }
    for (const internal::Node* p : n->parents) {
      if (p->index < 0 || p->index >= i || nodes_[p->index].get() != p) {
        FailValidation(__FILE__, __LINE__,
                       "parent is not an earlier node of this tape "
                       "(topological order broken)",
                       n);
      }
    }
    if (n->grad_initialized && !n->grad.SameShape(n->value)) {
      std::ostringstream why;
      why << "gradient shape " << n->grad.rows() << "x" << n->grad.cols()
          << " does not match value shape " << n->value.rows() << "x"
          << n->value.cols();
      FailValidation(__FILE__, __LINE__, why.str(), n);
    }
  }
  if (root->value.rows() != 1 || root->value.cols() != 1) {
    std::ostringstream why;
    why << "loss must be 1x1, got " << root->value.rows() << "x"
        << root->value.cols();
    FailValidation(__FILE__, __LINE__, why.str(), root);
  }
}

void Tape::CorruptValueShapeForTest(Var v, int rows, int cols) {
  PEEGA_CHECK(v.valid());
  v.node_->value = Matrix(rows, cols);
}

void Tape::Backward(Var loss) {
  ValidateForBackward(loss);
  internal::Node* root = loss.node_;
  root->EnsureGrad()(0, 0) = 1.0f;
  // Nodes were appended in topological order; reverse order is valid for
  // reverse-mode accumulation. Stop at the root's position.
  bool seen_root = false;
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    internal::Node* node = it->get();
    if (!seen_root) {
      if (node == root) seen_root = true;
      else continue;
    }
    if (node->backward && node->grad_initialized) {
      node->backward(node);
#ifdef PEEGA_DEBUG_NUMERICS
      // Poison-check every gradient this backward node just produced; a
      // NaN is reported at the op that created it, not steps later.
      for (internal::Node* parent : node->parents) {
        if (!parent->grad_initialized) continue;
        const std::string what = std::string("backward of ") + node->op;
        debug::CheckFiniteArray(parent->grad.data(), parent->grad.size(),
                                parent->grad.cols(), what.c_str(), __FILE__,
                                __LINE__);
      }
#endif
    }
  }
}

}  // namespace repro::autograd
