#ifndef PEEGA_AUTOGRAD_TAPE_H_
#define PEEGA_AUTOGRAD_TAPE_H_

#include <functional>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace repro::autograd {

class Tape;

namespace internal {

/// One entry on the tape: a value, its (lazily allocated) gradient, and a
/// backward closure that scatters this node's gradient into its parents.
/// `op`, `parents`, and the shapes recorded at creation exist for the
/// pre-Backward graph validation pass and its op-trace diagnostics.
struct Node {
  linalg::Matrix value;
  linalg::Matrix grad;
  bool requires_grad = false;
  bool grad_initialized = false;
  std::function<void(Node*)> backward;

  const char* op = "?";
  int index = -1;               // position on the tape
  int recorded_rows = 0;        // value shape captured at creation
  int recorded_cols = 0;
  std::vector<Node*> parents;   // tape nodes this op consumed

  linalg::Matrix& EnsureGrad() {
    if (!grad_initialized) {
      grad = linalg::Matrix(value.rows(), value.cols());
      grad_initialized = true;
    }
    return grad;
  }
};

}  // namespace internal

/// Lightweight handle to a tape node. Copyable; lifetime is bounded by the
/// owning `Tape`.
class Var {
 public:
  Var() : node_(nullptr) {}

  const linalg::Matrix& value() const { return node_->value; }

  /// Gradient of the backward root with respect to this node. Only valid
  /// after `Tape::Backward`; zero matrix when the node never received
  /// gradient.
  const linalg::Matrix& grad() const { return node_->EnsureGrad(); }

  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }
  bool valid() const { return node_ != nullptr; }

 private:
  friend class Tape;
  explicit Var(internal::Node* node) : node_(node) {}
  internal::Node* node_;
};

/// Reverse-mode autodiff tape.
///
/// A `Tape` records one computation (typically a single forward pass). Ops
/// are member functions that append a node and return a `Var`. Calling
/// `Backward(loss)` runs the recorded closures in reverse creation order,
/// accumulating gradients into every node with `requires_grad`.
///
/// Constant operands (the sparse propagation matrix of a trained GCN, the
/// clean-representation reference matrix of the PEEGA objective, dropout
/// masks) are passed as plain matrices and receive no gradient.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Registers an input. `requires_grad` marks trainable parameters or
  /// attack surfaces (the relaxed adjacency / feature matrices).
  Var Input(linalg::Matrix value, bool requires_grad = false);

  // --- Linear algebra -----------------------------------------------------
  Var MatMul(Var a, Var b);
  /// C = S * B for a constant sparse S; gradient flows to B only.
  Var SpMMConst(const linalg::SparseMatrix& s, Var b);
  Var Transpose(Var a);

  // --- Elementwise --------------------------------------------------------
  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);
  Var Scale(Var a, float s);
  /// a + c for a constant matrix c (shape match).
  Var AddConst(Var a, const linalg::Matrix& c);
  /// a ⊙ c for a constant matrix c; used for masking.
  Var MulConst(Var a, const linalg::Matrix& c);
  /// Elementwise max(x,0) / LeakyReLU / sigmoid / exp / log(x+eps).
  Var Relu(Var a);
  Var LeakyRelu(Var a, float slope);
  Var Sigmoid(Var a);
  Var Exp(Var a);
  Var Log(Var a, float eps = 1e-9f);
  /// Elementwise |x|^p-free power for x >= 0: x^exponent (0 maps to 0).
  Var PowNonNeg(Var a, float exponent);
  /// Elementwise 1/sqrt(x) for x > 0 (else 0). Equivalent in value to
  /// PowNonNeg(a, -0.5f) up to rounding, but computed as 1.0f/sqrt —
  /// the SAME float expression as `linalg::RSqrt` — so the dense
  /// normalization of `GcnNormalizeDense` agrees bitwise with the sparse
  /// `graph::GcnNormalize` path (the incremental PEEGA engine relies on
  /// this for its flip-sequence equivalence; see DESIGN.md).
  Var RsqrtNonNeg(Var a);
  /// Inverted-dropout with keep probability `keep`; `mask` entries are the
  /// precomputed 0 / (1/keep) multipliers.
  Var Dropout(Var a, const linalg::Matrix& mask);

  // --- Broadcast / reductions ---------------------------------------------
  /// Row sums: (n x m) -> (n x 1).
  Var RowSums(Var a);
  /// Column sums: (n x m) -> (1 x m).
  Var ColSums(Var a);
  /// Total sum -> 1x1 scalar.
  Var Sum(Var a);
  /// out[i][j] = a[i][0]; broadcasts an (n x 1) column across `cols`.
  Var BroadcastCol(Var a, int cols);
  /// out[i][j] = a[0][j]; broadcasts a (1 x m) row across `rows`.
  Var BroadcastRow(Var a, int rows);
  /// out[i][j] = a[i][j] * s[i][0] (per-row scale by a column Var).
  Var ScaleRowsVar(Var a, Var s);
  /// out[i][j] = a[i][j] * s[j] treated via (1 x m) Var.
  Var ScaleColsVar(Var a, Var s);
  /// Adds a (1 x m) bias row Var to every row of a.
  Var AddRowVector(Var a, Var bias);

  // --- Softmax / losses ----------------------------------------------------
  /// Numerically stable row-wise softmax.
  Var RowSoftmax(Var a);
  /// Row-wise softmax over entries where mask > 0; other entries are 0.
  /// Rows whose mask is empty produce all-zero rows.
  Var MaskedRowSoftmax(Var a, const linalg::Matrix& mask);
  /// Mean cross-entropy of row-softmax(logits) against one-hot `labels`,
  /// restricted to rows with row_mask[i] > 0. Returns a 1x1 scalar.
  Var SoftmaxCrossEntropy(Var logits, const linalg::Matrix& labels,
                          const std::vector<float>& row_mask);

  // --- PEEGA objective kernels ---------------------------------------------
  /// sum_v || x[v] - ref[v] ||_p for constant `ref` (self view, Eq. 5).
  Var SumRowPNorm(Var x, const linalg::Matrix& ref, int p);
  /// sum over (v,u) pairs of || x[v] - ref[u] ||_p (global view, Eq. 6).
  Var SumEdgePNorm(Var x, const linalg::Matrix& ref,
                   const std::vector<std::pair<int, int>>& edges, int p);

  // --- Graph-specific ------------------------------------------------------
  /// GCN normalization of a dense adjacency Var:
  ///   A_n = D^{-1/2} (A + I) D^{-1/2},  D = diag(rowsum(A + I)).
  /// Fully differentiable with respect to A; composed from primitive ops.
  Var GcnNormalizeDense(Var a);

  /// Runs reverse-mode accumulation from `loss` (must be 1x1) with seed 1.
  /// Calls `ValidateForBackward(loss)` first; a malformed graph aborts with
  /// an op-trace instead of silently producing wrong gradients. When the
  /// build has PEEGA_DEBUG_NUMERICS on, every gradient produced by a
  /// backward node is additionally poison-checked for NaN/Inf.
  void Backward(Var loss);

  /// Structural validation of the recorded graph, run by `Backward` before
  /// any closure executes. Rejects (with a readable op-trace of the
  /// offending node and its ancestors): an invalid/foreign root Var, a
  /// non-1x1 loss, nodes whose value shape changed since recording, parents
  /// recorded out of topological order, and gradients whose shape diverged
  /// from their value. Exposed separately so tests can drive it directly.
  void ValidateForBackward(Var loss) const;

  /// Number of recorded nodes (for tests).
  size_t node_count() const { return nodes_.size(); }

  /// Test-only back door: overwrites the node's value with a `rows` x
  /// `cols` zero matrix WITHOUT updating the shape recorded at creation,
  /// manufacturing exactly the malformed graph `ValidateForBackward` must
  /// reject. Never call outside tests.
  void CorruptValueShapeForTest(Var v, int rows, int cols);

 private:
  internal::Node* NewNode(linalg::Matrix value, bool requires_grad,
                          const char* op,
                          std::initializer_list<internal::Node*> parents);

  std::vector<std::unique_ptr<internal::Node>> nodes_;
};

}  // namespace repro::autograd

#endif  // PEEGA_AUTOGRAD_TAPE_H_
