#ifndef PEEGA_EVAL_TABLE_H_
#define PEEGA_EVAL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace repro::eval {

/// Minimal fixed-width table printer for the experiment benches; output
/// mirrors the row/column structure of the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Writes the table with aligned columns to `out`.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace repro::eval

#endif  // PEEGA_EVAL_TABLE_H_
