#include "eval/args.h"

#include <cstdlib>

namespace repro::eval {

Args Args::Parse(int argc, const char* const* argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      token = token.substr(2);
      const size_t eq = token.find('=');
      if (eq != std::string::npos) {
        args.values_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.values_[token] = argv[++i];
      } else {
        args.values_[token] = "true";
      }
    } else if (args.command_.empty()) {
      args.command_ = token;
    } else {
      args.positional_.push_back(token);
    }
  }
  return args;
}

bool Args::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Args::GetString(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Args::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

int Args::GetInt(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoi(it->second.c_str());
}

}  // namespace repro::eval
