#include "eval/registry.h"

#include "attack/dice.h"
#include "attack/gf_attack.h"
#include "attack/metattack.h"
#include "attack/pgd.h"
#include "attack/random_attack.h"
#include "core/gnat.h"
#include "core/peega.h"
#include "core/peega_batch.h"
#include "defense/gnnguard.h"
#include "defense/jaccard.h"
#include "defense/model_defenders.h"
#include "defense/prognn.h"
#include "defense/svd.h"

namespace repro::eval {

std::unique_ptr<attack::Attacker> MakeAttackerByName(
    const AttackerSpec& spec) {
  if (spec.name == "peega" || spec.name == "peega-batch") {
    core::PeegaAttack::Options options;
    options.lambda = static_cast<float>(spec.lambda);
    options.norm_p = spec.norm_p;
    options.layers = spec.layers;
    options.checkpoint_path = spec.checkpoint_path;
    options.checkpoint_every = spec.checkpoint_every;
    if (spec.mode == "tm") {
      options.mode = core::PeegaAttack::Mode::kTopologyOnly;
    }
    if (spec.mode == "fp") {
      options.mode = core::PeegaAttack::Mode::kFeaturesOnly;
    }
    if (spec.name == "peega-batch") {
      core::PeegaBatchAttack::Options batch;
      batch.peega = options;
      batch.batch_size = spec.batch_size;
      return std::make_unique<core::PeegaBatchAttack>(batch);
    }
    return std::make_unique<core::PeegaAttack>(options);
  }
  if (spec.name == "metattack") return std::make_unique<attack::Metattack>();
  if (spec.name == "pgd") return std::make_unique<attack::PgdAttack>();
  if (spec.name == "minmax") return std::make_unique<attack::MinMaxAttack>();
  if (spec.name == "gf") return std::make_unique<attack::GfAttack>();
  if (spec.name == "dice") return std::make_unique<attack::DiceAttack>();
  if (spec.name == "random") return std::make_unique<attack::RandomAttack>();
  return nullptr;
}

std::unique_ptr<defense::Defender> MakeDefenderByName(
    const std::string& name) {
  if (name == "gnat") return std::make_unique<core::GnatDefender>();
  if (name == "gcn") return std::make_unique<defense::GcnDefender>();
  if (name == "gat") return std::make_unique<defense::GatDefender>();
  if (name == "jaccard") return std::make_unique<defense::JaccardDefender>();
  if (name == "svd") return std::make_unique<defense::SvdDefender>();
  if (name == "rgcn") return std::make_unique<defense::RGcnDefender>();
  if (name == "prognn") return std::make_unique<defense::ProGnnDefender>();
  if (name == "simpgcn") return std::make_unique<defense::SimPGcnDefender>();
  if (name == "gnnguard") {
    return std::make_unique<defense::GnnGuardDefender>();
  }
  return nullptr;
}

}  // namespace repro::eval
