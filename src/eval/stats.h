#ifndef PEEGA_EVAL_STATS_H_
#define PEEGA_EVAL_STATS_H_

#include <string>
#include <vector>

namespace repro::eval {

/// Mean and (population) standard deviation of repeated measurements.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

MeanStd Summarize(const std::vector<double>& values);

/// "82.31±0.45"-style string; `scale` multiplies values first (100 for
/// accuracy-as-percent tables).
std::string FormatMeanStd(const MeanStd& stats, double scale = 100.0,
                          int precision = 2);

}  // namespace repro::eval

#endif  // PEEGA_EVAL_STATS_H_
