#ifndef PEEGA_EVAL_ARGS_H_
#define PEEGA_EVAL_ARGS_H_

#include <map>
#include <string>
#include <vector>

namespace repro::eval {

/// Minimal command-line parser for the tools:
/// `prog <command> --key value --flag ...`.
/// Unknown keys are kept (callers validate); `--key=value` is also
/// accepted. Bare tokens after the command become positional arguments.
class Args {
 public:
  /// Parses argv (argv[0] skipped). The first bare token is the command.
  static Args Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetDouble(const std::string& key, double fallback) const;
  int GetInt(const std::string& key, int fallback) const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> values_;
};

}  // namespace repro::eval

#endif  // PEEGA_EVAL_ARGS_H_
