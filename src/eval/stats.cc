#include "eval/stats.h"

#include <cmath>
#include <cstdio>

namespace repro::eval {

MeanStd Summarize(const std::vector<double>& values) {
  MeanStd stats;
  if (values.empty()) return stats;
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - stats.mean) * (v - stats.mean);
  stats.std = std::sqrt(var / static_cast<double>(values.size()));
  return stats;
}

std::string FormatMeanStd(const MeanStd& stats, double scale,
                          int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f±%.*f", precision,
                stats.mean * scale, precision, stats.std * scale);
  return buffer;
}

}  // namespace repro::eval
