#include "eval/table.h"

#include <algorithm>
#include <ostream>

namespace repro::eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      out << " | ";
    }
    out << "\n";
  };
  print_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace repro::eval
