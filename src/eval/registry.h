#ifndef PEEGA_EVAL_REGISTRY_H_
#define PEEGA_EVAL_REGISTRY_H_

#include <memory>
#include <string>

#include "attack/attacker.h"
#include "defense/defender.h"

namespace repro::eval {

/// Parameters for constructing an attacker by name. Defaults are the
/// paper's hyper-parameters; non-PEEGA attackers ignore the PEEGA
/// fields.
struct AttackerSpec {
  /// "peega", "peega-batch", "metattack", "pgd", "minmax", "gf",
  /// "dice", "random".
  std::string name = "peega";
  double lambda = 0.01;
  int norm_p = 2;
  int layers = 2;
  int batch_size = 16;        // peega-batch only
  std::string mode = "both";  // "both" | "tm" | "fp"
  std::string checkpoint_path;
  int checkpoint_every = 16;
};

/// Single name->implementation factory shared by every front end (CLI,
/// C ABI, job server), so the set of reachable attackers/defenders
/// cannot drift between entry points. Returns nullptr for an unknown
/// name.
std::unique_ptr<attack::Attacker> MakeAttackerByName(
    const AttackerSpec& spec);
std::unique_ptr<defense::Defender> MakeDefenderByName(
    const std::string& name);

}  // namespace repro::eval

#endif  // PEEGA_EVAL_REGISTRY_H_
