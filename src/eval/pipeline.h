#ifndef PEEGA_EVAL_PIPELINE_H_
#define PEEGA_EVAL_PIPELINE_H_

#include <string>
#include <vector>

#include "attack/attacker.h"
#include "defense/defender.h"
#include "eval/stats.h"
#include "graph/graph.h"
#include "nn/trainer.h"
#include "obs/metrics.h"
#include "status/status.h"

namespace repro::eval {

/// How experiments repeat: each run re-seeds the defender's RNG (model
/// init, dropout) while the poisoned graph stays fixed, matching the
/// paper's "average accuracy of k runs" protocol.
struct PipelineOptions {
  int runs = 3;
  uint64_t seed = 20220901;
  nn::TrainOptions train;
};

/// Trains `defender` on `g` `options.runs` times; returns mean±std of
/// test accuracy and the mean training seconds.
///
/// Per-run failure isolation: a run whose DefenseReport carries a
/// non-OK status is excluded from the aggregate, and the FIRST failure
/// (tagged with its run index) is recorded in `status`. The aggregate
/// over the surviving runs stays usable, so one poisoned cell never
/// kills a whole results table — callers render `ERR(<code>)` for the
/// cell and keep going. `ok_runs` says how many runs fed the mean.
struct DefenseEvaluation {
  MeanStd accuracy;
  double mean_train_seconds = 0.0;
  int ok_runs = 0;
  status::Status status;
};
DefenseEvaluation EvaluateDefense(defense::Defender* defender,
                                  const graph::Graph& g,
                                  const PipelineOptions& options);

/// Runs `attacker` once on `g` (seeded), returning the poisoned graph.
attack::AttackResult RunAttack(attack::Attacker* attacker,
                               const graph::Graph& g,
                               const attack::AttackOptions& attack_options,
                               uint64_t seed);

/// Attack-then-defend convenience: poison with `attacker`, then evaluate
/// `defender` on the poisoned graph.
DefenseEvaluation EvaluateAttackDefense(
    attack::Attacker* attacker, defense::Defender* defender,
    const graph::Graph& g, const attack::AttackOptions& attack_options,
    const PipelineOptions& options);

/// Reproducibility metadata every experiment run should record next to
/// its numbers. Timing cells (Tab. VII/VIII) are only comparable at a
/// known thread count, and the determinism contract (DESIGN.md,
/// "Determinism & threading") promises accuracy cells are IDENTICAL at
/// any thread count — emitting `threads` makes both claims checkable
/// from the logs alone.
struct RunMetadata {
  int threads = 1;       ///< parallel::NumThreads() at collection time
  /// Active SIMD kernel variant ("generic"/"avx2"/"neon", see
  /// linalg/dispatch.h). Timing cells are only comparable at a known
  /// variant, and the dispatch contract promises result cells are
  /// IDENTICAL across variants — recording it makes both checkable.
  std::string simd;
  int runs = 0;          ///< repetitions behind mean±std cells
  uint64_t seed = 0;     ///< pipeline base seed
  /// Point-in-time copy of every obs instrument at collection time; the
  /// bench reporter embeds it in BENCH_*.json so counter-level
  /// determinism (identical counts at any thread count) is checkable
  /// from the artifacts alone.
  obs::MetricsSnapshot metrics;
  /// Every non-OK status the pipeline isolated since process start
  /// (ToString() form, in occurrence order). A table that printed any
  /// ERR(...) cell shows up here, so logs alone reveal degraded runs.
  std::vector<std::string> errors;
};

/// Appends a failure to the process-wide error log surfaced by
/// CollectRunMetadata. EvaluateDefense calls this for every isolated
/// run failure; benches may add their own.
void RecordPipelineError(const status::Status& status);

/// Renders a failed table cell: "ERR(<CODE>)", with a trailing '~' on
/// transient codes (status::IsTransient) — "ERR(NUMERIC_FAULT~)" — so
/// a reader tells retryable degradation from permanent
/// misconfiguration at a glance. Shared by the bench tables.
std::string ErrorCell(const status::Status& status);

/// Captures the current metadata for `options`.
RunMetadata CollectRunMetadata(const PipelineOptions& options);

/// One-line "run-metadata: threads=4 runs=2 seed=917" header; benches
/// print it above their tables.
std::string FormatRunMetadata(const RunMetadata& metadata);

}  // namespace repro::eval

#endif  // PEEGA_EVAL_PIPELINE_H_
