#ifndef PEEGA_EVAL_PIPELINE_H_
#define PEEGA_EVAL_PIPELINE_H_

#include <string>
#include <vector>

#include "attack/attacker.h"
#include "defense/defender.h"
#include "eval/stats.h"
#include "graph/graph.h"
#include "nn/trainer.h"
#include "obs/metrics.h"

namespace repro::eval {

/// How experiments repeat: each run re-seeds the defender's RNG (model
/// init, dropout) while the poisoned graph stays fixed, matching the
/// paper's "average accuracy of k runs" protocol.
struct PipelineOptions {
  int runs = 3;
  uint64_t seed = 20220901;
  nn::TrainOptions train;
};

/// Trains `defender` on `g` `options.runs` times; returns mean±std of
/// test accuracy and the mean training seconds.
struct DefenseEvaluation {
  MeanStd accuracy;
  double mean_train_seconds = 0.0;
};
DefenseEvaluation EvaluateDefense(defense::Defender* defender,
                                  const graph::Graph& g,
                                  const PipelineOptions& options);

/// Runs `attacker` once on `g` (seeded), returning the poisoned graph.
attack::AttackResult RunAttack(attack::Attacker* attacker,
                               const graph::Graph& g,
                               const attack::AttackOptions& attack_options,
                               uint64_t seed);

/// Attack-then-defend convenience: poison with `attacker`, then evaluate
/// `defender` on the poisoned graph.
DefenseEvaluation EvaluateAttackDefense(
    attack::Attacker* attacker, defense::Defender* defender,
    const graph::Graph& g, const attack::AttackOptions& attack_options,
    const PipelineOptions& options);

/// Reproducibility metadata every experiment run should record next to
/// its numbers. Timing cells (Tab. VII/VIII) are only comparable at a
/// known thread count, and the determinism contract (DESIGN.md,
/// "Determinism & threading") promises accuracy cells are IDENTICAL at
/// any thread count — emitting `threads` makes both claims checkable
/// from the logs alone.
struct RunMetadata {
  int threads = 1;       ///< parallel::NumThreads() at collection time
  int runs = 0;          ///< repetitions behind mean±std cells
  uint64_t seed = 0;     ///< pipeline base seed
  /// Point-in-time copy of every obs instrument at collection time; the
  /// bench reporter embeds it in BENCH_*.json so counter-level
  /// determinism (identical counts at any thread count) is checkable
  /// from the artifacts alone.
  obs::MetricsSnapshot metrics;
};

/// Captures the current metadata for `options`.
RunMetadata CollectRunMetadata(const PipelineOptions& options);

/// One-line "run-metadata: threads=4 runs=2 seed=917" header; benches
/// print it above their tables.
std::string FormatRunMetadata(const RunMetadata& metadata);

}  // namespace repro::eval

#endif  // PEEGA_EVAL_PIPELINE_H_
