#ifndef PEEGA_EVAL_PIPELINE_H_
#define PEEGA_EVAL_PIPELINE_H_

#include <vector>

#include "attack/attacker.h"
#include "defense/defender.h"
#include "eval/stats.h"
#include "graph/graph.h"
#include "nn/trainer.h"

namespace repro::eval {

/// How experiments repeat: each run re-seeds the defender's RNG (model
/// init, dropout) while the poisoned graph stays fixed, matching the
/// paper's "average accuracy of k runs" protocol.
struct PipelineOptions {
  int runs = 3;
  uint64_t seed = 20220901;
  nn::TrainOptions train;
};

/// Trains `defender` on `g` `options.runs` times; returns mean±std of
/// test accuracy and the mean training seconds.
struct DefenseEvaluation {
  MeanStd accuracy;
  double mean_train_seconds = 0.0;
};
DefenseEvaluation EvaluateDefense(defense::Defender* defender,
                                  const graph::Graph& g,
                                  const PipelineOptions& options);

/// Runs `attacker` once on `g` (seeded), returning the poisoned graph.
attack::AttackResult RunAttack(attack::Attacker* attacker,
                               const graph::Graph& g,
                               const attack::AttackOptions& attack_options,
                               uint64_t seed);

/// Attack-then-defend convenience: poison with `attacker`, then evaluate
/// `defender` on the poisoned graph.
DefenseEvaluation EvaluateAttackDefense(
    attack::Attacker* attacker, defense::Defender* defender,
    const graph::Graph& g, const attack::AttackOptions& attack_options,
    const PipelineOptions& options);

}  // namespace repro::eval

#endif  // PEEGA_EVAL_PIPELINE_H_
