#include "eval/pipeline.h"

#include <mutex>
#include <sstream>

#include "linalg/dispatch.h"
#include "parallel/thread_pool.h"

namespace repro::eval {

namespace {

// Process-wide log of isolated failures, surfaced via RunMetadata so a
// degraded table is visible in the artifacts even when only one cell
// printed ERR(...).
std::mutex g_errors_mutex;
std::vector<std::string>& ErrorLog() {
  static std::vector<std::string> log;
  return log;
}

}  // namespace

void RecordPipelineError(const status::Status& status) {
  if (status.ok()) return;
  const std::lock_guard<std::mutex> lock(g_errors_mutex);
  ErrorLog().push_back(status.ToString());
}

std::string ErrorCell(const status::Status& status) {
  std::string cell = "ERR(";
  cell += status::CodeName(status.code());
  if (status::IsTransient(status.code())) cell += "~";
  cell += ")";
  return cell;
}

DefenseEvaluation EvaluateDefense(defense::Defender* defender,
                                  const graph::Graph& g,
                                  const PipelineOptions& options) {
  std::vector<double> accuracies;
  double total_seconds = 0.0;
  DefenseEvaluation evaluation;
  for (int run = 0; run < options.runs; ++run) {
    linalg::Rng rng(options.seed + 7919 * run);
    const defense::DefenseReport report =
        defender->Run(g, options.train, &rng);
    if (!report.status.ok()) {
      // Isolate the failed run: it does not feed the aggregate, the
      // remaining runs still do. First failure wins the cell's status.
      const status::Status tagged =
          report.status.WithContext("run " + std::to_string(run));
      RecordPipelineError(tagged);
      if (evaluation.status.ok()) evaluation.status = tagged;
      continue;
    }
    accuracies.push_back(report.test_accuracy);
    total_seconds += report.train_seconds;
    ++evaluation.ok_runs;
  }
  evaluation.accuracy = Summarize(accuracies);
  evaluation.mean_train_seconds =
      evaluation.ok_runs > 0 ? total_seconds / evaluation.ok_runs : 0.0;
  return evaluation;
}

attack::AttackResult RunAttack(attack::Attacker* attacker,
                               const graph::Graph& g,
                               const attack::AttackOptions& attack_options,
                               uint64_t seed) {
  linalg::Rng rng(seed);
  return attacker->Attack(g, attack_options, &rng);
}

DefenseEvaluation EvaluateAttackDefense(
    attack::Attacker* attacker, defense::Defender* defender,
    const graph::Graph& g, const attack::AttackOptions& attack_options,
    const PipelineOptions& options) {
  const attack::AttackResult attacked =
      RunAttack(attacker, g, attack_options, options.seed);
  if (!attacked.status.ok()) {
    // The attacker stopped early but its best-so-far poisoned graph is
    // still valid — evaluate the defense on it and mark the cell.
    RecordPipelineError(
        attacked.status.WithContext("attack " + attacker->name()));
  }
  DefenseEvaluation evaluation =
      EvaluateDefense(defender, attacked.poisoned, options);
  if (evaluation.status.ok() && !attacked.status.ok()) {
    evaluation.status =
        attacked.status.WithContext("attack " + attacker->name());
  }
  return evaluation;
}

RunMetadata CollectRunMetadata(const PipelineOptions& options) {
  RunMetadata metadata;
  metadata.threads = parallel::NumThreads();
  metadata.simd = linalg::SimdVariantName(linalg::ActiveSimdVariant());
  metadata.runs = options.runs;
  metadata.seed = options.seed;
  metadata.metrics = obs::SnapshotMetrics();
  {
    const std::lock_guard<std::mutex> lock(g_errors_mutex);
    metadata.errors = ErrorLog();
  }
  return metadata;
}

std::string FormatRunMetadata(const RunMetadata& metadata) {
  std::ostringstream out;
  out << "run-metadata: threads=" << metadata.threads
      << " simd=" << metadata.simd << " runs=" << metadata.runs
      << " seed=" << metadata.seed << " errors=" << metadata.errors.size();
  return out.str();
}

}  // namespace repro::eval
