#include "eval/pipeline.h"

#include <sstream>

#include "parallel/thread_pool.h"

namespace repro::eval {

DefenseEvaluation EvaluateDefense(defense::Defender* defender,
                                  const graph::Graph& g,
                                  const PipelineOptions& options) {
  std::vector<double> accuracies;
  double total_seconds = 0.0;
  for (int run = 0; run < options.runs; ++run) {
    linalg::Rng rng(options.seed + 7919 * run);
    const defense::DefenseReport report =
        defender->Run(g, options.train, &rng);
    accuracies.push_back(report.test_accuracy);
    total_seconds += report.train_seconds;
  }
  DefenseEvaluation evaluation;
  evaluation.accuracy = Summarize(accuracies);
  evaluation.mean_train_seconds =
      options.runs > 0 ? total_seconds / options.runs : 0.0;
  return evaluation;
}

attack::AttackResult RunAttack(attack::Attacker* attacker,
                               const graph::Graph& g,
                               const attack::AttackOptions& attack_options,
                               uint64_t seed) {
  linalg::Rng rng(seed);
  return attacker->Attack(g, attack_options, &rng);
}

DefenseEvaluation EvaluateAttackDefense(
    attack::Attacker* attacker, defense::Defender* defender,
    const graph::Graph& g, const attack::AttackOptions& attack_options,
    const PipelineOptions& options) {
  const attack::AttackResult attacked =
      RunAttack(attacker, g, attack_options, options.seed);
  return EvaluateDefense(defender, attacked.poisoned, options);
}

RunMetadata CollectRunMetadata(const PipelineOptions& options) {
  RunMetadata metadata;
  metadata.threads = parallel::NumThreads();
  metadata.runs = options.runs;
  metadata.seed = options.seed;
  metadata.metrics = obs::SnapshotMetrics();
  return metadata;
}

std::string FormatRunMetadata(const RunMetadata& metadata) {
  std::ostringstream out;
  out << "run-metadata: threads=" << metadata.threads
      << " runs=" << metadata.runs << " seed=" << metadata.seed;
  return out.str();
}

}  // namespace repro::eval
