#include "core/peega_checkpoint.h"

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <utility>

#include "obs/crc32.h"
#include "obs/json.h"

namespace repro::core {

namespace {

using obs::Json;
using status::InvalidInput;
using status::IoError;
using status::Status;
using status::StatusOr;

constexpr const char* kMagic = "peega-checkpoint";

Status ReadNumber(const Json& doc, const char* key, double* out) {
  const Json* field = doc.Find(key);
  if (field == nullptr || field->type != Json::Type::kNumber) {
    return InvalidInput(std::string("missing or non-numeric field '") +
                        key + "'");
  }
  *out = field->number_value;
  return Status::Ok();
}

Status ReadInt(const Json& doc, const char* key, int* out) {
  double value = 0.0;
  PEEGA_RETURN_IF_ERROR(ReadNumber(doc, key, &value), "checkpoint field");
  *out = static_cast<int>(value);
  return Status::Ok();
}

}  // namespace

status::Status SavePeegaCheckpoint(const PeegaCheckpoint& checkpoint,
                                   const std::string& path) {
  Json doc = Json::MakeObject();
  doc.object["magic"] = Json::MakeString(kMagic);
  doc.object["version"] = Json::MakeNumber(PeegaCheckpoint::kVersion);
  doc.object["num_nodes"] = Json::MakeNumber(checkpoint.num_nodes);
  doc.object["feature_dim"] = Json::MakeNumber(checkpoint.feature_dim);
  doc.object["layers"] = Json::MakeNumber(checkpoint.layers);
  doc.object["norm_p"] = Json::MakeNumber(checkpoint.norm_p);
  doc.object["lambda"] = Json::MakeNumber(checkpoint.lambda);
  doc.object["mode"] = Json::MakeNumber(checkpoint.mode);
  doc.object["engine"] = Json::MakeNumber(checkpoint.engine);
  doc.object["perturbation_rate"] =
      Json::MakeNumber(checkpoint.perturbation_rate);
  doc.object["feature_cost"] = Json::MakeNumber(checkpoint.feature_cost);
  doc.object["iteration"] = Json::MakeNumber(checkpoint.iteration);
  doc.object["spent"] = Json::MakeNumber(checkpoint.spent);
  doc.object["rng_state"] = Json::MakeString(checkpoint.rng_state);
  Json flips = Json::MakeArray();
  for (const attack::Flip& flip : checkpoint.flips) {
    Json entry = Json::MakeObject();
    entry.object["f"] = Json::MakeNumber(flip.is_feature ? 1 : 0);
    entry.object["a"] = Json::MakeNumber(flip.a);
    entry.object["b"] = Json::MakeNumber(flip.b);
    flips.array.push_back(std::move(entry));
  }
  doc.object["flips"] = std::move(flips);
  // CRC over the crc-less serialization; obs::Json keys are map-ordered
  // so the byte layout is stable and the check is reproducible.
  doc.object["crc"] =
      Json::MakeNumber(static_cast<double>(obs::Crc32(doc.Dump())));

  // tmp + rename: the checkpoint at `path` is always either the previous
  // complete one or the new complete one, never a torn write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return IoError("cannot create " + tmp);
    doc.Write(out);
    out << "\n";
    out.flush();
    if (!out) return IoError("write failure on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

status::StatusOr<PeegaCheckpoint> LoadPeegaCheckpoint(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open checkpoint " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return IoError("read failure on checkpoint " + path);

  Json doc;
  std::string error;
  if (!Json::Parse(buffer.str(), &doc, &error)) {
    // `error` carries the parser's byte offset ("... at offset N") so
    // the log names where in the file the corruption sits.
    return InvalidInput("corrupt checkpoint " + path + ": " + error);
  }
  const Json* magic = doc.Find("magic");
  if (magic == nullptr || magic->type != Json::Type::kString ||
      magic->string_value != kMagic) {
    return InvalidInput("corrupt checkpoint " + path +
                        ": bad or missing magic");
  }
  int version = 0;
  Status status = ReadInt(doc, "version", &version);
  if (!status.ok()) return status.WithContext("checkpoint " + path);
  if (version != PeegaCheckpoint::kVersion) {
    return InvalidInput("stale checkpoint " + path + ": version " +
                        std::to_string(version) + ", expected " +
                        std::to_string(PeegaCheckpoint::kVersion));
  }
  const Json* crc_field = doc.Find("crc");
  if (crc_field == nullptr || crc_field->type != Json::Type::kNumber) {
    return InvalidInput("corrupt checkpoint " + path + ": missing crc");
  }
  {
    const uint32_t stored =
        static_cast<uint32_t>(crc_field->number_value);
    Json without_crc = doc;
    without_crc.object.erase("crc");
    const uint32_t computed = obs::Crc32(without_crc.Dump());
    if (stored != computed) {
      return IoError("corrupt checkpoint " + path +
                     ": crc mismatch (stored " + std::to_string(stored) +
                     ", computed " + std::to_string(computed) + " over " +
                     std::to_string(buffer.str().size()) + " bytes)");
    }
  }

  PeegaCheckpoint checkpoint;
  double lambda = 0.0;
  for (const auto& [key, out] :
       std::initializer_list<std::pair<const char*, int*>>{
           {"num_nodes", &checkpoint.num_nodes},
           {"feature_dim", &checkpoint.feature_dim},
           {"layers", &checkpoint.layers},
           {"norm_p", &checkpoint.norm_p},
           {"mode", &checkpoint.mode},
           {"engine", &checkpoint.engine},
           {"iteration", &checkpoint.iteration}}) {
    status = ReadInt(doc, key, out);
    if (!status.ok()) return status.WithContext("checkpoint " + path);
  }
  status = ReadNumber(doc, "lambda", &lambda);
  if (!status.ok()) return status.WithContext("checkpoint " + path);
  checkpoint.lambda = static_cast<float>(lambda);
  status = ReadNumber(doc, "perturbation_rate",
                      &checkpoint.perturbation_rate);
  if (!status.ok()) return status.WithContext("checkpoint " + path);
  status = ReadNumber(doc, "feature_cost", &checkpoint.feature_cost);
  if (!status.ok()) return status.WithContext("checkpoint " + path);
  status = ReadNumber(doc, "spent", &checkpoint.spent);
  if (!status.ok()) return status.WithContext("checkpoint " + path);

  const Json* rng = doc.Find("rng_state");
  if (rng == nullptr || rng->type != Json::Type::kString) {
    return InvalidInput("corrupt checkpoint " + path +
                        ": missing rng_state");
  }
  checkpoint.rng_state = rng->string_value;

  const Json* flips = doc.Find("flips");
  if (flips == nullptr || flips->type != Json::Type::kArray) {
    return InvalidInput("corrupt checkpoint " + path + ": missing flips");
  }
  for (const Json& entry : flips->array) {
    int is_feature = 0;
    attack::Flip flip;
    status = ReadInt(entry, "f", &is_feature);
    if (!status.ok()) return status.WithContext("checkpoint flip entry");
    status = ReadInt(entry, "a", &flip.a);
    if (!status.ok()) return status.WithContext("checkpoint flip entry");
    status = ReadInt(entry, "b", &flip.b);
    if (!status.ok()) return status.WithContext("checkpoint flip entry");
    flip.is_feature = is_feature != 0;
    if (flip.a < 0 || flip.a >= checkpoint.num_nodes || flip.b < 0 ||
        (!flip.is_feature && flip.b >= checkpoint.num_nodes) ||
        (flip.is_feature && flip.b >= checkpoint.feature_dim)) {
      return InvalidInput("corrupt checkpoint " + path +
                          ": flip index out of range");
    }
    checkpoint.flips.push_back(flip);
  }
  if (checkpoint.iteration != static_cast<int>(checkpoint.flips.size())) {
    return InvalidInput(
        "corrupt checkpoint " + path + ": iteration " +
        std::to_string(checkpoint.iteration) + " != flip count " +
        std::to_string(checkpoint.flips.size()));
  }
  return checkpoint;
}

}  // namespace repro::core
