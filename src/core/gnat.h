#ifndef PEEGA_CORE_GNAT_H_
#define PEEGA_CORE_GNAT_H_

#include <vector>

#include "defense/defender.h"
#include "nn/gcn.h"

namespace repro::core {

/// GNAT — the paper's GNN defender based on graph augmeNtATions
/// (Sec. IV-B).
///
/// From the (poisoned) input graph GNAT derives three augmented graphs
/// that make node contexts distinguishable again after attacks that blur
/// them (Sec. IV-A insight: attackers mostly ADD inter-class edges):
///
///  * topology graph  Â^t : edge (v, u) iff u is reachable from v within
///    k_t hops — same-label nodes tend to share neighborhoods;
///  * feature graph   Â^f : edge (v, u) iff u is among v's top-k_f
///    cosine-similar nodes — features are rarely attacked (Sec. V-D1);
///  * ego graph       Â^e = Â + k_e I — each node's own features are
///    emphasized against poisoned neighborhoods.
///
/// One GCN (shared weights) is trained jointly on the selected views; the
/// final prediction averages the per-view outputs Z = mean(Z^t, Z^f,
/// Z^e). The `merge_views` mode instead unions the views' edges into a
/// single graph (the GNAT-tf/te/fe/tfe ablations of Tab. IX, which the
/// paper shows to be inferior to multi-view training).
///
/// GNAT is black-box compatible: it needs no clean graph, no attack
/// knowledge, and no extra labels.
class GnatDefender : public defense::Defender {
 public:
  struct Options {
    int k_t = 2;
    int k_f = 15;
    int k_e = 10;
    bool use_topology = true;
    bool use_feature = true;
    bool use_ego = true;
    bool merge_views = false;
    /// The edge-REMOVAL extension from the paper's conclusion ("we may
    /// remove some noises in the poison graph introduced by attackers"):
    /// before building the views, edges whose endpoints have Jaccard
    /// feature similarity below this threshold are dropped. 0 disables
    /// pruning (the paper's GNAT); requires usable (non-identity)
    /// features.
    float prune_threshold = 0.0f;
    nn::Gcn::Options gcn;
  };

  GnatDefender();
  explicit GnatDefender(const Options& options);

  std::string name() const override;
  defense::DefenseReport Run(const graph::Graph& g,
                             const nn::TrainOptions& train_options,
                             linalg::Rng* rng) override;

  /// k_t-hop topology augmentation (k_t <= 1 returns the input).
  static linalg::SparseMatrix BuildTopologyGraph(
      const linalg::SparseMatrix& adjacency, int k_t);

  /// Top-k_f cosine feature graph (k_f = 0 or degenerate features give an
  /// empty graph).
  static linalg::SparseMatrix BuildFeatureGraph(const linalg::Matrix& x,
                                                int k_f);

  const Options& options() const { return options_; }

 private:
  /// Normalized propagation matrices of the active views for graph `g`.
  std::vector<linalg::SparseMatrix> BuildViews(const graph::Graph& g) const;

  Options options_;
};

}  // namespace repro::core

#endif  // PEEGA_CORE_GNAT_H_
