#ifndef PEEGA_CORE_PEEGA_BATCH_H_
#define PEEGA_CORE_PEEGA_BATCH_H_

#include "attack/attacker.h"
#include "core/peega.h"

namespace repro::core {

/// PEEGA-Batch — the parallel-selection extension sketched in the
/// paper's conclusion ("Gumbel-Softmax sampling, which samples attacks
/// in a parallel manner, is a potential solution to make the attack
/// process more efficient").
///
/// Instead of committing ONE flip per gradient evaluation (Alg. 1,
/// complexity O(delta) gradient passes), each pass commits the top
/// `batch_size` non-conflicting candidates ranked by the same
/// S = grad ⊙ (-2Â + 1) score, optionally perturbing scores with Gumbel
/// noise for exploration. Complexity drops to O(delta / batch_size)
/// gradient passes at a small effectiveness cost — quantified by the
/// `ablation_batch` bench.
class PeegaBatchAttack : public attack::Attacker {
 public:
  struct Options {
    PeegaAttack::Options peega;
    int batch_size = 16;
    /// Scale of Gumbel(0,1) noise added to candidate scores before
    /// ranking (0 = deterministic top-k, the default).
    float gumbel_scale = 0.0f;
  };

  PeegaBatchAttack();
  explicit PeegaBatchAttack(const Options& options);

  std::string name() const override { return "PEEGA-Batch"; }
  attack::AttackResult Attack(const graph::Graph& g,
                              const attack::AttackOptions& options,
                              linalg::Rng* rng) override;

 private:
  Options options_;
};

}  // namespace repro::core

#endif  // PEEGA_CORE_PEEGA_BATCH_H_
