#include "core/peega_engine.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "debug/check.h"
#include "debug/failpoints.h"
#include "debug/numerics.h"
#include "graph/graph.h"
#include "linalg/incremental.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace repro::core {

using linalg::Matrix;
using linalg::SparseMatrix;

namespace {

// Row grains for the refresh stages. Every stage writes disjoint rows
// (or disjoint column slices of a fixed row), so chunking only affects
// load balance, never the cached values.
constexpr int64_t kGmRowGrain = 4;   // O(pairs * F) work per row
constexpr int64_t kSumRowGrain = 16; // O(l * N) work per row

std::vector<int> CollectRows(const std::vector<char>& mask) {
  std::vector<int> rows;
  rows.reserve(mask.size());
  for (size_t r = 0; r < mask.size(); ++r) {
    if (mask[r]) rows.push_back(static_cast<int>(r));
  }
  return rows;
}

std::vector<int> AllRows(int n) {
  std::vector<int> rows(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) rows[static_cast<size_t>(r)] = r;
  return rows;
}

// s_i = 1/sqrt(deg_i + 1), the same float expression as linalg::RSqrt on
// the float degree sum (exact for any node count below 2^24), and as the
// tape's RsqrtNonNeg on RowSums(A + I).
float GcnScale(size_t degree) {
  return 1.0f / std::sqrt(static_cast<float>(degree + 1));
}

}  // namespace

PeegaEngine::PeegaEngine(const graph::Graph& g, const Config& config)
    : n_(g.num_nodes),
      f_(g.features.cols()),
      layers_(config.layers),
      p_(config.norm_p),
      lambda_(config.lambda),
      attack_topology_(config.attack_topology),
      attack_features_(config.attack_features),
      targeted_(!config.target_nodes.empty()),
      is_target_(g.num_nodes, config.target_nodes.empty() ? 1 : 0),
      target_order_(config.target_nodes),
      features_(g.features) {
  PEEGA_CHECK_GE(layers_, 1);
  PEEGA_CHECK_GE(p_, 1);
  for (int v : target_order_) {
    PEEGA_CHECK_GE(v, 0);
    PEEGA_CHECK_LT(v, n_);
    is_target_[v] = 1;
  }

  // The global-view pairs are fixed on the CLEAN topology (Eq. 6), so
  // the clean CSR doubles as the pair index: pair k of row v is the
  // directed pair (v, pair_col_[k]) in the tape's NeighborPairs order.
  pair_row_ptr_ = g.adjacency.row_ptr();
  pair_col_ = g.adjacency.col_idx();

  neighbors_.resize(static_cast<size_t>(n_));
  for (int u = 0; u < n_; ++u) {
    auto& list = neighbors_[static_cast<size_t>(u)];
    list.reserve(pair_row_ptr_[u + 1] - pair_row_ptr_[u]);
    for (int64_t k = pair_row_ptr_[u]; k < pair_row_ptr_[u + 1]; ++k) {
      list.push_back(pair_col_[k]);  // CSR columns are already sorted
    }
  }
  scale_.resize(static_cast<size_t>(n_));
  for (int u = 0; u < n_; ++u) {
    scale_[static_cast<size_t>(u)] = GcnScale(neighbors_[static_cast<size_t>(u)].size());
  }

  h_.resize(static_cast<size_t>(layers_) + 1);
  h_[0] = features_;
  for (int k = 1; k <= layers_; ++k) {
    h_[static_cast<size_t>(k)] = Matrix(n_, f_);
    linalg::NormalizedSpMM(neighbors_, scale_, h_[static_cast<size_t>(k) - 1],
                           &h_[static_cast<size_t>(k)]);
  }
  // The clean surrogate A_n^l X: the graph is still unperturbed, so the
  // H chain just built IS the reference.
  reference_ = h_[static_cast<size_t>(layers_)];

  gm_ = Matrix(n_, f_);
  gm_nonzero_.assign(static_cast<size_t>(n_), 0);
  w_.resize(static_cast<size_t>(layers_) - 1);
  w_nonzero_.resize(static_cast<size_t>(layers_) - 1);
  for (int k = 1; k < layers_; ++k) {
    w_[static_cast<size_t>(k) - 1] = Matrix(n_, f_);
    w_nonzero_[static_cast<size_t>(k) - 1].assign(static_cast<size_t>(n_), 0);
  }
  if (attack_topology_) {
    u_.resize(static_cast<size_t>(layers_));
    for (int k = 0; k < layers_; ++k) u_[static_cast<size_t>(k)] = Matrix(n_, n_);
    gn_ = Matrix(n_, n_);
    ddeg_.assign(static_cast<size_t>(n_), 0.0f);
  }
  if (attack_features_) gx_ = Matrix(n_, f_);

  self_term_.assign(static_cast<size_t>(n_), 0.0);
  self_norm_.assign(static_cast<size_t>(n_), 0.0f);
  pair_term_.assign(static_cast<size_t>(pair_col_.size()), 0.0);
  pair_norm_.assign(static_cast<size_t>(pair_col_.size()), 0.0f);

  pending_rows_a_.assign(static_cast<size_t>(n_), 0);
  pending_rows_h0_.assign(static_cast<size_t>(n_), 0);
}

std::vector<char> PeegaEngine::ExpandChanged(
    const std::vector<char>& mask) const {
  std::vector<char> out = mask;
  for (int r = 0; r < n_; ++r) {
    if (!mask[static_cast<size_t>(r)]) continue;
    for (const int k : neighbors_[static_cast<size_t>(r)]) {
      out[static_cast<size_t>(k)] = 1;
    }
  }
  return out;
}

// One objective pair (r, ref_row): forward term + cached norm + the
// SumEdgePNorm backward contribution accumulated into `grow`, every
// float expression copied from autograd::Tape::SumEdgePNorm.
void PeegaEngine::AccumulatePairTerm(float* grow, const float* xrow,
                                     int ref_row, float weight, double* term,
                                     float* norm_out) {
  const float* rrow = reference_.row(ref_row);
  double acc = 0.0;
  for (int j = 0; j < f_; ++j) {
    const double diff = std::fabs(xrow[j] - rrow[j]);
    acc += p_ == 1 ? diff : (p_ == 2 ? diff * diff : std::pow(diff, p_));
  }
  const double normd = p_ == 1 ? acc : std::pow(acc, 1.0 / p_);
  *term = normd;
  const float norm = static_cast<float>(normd);
  *norm_out = norm;
  if (norm < 1e-12f) return;
  const float denom = p_ == 1 ? 1.0f : std::pow(norm, p_ - 1);
  for (int j = 0; j < f_; ++j) {
    const float diff = xrow[j] - rrow[j];
    if (diff == 0.0f) continue;
    const float mag =
        p_ == 1 ? 1.0f
                : (p_ == 2 ? std::fabs(diff) : std::pow(std::fabs(diff), p_ - 1));
    grow[j] += weight * (diff > 0.0f ? 1.0f : -1.0f) * mag / denom;
  }
}

void PeegaEngine::RecomputeGmRow(int r) {
  float* grow = gm_.row(r);
  for (int j = 0; j < f_; ++j) grow[j] = 0.0f;
  if (!is_target_[static_cast<size_t>(r)]) {
    gm_nonzero_[static_cast<size_t>(r)] = 0;
    return;
  }
  const float* xrow = h_[static_cast<size_t>(layers_)].row(r);
  // Global-view pairs first: the global SumEdgePNorm node is created
  // after the self one, so its backward (weight lambda from the Scale
  // node) lands in M̂'s gradient before the self pair's does.
  if (lambda_ != 0.0f) {
    for (int64_t k = pair_row_ptr_[r]; k < pair_row_ptr_[r + 1]; ++k) {
      AccumulatePairTerm(grow, xrow, pair_col_[k], lambda_,
                         &pair_term_[static_cast<size_t>(k)],
                         &pair_norm_[static_cast<size_t>(k)]);
    }
  }
  AccumulatePairTerm(grow, xrow, r, 1.0f,
                     &self_term_[static_cast<size_t>(r)],
                     &self_norm_[static_cast<size_t>(r)]);
  char nonzero = 0;
  for (int j = 0; j < f_; ++j) {
    if (grow[j] != 0.0f) {
      nonzero = 1;
      break;
    }
  }
  gm_nonzero_[static_cast<size_t>(r)] = nonzero;
}

status::Status PeegaEngine::RefreshScores() {
  if (!status_.ok()) return status_;  // latched failure
  if (PEEGA_FAILPOINT("engine.step")) {
    status_ = status::NumericFault("injected failpoint engine.step");
    return status_;
  }
  if (!fresh_ && !any_pending_) return status::Status::Ok();
  const obs::TraceSpan span("peega_engine.refresh");
  static obs::Counter* const refreshes =
      obs::GetCounter("peega_engine.refreshes");
  static obs::Counter* const rows_touched =
      obs::GetCounter("peega_engine.rows_touched");
  refreshes->Add(1);

  const bool full = fresh_;
  // Changed-row sets, one per cache level. d[k] holds the rows of H_k a
  // pending flip reaches (feature flips enter at H_0, edge flips at
  // every level through the A_n rows they rescale); e[k] holds the rows
  // of W_k = A_n^k G_M the same flips reach on the backward side.
  std::vector<std::vector<int>> d(static_cast<size_t>(layers_) + 1);
  std::vector<std::vector<int>> e(static_cast<size_t>(layers_) + 1);
  if (full) {
    for (auto& rows : d) rows = AllRows(n_);
    for (auto& rows : e) rows = AllRows(n_);
  } else {
    std::vector<char> mask = pending_rows_h0_;
    d[0] = CollectRows(mask);
    for (int k = 1; k <= layers_; ++k) {
      mask = ExpandChanged(mask);
      for (int r = 0; r < n_; ++r) {
        if (pending_rows_a_[static_cast<size_t>(r)]) {
          mask[static_cast<size_t>(r)] = 1;
        }
      }
      d[static_cast<size_t>(k)] = CollectRows(mask);
    }
    // e[0] = d[l] (G_M rows follow M̂ rows); pending A_n rows are already
    // contained in it, so each further level is a plain expansion.
    e[0] = d[static_cast<size_t>(layers_)];
    for (int k = 1; k <= layers_; ++k) {
      mask = ExpandChanged(mask);
      e[static_cast<size_t>(k)] = CollectRows(mask);
    }
  }
  for (const auto& rows : d) rows_touched->Add(rows.size());

  // 1. Forward chain: H_k rows.
  for (int k = 1; k <= layers_; ++k) {
    linalg::NormalizedSpMMRows(neighbors_, scale_, d[static_cast<size_t>(k)],
                               h_[static_cast<size_t>(k) - 1],
                               &h_[static_cast<size_t>(k)]);
  }

  // 2. G_M rows (and the objective pair terms riding along).
  {
    const obs::TraceSpan gm_span("peega_engine.gm_rows");
    const auto& rows = e[0];
    parallel::ParallelFor(0, static_cast<int64_t>(rows.size()), kGmRowGrain,
                          [&](int64_t i0, int64_t i1) {
                            for (int64_t i = i0; i < i1; ++i) {
                              RecomputeGmRow(rows[static_cast<size_t>(i)]);
                            }
                          });
  }

  // 3. Backward chains W_k = A_n W_{k-1}, rows e[k]; nonzero flags track
  //    freshly written rows so the U updates can skip zero-support rows.
  for (int k = 1; k < layers_; ++k) {
    linalg::NormalizedSpMMRows(neighbors_, scale_, e[static_cast<size_t>(k)],
                               W(k - 1), MutableW(k));
    std::vector<char>& flags = *MutableWNonzero(k);
    const Matrix& wk = W(k);
    for (const int r : e[static_cast<size_t>(k)]) {
      const float* row = wk.row(r);
      char nonzero = 0;
      for (int j = 0; j < f_; ++j) {
        if (row[j] != 0.0f) {
          nonzero = 1;
          break;
        }
      }
      flags[static_cast<size_t>(r)] = nonzero;
    }
  }

  if (attack_topology_) {
    // 4. U_k = W_k H_{l-1-k}^T — rows where W_k moved, columns where
    //    H_{l-1-k} moved (redundant on a full build).
    for (int k = 0; k < layers_; ++k) {
      Matrix* uk = &u_[static_cast<size_t>(k)];
      const Matrix& hk = h_[static_cast<size_t>(layers_ - 1 - k)];
      linalg::DotRowsInto(W(k), hk, e[static_cast<size_t>(k)], &WNonzero(k),
                          uk);
      const auto& cols = d[static_cast<size_t>(layers_ - 1 - k)];
      if (!full && !cols.empty()) {
        linalg::DotColsInto(W(k), hk, cols, &WNonzero(k), uk);
      }
    }

    // 5. G_N = U_0 + U_1 + ... in the tape's reverse-layer Axpy order.
    //    Changed entries live in rows e[l-1] (all U row sets nest into
    //    it) and columns d[l-1] (likewise for the column sets).
    {
      const obs::TraceSpan sum_span("peega_engine.gn_sum");
      std::vector<char> row_changed(static_cast<size_t>(n_), 0);
      for (const int r : e[static_cast<size_t>(layers_) - 1]) {
        row_changed[static_cast<size_t>(r)] = 1;
      }
      const auto& cols = d[static_cast<size_t>(layers_) - 1];
      parallel::ParallelFor(
          0, n_, kSumRowGrain, [&](int64_t r0, int64_t r1) {
            std::vector<const float*> urow(static_cast<size_t>(layers_));
            for (int i = static_cast<int>(r0); i < static_cast<int>(r1);
                 ++i) {
              float* grow = gn_.row(i);
              for (int k = 0; k < layers_; ++k) {
                urow[static_cast<size_t>(k)] = u_[static_cast<size_t>(k)].row(i);
              }
              const auto sum_entry = [&](int j) {
                float acc = urow[0][j];
                for (int k = 1; k < layers_; ++k) {
                  acc = acc + urow[static_cast<size_t>(k)][j];
                }
                grow[j] = acc;
              };
              if (full || row_changed[static_cast<size_t>(i)]) {
                for (int j = 0; j < n_; ++j) sum_entry(j);
              } else {
                for (const int j : cols) sum_entry(j);
              }
            }
          });
    }

    // 6. Degree chain rule. The tape's s-gradient accumulates the
    //    ScaleColsVar backward (column sums of G_N against the
    //    row-scaled values) before the ScaleRowsVar backward (row sums
    //    against A + I), then scales by d(1/sqrt)/d(deg). A + I is 0/1,
    //    so both reduce to sums over the closed neighborhood; zero
    //    entries contribute exact zeros in the tape and are skipped
    //    here. O(nnz) total — recomputed in full every refresh.
    {
      const obs::TraceSpan deg_span("peega_engine.degree_chain");
      for (int a = 0; a < n_; ++a) {
        float ds_col = 0.0f;
        float ds_row = 0.0f;
        const auto visit = [&](int i) {
          ds_col += gn_(i, a) * scale_[static_cast<size_t>(i)];
          ds_row += gn_(a, i) * scale_[static_cast<size_t>(i)];
        };
        bool self_done = false;
        for (const int k : neighbors_[static_cast<size_t>(a)]) {
          if (!self_done && a < k) {
            visit(a);
            self_done = true;
          }
          visit(k);
        }
        if (!self_done) visit(a);
        const float s_grad = ds_col + ds_row;
        const float degf =
            static_cast<float>(neighbors_[static_cast<size_t>(a)].size() + 1);
        const float dscale = -0.5f * std::pow(degf, -1.5f);
        ddeg_[static_cast<size_t>(a)] = s_grad * dscale;
      }
      if constexpr (debug::NumericsGuardEnabled()) {
        debug::CheckFiniteArray(ddeg_.data(), static_cast<int64_t>(ddeg_.size()),
                                static_cast<int>(ddeg_.size()), "PeegaEngine ddeg",
                                __FILE__, __LINE__);
      }
    }
  }

  // 7. G_X = A_n W_{l-1}: one more propagation hop past the last W level.
  if (attack_features_) {
    linalg::NormalizedSpMMRows(neighbors_, scale_,
                               e[static_cast<size_t>(layers_)], W(layers_ - 1),
                               &gx_);
  }

  fresh_ = false;
  if (any_pending_) {
    std::fill(pending_rows_a_.begin(), pending_rows_a_.end(), 0);
    std::fill(pending_rows_h0_.begin(), pending_rows_h0_.end(), 0);
    any_pending_ = false;
  }

  // NaN scores silently break the greedy scans (NaN comparisons are all
  // false, so the best-flip search would just find nothing); surface the
  // fault instead so callers can stop with an attributable status. The
  // objective aggregates every self/pair term, making it a one-number
  // sentinel for the whole score state.
  if (!std::isfinite(Objective())) {
    status_ = status::NumericFault("non-finite PEEGA objective");
  }
  return status_;
}

void PeegaEngine::FlipEdge(int u, int v) {
  PEEGA_CHECK_NE(u, v) << " — self-loop flips are not valid perturbations";
  PEEGA_CHECK_GE(u, 0);
  PEEGA_CHECK_LT(u, n_);
  PEEGA_CHECK_GE(v, 0);
  PEEGA_CHECK_LT(v, n_);
  // Rows of A_n touched by the flip: u and v change scale (every entry
  // of their rows rescales), and each PRE-flip neighbor of u or v holds
  // an entry s_i * s_{u|v} that rescales with it. Post-flip neighbor
  // sets only add the opposite endpoint, which is already marked.
  auto mark = [&](int a) {
    pending_rows_a_[static_cast<size_t>(a)] = 1;
    for (const int k : neighbors_[static_cast<size_t>(a)]) {
      pending_rows_a_[static_cast<size_t>(k)] = 1;
    }
  };
  mark(u);
  mark(v);
  const bool had = HasEdge(u, v);
  auto toggle = [&](int a, int b) {
    auto& list = neighbors_[static_cast<size_t>(a)];
    const auto it = std::lower_bound(list.begin(), list.end(), b);
    if (had) {
      PEEGA_CHECK(it != list.end() && *it == b);
      list.erase(it);
    } else {
      list.insert(it, b);
    }
  };
  toggle(u, v);
  toggle(v, u);
  scale_[static_cast<size_t>(u)] = GcnScale(neighbors_[static_cast<size_t>(u)].size());
  scale_[static_cast<size_t>(v)] = GcnScale(neighbors_[static_cast<size_t>(v)].size());
  any_pending_ = true;
}

void PeegaEngine::FlipFeature(int v, int j) {
  PEEGA_CHECK_GE(v, 0);
  PEEGA_CHECK_LT(v, n_);
  PEEGA_CHECK_GE(j, 0);
  PEEGA_CHECK_LT(j, f_);
  const float flipped = features_(v, j) > 0.5f ? 0.0f : 1.0f;
  features_(v, j) = flipped;
  h_[0](v, j) = flipped;
  pending_rows_h0_[static_cast<size_t>(v)] = 1;
  any_pending_ = true;
}

double PeegaEngine::Objective() const {
  PEEGA_CHECK(!fresh_ && !any_pending_)
      << " — call RefreshScores() before Objective()";
  // Double-accumulate each view in the tape's pair order, then compose
  // in float: float(self) + float(lambda * float(global)).
  double total_self = 0.0;
  if (targeted_) {
    for (const int v : target_order_) {
      total_self += self_term_[static_cast<size_t>(v)];
    }
  } else {
    for (int v = 0; v < n_; ++v) total_self += self_term_[static_cast<size_t>(v)];
  }
  const float self_view = static_cast<float>(total_self);
  if (lambda_ == 0.0f) return static_cast<double>(self_view);
  double total_global = 0.0;
  for (int v = 0; v < n_; ++v) {
    if (!is_target_[static_cast<size_t>(v)]) continue;
    for (int64_t k = pair_row_ptr_[v]; k < pair_row_ptr_[v + 1]; ++k) {
      total_global += pair_term_[static_cast<size_t>(k)];
    }
  }
  const float global_view = static_cast<float>(total_global);
  return static_cast<double>(self_view + global_view * lambda_);
}

SparseMatrix PeegaEngine::PoisonedAdjacency() const {
  std::vector<std::tuple<int, int, float>> triplets;
  size_t nnz = 0;
  for (const auto& list : neighbors_) nnz += list.size();
  triplets.reserve(nnz);
  for (int u = 0; u < n_; ++u) {
    for (const int v : neighbors_[static_cast<size_t>(u)]) {
      triplets.emplace_back(u, v, 1.0f);
    }
  }
  return SparseMatrix::FromTriplets(n_, n_, triplets);
}

}  // namespace repro::core
