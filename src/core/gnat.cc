#include "core/gnat.h"

#include <algorithm>
#include <tuple>

#include "autograd/tape.h"
#include "graph/metrics.h"
#include "debug/check.h"
#include "linalg/ops.h"
#include "nn/optim.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace repro::core {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;
using linalg::SparseMatrix;

GnatDefender::GnatDefender() : options_(Options()) {}
GnatDefender::GnatDefender(const Options& options) : options_(options) {}

std::string GnatDefender::name() const {
  std::string suffix;
  if (options_.use_topology) suffix += "t";
  if (options_.use_feature) suffix += "f";
  if (options_.use_ego) suffix += "e";
  if (options_.use_topology && options_.use_feature && options_.use_ego &&
      !options_.merge_views) {
    return "GNAT";
  }
  return "GNAT-" + std::string(options_.merge_views ? "" : "+") + suffix;
}

SparseMatrix GnatDefender::BuildTopologyGraph(const SparseMatrix& adjacency,
                                              int k_t) {
  const obs::TraceSpan span("gnat.build_topology_graph");
  if (k_t <= 1) return adjacency;
  return graph::KHopAdjacency(adjacency, k_t);
}

SparseMatrix GnatDefender::BuildFeatureGraph(const Matrix& x, int k_f) {
  const obs::TraceSpan span("gnat.build_feature_graph");
  const int n = x.rows();
  std::vector<std::tuple<int, int, float>> triplets;
  if (k_f > 0) {
    std::vector<std::pair<float, int>> sims;
    for (int i = 0; i < n; ++i) {
      sims.clear();
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const float s = linalg::CosineSimilarity(x, i, j);
        if (s > 1e-6f) sims.emplace_back(s, j);
      }
      const int take = std::min<int>(k_f, static_cast<int>(sims.size()));
      std::partial_sort(sims.begin(), sims.begin() + take, sims.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      for (int t = 0; t < take; ++t) {
        triplets.emplace_back(i, sims[t].second, 1.0f);
        triplets.emplace_back(sims[t].second, i, 1.0f);
      }
    }
  }
  SparseMatrix fg = SparseMatrix::FromTriplets(n, n, triplets);
  for (float& v : fg.mutable_values()) v = v > 0.0f ? 1.0f : 0.0f;
  return fg;
}

std::vector<SparseMatrix> GnatDefender::BuildViews(
    const graph::Graph& input) const {
  const obs::TraceSpan span("gnat.build_views");
  // Optional pruning pass (conclusion extension): drop edges whose
  // endpoints look feature-dissimilar — candidates for adversarial
  // inter-class additions.
  graph::Graph g = input;
  if (options_.prune_threshold > 0.0f) {
    std::vector<std::pair<int, int>> kept;
    for (const auto& [u, v] : input.EdgeList()) {
      if (linalg::JaccardSimilarity(input.features, u, v) >=
          options_.prune_threshold) {
        kept.emplace_back(u, v);
      }
    }
    // Safety valve: with degenerate features (e.g. identity matrices the
    // similarity is 0 everywhere) pruning would delete the whole graph;
    // keep the topology when less than a quarter of the edges survive.
    if (kept.size() * 4 >= static_cast<size_t>(input.NumEdges())) {
      g.adjacency = graph::AdjacencyFromEdges(input.num_nodes, kept);
    }
  }
  std::vector<SparseMatrix> views;
  SparseMatrix feature_graph;
  bool feature_available = false;
  if (options_.use_feature) {
    feature_graph = BuildFeatureGraph(g.features, options_.k_f);
    // Identity features (Polblogs) give an empty cosine graph; the view
    // is then dropped as in the paper's Tab. VI footnote.
    feature_available = feature_graph.nnz() > 0;
  }

  if (options_.merge_views) {
    // Union of the selected views' edges in a single graph.
    std::vector<std::tuple<int, int, float>> triplets;
    auto append = [&triplets](const SparseMatrix& m) {
      const auto& row_ptr = m.row_ptr();
      const auto& col_idx = m.col_idx();
      for (int u = 0; u < m.rows(); ++u) {
        for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
          triplets.emplace_back(u, col_idx[k], 1.0f);
        }
      }
    };
    if (options_.use_topology) {
      append(BuildTopologyGraph(g.adjacency, options_.k_t));
    }
    if (feature_available) append(feature_graph);
    if (options_.use_ego || triplets.empty()) append(g.adjacency);
    SparseMatrix merged =
        SparseMatrix::FromTriplets(g.num_nodes, g.num_nodes, triplets);
    for (float& v : merged.mutable_values()) v = v > 0.0f ? 1.0f : 0.0f;
    const float self_weight =
        options_.use_ego ? static_cast<float>(options_.k_e) + 1.0f : 1.0f;
    views.push_back(graph::GcnNormalizeWeighted(merged, self_weight));
    return views;
  }

  if (options_.use_topology) {
    views.push_back(graph::GcnNormalize(
        BuildTopologyGraph(g.adjacency, options_.k_t)));
  }
  if (feature_available) {
    views.push_back(graph::GcnNormalize(feature_graph));
  }
  if (options_.use_ego) {
    views.push_back(graph::GcnNormalizeWeighted(
        g.adjacency, static_cast<float>(options_.k_e) + 1.0f));
  }
  if (views.empty()) {
    views.push_back(graph::GcnNormalize(g.adjacency));
  }
  return views;
}

defense::DefenseReport GnatDefender::Run(
    const graph::Graph& g, const nn::TrainOptions& train_options,
    linalg::Rng* rng) {
  const obs::TraceSpan run_span("gnat.run");
  const obs::StopWatch watch;
  const std::vector<SparseMatrix> views = BuildViews(g);
  PEEGA_CHECK_GT(views.size(), 0u);
  const float inv_views = 1.0f / static_cast<float>(views.size());

  nn::Gcn gcn(g.features.cols(), g.num_classes, options_.gcn, rng);
  nn::Adam optimizer(train_options.lr, train_options.weight_decay);
  const Matrix labels = g.OneHotLabels();
  const std::vector<float> train_mask = g.NodeMask(g.train_nodes);

  auto forward_views = [&](Tape* tape, bool training) {
    const obs::TraceSpan forward_span("gnat.forward_views");
    auto bound = gcn.BindParameters(tape);
    Var x = tape->Input(g.features, false);
    Var avg;
    for (size_t i = 0; i < views.size(); ++i) {
      Var z = gcn.ForwardWithPropagation(tape, views[i], x, bound,
                                         training, rng);
      avg = i == 0 ? z : tape->Add(avg, z);
    }
    if (views.size() > 1) avg = tape->Scale(avg, inv_views);
    return std::make_pair(avg, bound);
  };
  auto predict = [&]() {
    Tape tape;
    auto [logits, bound] = forward_views(&tape, /*training=*/false);
    return linalg::RowArgmax(logits.value());
  };

  static obs::Counter* const epochs_counter = obs::GetCounter("gnat.epochs");
  static obs::Histogram* const epoch_ms = obs::GetHistogram(
      "gnat.epoch_ms", obs::LatencyBucketsMs());

  double best_val = -1.0;
  int since_best = 0;
  std::vector<Matrix> best_params;
  status::Status train_status;
  for (int epoch = 0; epoch < train_options.max_epochs; ++epoch) {
    train_status = train_options.deadline.Check(
        "GNAT epoch " + std::to_string(epoch));
    if (!train_status.ok()) break;  // best snapshot restored below
    const obs::TraceSpan epoch_span("gnat.epoch");
    const obs::StopWatch epoch_watch;
    epochs_counter->Add(1);
    Tape tape;
    auto [logits, bound] = forward_views(&tape, /*training=*/true);
    Var loss = tape.SoftmaxCrossEntropy(logits, labels, train_mask);
    tape.Backward(loss);
    for (auto& [param, var] : bound) optimizer.Step(param, var.grad());
    epoch_ms->Observe(epoch_watch.Millis());

    if (train_options.patience > 0) {
      const double val_acc =
          graph::Accuracy(predict(), g.labels, g.val_nodes);
      if (val_acc > best_val) {
        best_val = val_acc;
        since_best = 0;
        best_params.clear();
        for (Matrix* p : gcn.Parameters()) best_params.push_back(*p);
      } else if (++since_best >= train_options.patience) {
        break;
      }
    }
  }
  if (!best_params.empty()) {
    auto params = gcn.Parameters();
    for (size_t i = 0; i < params.size(); ++i) *params[i] = best_params[i];
  }

  defense::DefenseReport report;
  const std::vector<int> preds = predict();
  report.test_accuracy = graph::Accuracy(preds, g.labels, g.test_nodes);
  report.val_accuracy = graph::Accuracy(preds, g.labels, g.val_nodes);
  report.train_seconds = watch.Seconds();
  report.status = train_status.WithContext("GNAT training");
  return report;
}

}  // namespace repro::core
