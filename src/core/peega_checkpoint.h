#ifndef PEEGA_CORE_PEEGA_CHECKPOINT_H_
#define PEEGA_CORE_PEEGA_CHECKPOINT_H_

#include <string>
#include <vector>

#include "attack/attacker.h"
#include "core/peega.h"
#include "status/status.h"

namespace repro::core {

/// Serialized state of an in-flight PEEGA campaign (versioned JSON via
/// obs::Json, format documented in DESIGN.md "Failure model & graceful
/// degradation").
///
/// The checkpoint records the committed flip sequence, the RNG stream
/// state, and an echo of every input that shapes the greedy trajectory
/// (graph dims, attack options). Because the greedy loop is
/// deterministic (PR-4 contract), replaying the flips onto the same
/// clean graph reconstructs the exact engine state, so a resumed run
/// continues with a bitwise-identical flip sequence and objective.
/// The config echo lets `LoadPeegaCheckpoint` reject stale checkpoints
/// (written for a different graph or option set) with a readable
/// kInvalidInput status instead of silently diverging.
///
/// Since version 2 the file carries a "crc" field — a CRC32
/// (obs::Crc32) over the document serialized without it — so bit rot
/// that happens to keep the JSON parsable is still caught: a mismatch
/// is rejected with kIoError (stored vs computed CRC named) instead of
/// silently resuming from corrupt state. Structural corruption keeps
/// the kInvalidInput "corrupt checkpoint" contract, with the parser's
/// byte offset surfaced in the message.
struct PeegaCheckpoint {
  static constexpr int kVersion = 2;

  // Config echo, validated on resume.
  int num_nodes = 0;
  int feature_dim = 0;
  int layers = 0;
  int norm_p = 0;
  float lambda = 0.0f;
  int mode = 0;    // PeegaAttack::Mode as int
  int engine = 0;  // PeegaAttack::Engine as int
  double perturbation_rate = 0.0;
  double feature_cost = 1.0;

  // Campaign state.
  int iteration = 0;    // committed flips == flips.size()
  double spent = 0.0;   // budget consumed
  std::string rng_state;  // mt19937_64 stream state (operator<< format)
  std::vector<attack::Flip> flips;
};

/// Writes atomically (tmp file + rename) so a crash mid-save never
/// leaves a truncated checkpoint behind.
status::Status SavePeegaCheckpoint(const PeegaCheckpoint& checkpoint,
                                   const std::string& path);

/// Parses and structurally validates a checkpoint file. kIoError when
/// unreadable, kInvalidInput (with the offending field named) when
/// malformed, version-mismatched, or internally inconsistent.
status::StatusOr<PeegaCheckpoint> LoadPeegaCheckpoint(
    const std::string& path);

}  // namespace repro::core

#endif  // PEEGA_CORE_PEEGA_CHECKPOINT_H_
