#ifndef PEEGA_CORE_PEEGA_ENGINE_H_
#define PEEGA_CORE_PEEGA_ENGINE_H_

#include <algorithm>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "status/status.h"

namespace repro::core {

/// Incremental evaluation engine for the PEEGA objective (Def. 3).
///
/// The tape path re-materializes the dense normalized adjacency and
/// replays `layers` dense MatMuls plus a full backward pass on every
/// greedy iteration: O(N²F) per committed flip. This engine caches every
/// intermediate of that computation across flips —
///
///   H_k   = A_n^k X            (k = 0..l; H_l is the surrogate M̂),
///   G_M   = ∂J/∂M̂              (per-pair p-norm backward terms),
///   W_k   = A_n^k G_M          (k = 0..l-1; the backward's dM chain),
///   U_k   = W_k H_{l-1-k}^T    (the per-layer adjacency-grad terms),
///   G_N   = ∂J/∂A_n = U_0 + U_1 + ... + U_{l-1},
///   grad A = chain rule of A_n = D^{-1/2}(A+I)D^{-1/2} through the
///            degree terms,
///   G_X   = ∂J/∂X = A_n^l G_M = A_n W_{l-1}
///
/// — and after each committed flip refreshes only what the flip touched:
/// an edge flip (u,v) rescales the normalized rows of u, v, and their
/// neighbors, whose effect reaches l hops in H and the T row updates; a
/// feature flip (v,j) propagates one changed X row the same way. Scan
/// scores then come from these closed-form gradients instead of a fresh
/// autograd tape.
///
/// Equivalence with the tape (why the differential tests can demand the
/// EXACT flip sequence): every cache above is maintained BITWISE equal
/// to the corresponding tape intermediate. Row updates recompute
/// affected rows with kernels whose float accumulation order matches
/// the dense tape kernels exactly (see linalg/incremental.h), and the
/// gradient caches keep the tape's own term structure — W_k = A_n^k G_M
/// mirrors the MatMulTransA backward chain and U_k = W_k H_{l-1-k}^T the
/// MatMulTransB terms, summed into G_N in the tape's reverse-layer
/// accumulation order — rather than an algebraically equal refactoring
/// that would round differently. The per-pair backward, the degree chain
/// rule, and the score composition mirror the tape's float expressions
/// operation for operation, so scan scores, tie-breaks, the greedy flip
/// sequence, and the objective are identical to the tape engine, not
/// merely close. DESIGN.md ("Incremental objective engine") gives the
/// full argument.
///
/// Threading: all refresh kernels chunk deterministically over disjoint
/// rows (see linalg/incremental.h), so every cached matrix — and hence
/// every score — is bitwise-identical at any thread count.
///
/// Usage (one greedy iteration):
///   engine.RefreshScores();
///   ... scan with EdgeScore / FeatureScore via the Scored scans ...
///   engine.FlipEdge(u, v);   // or FlipFeature(v, j); repeatable
class PeegaEngine {
 public:
  struct Config {
    int layers = 2;
    int norm_p = 2;
    float lambda = 0.01f;
    /// Disable a side to skip its gradient machinery entirely (the mode
    /// ablation of Fig. 5a).
    bool attack_topology = true;
    bool attack_features = true;
    /// Non-empty = targeted attack: objective restricted to these rows.
    std::vector<int> target_nodes;
  };

  /// Captures the clean reference A_n^l X and the initial caches.
  PeegaEngine(const graph::Graph& g, const Config& config);

  /// Brings every cached gradient up to date with the flips committed
  /// since the last call. Must be called before reading scores or the
  /// objective; the first call pays the full O(N²F) build, later calls
  /// only the perturbed region.
  ///
  /// Returns non-OK (kNumericFault) when the refreshed objective is no
  /// longer finite — from a genuine numeric fault or the `engine.step`
  /// failpoint — after which the engine is latched: further refreshes
  /// are no-ops returning the same status, and the caller must stop
  /// reading scores and emit a best-so-far result from the committed
  /// graph state (PoisonedAdjacency()/features(), which stay valid).
  status::Status RefreshScores();

  /// Scan score of flipping edge (u, v), u < v: the tape's
  /// (1 - 2A[u][v]) * (grad[u][v] + grad[v][u]) from closed-form
  /// gradients. Valid after RefreshScores().
  float EdgeScore(int u, int v) const {
    const float direction = HasEdge(u, v) ? -1.0f : 1.0f;
    return direction * (PairGradient(u, v) + PairGradient(v, u));
  }

  /// Scan score of flipping feature bit (v, j) — WITHOUT the 1/beta
  /// normalization, exactly like the raw tape gradient scan.
  float FeatureScore(int v, int j) const {
    const float direction = 1.0f - 2.0f * features_(v, j);
    return direction * gx_(v, j);
  }

  /// Closed-form ∂J/∂A[a][b] mirroring the tape's accumulated adjacency
  /// gradient (exposed for the gradcheck property tests).
  float PairGradient(int a, int b) const {
    const float t = gn_(a, b) * scale_[b];
    const float t2 = t * scale_[a];
    return t2 + ddeg_[a];
  }

  /// Closed-form ∂J/∂X[v][j] (exposed for the gradcheck property tests).
  float FeatureGradient(int v, int j) const { return gx_(v, j); }

  bool HasEdge(int u, int v) const {
    const auto& list = neighbors_[static_cast<size_t>(u)];
    return std::binary_search(list.begin(), list.end(), v);
  }

  /// Commits a flip, updating the adjacency/features and queueing the
  /// perturbed rows for the next RefreshScores(). Any number of flips
  /// may be committed between refreshes (PEEGA-Batch commits a batch).
  void FlipEdge(int u, int v);
  void FlipFeature(int v, int j);

  /// Current objective value, composed float-for-float like the tape's
  /// forward pass. Valid after RefreshScores().
  double Objective() const;

  /// Sparse poisoned adjacency emitted directly from the maintained
  /// neighbor lists — no O(N²) dense rescan.
  linalg::SparseMatrix PoisonedAdjacency() const;

  const linalg::Matrix& features() const { return features_; }
  /// Cached surrogate M̂ = A_n^l X̂ (exposed for the delta-update
  /// property tests).
  const linalg::Matrix& surrogate() const { return h_[layers_]; }

  int num_nodes() const { return n_; }
  int num_features() const { return f_; }

 private:
  void RecomputeGmRow(int r);
  void AccumulatePairTerm(float* grow, const float* xrow, int ref_row,
                          float weight, double* term, float* norm);
  std::vector<char> ExpandChanged(const std::vector<char>& mask) const;
  const linalg::Matrix& W(int k) const { return k == 0 ? gm_ : w_[k - 1]; }
  linalg::Matrix* MutableW(int k) { return k == 0 ? &gm_ : &w_[k - 1]; }
  const std::vector<char>& WNonzero(int k) const {
    return k == 0 ? gm_nonzero_ : w_nonzero_[k - 1];
  }
  std::vector<char>* MutableWNonzero(int k) {
    return k == 0 ? &gm_nonzero_ : &w_nonzero_[k - 1];
  }

  // --- immutable configuration -------------------------------------------
  int n_ = 0;
  int f_ = 0;
  int layers_ = 2;
  int p_ = 2;
  float lambda_ = 0.0f;
  bool attack_topology_ = true;
  bool attack_features_ = true;
  bool targeted_ = false;
  std::vector<char> is_target_;
  // Targeted self-view rows in caller order: the tape sums the self view
  // over `target_nodes` as given, and double addition only commutes up
  // to rounding, so Objective() must follow the same order.
  std::vector<int> target_order_;
  linalg::Matrix reference_;  // clean A_n^l X
  // Clean-topology CSR for the global-view pairs (Eq. 6 always sums over
  // the ORIGINAL neighborhoods, even as edges are flipped).
  std::vector<int64_t> pair_row_ptr_;
  std::vector<int> pair_col_;

  // --- poisoned state -----------------------------------------------------
  std::vector<std::vector<int>> neighbors_;  // sorted adjacency lists
  std::vector<float> scale_;                 // s_i = 1/sqrt(deg_i + 1)
  linalg::Matrix features_;

  // --- caches (see class comment) ----------------------------------------
  std::vector<linalg::Matrix> h_;  // H_0..H_layers (H_0 mirrors features_)
  linalg::Matrix gm_;              // G_M = W_0
  std::vector<char> gm_nonzero_;
  std::vector<linalg::Matrix> w_;  // W_k = A_n^k G_M, k = 1..layers-1
  std::vector<std::vector<char>> w_nonzero_;
  std::vector<linalg::Matrix> u_;  // U_k = W_k H_{layers-1-k}^T
  linalg::Matrix gn_;              // U_0 + U_1 + ... (tape backward order)
  std::vector<float> ddeg_;
  linalg::Matrix gx_;              // G_X = A_n W_{layers-1}
  // Per-pair objective terms: double for the objective sum, float for
  // the backward denominators — exactly the tape's split.
  std::vector<double> self_term_;
  std::vector<float> self_norm_;
  std::vector<double> pair_term_;
  std::vector<float> pair_norm_;

  // Latched failure: set on the first bad refresh, never cleared.
  status::Status status_;

  // --- pending perturbations since the last refresh -----------------------
  bool fresh_ = true;
  std::vector<char> pending_rows_a_;   // rows whose A_n row changed
  std::vector<char> pending_rows_h0_;  // rows whose feature row changed
  bool any_pending_ = false;
};

}  // namespace repro::core

#endif  // PEEGA_CORE_PEEGA_ENGINE_H_
