#include "core/peega_batch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "attack/common.h"
#include "autograd/tape.h"
#include "core/peega_engine.h"
#include "linalg/ops.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace repro::core {

using attack::AccessControl;
using attack::AttackOptions;
using attack::AttackResult;
using autograd::Tape;
using autograd::Var;
using linalg::Matrix;

PeegaBatchAttack::PeegaBatchAttack() : options_(Options()) {}
PeegaBatchAttack::PeegaBatchAttack(const Options& options)
    : options_(options) {}

namespace {

struct Candidate {
  float score;
  bool is_feature;
  int a;  // node u / node
  int b;  // node v / feature dim
};

// Rows per chunk of the parallel candidate scans. Per-chunk results are
// concatenated in ascending chunk order, so the candidate list — and
// therefore the RanksBefore ranking over it and the committed batch —
// is identical to the serial scan at any thread count.
constexpr int64_t kScanRowGrain = 32;

float GumbelNoise(float scale, linalg::Rng* rng) {
  if (scale <= 0.0f) return 0.0f;
  const double u = std::max(1e-12, rng->Uniform(0.0, 1.0));
  return static_cast<float>(-scale * std::log(-std::log(u)));
}

// Strict total order for ranking candidates: score descending, ties
// broken edge-before-feature then lowest (a, b). std::partial_sort is
// unstable, so without an explicit tie rule the committed batch could
// depend on the partition of the scan; a total order makes the sharded
// per-chunk top-k below exact and keeps the engine and tape paths
// committing identical batches at any thread count.
bool RanksBefore(const Candidate& lhs, const Candidate& rhs) {
  if (lhs.score != rhs.score) return lhs.score > rhs.score;
  if (lhs.is_feature != rhs.is_feature) return !lhs.is_feature;
  if (lhs.a != rhs.a) return lhs.a < rhs.a;
  return lhs.b < rhs.b;
}

// Shrinks `out` to its best `keep` candidates under RanksBefore.
void PruneToTop(std::vector<Candidate>* out, int keep) {
  if (static_cast<int>(out->size()) <= keep) return;
  std::partial_sort(out->begin(), out->begin() + keep, out->end(),
                    RanksBefore);
  out->resize(static_cast<size_t>(keep));
}

// Sharded candidate scan shared by the engine and tape batch paths:
// row-chunked with static kScanRowGrain chunks, per-chunk buffers
// concatenated in ascending chunk order (= the serial scan order). When
// `keep` > 0 each shard prunes to its best `keep` candidates under
// RanksBefore after every scanned row, so scan memory is
// O(keep + num_cols) per shard instead of the full O(N²) candidate
// list — and because RanksBefore is a strict total order, the global
// top-`keep` of the merged prunings equals the top-`keep` of the full
// list exactly. `keep` <= 0 collects everything: Gumbel runs draw one
// noise value per candidate in list order, so every candidate must
// survive to the draw for seeded reproducibility.
template <typename EdgeScoreFn, typename FeatureScoreFn>
std::vector<Candidate> CollectCandidates(
    int num_nodes, int num_features, const AccessControl& access,
    const attack::FlipSet& edge_done, const attack::FlipSet& feature_done,
    bool attack_topology, bool attack_features, float beta, int keep,
    const EdgeScoreFn& edge_score, const FeatureScoreFn& feature_score) {
  std::vector<Candidate> candidates;
  if (attack_topology) {
    const int64_t chunks = parallel::NumChunks(num_nodes, kScanRowGrain);
    std::vector<std::vector<Candidate>> per_chunk(
        static_cast<size_t>(chunks));
    parallel::ParallelForChunked(
        0, num_nodes, kScanRowGrain,
        [&](int64_t u0, int64_t u1, int64_t chunk) {
          auto& out = per_chunk[static_cast<size_t>(chunk)];
          for (int u = static_cast<int>(u0); u < static_cast<int>(u1); ++u) {
            for (int v = u + 1; v < num_nodes; ++v) {
              if (edge_done.Contains(u, v) || !access.EdgeAllowed(u, v)) {
                continue;
              }
              out.push_back({edge_score(u, v), false, u, v});
            }
            if (keep > 0) PruneToTop(&out, keep);
          }
        });
    for (const auto& chunk : per_chunk) {
      candidates.insert(candidates.end(), chunk.begin(), chunk.end());
    }
  }
  if (attack_features && beta > 0.0f) {
    const int64_t chunks = parallel::NumChunks(num_nodes, kScanRowGrain);
    std::vector<std::vector<Candidate>> per_chunk(
        static_cast<size_t>(chunks));
    parallel::ParallelForChunked(
        0, num_nodes, kScanRowGrain,
        [&](int64_t v0, int64_t v1, int64_t chunk) {
          auto& out = per_chunk[static_cast<size_t>(chunk)];
          for (int v = static_cast<int>(v0); v < static_cast<int>(v1); ++v) {
            if (!access.FeatureAllowed(v)) continue;
            for (int j = 0; j < num_features; ++j) {
              if (feature_done.Contains(v, j)) continue;
              out.push_back({feature_score(v, j), true, v, j});
            }
            if (keep > 0) PruneToTop(&out, keep);
          }
        });
    for (const auto& chunk : per_chunk) {
      candidates.insert(candidates.end(), chunk.begin(), chunk.end());
    }
  }
  return candidates;
}

// The batched loop on the incremental engine: identical candidate
// collection order, Gumbel draw order, ranking, and commit rules as the
// tape path below, with scores from cached closed-form gradients. The
// batch objective always sums over ALL nodes (SumRowPNorm), so the
// engine runs untargeted regardless of peega.target_nodes — exactly
// like the tape path, which never reads it either.
AttackResult BatchWithEngine(const PeegaBatchAttack::Options& options,
                             const graph::Graph& g,
                             const AttackOptions& attack_options,
                             linalg::Rng* rng) {
  const obs::TraceSpan attack_span("peega_batch.attack");
  const obs::StopWatch watch;
  const int budget =
      attack::ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);
  const auto& peega = options.peega;
  const bool attack_topology =
      peega.mode != PeegaAttack::Mode::kFeaturesOnly;
  const bool attack_features =
      peega.mode != PeegaAttack::Mode::kTopologyOnly;
  const float beta = static_cast<float>(attack_options.feature_cost);
  const int num_features = g.features.cols();

  PeegaEngine::Config config;
  config.layers = peega.layers;
  config.norm_p = peega.norm_p;
  config.lambda = peega.lambda;
  config.attack_topology = attack_topology;
  config.attack_features = attack_features;
  PeegaEngine engine(g, config);

  attack::FlipSet edge_done(g.num_nodes);
  attack::FlipSet feature_done(num_features);
  AttackResult result;
  double spent = 0.0;

  static obs::Counter* const iterations =
      obs::GetCounter("peega_batch.iterations");
  static obs::Counter* const collected =
      obs::GetCounter("peega_batch.candidates");

  while (spent + std::min<double>(1.0, beta) <= budget + 1e-9) {
    result.status = attack_options.deadline.Check(
        "PEEGA-Batch iteration " + std::to_string(result.flips.size()));
    if (!result.status.ok()) break;  // best-so-far: whole batches so far
    const obs::TraceSpan iteration_span("peega_batch.iteration");
    iterations->Add(1);
    {
      const obs::TraceSpan score_span("peega_batch.score");
      result.status = engine.RefreshScores();
    }
    if (!result.status.ok()) {
      result.status = result.status.WithContext("PEEGA-Batch engine refresh");
      break;
    }

    std::vector<Candidate> candidates;
    {
      const obs::TraceSpan collect_span("peega_batch.collect");
      const int keep =
          options.gumbel_scale > 0.0f ? 0 : options.batch_size;
      candidates = CollectCandidates(
          g.num_nodes, num_features, access, edge_done, feature_done,
          attack_topology, attack_features, beta, keep,
          [&](int u, int v) { return engine.EdgeScore(u, v); },
          [&](int v, int j) { return engine.FeatureScore(v, j) / beta; });
    }  // collect_span
    collected->Add(candidates.size());
    const obs::TraceSpan commit_span("peega_batch.commit");
    if (options.gumbel_scale > 0.0f) {
      for (Candidate& c : candidates) {
        c.score += GumbelNoise(options.gumbel_scale, rng);
      }
    }
    if (candidates.empty()) break;
    const int take = std::min<int>(options.batch_size,
                                   static_cast<int>(candidates.size()));
    std::partial_sort(candidates.begin(), candidates.begin() + take,
                      candidates.end(), RanksBefore);
    bool committed = false;
    for (int i = 0; i < take; ++i) {
      const Candidate& c = candidates[i];
      const double cost = c.is_feature ? beta : 1.0;
      if (spent + cost > budget + 1e-9) continue;
      if (c.is_feature) {
        engine.FlipFeature(c.a, c.b);
        feature_done.Insert(c.a, c.b);
        ++result.feature_modifications;
        result.flips.push_back({true, c.a, c.b});
      } else {
        engine.FlipEdge(c.a, c.b);
        edge_done.InsertSymmetric(c.a, c.b);
        ++result.edge_modifications;
        result.flips.push_back({false, c.a, c.b});
      }
      spent += cost;
      committed = true;
    }
    if (!committed) break;
  }

  const status::Status final_refresh = engine.RefreshScores();
  if (final_refresh.ok()) {
    result.final_objective = engine.Objective();
  } else if (result.status.ok()) {
    result.status = final_refresh.WithContext("PEEGA-Batch final refresh");
  }
  result.poisoned =
      g.WithAdjacency(engine.PoisonedAdjacency()).WithFeatures(engine.features());
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace

AttackResult PeegaBatchAttack::Attack(const graph::Graph& g,
                                      const AttackOptions& attack_options,
                                      linalg::Rng* rng) {
  if (options_.peega.engine == PeegaAttack::Engine::kIncremental) {
    return BatchWithEngine(options_, g, attack_options, rng);
  }
  const obs::TraceSpan attack_span("peega_batch.attack");
  const obs::StopWatch watch;
  const int budget =
      attack::ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);
  const auto& peega = options_.peega;
  const bool attack_topology =
      peega.mode != PeegaAttack::Mode::kFeaturesOnly;
  const bool attack_features =
      peega.mode != PeegaAttack::Mode::kTopologyOnly;
  const float beta = static_cast<float>(attack_options.feature_cost);

  const Matrix reference = PeegaAttack::SurrogateRepresentation(
      g.adjacency, g.features, peega.layers);
  // Directed neighbor pairs of the clean topology (Eq. 6).
  std::vector<std::pair<int, int>> neighbor_pairs;
  {
    const auto& row_ptr = g.adjacency.row_ptr();
    const auto& col_idx = g.adjacency.col_idx();
    for (int v = 0; v < g.num_nodes; ++v) {
      for (int64_t k = row_ptr[v]; k < row_ptr[v + 1]; ++k) {
        neighbor_pairs.emplace_back(v, col_idx[k]);
      }
    }
  }

  Matrix dense = g.adjacency.ToDense();
  Matrix features = g.features;
  attack::FlipSet edge_done(g.num_nodes);
  attack::FlipSet feature_done(g.features.cols());
  AttackResult result;
  double spent = 0.0;

  static obs::Counter* const iterations =
      obs::GetCounter("peega_batch.iterations");
  static obs::Counter* const collected =
      obs::GetCounter("peega_batch.candidates");

  while (spent + std::min<double>(1.0, beta) <= budget + 1e-9) {
    result.status = attack_options.deadline.Check(
        "PEEGA-Batch iteration " + std::to_string(result.flips.size()));
    if (!result.status.ok()) break;  // best-so-far: whole batches so far
    const obs::TraceSpan iteration_span("peega_batch.iteration");
    iterations->Add(1);
    Tape tape;
    Var a = tape.Input(dense, attack_topology);
    Var x = tape.Input(features, attack_features);
    {
      const obs::TraceSpan score_span("peega_batch.score");
      Var a_n = tape.GcnNormalizeDense(a);
      Var m_hat = x;
      for (int l = 0; l < peega.layers; ++l) m_hat = tape.MatMul(a_n, m_hat);
      Var obj = tape.SumRowPNorm(m_hat, reference, peega.norm_p);
      if (peega.lambda != 0.0f) {
        obj = tape.Add(obj, tape.Scale(tape.SumEdgePNorm(m_hat, reference,
                                                         neighbor_pairs,
                                                         peega.norm_p),
                                       peega.lambda));
      }
      if (!std::isfinite(static_cast<double>(obj.value()(0, 0)))) {
        result.status = status::NumericFault(
            "non-finite PEEGA-Batch objective on the tape");
        break;  // best-so-far: last committed batch stands
      }
      tape.Backward(obj);
    }

    // Sharded candidate scan (see CollectCandidates), rank, commit
    // top-k — identical collection order and ranking as the engine path.
    std::vector<Candidate> candidates;
    {
      const obs::TraceSpan collect_span("peega_batch.collect");
      const Matrix& a_grad = a.grad();
      const Matrix& x_grad = x.grad();
      const int keep =
          options_.gumbel_scale > 0.0f ? 0 : options_.batch_size;
      candidates = CollectCandidates(
          g.num_nodes, g.features.cols(), access, edge_done, feature_done,
          attack_topology, attack_features, beta, keep,
          [&](int u, int v) {
            const float direction = 1.0f - 2.0f * dense(u, v);
            return direction * (a_grad(u, v) + a_grad(v, u));
          },
          [&](int v, int j) {
            const float direction = 1.0f - 2.0f * features(v, j);
            return direction * x_grad(v, j) / beta;
          });
    }  // collect_span
    collected->Add(candidates.size());
    const obs::TraceSpan commit_span("peega_batch.commit");
    // Gumbel noise draws stay on the calling thread, in candidate-list
    // order — the same sequence of RNG draws as a serial scan, so seeded
    // runs reproduce at any thread count.
    if (options_.gumbel_scale > 0.0f) {
      for (Candidate& c : candidates) {
        c.score += GumbelNoise(options_.gumbel_scale, rng);
      }
    }
    if (candidates.empty()) break;
    const int take = std::min<int>(options_.batch_size,
                                   static_cast<int>(candidates.size()));
    std::partial_sort(candidates.begin(), candidates.begin() + take,
                      candidates.end(), RanksBefore);
    bool committed = false;
    for (int i = 0; i < take; ++i) {
      const Candidate& c = candidates[i];
      const double cost = c.is_feature ? beta : 1.0;
      if (spent + cost > budget + 1e-9) continue;
      if (c.is_feature) {
        attack::FlipFeature(&features, c.a, c.b);
        feature_done.Insert(c.a, c.b);
        ++result.feature_modifications;
        result.flips.push_back({true, c.a, c.b});
      } else {
        attack::FlipEdge(&dense, c.a, c.b);
        edge_done.InsertSymmetric(c.a, c.b);
        ++result.edge_modifications;
        result.flips.push_back({false, c.a, c.b});
      }
      spent += cost;
      committed = true;
    }
    if (!committed) break;
  }

  // The batch objective ignores target_nodes (SumRowPNorm over all
  // rows), so evaluate the final value untargeted too.
  PeegaAttack::Options eval_options = peega;
  eval_options.target_nodes.clear();
  result.final_objective =
      PeegaAttack(eval_options).Objective(g, dense, features);
  if (!std::isfinite(result.final_objective) && result.status.ok()) {
    result.status =
        status::NumericFault("non-finite PEEGA-Batch final objective");
  }
  // Sparse commit: toggle the recorded edge flips on the clean CSR
  // instead of rescanning the dense tape matrix; bitwise-identical to
  // DenseToAdjacency(dense) (tests/scale_test.cc).
  std::vector<std::pair<int, int>> edge_flip_pairs;
  edge_flip_pairs.reserve(result.flips.size());
  for (const attack::Flip& flip : result.flips) {
    if (!flip.is_feature) edge_flip_pairs.emplace_back(flip.a, flip.b);
  }
  result.poisoned =
      g.WithAdjacency(graph::WithFlips(g.adjacency, edge_flip_pairs))
          .WithFeatures(features);
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::core
