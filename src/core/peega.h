#ifndef PEEGA_CORE_PEEGA_H_
#define PEEGA_CORE_PEEGA_H_

#include "attack/attacker.h"
#include "linalg/matrix.h"

namespace repro::core {

/// PEEGA — the paper's Practical, Effective and Efficient black-box GNN
/// Attacker (Sec. III).
///
/// PEEGA reads ONLY the graph topology A and node features X (no labels,
/// no model parameters, no model predictions). It maximizes the
/// single-level objective of Def. 3:
///
///   max  sum_v || (Â_n^l X̂)[v] - (A_n^l X)[v] ||_p                (self view)
///      + lambda * sum_v sum_{u in N_v} || (Â_n^l X̂)[v] - (A_n^l X)[u] ||_p
///                                                              (global view)
///   s.t. ||Â - A||_0 + beta ||X̂ - X||_0 <= delta
///
/// where A_n^l X is the model-agnostic surrogate representation (l = 2 by
/// default, Eq. 7) and N_v are the 1-hop neighbors in the ORIGINAL
/// topology. Optimization is the greedy gradient algorithm of Alg. 1:
/// each step scores all candidate flips by S = grad ⊙ (-2Â + 1)
/// (gradients through the differentiable dense GCN normalization) and
/// commits the best edge or feature flip.
///
/// Threading: the per-step O(n²) candidate scans and all underlying
/// kernels run on the `src/parallel` pool with deterministic static
/// chunking and a lowest-index tie-break, so the full greedy flip
/// sequence — and hence the poisoned graph — is bitwise-identical at
/// any thread count (asserted in tests/parallel_test.cc).
class PeegaAttack : public attack::Attacker {
 public:
  /// Which attack surfaces are enabled (Fig. 5a ablation).
  enum class Mode {
    kTopologyAndFeatures,  // TM+FP (default)
    kTopologyOnly,         // TM
    kFeaturesOnly,         // FP
  };

  /// Objective/gradient evaluation backend. Both produce the SAME flip
  /// sequence (differentially tested in tests/engine_equiv_test.cc):
  ///   kIncremental — cached closed-form gradients with sparse delta
  ///     updates after each committed flip (core/peega_engine.h); the
  ///     default, and the one Tab. VII timings use.
  ///   kTape — re-derives every gradient through the autograd tape each
  ///     iteration; O(N²F) per flip. Kept as the reference oracle.
  enum class Engine {
    kIncremental,
    kTape,
  };

  struct Options {
    /// Trade-off between self view and global view (Fig. 8a).
    float lambda = 0.01f;
    /// Norm p of the representation distance, in {1, 2, 3} (Fig. 8b).
    int norm_p = 2;
    /// Propagation depth l of the surrogate A_n^l X (Fig. 7b).
    int layers = 2;
    Mode mode = Mode::kTopologyAndFeatures;
    Engine engine = Engine::kIncremental;
    /// Targeted-attack extension (the "Goal" axis of Tab. I): when
    /// non-empty, the objective sums only over these victim nodes (and
    /// their neighbor pairs), concentrating the whole budget on
    /// misclassifying them. Empty = the paper's untargeted attack.
    std::vector<int> target_nodes;
    /// Campaign checkpointing (core/peega_checkpoint.h): when non-empty,
    /// the greedy loop writes its state here every `checkpoint_every`
    /// committed flips, and — when the file already exists — resumes
    /// from it by replaying the recorded flips. The PR-4 determinism
    /// contract makes the resumed run bitwise-identical to an
    /// uninterrupted one (tests/checkpoint_test.cc). A stale or corrupt
    /// checkpoint is rejected: the attack returns immediately with
    /// kInvalidInput and the clean graph.
    std::string checkpoint_path;
    int checkpoint_every = 16;
  };

  PeegaAttack();
  explicit PeegaAttack(const Options& options);

  std::string name() const override { return "PEEGA"; }
  attack::AttackResult Attack(const graph::Graph& g,
                              const attack::AttackOptions& options,
                              linalg::Rng* rng) override;

  /// The surrogate representation A_n^l X of Eq. 7 (exposed for tests
  /// and for the defender's analysis tooling).
  static linalg::Matrix SurrogateRepresentation(
      const linalg::SparseMatrix& adjacency, const linalg::Matrix& x,
      int layers);

  /// Value of the Def. 3 objective for a candidate poisoned graph;
  /// exposed for tests (monotonicity of the greedy loop) and ablations.
  double Objective(const graph::Graph& clean,
                   const linalg::Matrix& poisoned_dense_adjacency,
                   const linalg::Matrix& poisoned_features) const;

 private:
  Options options_;
};

}  // namespace repro::core

#endif  // PEEGA_CORE_PEEGA_H_
