#include "core/peega.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "attack/common.h"
#include "autograd/tape.h"
#include "core/peega_checkpoint.h"
#include "core/peega_engine.h"
#include "graph/graph.h"
#include "debug/check.h"
#include "debug/failpoints.h"
#include "linalg/ops.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace repro::core {

using attack::AccessControl;
using attack::AttackOptions;
using attack::AttackResult;
using attack::BestEdgeFlip;
using attack::BestFeatureFlip;
using attack::EdgeCandidate;
using attack::FeatureCandidate;
using autograd::Tape;
using autograd::Var;
using linalg::Matrix;
using linalg::SparseMatrix;

PeegaAttack::PeegaAttack() : options_(Options()) {}
PeegaAttack::PeegaAttack(const Options& options) : options_(options) {}

Matrix PeegaAttack::SurrogateRepresentation(const SparseMatrix& adjacency,
                                            const Matrix& x, int layers) {
  PEEGA_CHECK_GE(layers, 1);
  const SparseMatrix a_n = graph::GcnNormalize(adjacency);
  Matrix h = x;
  for (int l = 0; l < layers; ++l) h = linalg::SpMM(a_n, h);
  return h;
}

namespace {

// Rows of the self-view sum (Eq. 5): all nodes for untargeted attacks,
// only the victims for targeted attacks.
std::vector<std::pair<int, int>> SelfPairs(
    const graph::Graph& g, const std::vector<int>& targets) {
  std::vector<std::pair<int, int>> pairs;
  if (targets.empty()) {
    pairs.reserve(g.num_nodes);
    for (int v = 0; v < g.num_nodes; ++v) pairs.emplace_back(v, v);
  } else {
    for (int v : targets) pairs.emplace_back(v, v);
  }
  return pairs;
}

// Directed neighbor pairs (v, u) for every edge of the clean topology;
// these index the global-view sum of Eq. 6. Targeted attacks keep only
// pairs whose source is a victim.
std::vector<std::pair<int, int>> NeighborPairs(
    const graph::Graph& g, const std::vector<int>& targets) {
  std::vector<char> is_target(g.num_nodes, targets.empty() ? 1 : 0);
  for (int v : targets) is_target[v] = 1;
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(g.adjacency.nnz());
  const auto& row_ptr = g.adjacency.row_ptr();
  const auto& col_idx = g.adjacency.col_idx();
  for (int v = 0; v < g.num_nodes; ++v) {
    if (!is_target[v]) continue;
    for (int64_t k = row_ptr[v]; k < row_ptr[v + 1]; ++k) {
      pairs.emplace_back(v, col_idx[k]);
    }
  }
  return pairs;
}

// Forward pass of the PEEGA objective on a tape. `a` and `x` are the
// (dense) poisoned adjacency/features Vars; `reference` = A_n^l X of the
// clean graph.
Var ObjectiveOnTape(Tape* tape, Var a, Var x, const Matrix& reference,
                    const std::vector<std::pair<int, int>>& self_pairs,
                    const std::vector<std::pair<int, int>>& neighbor_pairs,
                    int layers, int norm_p, float lambda) {
  Var a_n = tape->GcnNormalizeDense(a);
  Var m_hat = x;
  for (int l = 0; l < layers; ++l) m_hat = tape->MatMul(a_n, m_hat);
  Var self_view = tape->SumEdgePNorm(m_hat, reference, self_pairs, norm_p);
  if (lambda == 0.0f) return self_view;
  Var global_view =
      tape->SumEdgePNorm(m_hat, reference, neighbor_pairs, norm_p);
  return tape->Add(self_view, tape->Scale(global_view, lambda));
}

std::string RngStateString(linalg::Rng* rng) {
  std::ostringstream out;
  out << rng->engine();
  return out.str();
}

// Campaign checkpointing shared by the engine and tape paths: resume
// validation/replay bookkeeping and the periodic save. The greedy loop
// is deterministic, so replaying the recorded flips onto the clean
// graph reconstructs the exact pre-interrupt state and the continuation
// is bitwise-identical to an uninterrupted run.
class CheckpointContext {
 public:
  CheckpointContext(const PeegaAttack::Options& options,
                    const graph::Graph& g,
                    const AttackOptions& attack_options)
      : path_(options.checkpoint_path),
        every_(options.checkpoint_every < 1 ? 1 : options.checkpoint_every) {
    header_.num_nodes = g.num_nodes;
    header_.feature_dim = g.features.cols();
    header_.layers = options.layers;
    header_.norm_p = options.norm_p;
    header_.lambda = options.lambda;
    header_.mode = static_cast<int>(options.mode);
    header_.engine = static_cast<int>(options.engine);
    header_.perturbation_rate = attack_options.perturbation_rate;
    header_.feature_cost = attack_options.feature_cost;
  }

  bool enabled() const { return !path_.empty(); }

  // Loads the on-disk checkpoint when one exists and fills `*replay`
  // with its flips (left empty for a fresh start). A checkpoint written
  // for a different graph/option set is rejected as stale.
  status::Status Resume(std::vector<attack::Flip>* replay,
                        linalg::Rng* rng) const {
    if (!enabled()) return status::Status::Ok();
    if (!std::ifstream(path_).good()) return status::Status::Ok();
    status::StatusOr<PeegaCheckpoint> loaded = LoadPeegaCheckpoint(path_);
    if (!loaded.ok()) return loaded.status().WithContext("PEEGA resume");
    const PeegaCheckpoint& ck = *loaded;
    const auto stale = [](const char* field) {
      return status::InvalidInput(
          std::string("stale checkpoint: ") + field +
          " differs from the current campaign");
    };
    if (ck.num_nodes != header_.num_nodes ||
        ck.feature_dim != header_.feature_dim) {
      return stale("graph dimensions");
    }
    if (ck.layers != header_.layers || ck.norm_p != header_.norm_p ||
        ck.lambda != header_.lambda) {
      return stale("objective options");
    }
    if (ck.mode != header_.mode || ck.engine != header_.engine) {
      return stale("attack mode/engine");
    }
    if (ck.perturbation_rate != header_.perturbation_rate ||
        ck.feature_cost != header_.feature_cost) {
      return stale("budget options");
    }
    *replay = ck.flips;
    if (!ck.rng_state.empty() && rng != nullptr) {
      std::istringstream in(ck.rng_state);
      in >> rng->engine();
      if (in.fail()) {
        return status::InvalidInput(
            "corrupt checkpoint: unparsable rng_state");
      }
    }
    return status::Status::Ok();
  }

  // Saves after every `checkpoint_every`-th committed flip.
  status::Status MaybeSave(const std::vector<attack::Flip>& flips,
                           double spent, linalg::Rng* rng) const {
    if (!enabled() || flips.size() % static_cast<size_t>(every_) != 0) {
      return status::Status::Ok();
    }
    PeegaCheckpoint ck = header_;
    ck.iteration = static_cast<int>(flips.size());
    ck.spent = spent;
    if (rng != nullptr) ck.rng_state = RngStateString(rng);
    ck.flips = flips;
    return SavePeegaCheckpoint(ck, path_).WithContext(
        "PEEGA checkpoint save");
  }

 private:
  std::string path_;
  int every_;
  PeegaCheckpoint header_;
};

// Deadline / cancellation / injected-interrupt poll shared by both
// greedy loops; returns the status that should stop the loop, OK to
// keep going.
status::Status CheckInterrupt(const status::Deadline& deadline,
                              size_t committed_flips) {
  status::Status status = deadline.Check(
      "PEEGA greedy iteration " + std::to_string(committed_flips));
  if (status.ok() && PEEGA_FAILPOINT("peega.interrupt")) {
    status = status::Cancelled("injected failpoint peega.interrupt");
  }
  return status;
}

// Alg. 1 on the incremental engine: same loop structure, budget
// accounting, freeze sets, and tie-breaks as the tape path below,
// but scores come from PeegaEngine's cached closed-form gradients and
// flips are committed as sparse delta updates. The two paths produce
// the same flip sequence (tests/engine_equiv_test.cc).
AttackResult AttackWithEngine(const PeegaAttack::Options& options,
                              const graph::Graph& g,
                              const AttackOptions& attack_options,
                              linalg::Rng* rng) {
  const obs::TraceSpan attack_span("peega.attack");
  const obs::StopWatch watch;
  const int budget = attack::ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);
  const bool attack_topology = options.mode != PeegaAttack::Mode::kFeaturesOnly;
  const bool attack_features = options.mode != PeegaAttack::Mode::kTopologyOnly;
  const float beta = static_cast<float>(attack_options.feature_cost);

  PeegaEngine::Config config;
  config.layers = options.layers;
  config.norm_p = options.norm_p;
  config.lambda = options.lambda;
  config.attack_topology = attack_topology;
  config.attack_features = attack_features;
  config.target_nodes = options.target_nodes;
  PeegaEngine engine(g, config);

  attack::FlipSet edge_done(g.num_nodes);
  attack::FlipSet feature_done(g.features.cols());
  AttackResult result;
  double spent = 0.0;

  const CheckpointContext checkpoint(options, g, attack_options);
  std::vector<attack::Flip> replay;
  result.status = checkpoint.Resume(&replay, rng);
  if (!result.status.ok()) {
    // A rejected checkpoint must be loud, not silently restarted: the
    // caller decides whether to delete the stale file and rerun.
    result.poisoned = g;
    result.elapsed_seconds = watch.Seconds();
    return result;
  }
  for (const attack::Flip& flip : replay) {
    if (flip.is_feature) {
      engine.FlipFeature(flip.a, flip.b);
      feature_done.Insert(flip.a, flip.b);
      ++result.feature_modifications;
      spent += beta;
    } else {
      engine.FlipEdge(flip.a, flip.b);
      edge_done.InsertSymmetric(flip.a, flip.b);
      ++result.edge_modifications;
      spent += 1.0;
    }
    result.flips.push_back(flip);
  }

  static obs::Counter* const iterations = obs::GetCounter("peega.iterations");
  static obs::Counter* const edge_flips = obs::GetCounter("peega.edge_flips");
  static obs::Counter* const feature_flips =
      obs::GetCounter("peega.feature_flips");

  while (true) {
    const bool can_edge = attack_topology && spent + 1.0 <= budget + 1e-9;
    const bool can_feature =
        attack_features && beta > 0.0f && spent + beta <= budget + 1e-9;
    if (!can_edge && !can_feature) break;
    result.status = CheckInterrupt(attack_options.deadline,
                                   result.flips.size());
    if (!result.status.ok()) break;  // best-so-far: flips are a prefix

    const obs::TraceSpan iteration_span("peega.iteration");
    iterations->Add(1);
    {
      const obs::TraceSpan score_span("peega.score");
      result.status = engine.RefreshScores();
    }
    if (!result.status.ok()) {
      result.status = result.status.WithContext("PEEGA engine refresh");
      break;
    }

    EdgeCandidate edge;
    FeatureCandidate feature;
    {
      const obs::TraceSpan scan_span("peega.scan");
      if (can_edge) {
        edge = attack::BestEdgeFlipScored(
            g.num_nodes, access, &edge_done,
            [&](int u, int v) { return engine.EdgeScore(u, v); });
      }
      if (can_feature) {
        feature = attack::BestFeatureFlipScored(
            g.num_nodes, g.features.cols(), access, &feature_done,
            [&](int v, int j) { return engine.FeatureScore(v, j); });
        // Normalized feature score S_f / beta (Sec. V-D1).
        feature.score /= beta;
      }
    }
    if (edge.u < 0 && feature.node < 0) break;

    const obs::TraceSpan flip_span("peega.flip");
    const bool pick_feature =
        feature.node >= 0 && (edge.u < 0 || edge.score < feature.score);
    if (pick_feature) {
      engine.FlipFeature(feature.node, feature.dim);
      feature_done.Insert(feature.node, feature.dim);
      ++result.feature_modifications;
      feature_flips->Add(1);
      result.flips.push_back({true, feature.node, feature.dim});
      spent += beta;
    } else {
      engine.FlipEdge(edge.u, edge.v);
      edge_done.InsertSymmetric(edge.u, edge.v);
      ++result.edge_modifications;
      edge_flips->Add(1);
      result.flips.push_back({false, edge.u, edge.v});
      spent += 1.0;
    }
    const status::Status saved =
        checkpoint.MaybeSave(result.flips, spent, rng);
    if (!saved.ok()) {
      result.status = saved;
      break;
    }
  }

  // Bring the cached objective terms up to date with the final flip and
  // emit the sparse poisoned adjacency straight from the engine's
  // neighbor lists — no dense O(N²) rescan. After a numeric fault the
  // refresh stays latched; the committed graph state is still valid but
  // the objective is not, so it is left at 0 for the degraded result.
  const status::Status final_refresh = engine.RefreshScores();
  if (final_refresh.ok()) {
    result.final_objective = engine.Objective();
  } else if (result.status.ok()) {
    result.status = final_refresh.WithContext("PEEGA final refresh");
  }
  result.poisoned =
      g.WithAdjacency(engine.PoisonedAdjacency()).WithFeatures(engine.features());
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace

double PeegaAttack::Objective(const graph::Graph& clean,
                              const Matrix& poisoned_dense_adjacency,
                              const Matrix& poisoned_features) const {
  const Matrix reference = SurrogateRepresentation(
      clean.adjacency, clean.features, options_.layers);
  const auto self_pairs = SelfPairs(clean, options_.target_nodes);
  const auto pairs = NeighborPairs(clean, options_.target_nodes);
  Tape tape;
  Var a = tape.Input(poisoned_dense_adjacency, false);
  Var x = tape.Input(poisoned_features, false);
  Var obj = ObjectiveOnTape(&tape, a, x, reference, self_pairs, pairs,
                            options_.layers, options_.norm_p,
                            options_.lambda);
  return obj.value()(0, 0);
}

AttackResult PeegaAttack::Attack(const graph::Graph& g,
                                 const AttackOptions& attack_options,
                                 linalg::Rng* rng) {
  // PEEGA is deterministic: greedy over exact gradient scores, and the
  // parallel scans below (BestEdgeFlip/BestFeatureFlip plus the tape's
  // row-parallel kernels) are bitwise-reproducible at any thread count.
  // `rng` is only read for checkpointing (its stream state rides along
  // so a resumed campaign continues the exact random sequence).
  if (options_.engine == Engine::kIncremental) {
    return AttackWithEngine(options_, g, attack_options, rng);
  }
  const obs::TraceSpan attack_span("peega.attack");
  const obs::StopWatch watch;
  const int budget = attack::ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);

  // Black-box inputs only: adjacency and features. Labels are never read.
  const Matrix reference = SurrogateRepresentation(
      g.adjacency, g.features, options_.layers);
  const auto self_pairs = SelfPairs(g, options_.target_nodes);
  const auto neighbor_pairs = NeighborPairs(g, options_.target_nodes);

  const bool attack_topology = options_.mode != Mode::kFeaturesOnly;
  const bool attack_features = options_.mode != Mode::kTopologyOnly;
  const float beta = static_cast<float>(attack_options.feature_cost);

  Matrix dense = g.adjacency.ToDense();
  Matrix features = g.features;
  // Freeze once-flipped entries: without this the greedy loop oscillates
  // on one edge after the objective's local optimum is reached.
  attack::FlipSet edge_done(g.num_nodes);
  attack::FlipSet feature_done(g.features.cols());
  AttackResult result;
  double spent = 0.0;

  const CheckpointContext checkpoint(options_, g, attack_options);
  std::vector<attack::Flip> replay;
  result.status = checkpoint.Resume(&replay, rng);
  if (!result.status.ok()) {
    result.poisoned = g;
    result.elapsed_seconds = watch.Seconds();
    return result;
  }
  for (const attack::Flip& flip : replay) {
    if (flip.is_feature) {
      attack::FlipFeature(&features, flip.a, flip.b);
      feature_done.Insert(flip.a, flip.b);
      ++result.feature_modifications;
      spent += beta;
    } else {
      attack::FlipEdge(&dense, flip.a, flip.b);
      edge_done.InsertSymmetric(flip.a, flip.b);
      ++result.edge_modifications;
      spent += 1.0;
    }
    result.flips.push_back(flip);
  }

  // Alg. 1 phase instrumentation: score = objective forward+backward on
  // the tape, scan = greedy candidate search, flip = commit. These are
  // the rows of the paper's Tab. VII cost breakdown.
  static obs::Counter* const iterations = obs::GetCounter("peega.iterations");
  static obs::Counter* const edge_flips = obs::GetCounter("peega.edge_flips");
  static obs::Counter* const feature_flips =
      obs::GetCounter("peega.feature_flips");

  while (true) {
    const bool can_edge = attack_topology && spent + 1.0 <= budget + 1e-9;
    const bool can_feature =
        attack_features && beta > 0.0f && spent + beta <= budget + 1e-9;
    if (!can_edge && !can_feature) break;
    result.status = CheckInterrupt(attack_options.deadline,
                                   result.flips.size());
    if (!result.status.ok()) break;  // best-so-far: flips are a prefix

    const obs::TraceSpan iteration_span("peega.iteration");
    iterations->Add(1);
    Tape tape;
    Var a = tape.Input(dense, /*requires_grad=*/attack_topology);
    Var x = tape.Input(features, /*requires_grad=*/attack_features);
    {
      const obs::TraceSpan score_span("peega.score");
      Var obj =
          ObjectiveOnTape(&tape, a, x, reference, self_pairs, neighbor_pairs,
                          options_.layers, options_.norm_p, options_.lambda);
      tape.Backward(obj);
      // Mirror of the engine's latched-fault check: NaN gradients make
      // every scan comparison false and the loop would end silently OK.
      if (!std::isfinite(static_cast<double>(obj.value()(0, 0)))) {
        result.status = status::NumericFault(
            "non-finite PEEGA objective on the tape");
        break;
      }
    }

    EdgeCandidate edge;
    FeatureCandidate feature;
    {
      const obs::TraceSpan scan_span("peega.scan");
      if (can_edge) {
        edge = BestEdgeFlip(a.grad(), dense, access, &edge_done);
      }
      if (can_feature) {
        feature = BestFeatureFlip(x.grad(), features, access, &feature_done);
        // Normalized feature score S_f / beta (Sec. V-D1).
        feature.score /= beta;
      }
    }
    if (edge.u < 0 && feature.node < 0) break;

    // Alg. 1 lines 9-12: commit whichever candidate scores higher.
    const obs::TraceSpan flip_span("peega.flip");
    const bool pick_feature =
        feature.node >= 0 && (edge.u < 0 || edge.score < feature.score);
    if (pick_feature) {
      attack::FlipFeature(&features, feature.node, feature.dim);
      feature_done.Insert(feature.node, feature.dim);
      ++result.feature_modifications;
      feature_flips->Add(1);
      result.flips.push_back({true, feature.node, feature.dim});
      spent += beta;
    } else {
      attack::FlipEdge(&dense, edge.u, edge.v);
      edge_done.InsertSymmetric(edge.u, edge.v);
      ++result.edge_modifications;
      edge_flips->Add(1);
      result.flips.push_back({false, edge.u, edge.v});
      spent += 1.0;
    }
    const status::Status saved =
        checkpoint.MaybeSave(result.flips, spent, rng);
    if (!saved.ok()) {
      result.status = saved;
      break;
    }
  }

  result.final_objective = Objective(g, dense, features);
  // Commit sparsely: toggle the recorded edge flips on the clean CSR
  // rather than rescanning the N x N tape matrix. graph::WithFlips is
  // bitwise-identical to DenseToAdjacency(dense) here (tests/
  // scale_test.cc holds both paths to that equality).
  std::vector<std::pair<int, int>> edge_flip_pairs;
  edge_flip_pairs.reserve(result.flips.size());
  for (const attack::Flip& flip : result.flips) {
    if (!flip.is_feature) edge_flip_pairs.emplace_back(flip.a, flip.b);
  }
  result.poisoned =
      g.WithAdjacency(graph::WithFlips(g.adjacency, edge_flip_pairs))
          .WithFeatures(features);
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::core
