#include "attack/metattack.h"

#include "attack/common.h"
#include "autograd/tape.h"
#include "linalg/ops.h"
#include "nn/init.h"
#include "nn/trainer.h"
#include "obs/stopwatch.h"

namespace repro::attack {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;

AttackResult Metattack::Attack(const graph::Graph& g,
                               const AttackOptions& attack_options,
                               linalg::Rng* rng) {
  const obs::StopWatch watch;
  const int budget = ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);

  // Self-training: pseudo-labels for the outer (attack) loss.
  const std::vector<int> pseudo = nn::SelfTrainLabels(g, rng);
  Matrix pseudo_onehot(g.num_nodes, g.num_classes);
  for (int v = 0; v < g.num_nodes; ++v) {
    pseudo_onehot(v, pseudo[v]) = 1.0f;
  }
  const Matrix train_labels = g.OneHotLabels();
  const std::vector<float> train_mask = g.NodeMask(g.train_nodes);
  std::vector<float> unlabeled_mask(g.num_nodes, 1.0f);
  for (int v : g.train_nodes) unlabeled_mask[v] = 0.0f;
  // Row mask as a matrix for masking the inner gradient.
  Matrix train_mask_matrix(g.num_nodes, g.num_classes);
  for (int v : g.train_nodes) {
    for (int c = 0; c < g.num_classes; ++c) train_mask_matrix(v, c) = 1.0f;
  }
  const float inv_train =
      g.train_nodes.empty() ? 0.0f : 1.0f / g.train_nodes.size();

  // Fixed surrogate initialization: the meta-gradient is computed from
  // the same training trajectory every greedy step, which keeps the
  // greedy scores comparable across steps.
  linalg::Rng init_rng(rng->engine()());
  const Matrix w0 =
      nn::GlorotUniform(g.features.cols(), g.num_classes, &init_rng);

  Matrix dense = g.adjacency.ToDense();
  Matrix features = g.features;
  // Once-flipped entries are frozen so the greedy loop cannot oscillate
  // on a single edge once a local optimum is reached.
  FlipSet edge_done(g.num_nodes);
  FlipSet feature_done(g.features.cols());
  AttackResult result;
  double spent = 0.0;

  while (spent + 1e-9 < budget) {
    result.status = attack_options.deadline.Check(
        name() + " greedy step " +
        std::to_string(result.edge_modifications +
                      result.feature_modifications));
    if (!result.status.ok()) break;  // flips so far form the result
    Tape tape;
    Var a = tape.Input(dense, /*requires_grad=*/true);
    Var x = tape.Input(features,
                       /*requires_grad=*/options_.attack_features);
    Var a_n = tape.GcnNormalizeDense(a);
    // M = A_n (A_n X): two N x d products instead of an N^3 square.
    Var m = tape.MatMul(a_n, tape.MatMul(a_n, x));
    Var mt = tape.Transpose(m);
    // Unrolled inner training of the linear surrogate W.
    Var w = tape.Input(w0, /*requires_grad=*/false);
    for (int t = 0; t < options_.inner_steps; ++t) {
      Var probs = tape.RowSoftmax(tape.MatMul(m, w));
      Var masked_diff =
          tape.MulConst(tape.Sub(probs, tape.Input(train_labels, false)),
                        train_mask_matrix);
      Var gw = tape.Scale(tape.MatMul(mt, masked_diff), inv_train);
      w = tape.Sub(w, tape.Scale(gw, options_.inner_lr));
    }
    // Outer attack loss on unlabeled nodes vs. pseudo-labels. The greedy
    // step maximizes it, so flip scores use the raw (ascent) gradient.
    Var attack_loss = tape.SoftmaxCrossEntropy(
        tape.MatMul(m, w), pseudo_onehot, unlabeled_mask);
    tape.Backward(attack_loss);

    const EdgeCandidate edge =
        BestEdgeFlip(a.grad(), dense, access, &edge_done);
    FeatureCandidate feature;
    if (options_.attack_features && attack_options.feature_cost > 0.0 &&
        spent + attack_options.feature_cost <= budget) {
      feature = BestFeatureFlip(x.grad(), features, access, &feature_done);
      feature.score /= static_cast<float>(attack_options.feature_cost);
    }
    if (edge.u < 0 && feature.node < 0) break;
    if (feature.node >= 0 && feature.score > edge.score) {
      FlipFeature(&features, feature.node, feature.dim);
      feature_done.Insert(feature.node, feature.dim);
      ++result.feature_modifications;
      spent += attack_options.feature_cost;
    } else if (edge.u >= 0) {
      FlipEdge(&dense, edge.u, edge.v);
      edge_done.InsertSymmetric(edge.u, edge.v);
      ++result.edge_modifications;
      spent += 1.0;
    } else {
      break;
    }
  }

  result.poisoned =
      g.WithAdjacency(DenseToAdjacency(dense)).WithFeatures(features);
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::attack
