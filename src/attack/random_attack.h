#ifndef PEEGA_ATTACK_RANDOM_ATTACK_H_
#define PEEGA_ATTACK_RANDOM_ATTACK_H_

#include "attack/attacker.h"

namespace repro::attack {

/// Baseline that flips uniformly random (allowed) edges until the budget
/// is exhausted. Serves as the sanity floor every designed attacker must
/// beat.
class RandomAttack : public Attacker {
 public:
  std::string name() const override { return "Random"; }
  AttackResult Attack(const graph::Graph& g, const AttackOptions& options,
                      linalg::Rng* rng) override;
};

}  // namespace repro::attack

#endif  // PEEGA_ATTACK_RANDOM_ATTACK_H_
