#ifndef PEEGA_ATTACK_GF_ATTACK_H_
#define PEEGA_ATTACK_GF_ATTACK_H_

#include "attack/attacker.h"

namespace repro::attack {

/// GF-Attack (Chang et al., AAAI 2020) — black-box, extended to
/// untargeted attacks as in the paper's experiments (Sec. V-A2): the
/// spectral score of every candidate flip is computed and the top-budget
/// candidates are committed in one shot.
///
/// The score follows the restricted spectral framework: for the
/// normalized adjacency's top-`rank` eigenpairs (lambda_i, u_i), flipping
/// edge (p, q) perturbs each eigenvalue by
///   d lambda_i ≈ 2 w u_i[p] u_i[q]  (w = ±1/sqrt((d_p+1)(d_q+1)))
/// and the candidate's score is the change of the graph-filter energy
///   sum_i ((lambda_i + d lambda_i)^{2L} - lambda_i^{2L}) ||u_i^T X||^2
/// with L = `window` (the surrogate propagation depth). The top
/// candidates are re-scored with warm-started subspace iteration on the
/// actually-perturbed matrix — the expensive exact step mirroring the
/// per-candidate SVD of the original implementation.
class GfAttack : public Attacker {
 public:
  struct Options {
    int rank = 32;
    int window = 2;
    /// Candidate pool size as a multiple of the budget.
    int pool_factor = 30;
    /// Exact re-scoring: candidates refined per committed flip.
    int refine_factor = 3;
    int refine_iters = 3;
  };

  GfAttack();
  explicit GfAttack(const Options& options);

  std::string name() const override { return "GF-Attack"; }
  AttackResult Attack(const graph::Graph& g, const AttackOptions& options,
                      linalg::Rng* rng) override;

 private:
  Options options_;
};

inline GfAttack::GfAttack() : options_(Options()) {}
inline GfAttack::GfAttack(const Options& options) : options_(options) {}


}  // namespace repro::attack

#endif  // PEEGA_ATTACK_GF_ATTACK_H_
