#include "attack/gf_attack.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "attack/common.h"
#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "obs/stopwatch.h"

namespace repro::attack {

using linalg::EigenResult;
using linalg::Matrix;
using linalg::SparseMatrix;

namespace {

// Filter energy sum_i lambda_i^{2L} * feat_norm_i.
double FilterEnergy(const std::vector<float>& lambda,
                    const std::vector<double>& feat_norm, int window) {
  double energy = 0.0;
  for (size_t i = 0; i < lambda.size(); ++i) {
    energy += std::pow(static_cast<double>(lambda[i]), 2 * window) *
              feat_norm[i];
  }
  return energy;
}

}  // namespace

AttackResult GfAttack::Attack(const graph::Graph& g,
                              const AttackOptions& attack_options,
                              linalg::Rng* rng) {
  const obs::StopWatch watch;
  const int budget = ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);
  const int n = g.num_nodes;
  const int rank = std::min(options_.rank, n);

  // Spectral view of the clean normalized adjacency.
  const SparseMatrix a_n = graph::GcnNormalize(g.adjacency);
  EigenResult eig = linalg::TopKEigenSymmetric(a_n, rank, rng);
  // ||u_i^T X||^2 per eigenvector.
  const Matrix utx = linalg::MatMulTransA(eig.vectors, g.features);
  std::vector<double> feat_norm(rank, 0.0);
  for (int i = 0; i < rank; ++i) {
    const float* row = utx.row(i);
    double acc = 0.0;
    for (int j = 0; j < utx.cols(); ++j) {
      acc += static_cast<double>(row[j]) * row[j];
    }
    feat_norm[i] = acc;
  }
  const double clean_energy =
      FilterEnergy(eig.values, feat_norm, options_.window);

  std::vector<int> degree(n, 0);
  for (int v = 0; v < n; ++v) degree[v] = g.adjacency.RowNnz(v);

  // Candidate pool: random allowed pairs (deduplicated).
  const int pool_size =
      std::min<int64_t>(static_cast<int64_t>(options_.pool_factor) * budget,
                        static_cast<int64_t>(n) * (n - 1) / 2);
  std::set<std::pair<int, int>> pool;
  int guard = 0;
  while (static_cast<int>(pool.size()) < pool_size &&
         guard++ < pool_size * 40) {
    const int u = static_cast<int>(rng->UniformInt(0, n - 1));
    const int v = static_cast<int>(rng->UniformInt(0, n - 1));
    if (u == v || !access.EdgeAllowed(u, v)) continue;
    pool.insert({std::min(u, v), std::max(u, v)});
  }

  // First pass: perturbation-theory score for each candidate.
  struct Scored {
    double score;
    int u, v;
  };
  std::vector<Scored> scored;
  scored.reserve(pool.size());
  for (const auto& [u, v] : pool) {
    const bool exists = g.HasEdge(u, v);
    const double w =
        (exists ? -1.0 : 1.0) /
        std::sqrt(static_cast<double>(degree[u] + 1) * (degree[v] + 1));
    double energy = 0.0;
    for (int i = 0; i < rank; ++i) {
      const double dl = 2.0 * w * eig.vectors(u, i) * eig.vectors(v, i);
      energy += std::pow(eig.values[i] + dl, 2 * options_.window) *
                feat_norm[i];
    }
    scored.push_back({std::fabs(energy - clean_energy), u, v});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.score > b.score;
            });

  // Second pass: exact re-scoring of the strongest candidates by
  // recomputing the truncated spectrum of the perturbed matrix.
  const int refine_count = std::min<int>(
      static_cast<int>(scored.size()), options_.refine_factor * budget);
  Matrix dense = g.adjacency.ToDense();
  AttackResult result;
  for (int i = 0; i < refine_count; ++i) {
    result.status = attack_options.deadline.Check(
        name() + " refine candidate " + std::to_string(i));
    // Best-so-far: candidates refined so far keep their exact scores,
    // the rest fall back to the perturbation-theory estimate.
    if (!result.status.ok()) break;
    FlipEdge(&dense, scored[i].u, scored[i].v);
    const SparseMatrix a_pert =
        graph::GcnNormalize(DenseToAdjacency(dense));
    linalg::Rng refine_rng(12345);
    EigenResult pert = linalg::TopKEigenSymmetric(
        a_pert, rank, &refine_rng, options_.refine_iters);
    const Matrix utx_pert =
        linalg::MatMulTransA(pert.vectors, g.features);
    std::vector<double> fn(rank, 0.0);
    for (int r = 0; r < rank; ++r) {
      const float* row = utx_pert.row(r);
      double acc = 0.0;
      for (int j = 0; j < utx_pert.cols(); ++j) {
        acc += static_cast<double>(row[j]) * row[j];
      }
      fn[r] = acc;
    }
    scored[i].score = std::fabs(
        FilterEnergy(pert.values, fn, options_.window) - clean_energy);
    FlipEdge(&dense, scored[i].u, scored[i].v);  // undo
  }
  std::sort(scored.begin(), scored.begin() + refine_count,
            [](const Scored& a, const Scored& b) {
              return a.score > b.score;
            });

  for (int i = 0; i < std::min<int>(budget, scored.size()); ++i) {
    FlipEdge(&dense, scored[i].u, scored[i].v);
    ++result.edge_modifications;
  }
  result.poisoned = g.WithAdjacency(DenseToAdjacency(dense));
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::attack
