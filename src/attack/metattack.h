#ifndef PEEGA_ATTACK_METATTACK_H_
#define PEEGA_ATTACK_METATTACK_H_

#include "attack/attacker.h"

namespace repro::attack {

/// Metattack (Zügner & Günnemann, ICLR 2019), Meta-Self variant —
/// gray-box.
///
/// A linearized 2-layer GCN surrogate Z = softmax(A_n^2 X W) is trained
/// by `inner_steps` of gradient descent *inside the autodiff tape*, so
/// backpropagating the post-training attack loss through the unrolled
/// updates yields the exact meta-gradient with respect to the (relaxed,
/// dense) adjacency and features. Greedy selection then commits the
/// highest-scoring flip S = grad ⊙ (-2Â + 1) and repeats until the
/// budget is exhausted.
///
/// Meta-Self: the inner training loss uses the true training labels
/// (gray-box input); the outer attack loss is evaluated on the unlabeled
/// nodes against self-trained pseudo-labels.
class Metattack : public Attacker {
 public:
  struct Options {
    int inner_steps = 25;
    float inner_lr = 1.0f;
    /// Also consider feature flips (Tab. I marks Metattack as covering
    /// both attack types).
    bool attack_features = true;
  };

  Metattack();
  explicit Metattack(const Options& options);

  std::string name() const override { return "Metattack"; }
  AttackResult Attack(const graph::Graph& g, const AttackOptions& options,
                      linalg::Rng* rng) override;

 private:
  Options options_;
};

inline Metattack::Metattack() : options_(Options()) {}
inline Metattack::Metattack(const Options& options) : options_(options) {}


}  // namespace repro::attack

#endif  // PEEGA_ATTACK_METATTACK_H_
