#ifndef PEEGA_ATTACK_DICE_H_
#define PEEGA_ATTACK_DICE_H_

#include "attack/attacker.h"

namespace repro::attack {

/// DICE — "Delete Internally, Connect Externally" (Waniek et al., 2018).
/// A label-aware heuristic baseline: with probability `add_fraction` add
/// an edge between two random nodes with DIFFERENT labels, otherwise
/// delete an existing edge between two nodes with the SAME label.
///
/// DICE is gray-box (it reads labels) but model-free; it implements by
/// construction the attack pattern the paper discovers empirically in
/// its Sec. IV-A forensics, which makes it a useful reference point for
/// the edge-diff analysis (Fig. 2) and for GNAT's defense premise.
class DiceAttack : public Attacker {
 public:
  struct Options {
    double add_fraction = 0.5;
  };

  DiceAttack();
  explicit DiceAttack(const Options& options);

  std::string name() const override { return "DICE"; }
  AttackResult Attack(const graph::Graph& g, const AttackOptions& options,
                      linalg::Rng* rng) override;

 private:
  Options options_;
};

}  // namespace repro::attack

#endif  // PEEGA_ATTACK_DICE_H_
