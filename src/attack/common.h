#ifndef PEEGA_ATTACK_COMMON_H_
#define PEEGA_ATTACK_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace repro::attack {

/// Tracks which edges / feature rows an attacker may modify, derived from
/// `AttackOptions::attacker_nodes`.
class AccessControl {
 public:
  AccessControl(int num_nodes, const std::vector<int>& attacker_nodes);

  /// True iff the edge (u, v) may be flipped.
  bool EdgeAllowed(int u, int v) const {
    return controlled_[u] || controlled_[v];
  }
  /// True iff features of node v may be flipped.
  bool FeatureAllowed(int v) const { return controlled_[v]; }
  bool all_nodes() const { return all_nodes_; }

 private:
  std::vector<char> controlled_;
  bool all_nodes_;
};

/// Sparse set of frozen (row, col) coordinates — the greedy loops'
/// "already flipped once" memory. Replaces the dense N x N / N x F
/// freeze matrices that capped attack memory at O(N²): storage is
/// O(flips committed), which the perturbation budget keeps tiny.
///
/// Deterministic by construction (a sorted vector of packed keys, no
/// hashing), so scans that consult it stay bitwise-identical at any
/// thread count. Insert is O(size) — irrelevant at budget-bounded sizes
/// — and Contains is O(log size), off the scans' inner-loop hot path
/// (the exclude test only runs for allowed candidates).
class FlipSet {
 public:
  /// `cols` is the coordinate stride: the node count for edge sets, the
  /// feature dimension for feature sets.
  explicit FlipSet(int cols) : cols_(cols) {}

  bool Contains(int r, int c) const {
    return std::binary_search(keys_.begin(), keys_.end(), Key(r, c));
  }

  void Insert(int r, int c) {
    const int64_t key = Key(r, c);
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) keys_.insert(it, key);
  }

  /// Freezes an undirected edge: both (u, v) and (v, u).
  void InsertSymmetric(int u, int v) {
    Insert(u, v);
    Insert(v, u);
  }

  /// Toggles an undirected edge's membership: present → removed,
  /// absent → inserted. Used by samplers (random / DICE) that may
  /// revisit a pair, where the set tracks the delta against the clean
  /// CSR rather than a freeze list.
  void ToggleSymmetric(int u, int v) {
    Toggle(u, v);
    Toggle(v, u);
  }

  size_t size() const { return keys_.size(); }

 private:
  void Toggle(int r, int c) {
    const int64_t key = Key(r, c);
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) {
      keys_.erase(it);
    } else {
      keys_.insert(it, key);
    }
  }

  int64_t Key(int r, int c) const {
    return static_cast<int64_t>(r) * cols_ + c;
  }

  int64_t cols_;
  std::vector<int64_t> keys_;  // sorted
};

/// Flips A[u][v] and A[v][u] between 0 and 1 in a dense adjacency.
void FlipEdge(linalg::Matrix* dense_adjacency, int u, int v);

/// Flips X[v][j] between 0 and 1.
void FlipFeature(linalg::Matrix* features, int v, int j);

/// Scans a dense gradient-score matrix over node pairs (u < v) and
/// returns the best allowed flip. The score of flipping (u, v) is
/// grad[u][v] * (1 - 2 A[u][v]) summed with its symmetric mirror.
/// Coordinates in `exclude` (the committed-flip freeze set) are
/// skipped — greedy attackers would otherwise oscillate on a single
/// edge after reaching a local optimum. Returns {-1, -1, -inf} when no
/// pair is allowed.
///
/// Parallelized over row chunks with a per-chunk argmax merged in chunk
/// order; ties resolve to the lowest (u, v), so the returned flip — and
/// hence the greedy commit order of every attacker built on it — is
/// bitwise-identical at any thread count.
struct EdgeCandidate {
  int u = -1;
  int v = -1;
  float score = 0.0f;
};
EdgeCandidate BestEdgeFlip(const linalg::Matrix& grad,
                           const linalg::Matrix& dense_adjacency,
                           const AccessControl& access,
                           const FlipSet* exclude = nullptr);

/// Best allowed feature flip: score = grad[v][j] * (1 - 2 X[v][j]);
/// coordinates in `exclude` are skipped. Parallelized like
/// `BestEdgeFlip` with the same lowest-index tie-break guarantee.
struct FeatureCandidate {
  int node = -1;
  int dim = -1;
  float score = 0.0f;
};
FeatureCandidate BestFeatureFlip(const linalg::Matrix& grad,
                                 const linalg::Matrix& features,
                                 const AccessControl& access,
                                 const FlipSet* exclude = nullptr);

/// Rebuilds a binary symmetric SparseMatrix from a dense 0/1 adjacency.
linalg::SparseMatrix DenseToAdjacency(const linalg::Matrix& dense);

namespace internal {

/// Rows (u) per chunk of the parallel candidate scans. Any partition is
/// deterministic here: per-chunk argmax keeps the lowest (u, v) on ties
/// (strict '>'), and the ordered chunk merge keeps the earlier chunk on
/// ties, which together reproduce the serial scan's lowest-index winner
/// at any thread count (the greedy commit order must not depend on the
/// machine — see DESIGN.md, "Determinism & threading").
constexpr int64_t kScanRowGrain = 32;

}  // namespace internal

/// Generic form of `BestEdgeFlip`: the same chunked parallel argmax with
/// the same skip conditions and lowest-(u, v) tie-break, but flip scores
/// come from a caller-supplied callable `score(u, v)` (u < v) instead of
/// a dense gradient matrix. The incremental PEEGA engine plugs in its
/// sparse closed-form score provider here; `BestEdgeFlip` delegates with
/// the historical dense-gradient score.
template <typename ScoreFn>
EdgeCandidate BestEdgeFlipScored(int num_nodes, const AccessControl& access,
                                 const FlipSet* exclude,
                                 const ScoreFn& score) {
  const obs::TraceSpan span("attack.best_edge_flip");
  static obs::Counter* const scans = obs::GetCounter("attack.edge_scans");
  static obs::Counter* const scanned =
      obs::GetCounter("attack.edges_scanned");
  scans->Add(1);
  EdgeCandidate identity;
  identity.score = -std::numeric_limits<float>::infinity();
  EdgeCandidate best = parallel::ParallelReduce<EdgeCandidate>(
      0, num_nodes, internal::kScanRowGrain, identity,
      [&](int64_t u0, int64_t u1) {
        EdgeCandidate local;
        local.score = -std::numeric_limits<float>::infinity();
        // Candidate count accumulated per chunk, published once: the
        // total is a function of the scan inputs alone (deterministic
        // at any thread count) and the atomic add stays off the inner
        // loop.
        uint64_t considered = 0;
        for (int u = static_cast<int>(u0); u < static_cast<int>(u1); ++u) {
          for (int v = u + 1; v < num_nodes; ++v) {
            if (!access.EdgeAllowed(u, v)) continue;
            if (exclude != nullptr && exclude->Contains(u, v)) continue;
            ++considered;
            const float s = score(u, v);
            if (s > local.score) {
              local = {u, v, s};
            }
          }
        }
        scanned->Add(considered);
        return local;
      },
      [](const EdgeCandidate& acc, const EdgeCandidate& chunk) {
        return chunk.score > acc.score ? chunk : acc;
      });
  if (best.u < 0) best.score = -std::numeric_limits<float>::infinity();
  return best;
}

/// Generic form of `BestFeatureFlip` over a `score(v, j)` callable; same
/// contract as `BestEdgeFlipScored`.
template <typename ScoreFn>
FeatureCandidate BestFeatureFlipScored(int num_nodes, int num_features,
                                       const AccessControl& access,
                                       const FlipSet* exclude,
                                       const ScoreFn& score) {
  const obs::TraceSpan span("attack.best_feature_flip");
  static obs::Counter* const scans = obs::GetCounter("attack.feature_scans");
  static obs::Counter* const scanned =
      obs::GetCounter("attack.features_scanned");
  scans->Add(1);
  FeatureCandidate identity;
  identity.score = -std::numeric_limits<float>::infinity();
  FeatureCandidate best = parallel::ParallelReduce<FeatureCandidate>(
      0, num_nodes, internal::kScanRowGrain, identity,
      [&](int64_t v0, int64_t v1) {
        FeatureCandidate local;
        local.score = -std::numeric_limits<float>::infinity();
        uint64_t considered = 0;
        for (int v = static_cast<int>(v0); v < static_cast<int>(v1); ++v) {
          if (!access.FeatureAllowed(v)) continue;
          for (int j = 0; j < num_features; ++j) {
            if (exclude != nullptr && exclude->Contains(v, j)) continue;
            ++considered;
            const float s = score(v, j);
            if (s > local.score) {
              local = {v, j, s};
            }
          }
        }
        scanned->Add(considered);
        return local;
      },
      [](const FeatureCandidate& acc, const FeatureCandidate& chunk) {
        return chunk.score > acc.score ? chunk : acc;
      });
  if (best.node < 0) best.score = -std::numeric_limits<float>::infinity();
  return best;
}

}  // namespace repro::attack

#endif  // PEEGA_ATTACK_COMMON_H_
