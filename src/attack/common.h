#ifndef PEEGA_ATTACK_COMMON_H_
#define PEEGA_ATTACK_COMMON_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"

namespace repro::attack {

/// Tracks which edges / feature rows an attacker may modify, derived from
/// `AttackOptions::attacker_nodes`.
class AccessControl {
 public:
  AccessControl(int num_nodes, const std::vector<int>& attacker_nodes);

  /// True iff the edge (u, v) may be flipped.
  bool EdgeAllowed(int u, int v) const {
    return controlled_[u] || controlled_[v];
  }
  /// True iff features of node v may be flipped.
  bool FeatureAllowed(int v) const { return controlled_[v]; }
  bool all_nodes() const { return all_nodes_; }

 private:
  std::vector<char> controlled_;
  bool all_nodes_;
};

/// Flips A[u][v] and A[v][u] between 0 and 1 in a dense adjacency.
void FlipEdge(linalg::Matrix* dense_adjacency, int u, int v);

/// Flips X[v][j] between 0 and 1.
void FlipFeature(linalg::Matrix* features, int v, int j);

/// Scans a dense gradient-score matrix over node pairs (u < v) and
/// returns the best allowed flip. The score of flipping (u, v) is
/// grad[u][v] * (1 - 2 A[u][v]) summed with its symmetric mirror.
/// Entries already flipped once (`exclude`(u,v) > 0) are skipped —
/// greedy attackers would otherwise oscillate on a single edge after
/// reaching a local optimum. Returns {-1, -1, -inf} when no pair is
/// allowed.
///
/// Parallelized over row chunks with a per-chunk argmax merged in chunk
/// order; ties resolve to the lowest (u, v), so the returned flip — and
/// hence the greedy commit order of every attacker built on it — is
/// bitwise-identical at any thread count.
struct EdgeCandidate {
  int u = -1;
  int v = -1;
  float score = 0.0f;
};
EdgeCandidate BestEdgeFlip(const linalg::Matrix& grad,
                           const linalg::Matrix& dense_adjacency,
                           const AccessControl& access,
                           const linalg::Matrix* exclude = nullptr);

/// Best allowed feature flip: score = grad[v][j] * (1 - 2 X[v][j]);
/// entries with `exclude`(v,j) > 0 are skipped. Parallelized like
/// `BestEdgeFlip` with the same lowest-index tie-break guarantee.
struct FeatureCandidate {
  int node = -1;
  int dim = -1;
  float score = 0.0f;
};
FeatureCandidate BestFeatureFlip(const linalg::Matrix& grad,
                                 const linalg::Matrix& features,
                                 const AccessControl& access,
                                 const linalg::Matrix* exclude = nullptr);

/// Rebuilds a binary symmetric SparseMatrix from a dense 0/1 adjacency.
linalg::SparseMatrix DenseToAdjacency(const linalg::Matrix& dense);

}  // namespace repro::attack

#endif  // PEEGA_ATTACK_COMMON_H_
