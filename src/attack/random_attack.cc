#include "attack/random_attack.h"

#include "attack/common.h"
#include "obs/stopwatch.h"

namespace repro::attack {

AttackResult RandomAttack::Attack(const graph::Graph& g,
                                  const AttackOptions& options,
                                  linalg::Rng* rng) {
  const obs::StopWatch watch;
  const int budget = ComputeBudget(g, options.perturbation_rate);
  const AccessControl access(g.num_nodes, options.attacker_nodes);
  linalg::Matrix dense = g.adjacency.ToDense();
  AttackResult result;
  int spent = 0;
  int attempts = 0;
  const int max_attempts = budget * 200 + 1000;
  while (spent < budget && attempts++ < max_attempts) {
    result.status =
        options.deadline.Check(name() + " flip " + std::to_string(spent));
    if (!result.status.ok()) break;  // flips so far form the result
    const int u = static_cast<int>(rng->UniformInt(0, g.num_nodes - 1));
    const int v = static_cast<int>(rng->UniformInt(0, g.num_nodes - 1));
    if (u == v || !access.EdgeAllowed(u, v)) continue;
    FlipEdge(&dense, u, v);
    ++result.edge_modifications;
    ++spent;
  }
  result.poisoned = g.WithAdjacency(DenseToAdjacency(dense));
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::attack
