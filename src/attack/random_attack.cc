#include "attack/random_attack.h"

#include <utility>
#include <vector>

#include "attack/common.h"
#include "graph/graph.h"
#include "obs/stopwatch.h"

namespace repro::attack {

AttackResult RandomAttack::Attack(const graph::Graph& g,
                                  const AttackOptions& options,
                                  linalg::Rng* rng) {
  const obs::StopWatch watch;
  const int budget = ComputeBudget(g, options.perturbation_rate);
  const AccessControl access(g.num_nodes, options.attacker_nodes);
  AttackResult result;
  int spent = 0;
  int attempts = 0;
  const int max_attempts = budget * 200 + 1000;
  // Toggles are only recorded here — never applied to a dense matrix.
  // graph::WithFlips parity-cancels a pair drawn twice, exactly like
  // toggling it twice in a densified copy did.
  std::vector<std::pair<int, int>> toggles;
  while (spent < budget && attempts++ < max_attempts) {
    result.status =
        options.deadline.Check(name() + " flip " + std::to_string(spent));
    if (!result.status.ok()) break;  // flips so far form the result
    const int u = static_cast<int>(rng->UniformInt(0, g.num_nodes - 1));
    const int v = static_cast<int>(rng->UniformInt(0, g.num_nodes - 1));
    if (u == v || !access.EdgeAllowed(u, v)) continue;
    toggles.emplace_back(u, v);
    result.flips.push_back({false, u, v});
    ++result.edge_modifications;
    ++spent;
  }
  result.poisoned = g.WithAdjacency(graph::WithFlips(g.adjacency, toggles));
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::attack
