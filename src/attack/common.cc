#include "attack/common.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "attack/attacker.h"
#include "debug/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace repro::attack {

using linalg::Matrix;
using linalg::SparseMatrix;

int ComputeBudget(const graph::Graph& g, double perturbation_rate) {
  if (perturbation_rate <= 0.0) return 0;
  const int budget =
      static_cast<int>(perturbation_rate * static_cast<double>(g.NumEdges()));
  return std::max(budget, 1);
}

AccessControl::AccessControl(int num_nodes,
                             const std::vector<int>& attacker_nodes)
    : controlled_(num_nodes, attacker_nodes.empty() ? 1 : 0),
      all_nodes_(attacker_nodes.empty()) {
  for (int v : attacker_nodes) {
    PEEGA_CHECK_GE(v, 0);
    PEEGA_CHECK_LT(v, num_nodes);
    controlled_[v] = 1;
  }
}

void FlipEdge(Matrix* dense_adjacency, int u, int v) {
  const int n = dense_adjacency->rows();
  PEEGA_CHECK_NE(u, v) << " — self-loop flips are not valid perturbations";
  PEEGA_CHECK_GE(u, 0) << " in FlipEdge";
  PEEGA_CHECK_LT(u, n) << " in FlipEdge on " << n << " nodes";
  PEEGA_CHECK_GE(v, 0) << " in FlipEdge";
  PEEGA_CHECK_LT(v, n) << " in FlipEdge on " << n << " nodes";
  const float flipped = (*dense_adjacency)(u, v) > 0.5f ? 0.0f : 1.0f;
  (*dense_adjacency)(u, v) = flipped;
  (*dense_adjacency)(v, u) = flipped;
}

void FlipFeature(Matrix* features, int v, int j) {
  PEEGA_CHECK_GE(v, 0) << " in FlipFeature";
  PEEGA_CHECK_LT(v, features->rows()) << " in FlipFeature";
  PEEGA_CHECK_GE(j, 0) << " in FlipFeature";
  PEEGA_CHECK_LT(j, features->cols()) << " in FlipFeature";
  (*features)(v, j) = (*features)(v, j) > 0.5f ? 0.0f : 1.0f;
}

namespace {

// Rows (u) per chunk of the parallel candidate scans. Any partition is
// deterministic here: per-chunk argmax keeps the lowest (u, v) on ties
// (strict '>'), and the ordered chunk merge keeps the earlier chunk on
// ties, which together reproduce the serial scan's lowest-index winner
// at any thread count (the greedy commit order must not depend on the
// machine — see DESIGN.md, "Determinism & threading").
constexpr int64_t kScanRowGrain = 32;

}  // namespace

EdgeCandidate BestEdgeFlip(const Matrix& grad,
                           const Matrix& dense_adjacency,
                           const AccessControl& access,
                           const Matrix* exclude) {
  const obs::TraceSpan span("attack.best_edge_flip");
  static obs::Counter* const scans = obs::GetCounter("attack.edge_scans");
  static obs::Counter* const scanned =
      obs::GetCounter("attack.edges_scanned");
  scans->Add(1);
  const int n = dense_adjacency.rows();
  EdgeCandidate identity;
  identity.score = -std::numeric_limits<float>::infinity();
  EdgeCandidate best = parallel::ParallelReduce<EdgeCandidate>(
      0, n, kScanRowGrain, identity,
      [&](int64_t u0, int64_t u1) {
        EdgeCandidate local;
        local.score = -std::numeric_limits<float>::infinity();
        // Candidate count accumulated per chunk, published once: the
        // total is a function of the scan inputs alone (deterministic
        // at any thread count) and the atomic add stays off the inner
        // loop.
        uint64_t considered = 0;
        for (int u = static_cast<int>(u0); u < static_cast<int>(u1); ++u) {
          const float* grow = grad.row(u);
          const float* arow = dense_adjacency.row(u);
          const float* erow = exclude != nullptr ? exclude->row(u) : nullptr;
          for (int v = u + 1; v < n; ++v) {
            if (!access.EdgeAllowed(u, v)) continue;
            if (erow != nullptr && erow[v] > 0.0f) continue;
            ++considered;
            const float direction = 1.0f - 2.0f * arow[v];  // +1 add, -1 del
            const float score = direction * (grow[v] + grad(v, u));
            if (score > local.score) {
              local = {u, v, score};
            }
          }
        }
        scanned->Add(considered);
        return local;
      },
      [](const EdgeCandidate& acc, const EdgeCandidate& chunk) {
        return chunk.score > acc.score ? chunk : acc;
      });
  if (best.u < 0) best.score = -std::numeric_limits<float>::infinity();
  return best;
}

FeatureCandidate BestFeatureFlip(const Matrix& grad, const Matrix& features,
                                 const AccessControl& access,
                                 const Matrix* exclude) {
  const obs::TraceSpan span("attack.best_feature_flip");
  static obs::Counter* const scans = obs::GetCounter("attack.feature_scans");
  static obs::Counter* const scanned =
      obs::GetCounter("attack.features_scanned");
  scans->Add(1);
  FeatureCandidate identity;
  identity.score = -std::numeric_limits<float>::infinity();
  FeatureCandidate best = parallel::ParallelReduce<FeatureCandidate>(
      0, features.rows(), kScanRowGrain, identity,
      [&](int64_t v0, int64_t v1) {
        FeatureCandidate local;
        local.score = -std::numeric_limits<float>::infinity();
        uint64_t considered = 0;
        for (int v = static_cast<int>(v0); v < static_cast<int>(v1); ++v) {
          if (!access.FeatureAllowed(v)) continue;
          const float* grow = grad.row(v);
          const float* xrow = features.row(v);
          const float* erow = exclude != nullptr ? exclude->row(v) : nullptr;
          for (int j = 0; j < features.cols(); ++j) {
            if (erow != nullptr && erow[j] > 0.0f) continue;
            ++considered;
            const float direction = 1.0f - 2.0f * xrow[j];
            const float score = direction * grow[j];
            if (score > local.score) {
              local = {v, j, score};
            }
          }
        }
        scanned->Add(considered);
        return local;
      },
      [](const FeatureCandidate& acc, const FeatureCandidate& chunk) {
        return chunk.score > acc.score ? chunk : acc;
      });
  if (best.node < 0) best.score = -std::numeric_limits<float>::infinity();
  return best;
}

SparseMatrix DenseToAdjacency(const Matrix& dense) {
  PEEGA_CHECK_EQ(dense.rows(), dense.cols());
  std::vector<std::tuple<int, int, float>> triplets;
  for (int u = 0; u < dense.rows(); ++u) {
    const float* row = dense.row(u);
    for (int v = 0; v < dense.cols(); ++v) {
      if (u != v && row[v] > 0.5f) triplets.emplace_back(u, v, 1.0f);
    }
  }
  return SparseMatrix::FromTriplets(dense.rows(), dense.cols(), triplets);
}

}  // namespace repro::attack
