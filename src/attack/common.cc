#include "attack/common.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "attack/attacker.h"
#include "debug/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace repro::attack {

using linalg::Matrix;
using linalg::SparseMatrix;

int ComputeBudget(const graph::Graph& g, double perturbation_rate) {
  if (perturbation_rate <= 0.0) return 0;
  const int budget =
      static_cast<int>(perturbation_rate * static_cast<double>(g.NumEdges()));
  return std::max(budget, 1);
}

AccessControl::AccessControl(int num_nodes,
                             const std::vector<int>& attacker_nodes)
    : controlled_(num_nodes, attacker_nodes.empty() ? 1 : 0),
      all_nodes_(attacker_nodes.empty()) {
  for (int v : attacker_nodes) {
    PEEGA_CHECK_GE(v, 0);
    PEEGA_CHECK_LT(v, num_nodes);
    controlled_[v] = 1;
  }
}

void FlipEdge(Matrix* dense_adjacency, int u, int v) {
  const int n = dense_adjacency->rows();
  PEEGA_CHECK_NE(u, v) << " — self-loop flips are not valid perturbations";
  PEEGA_CHECK_GE(u, 0) << " in FlipEdge";
  PEEGA_CHECK_LT(u, n) << " in FlipEdge on " << n << " nodes";
  PEEGA_CHECK_GE(v, 0) << " in FlipEdge";
  PEEGA_CHECK_LT(v, n) << " in FlipEdge on " << n << " nodes";
  const float flipped = (*dense_adjacency)(u, v) > 0.5f ? 0.0f : 1.0f;
  (*dense_adjacency)(u, v) = flipped;
  (*dense_adjacency)(v, u) = flipped;
}

void FlipFeature(Matrix* features, int v, int j) {
  PEEGA_CHECK_GE(v, 0) << " in FlipFeature";
  PEEGA_CHECK_LT(v, features->rows()) << " in FlipFeature";
  PEEGA_CHECK_GE(j, 0) << " in FlipFeature";
  PEEGA_CHECK_LT(j, features->cols()) << " in FlipFeature";
  (*features)(v, j) = (*features)(v, j) > 0.5f ? 0.0f : 1.0f;
}

EdgeCandidate BestEdgeFlip(const Matrix& grad,
                           const Matrix& dense_adjacency,
                           const AccessControl& access,
                           const FlipSet* exclude) {
  return BestEdgeFlipScored(
      dense_adjacency.rows(), access, exclude, [&](int u, int v) {
        const float direction =
            1.0f - 2.0f * dense_adjacency(u, v);  // +1 add, -1 del
        return direction * (grad(u, v) + grad(v, u));
      });
}

FeatureCandidate BestFeatureFlip(const Matrix& grad, const Matrix& features,
                                 const AccessControl& access,
                                 const FlipSet* exclude) {
  return BestFeatureFlipScored(
      features.rows(), features.cols(), access, exclude, [&](int v, int j) {
        const float direction = 1.0f - 2.0f * features(v, j);
        return direction * grad(v, j);
      });
}

SparseMatrix DenseToAdjacency(const Matrix& dense) {
  PEEGA_CHECK_EQ(dense.rows(), dense.cols());
  std::vector<std::tuple<int, int, float>> triplets;
  for (int u = 0; u < dense.rows(); ++u) {
    const float* row = dense.row(u);
    for (int v = 0; v < dense.cols(); ++v) {
      if (u != v && row[v] > 0.5f) triplets.emplace_back(u, v, 1.0f);
    }
  }
  return SparseMatrix::FromTriplets(dense.rows(), dense.cols(), triplets);
}

}  // namespace repro::attack
