#ifndef PEEGA_ATTACK_PGD_H_
#define PEEGA_ATTACK_PGD_H_

#include "attack/attacker.h"

namespace repro::attack {

/// Topology attack via projected gradient descent (Xu et al., IJCAI
/// 2019) — white-box.
///
/// A relaxed symmetric perturbation matrix P in [0,1]^{NxN} defines
/// A_hat = A + (1 - 2A) ⊙ P. The attacker maximizes the victim GCN's
/// training cross-entropy by gradient ascent on P, projecting after each
/// step onto the box [0,1] intersected with the budget simplex
/// sum(P)/2 <= delta (bisection on the shift). Afterwards the top-delta
/// relaxed entries are committed as discrete flips.
///
/// `PgdAttack` pre-trains the victim once and keeps its parameters fixed
/// (the paper's "PGD"); `MinMaxAttack` re-optimizes the victim between
/// perturbation steps (the paper's "MinMax"), making it stronger but
/// slower.
class PgdAttack : public Attacker {
 public:
  struct Options {
    int steps = 80;
    float base_lr = 20.0f;      // decayed as base_lr / sqrt(t)
    int victim_hidden = 16;
    int victim_epochs = 150;
    /// MinMax mode: inner victim training steps per perturbation step.
    int inner_steps = 0;
  };

  PgdAttack();
  explicit PgdAttack(const Options& options);

  std::string name() const override { return "PGD"; }
  AttackResult Attack(const graph::Graph& g, const AttackOptions& options,
                      linalg::Rng* rng) override;

 protected:
  Options options_;
};

/// MinMax variant: alternates perturbation ascent with victim descent.
class MinMaxAttack : public PgdAttack {
 public:
  explicit MinMaxAttack(const Options& options = DefaultOptions())
      : PgdAttack(options) {}

  std::string name() const override { return "MinMax"; }

 private:
  static Options DefaultOptions() {
    Options o;
    o.inner_steps = 3;
    return o;
  }
};

inline PgdAttack::PgdAttack() : options_(Options()) {}
inline PgdAttack::PgdAttack(const Options& options) : options_(options) {}


}  // namespace repro::attack

#endif  // PEEGA_ATTACK_PGD_H_
