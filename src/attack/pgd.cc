#include "attack/pgd.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "attack/common.h"
#include "autograd/tape.h"
#include "linalg/ops.h"
#include "nn/gcn.h"
#include "nn/optim.h"
#include "nn/trainer.h"
#include "obs/stopwatch.h"

namespace repro::attack {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;

namespace {

// Projects the upper triangle of P onto {p in [0,1], sum(p) <= budget}
// via bisection on the uniform shift mu, then mirrors to keep symmetry.
void ProjectPerturbation(Matrix* p, double budget) {
  const int n = p->rows();
  auto shifted_sum = [&](float mu) {
    double total = 0.0;
    for (int u = 0; u < n; ++u) {
      const float* row = p->row(u);
      for (int v = u + 1; v < n; ++v) {
        total += std::clamp(row[v] - mu, 0.0f, 1.0f);
      }
    }
    return total;
  };
  float mu = 0.0f;
  if (shifted_sum(0.0f) > budget) {
    float lo = 0.0f, hi = 1.0f;
    for (int it = 0; it < 30; ++it) {
      mu = 0.5f * (lo + hi);
      if (shifted_sum(mu) > budget) lo = mu;
      else hi = mu;
    }
    mu = hi;
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const float value = std::clamp((*p)(u, v) - mu, 0.0f, 1.0f);
      (*p)(u, v) = value;
      (*p)(v, u) = value;
    }
    (*p)(u, u) = 0.0f;
  }
}

}  // namespace

AttackResult PgdAttack::Attack(const graph::Graph& g,
                               const AttackOptions& attack_options,
                               linalg::Rng* rng) {
  const obs::StopWatch watch;
  const int budget = ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);

  // White-box: pre-train the victim GCN on the clean graph.
  nn::Gcn::Options victim_options;
  victim_options.hidden_dim = options_.victim_hidden;
  nn::Gcn victim(g.features.cols(), g.num_classes, victim_options, rng);
  nn::TrainOptions train_options;
  train_options.max_epochs = options_.victim_epochs;
  nn::TrainNodeClassifier(&victim, g, train_options, rng);
  nn::Adam inner_optimizer(0.01f, 5e-4f);

  const Matrix a_dense = g.adjacency.ToDense();
  const Matrix flip_direction = linalg::Affine(a_dense, -2.0f, 1.0f);
  const Matrix labels = g.OneHotLabels();
  const std::vector<float> train_mask = g.NodeMask(g.train_nodes);

  Matrix p(g.num_nodes, g.num_nodes);  // relaxed perturbation
  AttackResult result;
  for (int t = 1; t <= options_.steps; ++t) {
    result.status = attack_options.deadline.Check(
        name() + " step " + std::to_string(t));
    // Best-so-far: the current relaxed P is already a valid perturbation
    // candidate; discretization below commits whatever ascent achieved.
    if (!result.status.ok()) break;
    Tape tape;
    Var p_var = tape.Input(p, /*requires_grad=*/true);
    // A_hat = A + (1 - 2A) ⊙ P.
    Var a_hat = tape.AddConst(tape.MulConst(p_var, flip_direction),
                              a_dense);
    Var a_n = tape.GcnNormalizeDense(a_hat);
    auto bound = victim.BindParameters(&tape);
    Var x = tape.Input(g.features, /*requires_grad=*/false);
    Var logits = victim.ForwardWithDensePropagation(
        &tape, a_n, x, bound, /*training=*/false, rng);
    Var loss = tape.SoftmaxCrossEntropy(logits, labels, train_mask);
    tape.Backward(loss);

    if (options_.inner_steps > 0) {
      // MinMax: descend the victim on the current relaxed graph.
      for (auto& [param, var] : bound) {
        inner_optimizer.Step(param, var.grad());
      }
      // (One victim step per outer step; inner_steps > 1 repeats.)
      for (int s = 1; s < options_.inner_steps; ++s) {
        Tape inner_tape;
        Var ip = inner_tape.Input(p, false);
        Var ia = inner_tape.AddConst(inner_tape.MulConst(ip, flip_direction),
                                     a_dense);
        Var ian = inner_tape.GcnNormalizeDense(ia);
        auto ibound = victim.BindParameters(&inner_tape);
        Var ix = inner_tape.Input(g.features, false);
        Var ilogits = victim.ForwardWithDensePropagation(
            &inner_tape, ian, ix, ibound, false, rng);
        Var iloss =
            inner_tape.SoftmaxCrossEntropy(ilogits, labels, train_mask);
        inner_tape.Backward(iloss);
        for (auto& [param, var] : ibound) {
          inner_optimizer.Step(param, var.grad());
        }
      }
    }

    // Ascent on P (maximize the loss), then project.
    const float lr = options_.base_lr / std::sqrt(static_cast<float>(t));
    linalg::Axpy(&p, p_var.grad(), lr);
    ProjectPerturbation(&p, budget);
  }

  // Commit the strongest relaxed entries as discrete flips.
  std::vector<std::pair<float, std::pair<int, int>>> ranked;
  for (int u = 0; u < g.num_nodes; ++u) {
    for (int v = u + 1; v < g.num_nodes; ++v) {
      if (p(u, v) > 1e-4f && access.EdgeAllowed(u, v)) {
        ranked.push_back({p(u, v), {u, v}});
      }
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  Matrix dense = a_dense;
  for (int i = 0; i < std::min<int>(budget, ranked.size()); ++i) {
    FlipEdge(&dense, ranked[i].second.first, ranked[i].second.second);
    ++result.edge_modifications;
  }
  result.poisoned = g.WithAdjacency(DenseToAdjacency(dense));
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::attack
