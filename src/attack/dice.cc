#include "attack/dice.h"

#include <utility>
#include <vector>

#include "attack/common.h"
#include "graph/graph.h"
#include "obs/stopwatch.h"

namespace repro::attack {

DiceAttack::DiceAttack() : options_(Options()) {}
DiceAttack::DiceAttack(const Options& options) : options_(options) {}

AttackResult DiceAttack::Attack(const graph::Graph& g,
                                const AttackOptions& attack_options,
                                linalg::Rng* rng) {
  const obs::StopWatch watch;
  const int budget = ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);
  auto edges = g.EdgeList();

  AttackResult result;
  int spent = 0;
  int attempts = 0;
  const int max_attempts = budget * 400 + 1000;
  // The current edge state is the clean CSR XOR the toggles committed so
  // far — no densified copy. `delta` holds the toggled pairs; `toggles`
  // records them in commit order for the final sparse rebuild (the two
  // only differ if a pair is revisited, which the delta test prevents).
  FlipSet delta(g.num_nodes);
  std::vector<std::pair<int, int>> toggles;
  const auto has_edge_now = [&](int u, int v) {
    return (g.adjacency.At(u, v) > 0.0f) != delta.Contains(u, v);
  };
  while (spent < budget && attempts++ < max_attempts) {
    result.status = attack_options.deadline.Check(
        name() + " flip " + std::to_string(spent));
    if (!result.status.ok()) break;  // flips so far form the result
    int u;
    int v;
    if (rng->Bernoulli(options_.add_fraction)) {
      // Connect externally: add an inter-class edge.
      u = static_cast<int>(rng->UniformInt(0, g.num_nodes - 1));
      v = static_cast<int>(rng->UniformInt(0, g.num_nodes - 1));
      if (u == v || g.labels[u] == g.labels[v]) continue;
      if (has_edge_now(u, v) || !access.EdgeAllowed(u, v)) continue;
    } else {
      // Delete internally: remove an intra-class edge.
      if (edges.empty()) continue;
      const size_t pick =
          static_cast<size_t>(rng->UniformInt(0, edges.size() - 1));
      u = edges[pick].first;
      v = edges[pick].second;
      if (g.labels[u] != g.labels[v]) continue;
      if (!has_edge_now(u, v) || !access.EdgeAllowed(u, v)) continue;
    }
    delta.ToggleSymmetric(u, v);
    toggles.emplace_back(u, v);
    result.flips.push_back({false, u, v});
    ++result.edge_modifications;
    ++spent;
  }
  result.poisoned = g.WithAdjacency(graph::WithFlips(g.adjacency, toggles));
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::attack
