#include "attack/dice.h"

#include "attack/common.h"
#include "obs/stopwatch.h"

namespace repro::attack {

DiceAttack::DiceAttack() : options_(Options()) {}
DiceAttack::DiceAttack(const Options& options) : options_(options) {}

AttackResult DiceAttack::Attack(const graph::Graph& g,
                                const AttackOptions& attack_options,
                                linalg::Rng* rng) {
  const obs::StopWatch watch;
  const int budget = ComputeBudget(g, attack_options.perturbation_rate);
  const AccessControl access(g.num_nodes, attack_options.attacker_nodes);
  linalg::Matrix dense = g.adjacency.ToDense();
  auto edges = g.EdgeList();

  AttackResult result;
  int spent = 0;
  int attempts = 0;
  const int max_attempts = budget * 400 + 1000;
  while (spent < budget && attempts++ < max_attempts) {
    result.status = attack_options.deadline.Check(
        name() + " flip " + std::to_string(spent));
    if (!result.status.ok()) break;  // flips so far form the result
    if (rng->Bernoulli(options_.add_fraction)) {
      // Connect externally: add an inter-class edge.
      const int u = static_cast<int>(rng->UniformInt(0, g.num_nodes - 1));
      const int v = static_cast<int>(rng->UniformInt(0, g.num_nodes - 1));
      if (u == v || g.labels[u] == g.labels[v]) continue;
      if (dense(u, v) > 0.5f || !access.EdgeAllowed(u, v)) continue;
      FlipEdge(&dense, u, v);
    } else {
      // Delete internally: remove an intra-class edge.
      if (edges.empty()) continue;
      const size_t pick =
          static_cast<size_t>(rng->UniformInt(0, edges.size() - 1));
      const auto [u, v] = edges[pick];
      if (g.labels[u] != g.labels[v]) continue;
      if (dense(u, v) < 0.5f || !access.EdgeAllowed(u, v)) continue;
      FlipEdge(&dense, u, v);
    }
    ++result.edge_modifications;
    ++spent;
  }
  result.poisoned = g.WithAdjacency(DenseToAdjacency(dense));
  result.elapsed_seconds = watch.Seconds();
  return result;
}

}  // namespace repro::attack
