#ifndef PEEGA_ATTACK_ATTACKER_H_
#define PEEGA_ATTACK_ATTACKER_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "linalg/random.h"
#include "status/deadline.h"
#include "status/status.h"

namespace repro::attack {

/// Shared attack configuration.
///
/// The budget follows the paper: delta = perturbation_rate * ||A||_0
/// where ||A||_0 is the number of undirected edges. One edge flip costs
/// 1; one feature-bit flip costs `feature_cost` (the beta of Fig. 5b;
/// 1.0 = the paper's default equal-cost setting).
struct AttackOptions {
  double perturbation_rate = 0.1;
  double feature_cost = 1.0;
  /// Nodes the attacker controls. Empty = all nodes. An edge (u, v) is
  /// modifiable iff at least one endpoint is controlled; a feature row
  /// is modifiable iff its node is controlled (Fig. 7a study).
  std::vector<int> attacker_nodes;
  /// Wall-clock budget / cancellation for the attack loop. Default is
  /// unbounded (checks cost nothing). On expiry or cancellation the
  /// attacker stops committing flips and returns its best-so-far result
  /// with `AttackResult::status` non-OK — never aborts.
  status::Deadline deadline;
};

/// One committed perturbation. For an edge flip `a`/`b` are the endpoints
/// (a < b); for a feature flip `a` is the node and `b` the dimension.
struct Flip {
  bool is_feature = false;
  int a = -1;
  int b = -1;

  friend bool operator==(const Flip& x, const Flip& y) {
    return x.is_feature == y.is_feature && x.a == y.a && x.b == y.b;
  }
  friend bool operator!=(const Flip& x, const Flip& y) { return !(x == y); }
};

struct AttackResult {
  graph::Graph poisoned;
  int edge_modifications = 0;
  int feature_modifications = 0;
  /// Wall-clock seconds spent inside Attack() (Tab. VII).
  double elapsed_seconds = 0.0;
  /// Committed perturbations in commit order. Filled by the PEEGA
  /// attackers (both engines); the differential tests diff these
  /// sequences between the tape and incremental engines. Baseline
  /// attackers may leave it empty.
  std::vector<Flip> flips;
  /// Final value of the attacker's objective on the poisoned graph, when
  /// the attacker has one (PEEGA: the Def. 3 objective). 0 otherwise.
  double final_objective = 0.0;
  /// OK for a completed attack. kDeadlineExceeded / kCancelled /
  /// kNumericFault when the loop stopped early — `poisoned` then holds
  /// the best-so-far graph (the flips committed up to the stop are a
  /// prefix of the unbounded run's flips).
  status::Status status;
};

/// Interface of graph adversarial attackers.
///
/// Every attacker receives the full `Graph`, but what it may read is part
/// of its contract: black-box attackers (PEEGA, GF-Attack) use only the
/// adjacency and features; gray-box attackers (Metattack) additionally
/// use training labels; white-box attackers (PGD, MinMax) also train and
/// read the victim model.
class Attacker {
 public:
  virtual ~Attacker() = default;

  virtual std::string name() const = 0;

  /// Produces a poisoned graph within the budget implied by `options`.
  virtual AttackResult Attack(const graph::Graph& g,
                              const AttackOptions& options,
                              linalg::Rng* rng) = 0;
};

/// Budget delta = rate * #edges (at least 1 when rate > 0).
int ComputeBudget(const graph::Graph& g, double perturbation_rate);

}  // namespace repro::attack

#endif  // PEEGA_ATTACK_ATTACKER_H_
