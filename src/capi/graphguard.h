#ifndef PEEGA_CAPI_GRAPHGUARD_H_
#define PEEGA_CAPI_GRAPHGUARD_H_

/* graphguard.h — stable C ABI for embedding the attack/defense/eval
 * library into other runtimes.
 *
 * Design rules (machine-checked by the `capi-boundary` analyzer pass):
 *   - pure C11: this header compiles standalone with `gcc -std=c11`
 *     (CI does exactly that), so any FFI layer can consume it;
 *   - opaque handles only: the gg_ctx layout is private to the
 *     implementation and may change freely between versions;
 *   - no C++ types cross the boundary — flat structs, C strings,
 *     integer/double scalars, caller-owned output parameters;
 *   - every entry point is exception-safe: C++ exceptions are caught
 *     at the boundary and converted into a gg_status code plus a
 *     message retrievable via gg_last_error().
 *
 * Thread-safety: a gg_ctx is a single-caller session object. The one
 * exception is gg_cancel(), which may be called from any thread to
 * interrupt an operation in flight on the context. Use one context per
 * concurrent caller (the `graphguard serve` job server does exactly
 * that).
 *
 * Typical embedding:
 *
 *   gg_ctx* gg = gg_init();
 *   if (gg_load_graph(gg, "cora.txt") != GG_OK) {
 *     fprintf(stderr, "%s\n", gg_last_error(gg));
 *   }
 *   gg_attack_options opt;
 *   gg_attack_options_init(&opt);
 *   opt.rate = 0.05;
 *   if (gg_attack(gg, &opt) == GG_OK) {
 *     gg_save_graph(gg, "poisoned.txt");
 *   }
 *   gg_free(gg);
 */

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Status codes. GG_OK..GG_UNAVAILABLE mirror repro::status::Code
 * one-to-one (same meaning, same stable names); GG_INTERNAL is the
 * boundary's own code for an unexpected C++ exception caught in the
 * shim. Values are part of the ABI — append only. */
typedef enum gg_status {
  GG_OK = 0,
  GG_INVALID_INPUT = 1,
  GG_NUMERIC_FAULT = 2,
  GG_DEADLINE_EXCEEDED = 3,
  GG_CANCELLED = 4,
  GG_IO_ERROR = 5,
  GG_RESOURCE_EXHAUSTED = 6,
  GG_UNAVAILABLE = 7,
  GG_INTERNAL = 8
} gg_status;

/* Stable name for a code ("OK", "INVALID_INPUT", ...). Never NULL. */
const char* gg_status_name(gg_status status);

/* 1 when a retry with fresh resources might clear the failure
 * (NUMERIC_FAULT, IO_ERROR, RESOURCE_EXHAUSTED, UNAVAILABLE), 0 for
 * permanent codes, GG_OK, and GG_INTERNAL. Mirrors
 * repro::status::IsTransient — the classification the serve retry
 * policy uses — so embedders can apply the same policy. */
int32_t gg_status_is_transient(gg_status status);

/* Opaque session handle. Create with gg_init, destroy with gg_free. */
typedef struct gg_ctx gg_ctx;

gg_ctx* gg_init(void);
void gg_free(gg_ctx* ctx);

/* Message of the most recent failing call on this context ("" after a
 * successful call; also "" when ctx is NULL). The pointer stays valid
 * until the next call on the same context. */
const char* gg_last_error(const gg_ctx* ctx);

/* ---- graph I/O ------------------------------------------------------ */

/* Loads a graph in the library's text format (see graph/io.h). The
 * loaded graph becomes the context's current graph. */
gg_status gg_load_graph(gg_ctx* ctx, const char* path);

/* Saves the current graph (after gg_attack: the poisoned graph). */
gg_status gg_save_graph(gg_ctx* ctx, const char* path);

/* Installs a graph from caller-owned CSR buffers. The adjacency must be
 * symmetric and self-loop free; entries are taken as binary (value 1).
 *   row_ptr:  num_nodes+1 entries, row_ptr[0] == 0, nondecreasing;
 *   col_idx:  row_ptr[num_nodes] entries, each in [0, num_nodes);
 *   features: row-major num_nodes x num_features, may be NULL when
 *             num_features == 0;
 *   labels:   num_nodes entries in [0, num_classes), or NULL for all-0.
 * Buffers are copied; the caller keeps ownership. Train/val/test splits
 * start empty — call gg_assign_splits before gg_defend/gg_eval/
 * gg_train_model (gg_attack needs no splits). */
gg_status gg_set_graph_csr(gg_ctx* ctx, int32_t num_nodes,
                           int32_t num_classes, const int64_t* row_ptr,
                           const int32_t* col_idx, int32_t num_features,
                           const float* features, const int32_t* labels);

/* Random train/val/test splits with the given fractions (seeded). */
gg_status gg_assign_splits(gg_ctx* ctx, double train_frac,
                           double val_frac, uint64_t seed);

int32_t gg_num_nodes(const gg_ctx* ctx);
int64_t gg_num_edges(const gg_ctx* ctx);
const char* gg_graph_name(const gg_ctx* ctx);

/* ---- attack --------------------------------------------------------- */

typedef struct gg_attack_options {
  /* "peega", "peega-batch", "metattack", "pgd", "minmax", "gf",
   * "dice", "random". */
  const char* attacker;
  double rate;          /* perturbation rate (budget = rate * #edges) */
  double feature_cost;  /* beta: cost of one feature flip vs one edge */
  double lambda;        /* PEEGA objective trade-off */
  int32_t norm_p;       /* PEEGA norm order */
  int32_t layers;       /* PEEGA surrogate depth */
  int32_t batch_size;   /* peega-batch only */
  const char* mode;     /* "both", "tm" (topology), "fp" (features) */
  const char* checkpoint_path;  /* NULL/"" = no checkpointing */
  int32_t checkpoint_every;
  uint64_t seed;
} gg_attack_options;

/* Fills defaults (peega, rate 0.1, paper hyper-parameters, seed 42). */
void gg_attack_options_init(gg_attack_options* options);

/* Runs the attack on the current graph. On GG_OK — and on the
 * degraded-but-usable codes GG_DEADLINE_EXCEEDED / GG_CANCELLED /
 * GG_NUMERIC_FAULT, where the result is the best-so-far prefix — the
 * poisoned graph replaces the context's current graph and the flip
 * sequence is readable through gg_num_flips/gg_get_flip. On
 * GG_INVALID_INPUT (e.g. a rejected checkpoint) nothing was attacked
 * and the current graph is untouched. */
gg_status gg_attack(gg_ctx* ctx, const gg_attack_options* options);

/* One committed perturbation: an edge flip (is_feature == 0, a/b the
 * endpoints) or a feature-bit flip (is_feature == 1, a the node, b the
 * dimension). */
typedef struct gg_flip {
  int32_t is_feature;
  int32_t a;
  int32_t b;
} gg_flip;

/* Result accessors for the most recent gg_attack on this context. */
int32_t gg_num_flips(const gg_ctx* ctx);
gg_status gg_get_flip(const gg_ctx* ctx, int32_t index, gg_flip* out);
int32_t gg_edge_modifications(const gg_ctx* ctx);
int32_t gg_feature_modifications(const gg_ctx* ctx);
double gg_elapsed_seconds(const gg_ctx* ctx);
double gg_final_objective(const gg_ctx* ctx);
/* Display name of the attacker that produced the last result. */
const char* gg_result_name(const gg_ctx* ctx);

/* ---- defense / evaluation ------------------------------------------ */

typedef struct gg_defense_report {
  double test_accuracy;
  double val_accuracy;
  double train_seconds;
} gg_defense_report;

/* One defense training run on the current graph. `defender` is one of
 * "gnat", "gcn", "gat", "jaccard", "svd", "rgcn", "prognn", "simpgcn",
 * "gnnguard". */
gg_status gg_defend(gg_ctx* ctx, const char* defender, uint64_t seed,
                    gg_defense_report* out);

typedef struct gg_eval_result {
  double accuracy_mean;  /* fraction in [0, 1] */
  double accuracy_std;
  double mean_train_seconds;
  int32_t ok_runs;
} gg_eval_result;

/* Repeated-run evaluation (paper protocol: re-seed the defender per
 * run, aggregate mean±std over the runs that completed). */
gg_status gg_eval(gg_ctx* ctx, const char* defender, int32_t runs,
                  uint64_t seed, gg_eval_result* out);

/* ---- victim model lifecycle ---------------------------------------- */

/* Trains a GCN victim model on the current graph and keeps it on the
 * context. */
gg_status gg_train_model(gg_ctx* ctx, int32_t hidden_dim,
                         int32_t num_layers, uint64_t seed);

/* Deterministic (eval-mode) test-split accuracy of the context's model
 * on the current graph. Works after gg_train_model or gg_load_model. */
gg_status gg_model_accuracy(gg_ctx* ctx, double* out_test_accuracy);

/* Model weights round-trip bitwise: floats are serialized as C99 hex
 * literals, so save -> load -> save reproduces the file byte for byte
 * and the reloaded model predicts identically. */
gg_status gg_save_model(gg_ctx* ctx, const char* path);
gg_status gg_load_model(gg_ctx* ctx, const char* path);

/* ---- budgets & cancellation ---------------------------------------- */

/* Wall-clock budget applied to each subsequent gg_attack / gg_defend /
 * gg_eval / gg_train_model call (each call gets the full budget).
 * ms <= 0 removes the budget. On expiry the operation stops committing
 * work and returns GG_DEADLINE_EXCEEDED with its best-so-far result —
 * it never hangs or aborts. */
gg_status gg_set_deadline_ms(gg_ctx* ctx, double ms);

/* Cooperatively cancels the operation in flight on `ctx` (safe from
 * any thread). When no operation is running, the NEXT operation is
 * cancelled at its first check instead, so cancel never races with
 * operation start. The interrupted call returns GG_CANCELLED. */
gg_status gg_cancel(gg_ctx* ctx);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* PEEGA_CAPI_GRAPHGUARD_H_ */
