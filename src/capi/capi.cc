// Implementation of the stable C ABI (capi/graphguard.h): a thin,
// exception-safe shim over src/attack, src/defense, src/eval and
// src/nn. Every extern "C" entry point is wrapped in an explicit
// try/catch(...) that converts any C++ exception into GG_INTERNAL plus
// a stored message — the `capi-boundary` analyzer pass checks the
// wrapper is present and that no C++ type appears in a gg_ signature.
#include "capi/graphguard.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "attack/attacker.h"
#include "defense/defender.h"
#include "eval/pipeline.h"
#include "eval/registry.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "linalg/random.h"
#include "nn/gcn.h"
#include "nn/trainer.h"
#include "status/deadline.h"
#include "status/status.h"

namespace {

using repro::status::Code;
using repro::status::Status;

}  // namespace

// The session object behind the opaque handle. Single-caller except for
// the deadline/cancel fields, which gg_cancel may touch from another
// thread under `mu`.
struct gg_ctx {
  repro::graph::Graph graph;
  bool has_graph = false;

  repro::attack::AttackResult result;
  bool has_result = false;
  std::string result_name;

  std::unique_ptr<repro::nn::Gcn> model;
  repro::nn::Gcn::Options model_options;
  int model_in_dim = 0;
  int model_classes = 0;

  std::mutex mu;  // guards the four fields below
  double budget_ms = 0.0;
  repro::status::Deadline active;  // armed for the operation in flight
  bool op_in_flight = false;
  bool pending_cancel = false;

  std::string last_error;
};

namespace {

gg_status MapCode(Code code) {
  switch (code) {
    case Code::kOk:
      return GG_OK;
    case Code::kInvalidInput:
      return GG_INVALID_INPUT;
    case Code::kNumericFault:
      return GG_NUMERIC_FAULT;
    case Code::kDeadlineExceeded:
      return GG_DEADLINE_EXCEEDED;
    case Code::kCancelled:
      return GG_CANCELLED;
    case Code::kIoError:
      return GG_IO_ERROR;
    case Code::kResourceExhausted:
      return GG_RESOURCE_EXHAUSTED;
    case Code::kUnavailable:
      return GG_UNAVAILABLE;
  }
  return GG_INTERNAL;
}

// Records `status` as the context's last error (cleared when OK) and
// returns the mapped code.
gg_status Settle(gg_ctx* ctx, const Status& status) {
  if (status.ok()) {
    ctx->last_error.clear();
    return GG_OK;
  }
  ctx->last_error = status.ToString();
  return MapCode(status.code());
}

gg_status Fail(gg_ctx* ctx, gg_status code, const std::string& message) {
  if (ctx != nullptr) ctx->last_error = message;
  return code;
}

// Catch-all tail of every entry point: store a diagnostic and report
// GG_INTERNAL. Never throws.
gg_status Caught(gg_ctx* ctx, const char* where) {
  if (ctx != nullptr) {
    ctx->last_error =
        std::string("INTERNAL: unexpected exception in ") + where;
  }
  return GG_INTERNAL;
}

// Arms the per-operation deadline: the configured budget (if any) made
// cancellable, with a pending gg_cancel applied. Returns the copy the
// operation should thread through its options (shares the cancel flag
// with ctx->active, so gg_cancel reaches the running loop).
repro::status::Deadline ArmDeadline(gg_ctx* ctx) {
  std::lock_guard<std::mutex> lock(ctx->mu);
  ctx->active = ctx->budget_ms > 0.0
                    ? repro::status::Deadline::AfterSeconds(
                          ctx->budget_ms / 1000.0)
                    : repro::status::Deadline::Cancellable();
  if (ctx->pending_cancel) {
    ctx->active.RequestCancel();
    ctx->pending_cancel = false;
  }
  ctx->op_in_flight = true;
  return ctx->active;
}

struct OpGuard {
  explicit OpGuard(gg_ctx* ctx) : ctx_(ctx) {}
  ~OpGuard() {
    std::lock_guard<std::mutex> lock(ctx_->mu);
    ctx_->op_in_flight = false;
  }
  gg_ctx* ctx_;
};

std::string CStr(const char* s) { return s == nullptr ? "" : s; }

repro::eval::AttackerSpec SpecFromOptions(
    const gg_attack_options& options) {
  repro::eval::AttackerSpec spec;
  spec.name = CStr(options.attacker);
  spec.lambda = options.lambda;
  spec.norm_p = options.norm_p;
  spec.layers = options.layers;
  spec.batch_size = options.batch_size;
  spec.mode = CStr(options.mode);
  spec.checkpoint_path = CStr(options.checkpoint_path);
  spec.checkpoint_every = options.checkpoint_every;
  return spec;
}

// Hex-float (%a) rendering: lossless and locale-independent, so model
// files round-trip bitwise.
void AppendHexFloat(std::string* out, float v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
  out->append(buf);
}

}  // namespace

extern "C" const char* gg_status_name(gg_status status) {
  try {
    switch (status) {
      case GG_OK:
        return "OK";
      case GG_INVALID_INPUT:
        return "INVALID_INPUT";
      case GG_NUMERIC_FAULT:
        return "NUMERIC_FAULT";
      case GG_DEADLINE_EXCEEDED:
        return "DEADLINE_EXCEEDED";
      case GG_CANCELLED:
        return "CANCELLED";
      case GG_IO_ERROR:
        return "IO_ERROR";
      case GG_RESOURCE_EXHAUSTED:
        return "RESOURCE_EXHAUSTED";
      case GG_UNAVAILABLE:
        return "UNAVAILABLE";
      case GG_INTERNAL:
        return "INTERNAL";
    }
    return "UNKNOWN";
  } catch (...) {
    return "UNKNOWN";
  }
}

extern "C" int32_t gg_status_is_transient(gg_status status) {
  try {
    switch (status) {
      case GG_NUMERIC_FAULT:
      case GG_IO_ERROR:
      case GG_RESOURCE_EXHAUSTED:
      case GG_UNAVAILABLE:
        return 1;
      case GG_OK:
      case GG_INVALID_INPUT:
      case GG_DEADLINE_EXCEEDED:
      case GG_CANCELLED:
      case GG_INTERNAL:
        return 0;
    }
    return 0;
  } catch (...) {
    return 0;
  }
}

extern "C" gg_ctx* gg_init(void) {
  try {
    return new gg_ctx();
  } catch (...) {
    return nullptr;
  }
}

extern "C" void gg_free(gg_ctx* ctx) {
  try {
    delete ctx;
  } catch (...) {
    // Destruction must never propagate into C callers.
  }
}

extern "C" const char* gg_last_error(const gg_ctx* ctx) {
  try {
    return ctx == nullptr ? "" : ctx->last_error.c_str();
  } catch (...) {
    return "";
  }
}

extern "C" gg_status gg_load_graph(gg_ctx* ctx, const char* path) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (path == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_load_graph: path is NULL");
    }
    repro::status::StatusOr<repro::graph::Graph> loaded =
        repro::graph::LoadGraph(path);
    if (!loaded.ok()) return Settle(ctx, loaded.status());
    ctx->graph = std::move(loaded).value();
    ctx->has_graph = true;
    ctx->has_result = false;
    return Settle(ctx, Status::Ok());
  } catch (...) {
    return Caught(ctx, "gg_load_graph");
  }
}

extern "C" gg_status gg_save_graph(gg_ctx* ctx, const char* path) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (path == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_save_graph: path is NULL");
    }
    if (!ctx->has_graph) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_save_graph: no graph loaded");
    }
    return Settle(ctx, repro::graph::SaveGraph(ctx->graph, path));
  } catch (...) {
    return Caught(ctx, "gg_save_graph");
  }
}

extern "C" gg_status gg_set_graph_csr(gg_ctx* ctx, int32_t num_nodes,
                                      int32_t num_classes,
                                      const int64_t* row_ptr,
                                      const int32_t* col_idx,
                                      int32_t num_features,
                                      const float* features,
                                      const int32_t* labels) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (num_nodes < 0 || num_classes <= 0 || num_features < 0) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_set_graph_csr: negative dimension");
    }
    if (row_ptr == nullptr || (row_ptr[num_nodes] > 0 && col_idx == nullptr)) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_set_graph_csr: NULL adjacency buffer");
    }
    if (num_features > 0 && features == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_set_graph_csr: NULL feature buffer");
    }
    if (row_ptr[0] != 0) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_set_graph_csr: row_ptr[0] != 0");
    }
    std::vector<std::tuple<int, int, float>> triplets;
    triplets.reserve(static_cast<size_t>(row_ptr[num_nodes]));
    for (int32_t u = 0; u < num_nodes; ++u) {
      if (row_ptr[u + 1] < row_ptr[u]) {
        return Fail(ctx, GG_INVALID_INPUT,
                    "gg_set_graph_csr: row_ptr not nondecreasing");
      }
      for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
        const int32_t v = col_idx[k];
        if (v < 0 || v >= num_nodes) {
          return Fail(ctx, GG_INVALID_INPUT,
                      "gg_set_graph_csr: column index out of range");
        }
        if (v == u) {
          return Fail(ctx, GG_INVALID_INPUT,
                      "gg_set_graph_csr: self-loop rejected");
        }
        triplets.emplace_back(u, v, 1.0f);
      }
    }
    repro::graph::Graph g;
    g.num_nodes = num_nodes;
    g.num_classes = num_classes;
    g.adjacency = repro::linalg::SparseMatrix::FromTriplets(
        num_nodes, num_nodes, triplets);
    for (const auto& [u, v, w] : triplets) {
      (void)w;
      if (g.adjacency.At(v, u) <= 0.0f) {
        return Fail(ctx, GG_INVALID_INPUT,
                    "gg_set_graph_csr: adjacency is not symmetric");
      }
    }
    g.features = repro::linalg::Matrix(num_nodes, num_features);
    if (num_features > 0) {
      std::memcpy(g.features.data(), features,
                  static_cast<size_t>(num_nodes) * num_features *
                      sizeof(float));
    }
    g.labels.assign(num_nodes, 0);
    if (labels != nullptr) {
      for (int32_t v = 0; v < num_nodes; ++v) {
        if (labels[v] < 0 || labels[v] >= num_classes) {
          return Fail(ctx, GG_INVALID_INPUT,
                      "gg_set_graph_csr: label out of range");
        }
        g.labels[v] = labels[v];
      }
    }
    g.name = "csr";
    ctx->graph = std::move(g);
    ctx->has_graph = true;
    ctx->has_result = false;
    return Settle(ctx, Status::Ok());
  } catch (...) {
    return Caught(ctx, "gg_set_graph_csr");
  }
}

extern "C" gg_status gg_assign_splits(gg_ctx* ctx, double train_frac,
                                      double val_frac, uint64_t seed) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (!ctx->has_graph) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_assign_splits: no graph loaded");
    }
    if (train_frac < 0.0 || val_frac < 0.0 ||
        train_frac + val_frac > 1.0) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_assign_splits: fractions out of range");
    }
    repro::linalg::Rng rng(seed);
    repro::graph::AssignSplits(&ctx->graph, train_frac, val_frac, &rng);
    return Settle(ctx, Status::Ok());
  } catch (...) {
    return Caught(ctx, "gg_assign_splits");
  }
}

extern "C" int32_t gg_num_nodes(const gg_ctx* ctx) {
  try {
    return (ctx != nullptr && ctx->has_graph) ? ctx->graph.num_nodes : 0;
  } catch (...) {
    return 0;
  }
}

extern "C" int64_t gg_num_edges(const gg_ctx* ctx) {
  try {
    return (ctx != nullptr && ctx->has_graph) ? ctx->graph.NumEdges() : 0;
  } catch (...) {
    return 0;
  }
}

extern "C" const char* gg_graph_name(const gg_ctx* ctx) {
  try {
    return (ctx != nullptr && ctx->has_graph) ? ctx->graph.name.c_str()
                                              : "";
  } catch (...) {
    return "";
  }
}

extern "C" void gg_attack_options_init(gg_attack_options* options) {
  try {
    if (options == nullptr) return;
    options->attacker = "peega";
    options->rate = 0.1;
    options->feature_cost = 1.0;
    options->lambda = 0.01;
    options->norm_p = 2;
    options->layers = 2;
    options->batch_size = 16;
    options->mode = "both";
    options->checkpoint_path = nullptr;
    options->checkpoint_every = 16;
    options->seed = 42;
  } catch (...) {
    // Plain stores cannot throw; keep the boundary contract anyway.
  }
}

extern "C" gg_status gg_attack(gg_ctx* ctx,
                               const gg_attack_options* options) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (options == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_attack: options is NULL");
    }
    if (!ctx->has_graph) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_attack: no graph loaded");
    }
    std::unique_ptr<repro::attack::Attacker> attacker =
        repro::eval::MakeAttackerByName(SpecFromOptions(*options));
    if (attacker == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_attack: unknown attacker \"" +
                      CStr(options->attacker) + "\"");
    }
    repro::attack::AttackOptions attack_options;
    attack_options.perturbation_rate = options->rate;
    attack_options.feature_cost = options->feature_cost;
    attack_options.deadline = ArmDeadline(ctx);
    OpGuard guard(ctx);
    repro::linalg::Rng rng(options->seed);
    repro::attack::AttackResult result =
        attacker->Attack(ctx->graph, attack_options, &rng);
    if (!result.status.ok() &&
        result.status.code() == Code::kInvalidInput) {
      // Nothing was attacked (e.g. a rejected checkpoint): leave the
      // current graph and any previous result untouched.
      return Settle(ctx, result.status);
    }
    ctx->result_name = attacker->name();
    ctx->graph = result.poisoned;
    ctx->result = std::move(result);
    ctx->has_result = true;
    return Settle(ctx, ctx->result.status);
  } catch (...) {
    return Caught(ctx, "gg_attack");
  }
}

extern "C" int32_t gg_num_flips(const gg_ctx* ctx) {
  try {
    if (ctx == nullptr || !ctx->has_result) return 0;
    return static_cast<int32_t>(ctx->result.flips.size());
  } catch (...) {
    return 0;
  }
}

extern "C" gg_status gg_get_flip(const gg_ctx* ctx, int32_t index,
                                 gg_flip* out) {
  try {
    if (ctx == nullptr || out == nullptr) return GG_INVALID_INPUT;
    if (!ctx->has_result || index < 0 ||
        index >= static_cast<int32_t>(ctx->result.flips.size())) {
      return GG_INVALID_INPUT;
    }
    const repro::attack::Flip& flip = ctx->result.flips[index];
    out->is_feature = flip.is_feature ? 1 : 0;
    out->a = flip.a;
    out->b = flip.b;
    return GG_OK;
  } catch (...) {
    return Caught(nullptr, "gg_get_flip");
  }
}

extern "C" int32_t gg_edge_modifications(const gg_ctx* ctx) {
  try {
    return (ctx != nullptr && ctx->has_result)
               ? ctx->result.edge_modifications
               : 0;
  } catch (...) {
    return 0;
  }
}

extern "C" int32_t gg_feature_modifications(const gg_ctx* ctx) {
  try {
    return (ctx != nullptr && ctx->has_result)
               ? ctx->result.feature_modifications
               : 0;
  } catch (...) {
    return 0;
  }
}

extern "C" double gg_elapsed_seconds(const gg_ctx* ctx) {
  try {
    return (ctx != nullptr && ctx->has_result)
               ? ctx->result.elapsed_seconds
               : 0.0;
  } catch (...) {
    return 0.0;
  }
}

extern "C" double gg_final_objective(const gg_ctx* ctx) {
  try {
    return (ctx != nullptr && ctx->has_result)
               ? ctx->result.final_objective
               : 0.0;
  } catch (...) {
    return 0.0;
  }
}

extern "C" const char* gg_result_name(const gg_ctx* ctx) {
  try {
    return (ctx != nullptr && ctx->has_result)
               ? ctx->result_name.c_str()
               : "";
  } catch (...) {
    return "";
  }
}

extern "C" gg_status gg_defend(gg_ctx* ctx, const char* defender,
                               uint64_t seed, gg_defense_report* out) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (out == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_defend: out is NULL");
    }
    if (!ctx->has_graph) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_defend: no graph loaded");
    }
    std::unique_ptr<repro::defense::Defender> d =
        repro::eval::MakeDefenderByName(CStr(defender));
    if (d == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_defend: unknown defender \"" + CStr(defender) +
                      "\"");
    }
    repro::nn::TrainOptions train;
    train.deadline = ArmDeadline(ctx);
    OpGuard guard(ctx);
    repro::linalg::Rng rng(seed);
    const repro::defense::DefenseReport report =
        d->Run(ctx->graph, train, &rng);
    out->test_accuracy = report.test_accuracy;
    out->val_accuracy = report.val_accuracy;
    out->train_seconds = report.train_seconds;
    return Settle(ctx, report.status);
  } catch (...) {
    return Caught(ctx, "gg_defend");
  }
}

extern "C" gg_status gg_eval(gg_ctx* ctx, const char* defender,
                             int32_t runs, uint64_t seed,
                             gg_eval_result* out) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (out == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_eval: out is NULL");
    }
    if (!ctx->has_graph) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_eval: no graph loaded");
    }
    if (runs <= 0) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_eval: runs must be >= 1");
    }
    std::unique_ptr<repro::defense::Defender> d =
        repro::eval::MakeDefenderByName(CStr(defender));
    if (d == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_eval: unknown defender \"" + CStr(defender) + "\"");
    }
    repro::eval::PipelineOptions pipeline;
    pipeline.runs = runs;
    pipeline.seed = seed;
    pipeline.train.deadline = ArmDeadline(ctx);
    OpGuard guard(ctx);
    const repro::eval::DefenseEvaluation evaluation =
        repro::eval::EvaluateDefense(d.get(), ctx->graph, pipeline);
    out->accuracy_mean = evaluation.accuracy.mean;
    out->accuracy_std = evaluation.accuracy.std;
    out->mean_train_seconds = evaluation.mean_train_seconds;
    out->ok_runs = evaluation.ok_runs;
    return Settle(ctx, evaluation.status);
  } catch (...) {
    return Caught(ctx, "gg_eval");
  }
}

extern "C" gg_status gg_train_model(gg_ctx* ctx, int32_t hidden_dim,
                                    int32_t num_layers, uint64_t seed) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (!ctx->has_graph) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_train_model: no graph loaded");
    }
    if (hidden_dim <= 0 || num_layers <= 0) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_train_model: hidden_dim and num_layers must be >= 1");
    }
    if (ctx->graph.train_nodes.empty()) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_train_model: graph has no training split "
                  "(call gg_assign_splits)");
    }
    repro::nn::Gcn::Options options;
    options.hidden_dim = hidden_dim;
    options.num_layers = num_layers;
    repro::linalg::Rng rng(seed);
    auto model = std::make_unique<repro::nn::Gcn>(
        ctx->graph.features.cols(), ctx->graph.num_classes, options,
        &rng);
    repro::nn::TrainOptions train;
    train.deadline = ArmDeadline(ctx);
    OpGuard guard(ctx);
    const repro::nn::TrainReport report = repro::nn::TrainNodeClassifier(
        model.get(), ctx->graph, train, &rng);
    ctx->model = std::move(model);
    ctx->model_options = options;
    ctx->model_in_dim = ctx->graph.features.cols();
    ctx->model_classes = ctx->graph.num_classes;
    return Settle(ctx, report.status);
  } catch (...) {
    return Caught(ctx, "gg_train_model");
  }
}

extern "C" gg_status gg_model_accuracy(gg_ctx* ctx,
                                       double* out_test_accuracy) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (out_test_accuracy == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_model_accuracy: out is NULL");
    }
    if (ctx->model == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_model_accuracy: no model "
                  "(call gg_train_model or gg_load_model)");
    }
    if (!ctx->has_graph) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_model_accuracy: no graph");
    }
    if (ctx->graph.test_nodes.empty()) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_model_accuracy: graph has no test split");
    }
    if (ctx->graph.features.cols() != ctx->model_in_dim ||
        ctx->graph.num_classes != ctx->model_classes) {
      return Fail(ctx, GG_INVALID_INPUT,
                  "gg_model_accuracy: model/graph shape mismatch");
    }
    // PredictLabels does not Prepare; a freshly loaded model (or a
    // graph swapped by gg_attack) needs its propagation matrix rebuilt.
    ctx->model->Prepare(ctx->graph);
    repro::linalg::Rng rng(1);  // eval mode: dropout off, rng unused
    const std::vector<int> predicted =
        repro::nn::PredictLabels(ctx->model.get(), ctx->graph, &rng);
    int correct = 0;
    for (const int v : ctx->graph.test_nodes) {
      if (predicted[v] == ctx->graph.labels[v]) ++correct;
    }
    *out_test_accuracy =
        static_cast<double>(correct) / ctx->graph.test_nodes.size();
    return Settle(ctx, Status::Ok());
  } catch (...) {
    return Caught(ctx, "gg_model_accuracy");
  }
}

extern "C" gg_status gg_save_model(gg_ctx* ctx, const char* path) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (path == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_save_model: path is NULL");
    }
    if (ctx->model == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_save_model: no model");
    }
    std::string text = "GGMODEL 1\n";
    text += std::to_string(ctx->model_in_dim) + " " +
            std::to_string(ctx->model_classes) + " " +
            std::to_string(ctx->model_options.hidden_dim) + " " +
            std::to_string(ctx->model_options.num_layers) + " " +
            (ctx->model_options.bias ? "1" : "0") + "\n";
    const std::vector<repro::linalg::Matrix*> params =
        ctx->model->Parameters();
    text += std::to_string(params.size()) + "\n";
    for (const repro::linalg::Matrix* m : params) {
      text += "P " + std::to_string(m->rows()) + " " +
              std::to_string(m->cols()) + "\n";
      for (int64_t i = 0; i < m->size(); ++i) {
        AppendHexFloat(&text, m->data()[i]);
        text += (i + 1) % 8 == 0 || i + 1 == m->size() ? "\n" : " ";
      }
      if (m->size() == 0) text += "\n";
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      return Settle(ctx, repro::status::IoError(
                             std::string("gg_save_model: cannot open ") +
                             path));
    }
    out << text;
    out.flush();
    if (!out) {
      return Settle(ctx, repro::status::IoError(
                             std::string("gg_save_model: write failed: ") +
                             path));
    }
    return Settle(ctx, Status::Ok());
  } catch (...) {
    return Caught(ctx, "gg_save_model");
  }
}

extern "C" gg_status gg_load_model(gg_ctx* ctx, const char* path) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    if (path == nullptr) {
      return Fail(ctx, GG_INVALID_INPUT, "gg_load_model: path is NULL");
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Settle(ctx, repro::status::IoError(
                             std::string("gg_load_model: cannot open ") +
                             path));
    }
    const Status malformed = repro::status::InvalidInput(
        std::string("gg_load_model: malformed model file ") + path);
    std::string magic;
    int version = 0;
    if (!(in >> magic >> version) || magic != "GGMODEL" || version != 1) {
      return Settle(ctx, malformed);
    }
    int in_dim = 0, classes = 0, hidden = 0, layers = 0, bias = 0;
    if (!(in >> in_dim >> classes >> hidden >> layers >> bias) ||
        in_dim <= 0 || classes <= 0 || hidden <= 0 || layers <= 0) {
      return Settle(ctx, malformed);
    }
    size_t num_params = 0;
    if (!(in >> num_params) || num_params > 1024) {
      return Settle(ctx, malformed);
    }
    repro::nn::Gcn::Options options;
    options.hidden_dim = hidden;
    options.num_layers = layers;
    options.bias = bias != 0;
    repro::linalg::Rng rng(0);
    auto model =
        std::make_unique<repro::nn::Gcn>(in_dim, classes, options, &rng);
    const std::vector<repro::linalg::Matrix*> params =
        model->Parameters();
    if (params.size() != num_params) return Settle(ctx, malformed);
    for (repro::linalg::Matrix* m : params) {
      std::string tag;
      int rows = 0, cols = 0;
      if (!(in >> tag >> rows >> cols) || tag != "P" ||
          rows != m->rows() || cols != m->cols()) {
        return Settle(ctx, malformed);
      }
      for (int64_t i = 0; i < m->size(); ++i) {
        std::string token;
        if (!(in >> token)) return Settle(ctx, malformed);
        char* end = nullptr;
        const float v = std::strtof(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
          return Settle(ctx, malformed);
        }
        m->data()[i] = v;
      }
    }
    ctx->model = std::move(model);
    ctx->model_options = options;
    ctx->model_in_dim = in_dim;
    ctx->model_classes = classes;
    return Settle(ctx, Status::Ok());
  } catch (...) {
    return Caught(ctx, "gg_load_model");
  }
}

extern "C" gg_status gg_set_deadline_ms(gg_ctx* ctx, double ms) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    std::lock_guard<std::mutex> lock(ctx->mu);
    ctx->budget_ms = ms > 0.0 ? ms : 0.0;
    ctx->last_error.clear();
    return GG_OK;
  } catch (...) {
    return Caught(ctx, "gg_set_deadline_ms");
  }
}

extern "C" gg_status gg_cancel(gg_ctx* ctx) {
  try {
    if (ctx == nullptr) return GG_INVALID_INPUT;
    std::lock_guard<std::mutex> lock(ctx->mu);
    if (ctx->op_in_flight) {
      ctx->active.RequestCancel();
    } else {
      // No operation running: cancel the NEXT one at its first check,
      // so cancel/start races resolve deterministically.
      ctx->pending_cancel = true;
    }
    return GG_OK;
  } catch (...) {
    return Caught(ctx, "gg_cancel");
  }
}
