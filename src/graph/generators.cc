#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "debug/check.h"

namespace repro::graph {

using linalg::Matrix;
using linalg::Rng;

namespace {

// Draws a class assignment with roughly balanced class sizes.
std::vector<int> AssignClasses(int num_nodes, int num_classes, Rng* rng) {
  std::vector<int> labels(num_nodes);
  for (int v = 0; v < num_nodes; ++v) labels[v] = v % num_classes;
  const std::vector<int> perm = rng->Permutation(num_nodes);
  std::vector<int> shuffled(num_nodes);
  for (int v = 0; v < num_nodes; ++v) shuffled[v] = labels[perm[v]];
  return shuffled;
}

// Samples a topology with controllable homophily: each stub attaches to a
// same-class endpoint with probability `homophily`. Node attractiveness
// is heterogeneous (Pareto-ish) to mimic citation-graph degree skew.
std::vector<std::pair<int, int>> SampleEdges(
    int num_nodes, const std::vector<int>& labels, int num_classes,
    double avg_degree, double homophily, double mixed_node_frac,
    double degree_tail, Rng* rng) {
  // Mixed nodes ignore homophily and attach uniformly across classes.
  std::vector<char> mixed(num_nodes, 0);
  for (int v = 0; v < num_nodes; ++v) {
    mixed[v] = rng->Bernoulli(mixed_node_frac) ? 1 : 0;
  }
  // Per-node weight ~ (1-u)^{-degree_tail}; the default 1/3 gives a mild
  // heavy tail, Polblogs-like graphs use a much stronger one.
  std::vector<double> weight(num_nodes);
  for (int v = 0; v < num_nodes; ++v) {
    weight[v] = std::pow(1.0 - rng->Uniform(0.0, 0.999), -degree_tail);
  }
  // Bucket nodes by class, with per-class cumulative weights for sampling.
  std::vector<std::vector<int>> by_class(num_classes);
  for (int v = 0; v < num_nodes; ++v) by_class[labels[v]].push_back(v);
  std::vector<std::vector<double>> cum_by_class(num_classes);
  std::vector<double> class_total(num_classes, 0.0);
  for (int c = 0; c < num_classes; ++c) {
    double acc = 0.0;
    for (int v : by_class[c]) {
      acc += weight[v];
      cum_by_class[c].push_back(acc);
    }
    class_total[c] = acc;
  }
  auto sample_from_class = [&](int c) {
    const double r = rng->Uniform(0.0, class_total[c]);
    const auto it = std::lower_bound(cum_by_class[c].begin(),
                                     cum_by_class[c].end(), r);
    const size_t idx = std::min<size_t>(it - cum_by_class[c].begin(),
                                        by_class[c].size() - 1);
    return by_class[c][idx];
  };

  const int64_t target_edges =
      static_cast<int64_t>(avg_degree * num_nodes / 2.0);
  std::set<std::pair<int, int>> edges;
  int64_t attempts = 0;
  const int64_t max_attempts = target_edges * 50;
  while (static_cast<int64_t>(edges.size()) < target_edges &&
         attempts++ < max_attempts) {
    const int u = static_cast<int>(rng->UniformInt(0, num_nodes - 1));
    int v;
    const double p_same =
        mixed[u] ? 1.0 / num_classes : homophily;
    if (rng->Bernoulli(p_same)) {
      v = sample_from_class(labels[u]);
    } else {
      int c = static_cast<int>(rng->UniformInt(0, num_classes - 2));
      if (c >= labels[u]) ++c;  // uniform over the other classes
      v = sample_from_class(c);
    }
    if (u == v) continue;
    edges.insert({std::min(u, v), std::max(u, v)});
  }
  return {edges.begin(), edges.end()};
}

Matrix SampleTopicFeatures(int num_nodes, int num_classes, int feature_dim,
                           const std::vector<int>& labels,
                           double feature_signal, int active_features,
                           double feature_confusion, Rng* rng) {
  Matrix x(num_nodes, feature_dim);
  const int block = feature_dim / num_classes;
  PEEGA_CHECK_GT(block, 0);
  for (int v = 0; v < num_nodes; ++v) {
    // Confused nodes emit the topic of a random class.
    int topic = labels[v];
    if (feature_confusion > 0.0 && rng->Bernoulli(feature_confusion)) {
      topic = static_cast<int>(rng->UniformInt(0, num_classes - 1));
    }
    const int lo = topic * block;
    for (int k = 0; k < active_features; ++k) {
      int dim;
      if (rng->Bernoulli(feature_signal)) {
        dim = lo + static_cast<int>(rng->UniformInt(0, block - 1));
      } else {
        dim = static_cast<int>(rng->UniformInt(0, feature_dim - 1));
      }
      x(v, dim) = 1.0f;
    }
  }
  return x;
}

}  // namespace

Graph MakeSynthetic(const SyntheticConfig& config, Rng* rng) {
  PEEGA_CHECK_GT(config.num_nodes, config.num_classes);
  Graph g;
  g.name = config.name;
  g.num_nodes = config.num_nodes;
  g.num_classes = config.num_classes;
  g.labels = AssignClasses(config.num_nodes, config.num_classes, rng);
  const auto edges =
      SampleEdges(config.num_nodes, g.labels, config.num_classes,
                  config.avg_degree, config.homophily,
                  config.mixed_node_frac, config.degree_tail, rng);
  g.adjacency = AdjacencyFromEdges(config.num_nodes, edges);
  if (config.identity_features) {
    g.features = Matrix::Identity(config.num_nodes);
  } else {
    g.features = SampleTopicFeatures(
        config.num_nodes, config.num_classes, config.feature_dim, g.labels,
        config.feature_signal, config.active_features,
        config.feature_confusion, rng);
  }
  AssignSplits(&g, config.train_frac, config.val_frac, rng);
  g.CheckInvariants();
  return g;
}

Graph MakeCoraLike(Rng* rng, double scale) {
  SyntheticConfig c;
  c.name = "cora-like";
  c.num_nodes = static_cast<int>(500 * scale);   // paper: 2485
  c.num_classes = 7;
  c.feature_dim = static_cast<int>(290 * scale); // paper: 1433
  c.avg_degree = 4.1;                            // paper: 2|E|/N ≈ 4.08
  c.homophily = 0.85;          // measured edge homophily lands near 0.73
  c.feature_signal = 0.60;
  c.active_features = 10;
  c.feature_confusion = 0.05;
  c.mixed_node_frac = 0.18;
  return MakeSynthetic(c, rng);
}

Graph MakeCiteseerLike(Rng* rng, double scale) {
  SyntheticConfig c;
  c.name = "citeseer-like";
  c.num_nodes = static_cast<int>(420 * scale);   // paper: 2110
  c.num_classes = 6;
  c.feature_dim = static_cast<int>(360 * scale); // paper: 3703 (scaled harder)
  c.avg_degree = 3.5;                            // paper ≈ 3.48
  c.homophily = 0.83;          // measured edge homophily lands near 0.70
  c.feature_signal = 0.55;
  c.active_features = 12;
  c.feature_confusion = 0.06;
  c.mixed_node_frac = 0.20;
  return MakeSynthetic(c, rng);
}

Graph MakePolblogsLike(Rng* rng, double scale) {
  SyntheticConfig c;
  c.name = "polblogs-like";
  c.num_nodes = static_cast<int>(240 * scale);   // paper: 1222
  c.num_classes = 2;
  // The real Polblogs has mean degree 27.4 but a heavy-tailed degree
  // distribution; the scaled variant keeps it the densest of the three
  // datasets while preserving the fragile low-degree population that
  // attacks exploit.
  c.avg_degree = 14.0;
  c.degree_tail = 0.85;        // heavy tail: median degree far below mean
  c.homophily = 0.93;          // measured edge homophily lands near 0.91
  c.mixed_node_frac = 0.05;
  c.identity_features = true;
  return MakeSynthetic(c, rng);
}

Graph MakePubmedLike(Rng* rng, double scale) {
  SyntheticConfig c;
  c.name = "pubmed-like";
  c.num_nodes = static_cast<int>(600 * scale);
  c.num_classes = 3;
  c.feature_dim = static_cast<int>(150 * scale);
  c.avg_degree = 4.5;
  c.homophily = 0.80;
  c.feature_signal = 0.85;
  c.active_features = 10;
  return MakeSynthetic(c, rng);
}

Graph MakeBlogLike(Rng* rng, double scale) {
  SyntheticConfig c;
  c.name = "blog-like";
  c.num_nodes = static_cast<int>(400 * scale);
  c.num_classes = 4;
  c.feature_dim = static_cast<int>(200 * scale);
  c.avg_degree = 8.0;
  c.homophily = 0.72;
  c.feature_signal = 0.7;
  c.active_features = 10;
  return MakeSynthetic(c, rng);
}

}  // namespace repro::graph
