#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "debug/check.h"
#include "linalg/ops.h"
#include "linalg/random.h"

namespace repro::graph {

using linalg::Matrix;
using linalg::SparseMatrix;

std::vector<int> Graph::Neighbors(int v) const {
  PEEGA_CHECK_GE(v, 0);
  PEEGA_CHECK_LT(v, num_nodes);
  const auto& row_ptr = adjacency.row_ptr();
  const auto& col_idx = adjacency.col_idx();
  return std::vector<int>(col_idx.begin() + row_ptr[v],
                          col_idx.begin() + row_ptr[v + 1]);
}

std::vector<std::pair<int, int>> Graph::EdgeList() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(adjacency.nnz() / 2);
  const auto& row_ptr = adjacency.row_ptr();
  const auto& col_idx = adjacency.col_idx();
  for (int u = 0; u < num_nodes; ++u) {
    for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
      const int v = col_idx[k];
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Matrix Graph::OneHotLabels() const {
  Matrix y(num_nodes, num_classes);
  for (int v = 0; v < num_nodes; ++v) {
    if (labels[v] >= 0) y(v, labels[v]) = 1.0f;
  }
  return y;
}

std::vector<float> Graph::NodeMask(const std::vector<int>& nodes) const {
  std::vector<float> mask(num_nodes, 0.0f);
  for (int v : nodes) {
    PEEGA_CHECK_GE(v, 0);
    PEEGA_CHECK_LT(v, num_nodes);
    mask[v] = 1.0f;
  }
  return mask;
}

Graph Graph::WithAdjacency(SparseMatrix new_adjacency) const {
  Graph g = *this;
  g.adjacency = std::move(new_adjacency);
  return g;
}

Graph Graph::WithFeatures(Matrix new_features) const {
  Graph g = *this;
  g.features = std::move(new_features);
  return g;
}

void Graph::CheckInvariants() const {
  PEEGA_CHECK_EQ(adjacency.rows(), num_nodes);
  PEEGA_CHECK_EQ(adjacency.cols(), num_nodes);
  PEEGA_CHECK_EQ(features.rows(), num_nodes);
  PEEGA_CHECK_EQ(static_cast<int>(labels.size()), num_nodes);
  const auto& row_ptr = adjacency.row_ptr();
  const auto& col_idx = adjacency.col_idx();
  const auto& values = adjacency.values();
  for (int u = 0; u < num_nodes; ++u) {
    for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
      const int v = col_idx[k];
      PEEGA_CHECK_NE(u, v);                          // no self-loops
      PEEGA_CHECK(std::fabs(values[k] - 1.0f) < 1e-6);  // binary
      PEEGA_CHECK(adjacency.At(v, u) > 0.0f);        // symmetric
    }
  }
  for (int v = 0; v < num_nodes; ++v) {
    PEEGA_CHECK_GE(labels[v], -1);
    PEEGA_CHECK_LT(labels[v], num_classes);
  }
}

SparseMatrix GcnNormalize(const SparseMatrix& adjacency) {
  return GcnNormalizeWeighted(adjacency, 1.0f);
}

SparseMatrix GcnNormalizeWeighted(const SparseMatrix& adjacency,
                                  float self_loop_weight) {
  const int n = adjacency.rows();
  PEEGA_CHECK_EQ(n, adjacency.cols());
  std::vector<float> degree(n, self_loop_weight);
  const auto& row_ptr = adjacency.row_ptr();
  const auto& values = adjacency.values();
  for (int u = 0; u < n; ++u) {
    for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
      degree[u] += values[k];
    }
  }
  const std::vector<float> inv_sqrt = linalg::RSqrt(degree);
  std::vector<std::tuple<int, int, float>> triplets;
  triplets.reserve(adjacency.nnz() + n);
  const auto& col_idx = adjacency.col_idx();
  for (int u = 0; u < n; ++u) {
    if (self_loop_weight > 0.0f) {
      triplets.emplace_back(u, u,
                            self_loop_weight * inv_sqrt[u] * inv_sqrt[u]);
    }
    for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
      const int v = col_idx[k];
      triplets.emplace_back(u, v, values[k] * inv_sqrt[u] * inv_sqrt[v]);
    }
  }
  return SparseMatrix::FromTriplets(n, n, triplets);
}

SparseMatrix RowNormalize(const SparseMatrix& adjacency) {
  const int n = adjacency.rows();
  std::vector<float> degree(n, 1.0f);
  const auto& row_ptr = adjacency.row_ptr();
  const auto& values = adjacency.values();
  for (int u = 0; u < n; ++u) {
    for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
      degree[u] += values[k];
    }
  }
  std::vector<std::tuple<int, int, float>> triplets;
  triplets.reserve(adjacency.nnz() + n);
  const auto& col_idx = adjacency.col_idx();
  for (int u = 0; u < n; ++u) {
    const float inv = 1.0f / degree[u];
    triplets.emplace_back(u, u, inv);
    for (int64_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
      triplets.emplace_back(u, col_idx[k], values[k] * inv);
    }
  }
  return SparseMatrix::FromTriplets(n, n, triplets);
}

SparseMatrix KHopAdjacency(const SparseMatrix& adjacency, int k) {
  PEEGA_CHECK_GE(k, 1);
  const int n = adjacency.rows();
  std::vector<std::tuple<int, int, float>> triplets;
  std::vector<int> dist(n, -1);
  std::vector<int> touched;
  for (int src = 0; src < n; ++src) {
    // BFS truncated at depth k.
    std::queue<int> frontier;
    frontier.push(src);
    dist[src] = 0;
    touched.clear();
    touched.push_back(src);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      if (dist[u] >= k) continue;
      const auto& row_ptr = adjacency.row_ptr();
      const auto& col_idx = adjacency.col_idx();
      for (int64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
        const int v = col_idx[e];
        if (dist[v] != -1) continue;
        dist[v] = dist[u] + 1;
        touched.push_back(v);
        frontier.push(v);
        triplets.emplace_back(src, v, 1.0f);
      }
    }
    for (int v : touched) dist[v] = -1;
  }
  return SparseMatrix::FromTriplets(n, n, triplets);
}

SparseMatrix AdjacencyFromEdges(
    int num_nodes, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::tuple<int, int, float>> triplets;
  triplets.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    PEEGA_CHECK_NE(u, v);
    triplets.emplace_back(u, v, 1.0f);
    triplets.emplace_back(v, u, 1.0f);
  }
  SparseMatrix adj =
      SparseMatrix::FromTriplets(num_nodes, num_nodes, triplets);
  // Clamp duplicate edges back to 1.
  for (float& v : adj.mutable_values()) v = v > 0.0f ? 1.0f : 0.0f;
  return adj;
}

SparseMatrix WithFlips(const linalg::SparseMatrix& adjacency,
                       const std::vector<std::pair<int, int>>& flips) {
  const int n = adjacency.rows();
  PEEGA_CHECK_EQ(n, adjacency.cols());
  // Directed toggle keys, parity-cancelled: flipping a pair twice is the
  // identity, so only keys with an odd count survive.
  std::vector<int64_t> keys;
  keys.reserve(flips.size() * 2);
  for (const auto& [u, v] : flips) {
    PEEGA_CHECK_NE(u, v) << " — self-loop flips are not valid edges";
    PEEGA_CHECK_GE(u, 0);
    PEEGA_CHECK_LT(u, n);
    PEEGA_CHECK_GE(v, 0);
    PEEGA_CHECK_LT(v, n);
    keys.push_back(static_cast<int64_t>(u) * n + v);
    keys.push_back(static_cast<int64_t>(v) * n + u);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<int64_t> toggles;
  toggles.reserve(keys.size());
  for (size_t i = 0; i < keys.size();) {
    size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    if ((j - i) % 2 == 1) toggles.push_back(keys[i]);
    i = j;
  }

  // Per-row sorted merge of the clean columns with the row's toggles:
  // a toggle matching a stored column removes it, any other toggle
  // inserts. Emitting row-major (row, sorted col) triplets with value
  // 1.0f reproduces DenseToAdjacency's output exactly.
  const auto& row_ptr = adjacency.row_ptr();
  const auto& col_idx = adjacency.col_idx();
  std::vector<std::tuple<int, int, float>> triplets;
  triplets.reserve(static_cast<size_t>(adjacency.nnz()) + toggles.size());
  size_t t = 0;
  for (int u = 0; u < n; ++u) {
    const int64_t row_end = static_cast<int64_t>(u) * n + n;
    int64_t k = row_ptr[u];
    while (k < row_ptr[u + 1] || (t < toggles.size() && toggles[t] < row_end)) {
      const int64_t have =
          k < row_ptr[u + 1] ? static_cast<int64_t>(u) * n + col_idx[k]
                             : row_end;
      const int64_t want = t < toggles.size() && toggles[t] < row_end
                               ? toggles[t]
                               : row_end;
      if (have < want) {
        triplets.emplace_back(u, col_idx[k], 1.0f);  // untouched edge
        ++k;
      } else if (want < have) {
        triplets.emplace_back(u, static_cast<int>(want - static_cast<int64_t>(u) * n),
                              1.0f);  // added edge
        ++t;
      } else {
        ++k;  // removed edge
        ++t;
      }
    }
  }
  return SparseMatrix::FromTriplets(n, n, triplets);
}

SparseMatrix CsrFlipEdge(const linalg::SparseMatrix& adjacency, int u,
                         int v) {
  return WithFlips(adjacency, {{u, v}});
}

void AssignSplits(Graph* g, double train_frac, double val_frac,
                  linalg::Rng* rng) {
  const std::vector<int> perm = rng->Permutation(g->num_nodes);
  const int n_train = static_cast<int>(train_frac * g->num_nodes);
  const int n_val = static_cast<int>(val_frac * g->num_nodes);
  g->train_nodes.assign(perm.begin(), perm.begin() + n_train);
  g->val_nodes.assign(perm.begin() + n_train,
                      perm.begin() + n_train + n_val);
  g->test_nodes.assign(perm.begin() + n_train + n_val, perm.end());
}

}  // namespace repro::graph
