#ifndef PEEGA_GRAPH_GENERATORS_H_
#define PEEGA_GRAPH_GENERATORS_H_

#include <string>

#include "graph/graph.h"
#include "linalg/random.h"

namespace repro::graph {

/// Configuration of the calibrated synthetic generator that substitutes
/// for the paper's real datasets (Cora / Citeseer / Polblogs are not
/// redistributable here; see DESIGN.md for the substitution argument).
///
/// Topology is a degree-heterogeneous stochastic block model: each node
/// draws an expected degree from a power-law-ish distribution and attaches
/// to same-class nodes with probability proportional to `homophily` and to
/// different-class nodes otherwise. Features are class-conditional binary
/// "topic" indicators: class c owns a block of feature dimensions; each
/// node fires `active_features` dimensions, drawn from its class block
/// with probability `feature_signal` and uniformly otherwise. This makes
/// intra-class feature similarity exceed inter-class similarity, matching
/// the property the paper's defenders (Jaccard, GNAT feature graph) rely
/// on.
struct SyntheticConfig {
  std::string name = "synthetic";
  int num_nodes = 500;
  int num_classes = 5;
  int feature_dim = 300;
  double avg_degree = 4.0;
  /// Probability that a generated edge connects same-class endpoints.
  /// The paper's datasets have >= 0.70 (Fig. 1).
  double homophily = 0.81;
  /// Probability that an active feature comes from the class topic block.
  double feature_signal = 0.8;
  int active_features = 12;
  /// Fraction of nodes whose feature topic is drawn from a RANDOM class
  /// (misleading features), mimicking the label-noise-like hardness of
  /// real citation graphs where text does not determine the label.
  double feature_confusion = 0.0;
  /// Fraction of "mixed" nodes that attach uniformly across classes
  /// (locally heterophilous regions found in real graphs).
  double mixed_node_frac = 0.0;
  /// Exponent of the heavy-tailed node-attractiveness distribution
  /// (weight ~ (1-u)^{-degree_tail}); larger = more skewed degrees.
  /// Polblogs-like graphs use a strong tail: the real Polblogs has mean
  /// degree 27 but median ~3, and those low-degree nodes are what make
  /// it attackable.
  double degree_tail = 1.0 / 3.0;
  /// Polblogs-style identity features (X = I); overrides the topic model.
  bool identity_features = false;
  double train_frac = 0.1;
  double val_frac = 0.1;
};

/// Generates a graph from `config`. Deterministic given the RNG state.
Graph MakeSynthetic(const SyntheticConfig& config, linalg::Rng* rng);

/// The three evaluation datasets of the paper, calibrated to Tab. III and
/// shrunk by default for single-core runs. `scale` = 1 gives the CI size;
/// `scale` = 5 approximately matches the paper's node counts.
Graph MakeCoraLike(linalg::Rng* rng, double scale = 1.0);
Graph MakeCiteseerLike(linalg::Rng* rng, double scale = 1.0);
Graph MakePolblogsLike(linalg::Rng* rng, double scale = 1.0);

/// Two extra homophilous datasets for the five-dataset homophily figure
/// (Fig. 1 also shows Pubmed- and ACM-style graphs).
Graph MakePubmedLike(linalg::Rng* rng, double scale = 1.0);
Graph MakeBlogLike(linalg::Rng* rng, double scale = 1.0);

}  // namespace repro::graph

#endif  // PEEGA_GRAPH_GENERATORS_H_
