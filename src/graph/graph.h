#ifndef PEEGA_GRAPH_GRAPH_H_
#define PEEGA_GRAPH_GRAPH_H_

#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/random.h"
#include "linalg/sparse.h"

namespace repro::graph {

/// An attributed graph for node classification:
/// G(V, A, X, Y) with train/valid/test splits.
///
/// The adjacency is symmetric, binary, and has no self-loops (self-loops
/// are added by the GCN normalization). Features are binary as in the
/// paper's setting (Sec. II). `labels[v]` is the ground-truth class of v;
/// attackers never read it (the black-box constraint is enforced by the
/// attacker interfaces, which receive only A and X).
struct Graph {
  int num_nodes = 0;
  int num_classes = 0;
  linalg::SparseMatrix adjacency;
  linalg::Matrix features;
  std::vector<int> labels;
  std::vector<int> train_nodes;
  std::vector<int> val_nodes;
  std::vector<int> test_nodes;
  std::string name;

  /// Number of undirected edges ‖A‖₀/2.
  int64_t NumEdges() const { return adjacency.nnz() / 2; }

  /// Neighbor list of v (column indices of row v).
  std::vector<int> Neighbors(int v) const;

  bool HasEdge(int u, int v) const { return adjacency.At(u, v) > 0.0f; }

  /// Undirected edge list with u < v.
  std::vector<std::pair<int, int>> EdgeList() const;

  /// One-hot label matrix (num_nodes x num_classes); unlabeled rows are 0.
  linalg::Matrix OneHotLabels() const;

  /// 0/1 mask over nodes for a node subset.
  std::vector<float> NodeMask(const std::vector<int>& nodes) const;

  /// Returns a copy with a replaced adjacency (features/labels shared by
  /// value copy). Used by attackers and defenders producing new graphs.
  Graph WithAdjacency(linalg::SparseMatrix new_adjacency) const;
  Graph WithFeatures(linalg::Matrix new_features) const;

  /// Validates structural invariants (symmetry, binary entries, no
  /// self-loops, label range); aborts on violation. Cheap enough to call
  /// in tests and after attacks.
  void CheckInvariants() const;
};

/// GCN propagation matrix: A_n = D^{-1/2} (A + I) D^{-1/2}.
linalg::SparseMatrix GcnNormalize(const linalg::SparseMatrix& adjacency);

/// GCN normalization with a weighted self-loop:
/// A_n = D^{-1/2} (A + w I) D^{-1/2}, D = diag(rowsum(A) + w). With w = 1
/// this equals `GcnNormalize`; GNAT's ego graph uses w = k_e + 1 to
/// emphasize each node's own features (Sec. IV-B3).
linalg::SparseMatrix GcnNormalizeWeighted(
    const linalg::SparseMatrix& adjacency, float self_loop_weight);

/// Row-normalized propagation: D^{-1} (A + I). Used by some baselines.
linalg::SparseMatrix RowNormalize(const linalg::SparseMatrix& adjacency);

/// Binary k-hop reachability adjacency (edge u-v iff u reaches v within k
/// hops, u != v). k = 1 returns the input structure.
linalg::SparseMatrix KHopAdjacency(const linalg::SparseMatrix& adjacency,
                                   int k);

/// Builds a symmetric binary adjacency from an undirected edge list.
linalg::SparseMatrix AdjacencyFromEdges(
    int num_nodes, const std::vector<std::pair<int, int>>& edges);

/// Returns `adjacency` with every listed undirected edge toggled: a
/// present (u, v) is removed, an absent one is added, both directions at
/// once. A pair appearing an even number of times cancels (flip-twice
/// identity). Self-loops are rejected. O(nnz + k log k) for k flips —
/// never O(N²) — and the result is bitwise-identical to densifying,
/// applying attack::FlipEdge per pair, and rebuilding with
/// attack::DenseToAdjacency: sorted columns, every value exactly 1.0f.
/// This is the sparse-first commit path: attackers turn their flip list
/// into the poisoned adjacency directly instead of rescanning a dense
/// matrix.
linalg::SparseMatrix WithFlips(
    const linalg::SparseMatrix& adjacency,
    const std::vector<std::pair<int, int>>& flips);

/// Single-edge convenience form of `WithFlips`.
linalg::SparseMatrix CsrFlipEdge(const linalg::SparseMatrix& adjacency,
                                 int u, int v);

/// Assigns random train/val/test splits with the given fractions.
void AssignSplits(Graph* g, double train_frac, double val_frac,
                  linalg::Rng* rng);

}  // namespace repro::graph

#endif  // PEEGA_GRAPH_GRAPH_H_
