#include "graph/streaming_sbm.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "debug/check.h"
#include "linalg/sparse.h"

namespace repro::graph {

using linalg::Matrix;
using linalg::SparseMatrix;

StreamingSbm::StreamingSbm(const StreamingSbmConfig& config)
    : config_(config), rng_(config.seed) {
  PEEGA_CHECK_GE(config_.num_nodes, 2);
  PEEGA_CHECK_GE(config_.num_classes, 1);
  PEEGA_CHECK_LE(config_.num_classes, config_.num_nodes);
  PEEGA_CHECK_GE(config_.feature_dim, config_.num_classes);
  target_edges_ = static_cast<int64_t>(
      std::llround(config_.num_nodes * config_.avg_degree / 2.0));
  // A simple graph on the smallest class block caps how many intra-class
  // edges exist; the caller asking for more than the complete graph is a
  // configuration error, not a sampling problem.
  const int64_t n = config_.num_nodes;
  PEEGA_CHECK_LE(target_edges_, n * (n - 1) / 2);
  neighbors_.resize(static_cast<size_t>(n));
}

int StreamingSbm::Label(int v) const {
  return static_cast<int>(static_cast<int64_t>(v) * config_.num_classes /
                          config_.num_nodes);
}

std::pair<int, int> StreamingSbm::ClassRange(int c) const {
  const int64_t n = config_.num_nodes;
  const int64_t k = config_.num_classes;
  return {static_cast<int>(c * n / k), static_cast<int>((c + 1) * n / k)};
}

bool StreamingSbm::HasEdge(int u, int v) const {
  const auto& list = neighbors_[static_cast<size_t>(u)];
  return std::binary_search(list.begin(), list.end(), v);
}

void StreamingSbm::Insert(int u, int v) {
  auto& ulist = neighbors_[static_cast<size_t>(u)];
  ulist.insert(std::lower_bound(ulist.begin(), ulist.end(), v), v);
  auto& vlist = neighbors_[static_cast<size_t>(v)];
  vlist.insert(std::lower_bound(vlist.begin(), vlist.end(), u), u);
}

bool StreamingSbm::Next(std::pair<int, int>* edge) {
  if (emitted_ >= target_edges_) return false;
  const int n = config_.num_nodes;
  // Rejection sampling over (endpoint, partner) draws; duplicates and
  // self-loops retry. The bound is generous — at the sparse densities
  // this generator targets, rejections are rare — and keeps a
  // misconfigured near-complete block from spinning forever.
  const int64_t max_attempts = 200 * (target_edges_ - emitted_) + 1000;
  for (int64_t attempt = 0; attempt < max_attempts; ++attempt) {
    const int u = static_cast<int>(rng_.UniformInt(0, n - 1));
    int v;
    if (rng_.Bernoulli(config_.homophily)) {
      const auto [lo, hi] = ClassRange(Label(u));
      if (hi - lo < 2) continue;  // singleton block has no intra edge
      v = static_cast<int>(rng_.UniformInt(lo, hi - 1));
    } else {
      const auto [lo, hi] = ClassRange(Label(u));
      const int outside = n - (hi - lo);
      if (outside < 1) continue;  // single class: no inter edge exists
      v = static_cast<int>(rng_.UniformInt(0, outside - 1));
      if (v >= lo) v += hi - lo;  // skip over u's block
    }
    if (u == v || HasEdge(u, v)) continue;
    Insert(u, v);
    ++emitted_;
    *edge = {std::min(u, v), std::max(u, v)};
    return true;
  }
  // Sampling starved (pathological density): end the stream early with
  // the edges emitted so far rather than aborting a campaign.
  target_edges_ = emitted_;
  return false;
}

Graph StreamingSbm::Materialize() {
  std::pair<int, int> edge;
  while (Next(&edge)) {
  }
  const int n = config_.num_nodes;

  Graph g;
  g.name = config_.name;
  g.num_nodes = n;
  g.num_classes = config_.num_classes;
  g.labels.resize(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) g.labels[static_cast<size_t>(v)] = Label(v);

  // The sorted neighbor lists already ARE the CSR structure; emitting
  // row-major triplets keeps FromTriplets' sort trivial.
  std::vector<std::tuple<int, int, float>> triplets;
  size_t nnz = 0;
  for (const auto& list : neighbors_) nnz += list.size();
  triplets.reserve(nnz);
  for (int u = 0; u < n; ++u) {
    for (const int v : neighbors_[static_cast<size_t>(u)]) {
      triplets.emplace_back(u, v, 1.0f);
    }
  }
  g.adjacency = SparseMatrix::FromTriplets(n, n, triplets);

  // Class-conditional topic features: class c owns a contiguous block of
  // dimensions; each node fires `active_features` of them, from its own
  // block with probability feature_signal (the SyntheticConfig model,
  // restated on a smaller default F so the matrix stays O(N)).
  const int f = config_.feature_dim;
  const int block = std::max(1, f / config_.num_classes);
  g.features = Matrix(n, f);
  for (int v = 0; v < n; ++v) {
    const int start = std::min(Label(v) * block, f - block);
    for (int a = 0; a < config_.active_features; ++a) {
      const int dim =
          rng_.Bernoulli(config_.feature_signal)
              ? start + static_cast<int>(rng_.UniformInt(0, block - 1))
              : static_cast<int>(rng_.UniformInt(0, f - 1));
      g.features(v, dim) = 1.0f;
    }
  }

  AssignSplits(&g, config_.train_frac, config_.val_frac, &rng_);
  return g;
}

}  // namespace repro::graph
