#ifndef PEEGA_GRAPH_STREAMING_SBM_H_
#define PEEGA_GRAPH_STREAMING_SBM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "linalg/random.h"

namespace repro::graph {

/// Configuration of the streaming stochastic block model.
///
/// Unlike `MakeSynthetic` (which holds a std::set of every candidate
/// edge and is sized for CI-scale graphs), this generator is built for
/// the million-node scale path: labels are contiguous class blocks
/// computed in O(1), edges are emitted one at a time in a deterministic
/// serial order, and the only state is per-node sorted neighbor lists —
/// O(N + E) memory, nothing O(N²) is ever materialized.
struct StreamingSbmConfig {
  std::string name = "streaming-sbm";
  int num_nodes = 100000;
  int num_classes = 5;
  int feature_dim = 32;
  /// Expected mean degree; the stream targets round(N * avg_degree / 2)
  /// undirected edges.
  double avg_degree = 10.0;
  /// Probability that an emitted edge connects same-class endpoints.
  double homophily = 0.8;
  /// Probability that an active feature comes from the class topic block
  /// (same feature model as SyntheticConfig, so defenders relying on
  /// intra-class feature similarity behave as on the CI datasets).
  double feature_signal = 0.8;
  int active_features = 8;
  double train_frac = 0.1;
  double val_frac = 0.1;
  /// The stream is a pure function of this seed: same seed, same edge
  /// sequence, same features, same splits — at any thread count (the
  /// stream is serial by construction).
  uint64_t seed = 1;
};

/// Deterministic edge-by-edge SBM stream.
///
/// Usage:
///   StreamingSbm stream(config);
///   std::pair<int, int> edge;
///   while (stream.Next(&edge)) Consume(edge);
/// or, to get a `Graph` in one call, `Materialize()` (which runs the
/// remaining stream to completion and attaches features/labels/splits).
class StreamingSbm {
 public:
  explicit StreamingSbm(const StreamingSbmConfig& config);

  /// Class of node v: contiguous blocks, label(v) = v * C / N. O(1).
  int Label(int v) const;

  /// Emits the next undirected edge (u < v, no duplicates, no
  /// self-loops) in deterministic order; false when the stream is done.
  /// Amortized O(log deg) per edge.
  bool Next(std::pair<int, int>* edge);

  int64_t emitted() const { return emitted_; }
  int64_t target_edges() const { return target_edges_; }

  /// Drains the stream and assembles the attributed graph
  /// (class-conditional topic features, contiguous-block labels, random
  /// splits). O(N + E) peak memory beyond the N x F feature matrix.
  Graph Materialize();

 private:
  /// [first, last) node range of class c.
  std::pair<int, int> ClassRange(int c) const;
  bool HasEdge(int u, int v) const;
  void Insert(int u, int v);

  StreamingSbmConfig config_;
  linalg::Rng rng_;
  int64_t target_edges_ = 0;
  int64_t emitted_ = 0;
  std::vector<std::vector<int>> neighbors_;  // sorted adjacency lists
};

}  // namespace repro::graph

#endif  // PEEGA_GRAPH_STREAMING_SBM_H_
