#ifndef PEEGA_GRAPH_METRICS_H_
#define PEEGA_GRAPH_METRICS_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"

namespace repro::graph {

/// Fraction of edges whose endpoints share a label (Fig. 1 of the paper;
/// the real datasets sit above 0.70).
double HomophilyRatio(const Graph& g);

/// Cross-label neighborhood similarity (Sec. IV-A): entry (i, j) is the
/// mean cosine similarity between the normalized 1-hop label histograms
/// of nodes labeled i and nodes labeled j. Diagonal = intra-label
/// similarity; off-diagonal = inter-label similarity.
linalg::Matrix CrossLabelSimilarity(const Graph& g);

/// Mean of the diagonal / off-diagonal entries of `CrossLabelSimilarity`.
struct LabelSimilaritySummary {
  double intra = 0.0;
  double inter = 0.0;
};
LabelSimilaritySummary SummarizeLabelSimilarity(const linalg::Matrix& sim);

/// Edge modifications between a clean graph and a poisoned graph, broken
/// down as in Fig. 2: additions/deletions between same-label or
/// different-label endpoints.
struct EdgeDiffStats {
  int add_same = 0;
  int add_diff = 0;
  int del_same = 0;
  int del_diff = 0;
  int total() const { return add_same + add_diff + del_same + del_diff; }
};
EdgeDiffStats ComputeEdgeDiff(const Graph& clean, const Graph& poisoned);

/// Number of differing feature entries between two graphs.
int64_t FeatureDiffCount(const Graph& clean, const Graph& poisoned);

/// Classification accuracy of `predictions` (argmax class per node) over
/// the node subset `nodes`.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels,
                const std::vector<int>& nodes);

}  // namespace repro::graph

#endif  // PEEGA_GRAPH_METRICS_H_
