#include "graph/metrics.h"

#include <cmath>

#include "debug/check.h"

namespace repro::graph {

using linalg::Matrix;

double HomophilyRatio(const Graph& g) {
  const auto edges = g.EdgeList();
  if (edges.empty()) return 0.0;
  int same = 0;
  for (const auto& [u, v] : edges) {
    if (g.labels[u] == g.labels[v]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(edges.size());
}

Matrix CrossLabelSimilarity(const Graph& g) {
  const int c = g.num_classes;
  // Normalized label histogram of each node's 1-hop neighborhood.
  Matrix hist(g.num_nodes, c);
  for (int v = 0; v < g.num_nodes; ++v) {
    const auto neighbors = g.Neighbors(v);
    if (neighbors.empty()) continue;
    for (int u : neighbors) {
      if (g.labels[u] >= 0) hist(v, g.labels[u]) += 1.0f;
    }
    for (int j = 0; j < c; ++j) {
      hist(v, j) /= static_cast<float>(neighbors.size());
    }
  }
  std::vector<std::vector<int>> by_class(c);
  for (int v = 0; v < g.num_nodes; ++v) {
    if (g.labels[v] >= 0) by_class[g.labels[v]].push_back(v);
  }
  // Mean pairwise cosine similarity between class buckets. Computed via
  // normalized-histogram sums to stay O(N * c) instead of O(N^2 * c):
  // mean_{v in Vi, u in Vj} cos(h_v, h_u)
  //   = (1/|Vi||Vj|) * sum_v sum_u  <h_v/|h_v|, h_u/|h_u|>
  //   = < mean_norm_i, mean_norm_j > with mean_norm = mean of unit rows.
  Matrix class_sum(c, g.num_classes);
  for (int i = 0; i < c; ++i) {
    for (int v : by_class[i]) {
      double norm = 0.0;
      for (int j = 0; j < c; ++j) {
        norm += static_cast<double>(hist(v, j)) * hist(v, j);
      }
      norm = std::sqrt(norm);
      if (norm <= 0.0) continue;
      for (int j = 0; j < c; ++j) {
        class_sum(i, j) += static_cast<float>(hist(v, j) / norm);
      }
    }
  }
  Matrix sim(c, c);
  for (int i = 0; i < c; ++i) {
    for (int j = 0; j < c; ++j) {
      if (by_class[i].empty() || by_class[j].empty()) continue;
      double dot = 0.0;
      for (int k = 0; k < c; ++k) {
        dot += static_cast<double>(class_sum(i, k)) * class_sum(j, k);
      }
      sim(i, j) = static_cast<float>(
          dot / (static_cast<double>(by_class[i].size()) *
                 by_class[j].size()));
    }
  }
  return sim;
}

LabelSimilaritySummary SummarizeLabelSimilarity(const Matrix& sim) {
  LabelSimilaritySummary s;
  const int c = sim.rows();
  PEEGA_CHECK_EQ(c, sim.cols());
  double intra = 0.0, inter = 0.0;
  int n_inter = 0;
  for (int i = 0; i < c; ++i) {
    intra += sim(i, i);
    for (int j = 0; j < c; ++j) {
      if (i != j) {
        inter += sim(i, j);
        ++n_inter;
      }
    }
  }
  s.intra = intra / c;
  s.inter = n_inter > 0 ? inter / n_inter : 0.0;
  return s;
}

EdgeDiffStats ComputeEdgeDiff(const Graph& clean, const Graph& poisoned) {
  PEEGA_CHECK_EQ(clean.num_nodes, poisoned.num_nodes);
  EdgeDiffStats stats;
  for (const auto& [u, v] : poisoned.EdgeList()) {
    if (!clean.HasEdge(u, v)) {
      if (clean.labels[u] == clean.labels[v]) ++stats.add_same;
      else ++stats.add_diff;
    }
  }
  for (const auto& [u, v] : clean.EdgeList()) {
    if (!poisoned.HasEdge(u, v)) {
      if (clean.labels[u] == clean.labels[v]) ++stats.del_same;
      else ++stats.del_diff;
    }
  }
  return stats;
}

int64_t FeatureDiffCount(const Graph& clean, const Graph& poisoned) {
  PEEGA_CHECK(clean.features.SameShape(poisoned.features));
  int64_t count = 0;
  const float* a = clean.features.data();
  const float* b = poisoned.features.data();
  for (int64_t i = 0; i < clean.features.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > 0.5f) ++count;
  }
  return count;
}

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels,
                const std::vector<int>& nodes) {
  if (nodes.empty()) return 0.0;
  int correct = 0;
  for (int v : nodes) {
    PEEGA_CHECK_LT(v, static_cast<int>(predictions.size()));
    if (predictions[v] == labels[v]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

}  // namespace repro::graph
