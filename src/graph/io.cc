#include "graph/io.h"

#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "debug/failpoints.h"

namespace repro::graph {
namespace {

using status::InvalidInput;
using status::IoError;
using status::Status;
using status::StatusOr;

// Whitespace tokenizer over a text file that tracks the 1-based line of
// the token it just produced, so every parse error can point at
// `path:line N`. The whole file is read up front: graph files are small
// and this keeps EOF handling trivial.
class TokenReader {
 public:
  TokenReader(std::string path, std::vector<std::string> lines)
      : path_(std::move(path)), lines_(std::move(lines)) {}

  static StatusOr<TokenReader> Open(const std::string& path) {
    std::ifstream in(path);
    if (!in) return IoError("cannot open " + path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    if (in.bad()) return IoError("read failure on " + path);
    return TokenReader(path, std::move(lines));
  }

  // "path:line N" for the line the NEXT token starts on (or the last
  // line when the file is exhausted — the natural spot to report a
  // truncation).
  std::string Where() const {
    const size_t line = line_ < lines_.size() ? line_ + 1 : lines_.size();
    return path_ + ":line " + std::to_string(line == 0 ? 1 : line);
  }

  Status NextToken(std::string* token) {
    while (line_ < lines_.size()) {
      const std::string& text = lines_[line_];
      while (pos_ < text.size() &&
             (text[pos_] == ' ' || text[pos_] == '\t' ||
              text[pos_] == '\r')) {
        ++pos_;
      }
      if (pos_ >= text.size()) {
        ++line_;
        pos_ = 0;
        continue;
      }
      const size_t start = pos_;
      while (pos_ < text.size() && text[pos_] != ' ' &&
             text[pos_] != '\t' && text[pos_] != '\r') {
        ++pos_;
      }
      *token = text.substr(start, pos_ - start);
      // When only trailing whitespace remains, step onto the next line so
      // ReadLine (the free-form name field) never sees a spent line and
      // Where() points at the line the next token will come from.
      size_t look = pos_;
      while (look < text.size() &&
             (text[look] == ' ' || text[look] == '\t' ||
              text[look] == '\r')) {
        ++look;
      }
      if (look >= text.size()) {
        ++line_;
        pos_ = 0;
      }
      return Status::Ok();
    }
    return InvalidInput(Where() + ": unexpected end of file");
  }

  // Parses the next token as an integer in [lo, hi]; `what` names the
  // field for the error message ("node index", "feature dim", ...).
  Status ReadInt(const char* what, long long lo, long long hi,
                 long long* out) {
    std::string token;
    Status status = NextToken(&token);
    if (!status.ok()) {
      return InvalidInput(Where() + ": missing " + std::string(what));
    }
    char* end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return InvalidInput(Where() + ": non-numeric " + std::string(what) +
                          " '" + token + "'");
    }
    if (value < lo || value > hi) {
      return InvalidInput(Where() + ": " + std::string(what) + " " +
                          token + " out of range [" + std::to_string(lo) +
                          ", " + std::to_string(hi) + "]");
    }
    *out = value;
    return Status::Ok();
  }

  // Rest of the current line, leading whitespace trimmed (the free-form
  // graph-name line).
  Status ReadLine(std::string* out) {
    if (line_ >= lines_.size()) {
      return InvalidInput(Where() + ": unexpected end of file");
    }
    std::string text = lines_[line_].substr(pos_);
    ++line_;
    pos_ = 0;
    size_t start = 0;
    while (start < text.size() &&
           (text[start] == ' ' || text[start] == '\t')) {
      ++start;
    }
    while (!text.empty() &&
           (text.back() == '\r' || text.back() == ' ')) {
      text.pop_back();
    }
    *out = text.substr(start);
    return Status::Ok();
  }

 private:
  std::string path_;
  std::vector<std::string> lines_;
  size_t line_ = 0;  // 0-based index of the line the next token is on
  size_t pos_ = 0;
};

// Keeps adversarially large headers from allocating the world before
// any real data is validated.
constexpr long long kMaxNodes = 50'000'000;
constexpr long long kMaxFeatureCells = 1'000'000'000;

Status ReadSplit(TokenReader* reader, long long num_nodes,
                 const char* what, std::vector<int>* nodes) {
  long long count = 0;
  PEEGA_RETURN_IF_ERROR(
      reader->ReadInt(what, 0, num_nodes, &count),
      "split header");
  nodes->resize(static_cast<size_t>(count));
  for (long long i = 0; i < count; ++i) {
    long long v = 0;
    PEEGA_RETURN_IF_ERROR(
        reader->ReadInt(what, 0, num_nodes - 1, &v), "split entry");
    (*nodes)[static_cast<size_t>(i)] = static_cast<int>(v);
  }
  return Status::Ok();
}

}  // namespace

status::Status SaveGraph(const Graph& g, const std::string& path) {
  if (PEEGA_FAILPOINT("io.write")) {
    return IoError("injected failpoint io.write: " + path);
  }
  std::ofstream out(path);
  if (!out) return IoError("cannot create " + path);
  out << "peega-graph 1\n";
  out << g.name << "\n";
  out << g.num_nodes << " " << g.num_classes << " " << g.features.cols()
      << "\n";
  const auto edges = g.EdgeList();
  out << edges.size() << "\n";
  for (const auto& [u, v] : edges) out << u << " " << v << "\n";
  // Sparse feature coordinates (binary features dominate).
  std::vector<std::pair<int, int>> coords;
  for (int v = 0; v < g.num_nodes; ++v) {
    for (int j = 0; j < g.features.cols(); ++j) {
      if (g.features(v, j) > 0.5f) coords.emplace_back(v, j);
    }
  }
  out << coords.size() << "\n";
  for (const auto& [v, j] : coords) out << v << " " << j << "\n";
  for (int v = 0; v < g.num_nodes; ++v) {
    out << g.labels[v] << (v + 1 == g.num_nodes ? "\n" : " ");
  }
  auto write_split = [&out](const std::vector<int>& nodes) {
    out << nodes.size();
    for (int v : nodes) out << " " << v;
    out << "\n";
  };
  write_split(g.train_nodes);
  write_split(g.val_nodes);
  write_split(g.test_nodes);
  out.flush();
  if (!out) return IoError("write failure on " + path);
  return Status::Ok();
}

status::StatusOr<Graph> LoadGraph(const std::string& path) {
  if (PEEGA_FAILPOINT("io.read")) {
    return IoError("injected failpoint io.read: " + path);
  }
  StatusOr<TokenReader> opened = TokenReader::Open(path);
  if (!opened.ok()) return opened.status().WithContext("load graph");
  TokenReader& reader = *opened;

  std::string magic;
  Status status = reader.NextToken(&magic);
  if (!status.ok()) return status.WithContext("load graph header");
  if (magic != "peega-graph") {
    return InvalidInput(reader.Where() + ": bad magic '" + magic +
                        "', expected 'peega-graph'");
  }
  long long version = 0;
  status = reader.ReadInt("format version", 1, 1, &version);
  if (!status.ok()) return status.WithContext("load graph header");

  Graph loaded;
  status = reader.ReadLine(&loaded.name);
  if (!status.ok()) return status.WithContext("load graph name");

  long long num_nodes = 0, num_classes = 0, feature_dim = 0;
  status = reader.ReadInt("node count", 1, kMaxNodes, &num_nodes);
  if (!status.ok()) return status.WithContext("load graph dims");
  status = reader.ReadInt("class count", 1, num_nodes, &num_classes);
  if (!status.ok()) return status.WithContext("load graph dims");
  status = reader.ReadInt("feature dim", 0,
                          kMaxFeatureCells / num_nodes, &feature_dim);
  if (!status.ok()) return status.WithContext("load graph dims");
  loaded.num_nodes = static_cast<int>(num_nodes);
  loaded.num_classes = static_cast<int>(num_classes);

  long long num_edges = 0;
  status = reader.ReadInt("edge count", 0, num_nodes * num_nodes,
                          &num_edges);
  if (!status.ok()) return status.WithContext("load edge list");
  std::vector<std::pair<int, int>> edges(static_cast<size_t>(num_edges));
  for (auto& [u, v] : edges) {
    long long a = 0, b = 0;
    status = reader.ReadInt("edge endpoint", 0, num_nodes - 1, &a);
    if (!status.ok()) return status.WithContext("load edge list");
    status = reader.ReadInt("edge endpoint", 0, num_nodes - 1, &b);
    if (!status.ok()) return status.WithContext("load edge list");
    u = static_cast<int>(a);
    v = static_cast<int>(b);
  }
  loaded.adjacency = AdjacencyFromEdges(loaded.num_nodes, edges);

  long long num_coords = 0;
  status = reader.ReadInt("feature coordinate count", 0,
                          num_nodes * (feature_dim == 0 ? 1 : feature_dim),
                          &num_coords);
  if (!status.ok()) return status.WithContext("load features");
  loaded.features =
      linalg::Matrix(loaded.num_nodes, static_cast<int>(feature_dim));
  for (long long i = 0; i < num_coords; ++i) {
    long long v = 0, j = 0;
    status = reader.ReadInt("feature node index", 0, num_nodes - 1, &v);
    if (!status.ok()) return status.WithContext("load features");
    status = reader.ReadInt("feature dim index", 0, feature_dim - 1, &j);
    if (!status.ok()) return status.WithContext("load features");
    loaded.features(static_cast<int>(v), static_cast<int>(j)) = 1.0f;
  }

  loaded.labels.resize(static_cast<size_t>(num_nodes));
  for (long long v = 0; v < num_nodes; ++v) {
    long long label = 0;
    status = reader.ReadInt("label", 0, num_classes - 1, &label);
    if (!status.ok()) return status.WithContext("load labels");
    loaded.labels[static_cast<size_t>(v)] = static_cast<int>(label);
  }

  status = ReadSplit(&reader, num_nodes, "train node", &loaded.train_nodes);
  if (!status.ok()) return status.WithContext("load splits");
  status = ReadSplit(&reader, num_nodes, "val node", &loaded.val_nodes);
  if (!status.ok()) return status.WithContext("load splits");
  status = ReadSplit(&reader, num_nodes, "test node", &loaded.test_nodes);
  if (!status.ok()) return status.WithContext("load splits");

  return loaded;
}

}  // namespace repro::graph
