#include "graph/io.h"

#include <fstream>
#include <sstream>

namespace repro::graph {

bool SaveGraph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "peega-graph 1\n";
  out << g.name << "\n";
  out << g.num_nodes << " " << g.num_classes << " " << g.features.cols()
      << "\n";
  const auto edges = g.EdgeList();
  out << edges.size() << "\n";
  for (const auto& [u, v] : edges) out << u << " " << v << "\n";
  // Sparse feature coordinates (binary features dominate).
  std::vector<std::pair<int, int>> coords;
  for (int v = 0; v < g.num_nodes; ++v) {
    for (int j = 0; j < g.features.cols(); ++j) {
      if (g.features(v, j) > 0.5f) coords.emplace_back(v, j);
    }
  }
  out << coords.size() << "\n";
  for (const auto& [v, j] : coords) out << v << " " << j << "\n";
  for (int v = 0; v < g.num_nodes; ++v) {
    out << g.labels[v] << (v + 1 == g.num_nodes ? "\n" : " ");
  }
  auto write_split = [&out](const std::vector<int>& nodes) {
    out << nodes.size();
    for (int v : nodes) out << " " << v;
    out << "\n";
  };
  write_split(g.train_nodes);
  write_split(g.val_nodes);
  write_split(g.test_nodes);
  return static_cast<bool>(out);
}

bool LoadGraph(const std::string& path, Graph* g) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "peega-graph" || version != 1) return false;
  Graph loaded;
  in >> std::ws;
  std::getline(in, loaded.name);
  int feature_dim = 0;
  in >> loaded.num_nodes >> loaded.num_classes >> feature_dim;
  if (!in || loaded.num_nodes <= 0) return false;
  size_t num_edges = 0;
  in >> num_edges;
  std::vector<std::pair<int, int>> edges(num_edges);
  for (auto& [u, v] : edges) in >> u >> v;
  loaded.adjacency = AdjacencyFromEdges(loaded.num_nodes, edges);
  size_t num_coords = 0;
  in >> num_coords;
  loaded.features = linalg::Matrix(loaded.num_nodes, feature_dim);
  for (size_t i = 0; i < num_coords; ++i) {
    int v = 0, j = 0;
    in >> v >> j;
    if (v < 0 || v >= loaded.num_nodes || j < 0 || j >= feature_dim) {
      return false;
    }
    loaded.features(v, j) = 1.0f;
  }
  loaded.labels.resize(loaded.num_nodes);
  for (int v = 0; v < loaded.num_nodes; ++v) in >> loaded.labels[v];
  auto read_split = [&in](std::vector<int>* nodes) {
    size_t count = 0;
    in >> count;
    nodes->resize(count);
    for (size_t i = 0; i < count; ++i) in >> (*nodes)[i];
  };
  read_split(&loaded.train_nodes);
  read_split(&loaded.val_nodes);
  read_split(&loaded.test_nodes);
  if (!in) return false;
  *g = std::move(loaded);
  return true;
}

}  // namespace repro::graph
