#ifndef PEEGA_GRAPH_IO_H_
#define PEEGA_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "status/status.h"

namespace repro::graph {

/// Saves a graph to a self-describing text file (header, edge list,
/// sparse feature coordinates, labels, splits). Returns kIoError when
/// the file cannot be created or written.
status::Status SaveGraph(const Graph& g, const std::string& path);

/// Loads a graph previously written by `SaveGraph`.
///
/// External input is never trusted: a missing file yields kIoError, and
/// every malformed construct — bad magic, truncated file, non-numeric
/// token, negative/overlarge dimensions, out-of-range node/feature/label
/// index — yields kInvalidInput with `path:line N:` context pointing at
/// the offending token. This path must stay abort-free (`peega_lint`
/// rejects PEEGA_CHECK on these files).
status::StatusOr<Graph> LoadGraph(const std::string& path);

}  // namespace repro::graph

#endif  // PEEGA_GRAPH_IO_H_
