#ifndef PEEGA_GRAPH_IO_H_
#define PEEGA_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"

namespace repro::graph {

/// Saves a graph to a self-describing text file (header, edge list,
/// sparse feature coordinates, labels, splits). Returns false on I/O
/// failure.
bool SaveGraph(const Graph& g, const std::string& path);

/// Loads a graph previously written by `SaveGraph`. Returns false (and
/// leaves `*g` untouched) if the file is missing or malformed.
bool LoadGraph(const std::string& path, Graph* g);

}  // namespace repro::graph

#endif  // PEEGA_GRAPH_IO_H_
