#ifndef PEEGA_DEBUG_CHECK_H_
#define PEEGA_DEBUG_CHECK_H_

#include <memory>
#include <sstream>
#include <string>

// Invariant-checking macros for the whole library.
//
//   PEEGA_CHECK(cond)            always on; aborts with the condition text
//   PEEGA_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
//                                always on; prints BOTH operand values on
//                                failure ("a == b (3 vs. 4)")
//   PEEGA_DCHECK / PEEGA_DCHECK_* same contracts, but compiled out when
//                                NDEBUG is defined (Release builds)
//
// Every macro is an abort point, not an error channel: a failed check means
// API misuse or a broken internal invariant (shape mismatch, out-of-range
// index, malformed tape), never a recoverable runtime condition.
//
// All of them accept streamed context that is printed after the failure:
//
//   PEEGA_CHECK_EQ(a.cols(), b.rows()) << "in MatMul of " << a.ShapeString();
//
// The message always starts with "CHECK failed:" so death tests can match a
// stable prefix regardless of which macro fired.

namespace repro::debug::internal {

/// Collects a failure message. The destructor prints the message (with its
/// source location) to stderr and aborts, so a temporary `CheckMessage`
/// terminates the program at the end of the full expression that created
/// it — after any extra context has been streamed in.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const std::string& head);
  ~CheckMessage();
  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows streamed context in compiled-out PEEGA_DCHECK expansions.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

template <typename A, typename B>
std::unique_ptr<std::string> FormatFailedOp(const char* expr, const A& a,
                                            const B& b) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " (" << a << " vs. " << b << ")";
  return std::make_unique<std::string>(os.str());
}

// One helper per comparison so each operand is evaluated exactly once and
// its value can be captured for the failure message.
#define PEEGA_DEBUG_INTERNAL_DEFINE_CHECK_OP(name, op)                     \
  template <typename A, typename B>                                        \
  std::unique_ptr<std::string> Check##name(const A& a, const B& b,         \
                                           const char* expr) {             \
    if (a op b) return nullptr;                                            \
    return FormatFailedOp(expr, a, b);                                     \
  }
PEEGA_DEBUG_INTERNAL_DEFINE_CHECK_OP(EQ, ==)
PEEGA_DEBUG_INTERNAL_DEFINE_CHECK_OP(NE, !=)
PEEGA_DEBUG_INTERNAL_DEFINE_CHECK_OP(LT, <)
PEEGA_DEBUG_INTERNAL_DEFINE_CHECK_OP(LE, <=)
PEEGA_DEBUG_INTERNAL_DEFINE_CHECK_OP(GT, >)
PEEGA_DEBUG_INTERNAL_DEFINE_CHECK_OP(GE, >=)
#undef PEEGA_DEBUG_INTERNAL_DEFINE_CHECK_OP

}  // namespace repro::debug::internal

// The `while` form makes the macro a single statement that is safe in
// unbraced if/else branches and lets callers stream context onto the
// returned ostream; the CheckMessage destructor aborts at the end of the
// full expression, so the loop body runs at most once.
#define PEEGA_CHECK(cond)                                           \
  while (!(cond))                                                   \
  ::repro::debug::internal::CheckMessage(                           \
      __FILE__, __LINE__, std::string("CHECK failed: ") + #cond)    \
      .stream()

#define PEEGA_CHECK_OP_IMPL(name, op, a, b)                         \
  while (auto peega_internal_check_result =                         \
             ::repro::debug::internal::Check##name(                 \
                 (a), (b), #a " " #op " " #b))                      \
  ::repro::debug::internal::CheckMessage(__FILE__, __LINE__,        \
                                         *peega_internal_check_result) \
      .stream()

#define PEEGA_CHECK_EQ(a, b) PEEGA_CHECK_OP_IMPL(EQ, ==, a, b)
#define PEEGA_CHECK_NE(a, b) PEEGA_CHECK_OP_IMPL(NE, !=, a, b)
#define PEEGA_CHECK_LT(a, b) PEEGA_CHECK_OP_IMPL(LT, <, a, b)
#define PEEGA_CHECK_LE(a, b) PEEGA_CHECK_OP_IMPL(LE, <=, a, b)
#define PEEGA_CHECK_GT(a, b) PEEGA_CHECK_OP_IMPL(GT, >, a, b)
#define PEEGA_CHECK_GE(a, b) PEEGA_CHECK_OP_IMPL(GE, >=, a, b)

// Debug-only checks: active whenever NDEBUG is not defined (Debug builds,
// sanitizer builds configured without NDEBUG). In Release the condition is
// kept inside a `false && ...` so the operands stay name-checked by the
// compiler (no unused-variable warnings, no bit-rot) but are never
// evaluated at runtime.
#ifdef NDEBUG
#define PEEGA_DCHECK(cond) \
  while (false && (cond)) ::repro::debug::internal::NullStream()
#define PEEGA_DCHECK_EQ(a, b) PEEGA_DCHECK((a) == (b))
#define PEEGA_DCHECK_NE(a, b) PEEGA_DCHECK((a) != (b))
#define PEEGA_DCHECK_LT(a, b) PEEGA_DCHECK((a) < (b))
#define PEEGA_DCHECK_LE(a, b) PEEGA_DCHECK((a) <= (b))
#define PEEGA_DCHECK_GT(a, b) PEEGA_DCHECK((a) > (b))
#define PEEGA_DCHECK_GE(a, b) PEEGA_DCHECK((a) >= (b))
#else
#define PEEGA_DCHECK(cond) PEEGA_CHECK(cond)
#define PEEGA_DCHECK_EQ(a, b) PEEGA_CHECK_EQ(a, b)
#define PEEGA_DCHECK_NE(a, b) PEEGA_CHECK_NE(a, b)
#define PEEGA_DCHECK_LT(a, b) PEEGA_CHECK_LT(a, b)
#define PEEGA_DCHECK_LE(a, b) PEEGA_CHECK_LE(a, b)
#define PEEGA_DCHECK_GT(a, b) PEEGA_CHECK_GT(a, b)
#define PEEGA_DCHECK_GE(a, b) PEEGA_CHECK_GE(a, b)
#endif

#endif  // PEEGA_DEBUG_CHECK_H_
