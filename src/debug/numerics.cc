#include "debug/numerics.h"

#include <cmath>

#include "debug/check.h"

namespace repro::debug {

void CheckFiniteArray(const float* data, int64_t size, int64_t cols,
                      const char* what, const char* file, int line) {
  for (int64_t i = 0; i < size; ++i) {
    if (std::isfinite(data[i])) continue;
    internal::CheckMessage message(
        file, line, "CHECK failed: non-finite value in " + std::string(what));
    message.stream() << ": " << data[i] << " at flat index " << i;
    if (cols > 0) {
      message.stream() << " (row " << i / cols << ", col " << i % cols << ")";
    }
    // CheckMessage aborts in its destructor at the end of this scope.
    return;
  }
}

}  // namespace repro::debug
