#ifndef PEEGA_DEBUG_FAILPOINTS_H_
#define PEEGA_DEBUG_FAILPOINTS_H_

#include <atomic>
#include <string>
#include <vector>

namespace repro::debug {

/// Deterministic fault-injection points for testing degradation paths.
///
/// A failpoint is a named site in production code:
///
///   if (PEEGA_FAILPOINT("io.read")) {
///     return status::IoError("injected failpoint io.read");
///   }
///
/// Sites fire only when armed — via the API below or the environment:
///
///   PEEGA_FAILPOINTS=io.read=1,engine.step=after:50
///
/// where `name=N` fires on exactly the Nth hit (1-based, once) and
/// `name=after:N` fires on every hit past the Nth. Triggering is purely
/// count-based (never RNG-based) so a given workload fails at the same
/// place every run. Every failpoint name must appear in the central
/// registry in failpoints.cc; arming an unknown name aborts, and
/// `RegisteredFailpoints()` lets the sweep test enumerate all sites
/// without having to execute them first.
///
/// Cost when disarmed: one relaxed atomic load (the global armed-site
/// count) per hit. Configuring with -DPEEGA_ENABLE_FAILPOINTS=OFF
/// compiles every site to a constant false instead.
namespace internal {
extern std::atomic<int> g_armed_failpoints;
}  // namespace internal

/// Slow path behind PEEGA_FAILPOINT: counts the hit and decides whether
/// this one fires. Only called while at least one failpoint is armed.
bool FailpointHit(const char* name);

/// Arms `name` with `spec` ("N" or "after:N"); resets its hit counter.
/// Aborts on an unknown name or malformed spec (test configuration bugs
/// should be loud).
void ArmFailpoint(const std::string& name, const std::string& spec);

/// Disarms one site / all sites (hit counters reset on the next arm).
void DisarmFailpoint(const std::string& name);
void DisarmAllFailpoints();

/// All registered failpoint names, in registry order.
std::vector<std::string> RegisteredFailpoints();

}  // namespace repro::debug

#if defined(PEEGA_DISABLE_FAILPOINTS)
#define PEEGA_FAILPOINT(name) (false)
#else
#define PEEGA_FAILPOINT(name)                                     \
  (::repro::debug::internal::g_armed_failpoints.load(             \
       std::memory_order_relaxed) > 0 &&                          \
   ::repro::debug::FailpointHit(name))
#endif

#endif  // PEEGA_DEBUG_FAILPOINTS_H_
