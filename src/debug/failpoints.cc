#include "debug/failpoints.h"

#include <cstdlib>
#include <cstring>

#include "debug/check.h"

namespace repro::debug {

namespace internal {
std::atomic<int> g_armed_failpoints{0};
}  // namespace internal

namespace {

struct Site {
  const char* name;
  std::atomic<bool> armed{false};
  bool after = false;     // written under arm, read after armed-check
  long fire_at = 0;       // 1-based hit index (or threshold for after:)
  std::atomic<long> hits{0};
};

// Central registry: every PEEGA_FAILPOINT site in the tree must appear
// here so tests can sweep the full set without executing every path
// first. Keep in sync with the call sites (failpoint_test.cc arms each
// one and asserts it actually fires through the pipeline).
Site g_sites[] = {
    {"io.read"},        // graph/io.cc LoadGraph
    {"io.write"},       // graph/io.cc SaveGraph
    {"linalg.spmm"},    // linalg/ops.cc SpMM: poisons the output with NaN
    {"engine.step"},    // core/peega_engine.cc RefreshScores
    {"trainer.epoch"},  // nn/trainer.cc epoch loop: poisons the loss
    {"peega.interrupt"},  // core/peega.cc greedy loop: kCancelled
    // serve.* sites fire inside the job server; failpoint_test's
    // save/load/attack/defend sweep skips them and journal_test sweeps
    // them through a live server instead.
    {"serve.accept"},   // serve/server.cc IoLoop: drops a fresh connection
    {"serve.parse"},    // serve/server.cc HandleLine: kInvalidInput
    {"serve.execute"},  // serve/server.cc RunJob: kNumericFault (transient)
    {"serve.respond"},  // serve/server.cc Respond: closes the connection
    {"serve.journal.append"},  // serve/journal.cc Append: kIoError
};

Site* FindSite(const char* name) {
  for (Site& site : g_sites) {
    if (std::strcmp(site.name, name) == 0) return &site;
  }
  return nullptr;
}

// PEEGA_FAILPOINTS=name=spec[,name=spec...]; parsed once before main so
// env-armed sites are live from the first hit.
bool InitFromEnv() {
  const char* env = std::getenv("PEEGA_FAILPOINTS");
  if (env == nullptr || *env == '\0') return true;
  std::string spec(env);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    const size_t eq = entry.find('=');
    PEEGA_CHECK(eq != std::string::npos)
        << " — PEEGA_FAILPOINTS entry without '=': " << entry;
    ArmFailpoint(entry.substr(0, eq), entry.substr(eq + 1));
    pos = comma + 1;
  }
  return true;
}

const bool g_env_inited = InitFromEnv();

}  // namespace

bool FailpointHit(const char* name) {
  (void)g_env_inited;
  Site* site = FindSite(name);
  PEEGA_CHECK(site != nullptr)
      << " — failpoint hit for unregistered name: " << name;
  if (!site->armed.load(std::memory_order_acquire)) return false;
  const long n = site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  return site->after ? n > site->fire_at : n == site->fire_at;
}

void ArmFailpoint(const std::string& name, const std::string& spec) {
  Site* site = FindSite(name.c_str());
  PEEGA_CHECK(site != nullptr)
      << " — arming unregistered failpoint: " << name;
  std::string count = spec;
  bool after = false;
  if (spec.rfind("after:", 0) == 0) {
    after = true;
    count = spec.substr(6);
  }
  PEEGA_CHECK(!count.empty()) << " — empty failpoint spec for " << name;
  char* end = nullptr;
  const long fire_at = std::strtol(count.c_str(), &end, 10);
  PEEGA_CHECK(end != nullptr && *end == '\0' && fire_at >= 0)
      << " — malformed failpoint spec for " << name << ": " << spec;
  if (!site->armed.load(std::memory_order_relaxed)) {
    internal::g_armed_failpoints.fetch_add(1, std::memory_order_relaxed);
  }
  site->after = after;
  site->fire_at = fire_at;
  site->hits.store(0, std::memory_order_relaxed);
  site->armed.store(true, std::memory_order_release);
}

void DisarmFailpoint(const std::string& name) {
  Site* site = FindSite(name.c_str());
  PEEGA_CHECK(site != nullptr)
      << " — disarming unregistered failpoint: " << name;
  if (site->armed.exchange(false, std::memory_order_acq_rel)) {
    internal::g_armed_failpoints.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAllFailpoints() {
  for (Site& site : g_sites) {
    if (site.armed.exchange(false, std::memory_order_acq_rel)) {
      internal::g_armed_failpoints.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

std::vector<std::string> RegisteredFailpoints() {
  std::vector<std::string> names;
  for (const Site& site : g_sites) names.emplace_back(site.name);
  return names;
}

}  // namespace repro::debug
