#ifndef PEEGA_DEBUG_NUMERICS_H_
#define PEEGA_DEBUG_NUMERICS_H_

#include <cstdint>

// NaN/Inf poison checks for kernel outputs.
//
// Configure with -DPEEGA_DEBUG_NUMERICS=ON (a CMake option that defines the
// PEEGA_DEBUG_NUMERICS compile macro). When enabled, the outputs of the
// dense/sparse matmul family, row softmax, softmax cross-entropy, and every
// gradient produced during `Tape::Backward` are scanned for non-finite
// values; the first offending entry aborts with its (row, col) position and
// the name of the producing op. A silent NaN in the `A_n^2 X` score matrix
// would otherwise corrupt PEEGA's greedy argmax (Alg. 1) without any test
// noticing — the poison check turns that drift into a hard failure at the
// op that created it.
//
// The scan helpers live below the macro so tests can exercise them
// unconditionally; the PEEGA_CHECK_FINITE* macros compile to no-ops when
// the option is off, keeping zero overhead on release hot paths.

namespace repro::debug {

/// Returns true when the build was configured with PEEGA_DEBUG_NUMERICS=ON.
constexpr bool NumericsGuardEnabled() {
#ifdef PEEGA_DEBUG_NUMERICS
  return true;
#else
  return false;
#endif
}

/// Scans `data[0..size)` for NaN/Inf. On the first non-finite entry, aborts
/// with a "CHECK failed" message naming `what` (the producing op), the flat
/// index, and — when `cols > 0` — the (row, col) position. Works on any
/// row-major float buffer so the debug module needs no dependency on
/// linalg::Matrix; pass `cols = 0` for flat vectors.
void CheckFiniteArray(const float* data, int64_t size, int64_t cols,
                      const char* what, const char* file, int line);

}  // namespace repro::debug

#ifdef PEEGA_DEBUG_NUMERICS
// `mat` is any type with data()/size()/cols() (linalg::Matrix).
#define PEEGA_CHECK_FINITE_MAT(mat, what)                               \
  ::repro::debug::CheckFiniteArray((mat).data(), (mat).size(),          \
                                   (mat).cols(), (what), __FILE__,      \
                                   __LINE__)
// `vec` is any contiguous float container with data()/size().
#define PEEGA_CHECK_FINITE_VEC(vec, what)                               \
  ::repro::debug::CheckFiniteArray(                                     \
      (vec).data(), static_cast<int64_t>((vec).size()), 0, (what),      \
      __FILE__, __LINE__)
#else
#define PEEGA_CHECK_FINITE_MAT(mat, what) ((void)0)
#define PEEGA_CHECK_FINITE_VEC(vec, what) ((void)0)
#endif

#endif  // PEEGA_DEBUG_NUMERICS_H_
