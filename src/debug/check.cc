#include "debug/check.h"

#include <cstdio>
#include <cstdlib>

namespace repro::debug::internal {

CheckMessage::CheckMessage(const char* file, int line,
                           const std::string& head)
    : file_(file), line_(line) {
  stream_ << head;
}

CheckMessage::~CheckMessage() {
  // Streamed context (if any) has accumulated after the head by now; the
  // source location goes last so the message reads
  //   CHECK failed: a == b (3 vs. 4) <context> at file.cc:42
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s at %s:%d\n", message.c_str(), file_, line_);
  std::fflush(stderr);
  std::abort();
}

}  // namespace repro::debug::internal
