#include "obs/trace.h"

#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/stopwatch.h"

namespace repro::obs {

namespace internal {
// Constant-initialized so spans constructed during static init are
// simply inert; the environment is consulted by EnvInit below.
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

uint64_t NowNanos() {
  // The epoch is pinned by the first call (thread-safe static init).
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace {

struct Event {
  const char* name;
  uint64_t start_ns;
  uint64_t dur_ns;
};

// Fixed-size chunks form a grow-only linked list per thread. A slot is
// written first, then published by the release store of `count`; the
// flusher reads `count` with acquire and only touches slots below it,
// so appends never need a lock and flushing never tears an event.
constexpr size_t kChunkCapacity = 4096;

struct Chunk {
  std::array<Event, kChunkCapacity> events;
  std::atomic<size_t> count{0};
  std::atomic<Chunk*> next{nullptr};
};

struct ThreadBuffer {
  explicit ThreadBuffer(int tid_in) : tid(tid_in), head(new Chunk()) {
    tail = head;
  }
  const int tid;
  Chunk* const head;
  // Owner-thread state: which chunk receives the next append. Read and
  // written only by the owning thread (and by ClearTrace, whose
  // quiescence contract supplies the ordering).
  Chunk* tail;
};

// Process-wide registry of all thread buffers, mutated only when a new
// thread records its first span. Leaked on purpose: pool workers (and
// their buffers) outlive main, and a reachable static keeps LeakSanitizer
// quiet while letting flush run at any point, including atexit.
struct Registry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

ThreadBuffer& GetThreadBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto* created = new ThreadBuffer(static_cast<int>(registry.buffers.size()));
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

void Append(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  ThreadBuffer& buffer = GetThreadBuffer();
  Chunk* chunk = buffer.tail;
  size_t n = chunk->count.load(std::memory_order_relaxed);
  if (n == kChunkCapacity) {
    auto* grown = new Chunk();
    chunk->next.store(grown, std::memory_order_release);
    buffer.tail = grown;
    chunk = grown;
    n = 0;
  }
  chunk->events[n] = {name, start_ns, dur_ns};
  chunk->count.store(n + 1, std::memory_order_release);
}

// Applies `fn(tid, event)` to every published event of every buffer.
template <typename Fn>
void ForEachEvent(const Fn& fn) {
  Registry& registry = GetRegistry();
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  for (const ThreadBuffer* buffer : buffers) {
    for (const Chunk* chunk = buffer->head; chunk != nullptr;
         chunk = chunk->next.load(std::memory_order_acquire)) {
      const size_t count = chunk->count.load(std::memory_order_acquire);
      for (size_t i = 0; i < count; ++i) {
        fn(buffer->tid, chunk->events[i]);
      }
      if (count < kChunkCapacity) break;  // last published chunk
    }
  }
}

// PEEGA_TRACE: "" / "0" → off, "1" → on (caller flushes), anything
// else → on, auto-written to that path at process exit.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("PEEGA_TRACE");
    if (env == nullptr || env[0] == '\0' ||
        (env[0] == '0' && env[1] == '\0')) {
      return;
    }
    internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
    if (!(env[0] == '1' && env[1] == '\0')) {
      static std::string path;  // atexit callback needs stable storage
      path = env;
      std::atexit([] { WriteTrace(path); });
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void SetTracing(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  start_ns_ = NowNanos();
}

void TraceSpan::End() {
  Append(name_, start_ns_, NowNanos() - start_ns_);
}

void FlushTraceTo(std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata so Perfetto labels tracks; tid 0 is whichever
  // thread traced first (normally main).
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const ThreadBuffer* buffer : registry.buffers) {
      if (!first) out << ',';
      first = false;
      out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << buffer->tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << (buffer->tid == 0 ? "main" : "worker-" +
                                              std::to_string(buffer->tid))
          << "\"}}";
    }
  }
  ForEachEvent([&](int tid, const Event& event) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"cat\":\"peega\""
        << ",\"name\":\"";
    JsonEscape(event.name, out);
    out << "\",\"ts\":" << static_cast<double>(event.start_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(event.dur_ns) / 1e3 << "}";
  });
  out << "]}";
}

bool WriteTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  FlushTraceTo(out);
  return static_cast<bool>(out);
}

size_t TraceEventCount() {
  size_t total = 0;
  ForEachEvent([&](int, const Event&) { ++total; });
  return total;
}

void ClearTrace() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (ThreadBuffer* buffer : registry.buffers) {
    // Drop every chunk past the head and rewind; the quiescence
    // contract means no owner thread is appending concurrently.
    Chunk* chunk = buffer->head->next.exchange(nullptr);
    while (chunk != nullptr) {
      Chunk* next = chunk->next.load(std::memory_order_relaxed);
      delete chunk;
      chunk = next;
    }
    buffer->head->count.store(0, std::memory_order_release);
    buffer->tail = buffer->head;
  }
}

}  // namespace repro::obs
