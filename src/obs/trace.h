#ifndef PEEGA_OBS_TRACE_H_
#define PEEGA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

namespace repro::obs {

/// Scoped tracing with Chrome `trace_event` export.
///
/// A `TraceSpan` marks one timed region; spans nest naturally (the
/// viewer reconstructs the hierarchy from timestamps per thread) and
/// may be opened from any thread, including the pool workers in
/// src/parallel. Collection is designed around two constraints:
///
///  * **Near-zero cost when disabled.** The constructor is a single
///    relaxed atomic load; no clock is read, nothing is allocated, and
///    the destructor sees a null name and returns. The hot kernels in
///    src/linalg keep their spans compiled in at all times for this
///    reason.
///  * **Lock-free append when enabled.** Each thread owns a chunked
///    event buffer; recording a span writes one slot and publishes it
///    with a release store of the chunk's count. No lock is taken on
///    the recording path, so worker threads never serialize on the
///    tracer. Buffers are merged (and timestamp-sorted per thread
///    registration order) only at flush time.
///
/// Switching: tracing starts disabled unless the `PEEGA_TRACE`
/// environment variable is set — `PEEGA_TRACE=1` enables collection
/// (the program must call `WriteTrace`/`FlushTraceTo` itself, as the
/// bench harness does for `--trace`), while any other non-empty,
/// non-"0" value is treated as an output path that is written
/// automatically at process exit. `SetTracing()` toggles at runtime.
///
/// The exported JSON loads directly in `chrome://tracing` and
/// https://ui.perfetto.dev (trace_event "X" complete events).

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// True when spans are being collected. Relaxed load — callers may
/// cache the answer only within one span's lifetime.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off at runtime. Spans already open keep
/// recording; spans constructed while disabled stay inert.
void SetTracing(bool enabled);

/// RAII span: records [construction, destruction) on the current
/// thread's buffer under `name`. `name` must outlive the process trace
/// (string literals only — the tracer stores the pointer, not a copy).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) Begin(name);
  }
  ~TraceSpan() {
    if (name_ != nullptr) End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

/// Merges every thread's buffer and writes the Chrome trace_event JSON
/// document. Safe to call while spans are still being recorded on other
/// threads (a consistent prefix of each buffer is exported); for a
/// complete trace, call it after parallel work has quiesced. Does not
/// clear the collected events.
void FlushTraceTo(std::ostream& out);

/// FlushTraceTo into `path`; false if the file cannot be written.
bool WriteTrace(const std::string& path);

/// Number of finished spans currently buffered (all threads).
size_t TraceEventCount();

/// Drops all buffered events. Must only be called while no span is
/// being destroyed concurrently (tests and bench setup call this from
/// a quiescent point).
void ClearTrace();

}  // namespace repro::obs

#endif  // PEEGA_OBS_TRACE_H_
