#include "obs/metrics.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "debug/check.h"
#include "obs/json.h"

namespace repro::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  PEEGA_CHECK(!bounds_.empty());
  PEEGA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  PEEGA_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
              bounds_.end())
      << " — histogram bounds must be strictly increasing";
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; everything past the last
  // bound lands in the overflow bucket. Bucket lists are short (~a
  // dozen), so a linear scan beats binary search in practice.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::total_count() const {
  uint64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double>* const buckets = new std::vector<double>{
      0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
      1e3, 3e3, 1e4, 3e4, 1e5};
  return *buckets;
}

namespace {

// Instruments live forever so cached pointers never dangle; the leaked
// static keeps them reachable (and LeakSanitizer quiet) after main.
struct MetricsRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& GetMetricsRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace

Counter* GetCounter(const std::string& name) {
  MetricsRegistry& registry = GetMetricsRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto& slot = registry.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* GetGauge(const std::string& name) {
  MetricsRegistry& registry = GetMetricsRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto& slot = registry.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* GetHistogram(const std::string& name, std::vector<double> bounds) {
  MetricsRegistry& registry = GetMetricsRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto& slot = registry.histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    PEEGA_CHECK(slot->bounds() == bounds)
        << " — histogram '" << name << "' re-registered with different bounds";
  }
  return slot.get();
}

MetricsSnapshot SnapshotMetrics() {
  MetricsRegistry& registry = GetMetricsRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : registry.counters) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : registry.gauges) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : registry.histograms) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds();
    h.counts.resize(h.bounds.size() + 1);
    for (size_t i = 0; i < h.counts.size(); ++i) {
      h.counts[i] = histogram->bucket_count(i);
      h.total += h.counts[i];
    }
    h.sum = histogram->sum();
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void ResetMetrics() {
  MetricsRegistry& registry = GetMetricsRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& [name, counter] : registry.counters) counter->Reset();
  for (const auto& [name, gauge] : registry.gauges) gauge->Reset();
  for (const auto& [name, histogram] : registry.histograms) {
    histogram->Reset();
  }
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  Json root = Json::MakeObject();
  Json counters = Json::MakeObject();
  for (const auto& [name, value] : snapshot.counters) {
    counters.object[name] = Json::MakeNumber(static_cast<double>(value));
  }
  Json gauges = Json::MakeObject();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.object[name] = Json::MakeNumber(value);
  }
  Json histograms = Json::MakeObject();
  for (const auto& [name, h] : snapshot.histograms) {
    Json entry = Json::MakeObject();
    entry.object["count"] = Json::MakeNumber(static_cast<double>(h.total));
    entry.object["sum"] = Json::MakeNumber(h.sum);
    Json buckets = Json::MakeArray();
    for (size_t i = 0; i < h.counts.size(); ++i) {
      Json bucket = Json::MakeObject();
      bucket.object["le"] = i < h.bounds.size()
                                ? Json::MakeNumber(h.bounds[i])
                                : Json::MakeString("inf");
      bucket.object["count"] =
          Json::MakeNumber(static_cast<double>(h.counts[i]));
      buckets.array.push_back(std::move(bucket));
    }
    entry.object["buckets"] = std::move(buckets);
    histograms.object[name] = std::move(entry);
  }
  root.object["counters"] = std::move(counters);
  root.object["gauges"] = std::move(gauges);
  root.object["histograms"] = std::move(histograms);
  return root.Dump();
}

}  // namespace repro::obs
