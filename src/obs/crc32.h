#ifndef PEEGA_OBS_CRC32_H_
#define PEEGA_OBS_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace repro::obs {

/// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320) over `size` bytes.
/// Table-driven, no dependencies. Used as the per-record integrity
/// check in the serve journal and in PEEGA checkpoint files: both
/// serialize through `obs::Json` (byte-stable, map-ordered keys), so
/// the checksum of the re-serialized document is reproducible across
/// writers and platforms.
uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(const std::string& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace repro::obs

#endif  // PEEGA_OBS_CRC32_H_
