#ifndef PEEGA_OBS_STOPWATCH_H_
#define PEEGA_OBS_STOPWATCH_H_

#include <chrono>

namespace repro::obs {

/// Monotonic wall-clock timer. This is the ONLY sanctioned way to time
/// anything under src/ — `peega_lint` rejects raw `std::chrono` outside
/// `src/obs/` so that every duration in the tree flows through one
/// clock (steady, immune to wall-clock adjustments) and can be found,
/// swapped, or mocked in a single place. For scoped timings that should
/// land in the process trace, prefer `obs::TraceSpan` (trace.h).
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Re-arms the timer; subsequent readings measure from this instant.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Nanoseconds since the first call in this process (a fixed steady-
/// clock epoch). All trace timestamps share this epoch so events from
/// different threads line up on one timeline.
uint64_t NowNanos();

/// A millisecond duration usable with `condition_variable::wait_for` and
/// friends. Exists so code outside src/obs/ can express timed waits
/// (e.g. the serve retry-backoff sleep) without naming `std::chrono`,
/// which the no-raw-chrono analyzer pass bans elsewhere in src/.
inline std::chrono::duration<double, std::milli> DurationMs(double ms) {
  return std::chrono::duration<double, std::milli>(ms);
}

}  // namespace repro::obs

#endif  // PEEGA_OBS_STOPWATCH_H_
