#include "obs/crc32.h"

namespace repro::obs {

namespace {

struct Crc32Table {
  uint32_t entry[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entry[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const Crc32Table table;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entry[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace repro::obs
