#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace repro::obs {

Json Json::MakeBool(bool b) {
  Json j;
  j.type = Type::kBool;
  j.bool_value = b;
  return j;
}

Json Json::MakeNumber(double n) {
  Json j;
  j.type = Type::kNumber;
  j.number_value = n;
  return j;
}

Json Json::MakeString(std::string s) {
  Json j;
  j.type = Type::kString;
  j.string_value = std::move(s);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type = Type::kObject;
  return j;
}

const Json* Json::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

void JsonEscape(const std::string& s, std::ostream& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out << buffer;
        } else {
          out << c;
        }
    }
  }
}

namespace {

void WriteNumber(double n, std::ostream& out) {
  if (!std::isfinite(n)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out << "null";
    return;
  }
  const double rounded = std::nearbyint(n);
  if (rounded == n && std::fabs(n) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", n);
    out << buffer;
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", n);
  out << buffer;
}

}  // namespace

void Json::Write(std::ostream& out) const {
  switch (type) {
    case Type::kNull:
      out << "null";
      break;
    case Type::kBool:
      out << (bool_value ? "true" : "false");
      break;
    case Type::kNumber:
      WriteNumber(number_value, out);
      break;
    case Type::kString:
      out << '"';
      JsonEscape(string_value, out);
      out << '"';
      break;
    case Type::kArray: {
      out << '[';
      bool first = true;
      for (const Json& element : array) {
        if (!first) out << ',';
        first = false;
        element.Write(out);
      }
      out << ']';
      break;
    }
    case Type::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : object) {
        if (!first) out << ',';
        first = false;
        out << '"';
        JsonEscape(key, out);
        out << "\":";
        value.Write(out);
      }
      out << '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::ostringstream out;
  Write(out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(Json* out) {
    SkipWhitespace();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word, Json value, Json* out) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    *out = std::move(value);
    return true;
  }

  bool ParseValue(Json* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': return Literal("null", Json::MakeNull(), out);
      case 't': return Literal("true", Json::MakeBool(true), out);
      case 'f': return Literal("false", Json::MakeBool(false), out);
      case '"': return ParseString(out);
      case '[': return ParseArray(out);
      case '{': return ParseObject(out);
      default: return ParseNumber(out);
    }
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    *out = Json::MakeNumber(value);
    return true;
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(Json* out) {
    ++pos_;  // opening quote
    std::string value;
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        value += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value += '"'; break;
        case '\\': value += '\\'; break;
        case '/': value += '/'; break;
        case 'b': value += '\b'; break;
        case 'f': value += '\f'; break;
        case 'n': value += '\n'; break;
        case 'r': value += '\r'; break;
        case 't': value += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return false;
          // BMP-only UTF-8 encoding (surrogate pairs are not needed by
          // any producer in this repo).
          if (code < 0x80) {
            value += static_cast<char>(code);
          } else if (code < 0x800) {
            value += static_cast<char>(0xC0 | (code >> 6));
            value += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            value += static_cast<char>(0xE0 | (code >> 12));
            value += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            value += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("invalid escape");
      }
    }
    *out = Json::MakeString(std::move(value));
    return true;
  }

  bool ParseArray(Json* out) {
    ++pos_;  // '['
    *out = Json::MakeArray();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json element;
      SkipWhitespace();
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(Json* out) {
    ++pos_;  // '{'
    *out = Json::MakeObject();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      Json key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Fail("expected ':'");
      }
      Json value;
      SkipWhitespace();
      if (!ParseValue(&value)) return false;
      out->object[key.string_value] = std::move(value);
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool Json::Parse(const std::string& text, Json* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

}  // namespace repro::obs
