#ifndef PEEGA_OBS_METRICS_H_
#define PEEGA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace repro::obs {

/// Process-wide registry of named counters, gauges, and fixed-bucket
/// histograms, snapshotable to JSON.
///
/// Collection is always on: every instrument is a relaxed atomic, so an
/// update costs one uncontended RMW and hot loops amortize further by
/// accumulating locally and adding once per chunk (see
/// `attack::BestEdgeFlip`). Lookup by name takes a lock — call sites
/// cache the pointer in a function-local static:
///
///     static obs::Counter* const calls = obs::GetCounter("spmm.calls");
///     calls->Add(1);
///
/// Determinism contract: metric *counts* (counters, histogram totals)
/// produced by the deterministic kernels are identical at any thread
/// count, because everything they count (chunks, scanned candidates,
/// FLOPs) is a function of the static partition, never of the worker
/// assignment. Latency *values* (gauge readings, histogram bucket
/// spread) are machine-dependent by nature. tests/obs_test.cc pins the
/// former at 1/2/8 threads.

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed upper-bound buckets: bucket i counts values
/// v <= bounds[i] (cumulative-exclusive style, first matching bucket
/// wins), and one implicit overflow bucket counts v > bounds.back().
/// Bucket boundaries are fixed at registration; re-registering the same
/// name with different bounds is a programming error and is checked.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; `i == bounds().size()` is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t total_count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket bounds in milliseconds (sub-ms to minutes,
/// roughly 3x apart) for the per-phase histograms.
const std::vector<double>& LatencyBucketsMs();

/// Registry lookups: create-on-first-use, then return the same pointer
/// forever (instruments are never destroyed, so cached pointers stay
/// valid for the process lifetime).
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
/// `bounds` must be strictly increasing and non-empty; a second call
/// with the same name must pass identical bounds.
Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

/// Point-in-time copy of every registered instrument.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1, last = overflow
  uint64_t total = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

MetricsSnapshot SnapshotMetrics();

/// Zeroes every instrument (registrations and cached pointers stay
/// valid). Benches call this after warm-up so the exported snapshot
/// covers only measured work.
void ResetMetrics();

/// Serializes a snapshot as one JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,
///                          "buckets":[{"le":..,"count":..},...]}}}
/// The overflow bucket's "le" is the string "inf".
std::string MetricsToJson(const MetricsSnapshot& snapshot);

}  // namespace repro::obs

#endif  // PEEGA_OBS_METRICS_H_
