#ifndef PEEGA_OBS_JSON_H_
#define PEEGA_OBS_JSON_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace repro::obs {

/// Minimal JSON document model — just enough for the observability
/// exports (trace files, metric snapshots, BENCH_*.json) and for the
/// parse-back tests and CI schema checks that validate them. Numbers
/// are doubles; object keys are ordered (std::map) so emitted JSON is
/// byte-stable for a given document.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  static Json MakeNull() { return Json{}; }
  static Json MakeBool(bool b);
  static Json MakeNumber(double n);
  static Json MakeString(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  /// Serializes compactly (no insignificant whitespace). Numbers that
  /// are integral within 2^53 print without a fractional part.
  void Write(std::ostream& out) const;
  std::string Dump() const;

  /// Strict recursive-descent parser (UTF-8 passthrough; \uXXXX escapes
  /// are decoded for the BMP). Returns false and sets `error` (with a
  /// byte offset) on malformed input or trailing garbage.
  static bool Parse(const std::string& text, Json* out, std::string* error);
};

/// Escapes `s` as the body of a JSON string literal (no surrounding
/// quotes) — shared by Json::Write and the streaming trace exporter.
void JsonEscape(const std::string& s, std::ostream& out);

}  // namespace repro::obs

#endif  // PEEGA_OBS_JSON_H_
