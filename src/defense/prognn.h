#ifndef PEEGA_DEFENSE_PROGNN_H_
#define PEEGA_DEFENSE_PROGNN_H_

#include "defense/defender.h"
#include "nn/gcn.h"

namespace repro::defense {

/// Pro-GNN (Jin et al., KDD 2020), simplified: jointly learns a purified
/// dense structure S and GCN parameters by alternating
///
///   1. a GCN step on the current normalized S;
///   2. a structure step on
///        L(S) = L_gnn(S) + gamma ||S - Â||_F^2
///               + lambda_smooth * tr(X^T L_S X)  (feature smoothness)
///               + alpha ||S||_1                  (via soft-thresholding)
///      with a periodic low-rank projection (truncated eigendecomposition
///      soft-thresholds the spectrum) for the nuclear-norm term;
///
/// then trains a final GCN on the learned structure. The proximal
/// operators for the L1 and nuclear terms follow the original; the
/// simplification is a shorter alternation schedule sized for CPU runs.
class ProGnnDefender : public Defender {
 public:
  struct Options {
    int outer_epochs = 60;
    float structure_lr = 0.01f;
    float gamma_fidelity = 1.0f;
    float lambda_smooth = 0.05f;
    float alpha_l1 = 5e-4f;
    float nuclear_tau = 0.2f;  // spectral soft-threshold amount
    int lowrank_every = 20;
    int lowrank_rank = 30;
    nn::Gcn::Options gcn;
  };

  ProGnnDefender();
  explicit ProGnnDefender(const Options& options);

  std::string name() const override { return "Pro-GNN"; }
  DefenseReport Run(const graph::Graph& g,
                    const nn::TrainOptions& train_options,
                    linalg::Rng* rng) override;

 private:
  Options options_;
};

}  // namespace repro::defense

#endif  // PEEGA_DEFENSE_PROGNN_H_
