#include "defense/prognn.h"

#include <algorithm>
#include <cmath>

#include "autograd/tape.h"
#include "graph/metrics.h"
#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "nn/optim.h"
#include "nn/trainer.h"
#include "obs/stopwatch.h"

namespace repro::defense {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;

ProGnnDefender::ProGnnDefender() : options_(Options()) {}
ProGnnDefender::ProGnnDefender(const Options& options)
    : options_(options) {}

namespace {

// Pairwise squared feature distances d_ij = ||x_i - x_j||^2, the gradient
// of the smoothness term tr(X^T L_S X) = 1/2 sum_ij S_ij d_ij w.r.t. S.
Matrix PairwiseSquaredDistances(const Matrix& x) {
  const int n = x.rows();
  std::vector<float> sq(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    const float* row = x.row(i);
    float acc = 0.0f;
    for (int j = 0; j < x.cols(); ++j) acc += row[j] * row[j];
    sq[i] = acc;
  }
  Matrix gram = linalg::MatMulTransB(x, x);
  Matrix dist(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      dist(i, j) = std::max(0.0f, sq[i] + sq[j] - 2.0f * gram(i, j));
    }
  }
  return dist;
}

void SymmetrizeClamp(Matrix* s) {
  const int n = s->rows();
  for (int i = 0; i < n; ++i) {
    (*s)(i, i) = 0.0f;
    for (int j = i + 1; j < n; ++j) {
      const float avg =
          std::clamp(0.5f * ((*s)(i, j) + (*s)(j, i)), 0.0f, 1.0f);
      (*s)(i, j) = avg;
      (*s)(j, i) = avg;
    }
  }
}

}  // namespace

DefenseReport ProGnnDefender::Run(const graph::Graph& g,
                                  const nn::TrainOptions& train_options,
                                  linalg::Rng* rng) {
  const obs::StopWatch watch;
  const Matrix a_hat = g.adjacency.ToDense();
  Matrix s = a_hat;  // learned structure, initialized at the poison graph
  const Matrix feature_dist = PairwiseSquaredDistances(g.features);
  const Matrix labels = g.OneHotLabels();
  const std::vector<float> train_mask = g.NodeMask(g.train_nodes);

  nn::Gcn gcn(g.features.cols(), g.num_classes, options_.gcn, rng);
  nn::Adam gnn_optimizer(train_options.lr, train_options.weight_decay);

  status::Status loop_status;
  for (int epoch = 0; epoch < options_.outer_epochs; ++epoch) {
    loop_status = train_options.deadline.Check(
        "Pro-GNN structure epoch " + std::to_string(epoch));
    if (!loop_status.ok()) break;  // keep the structure learned so far
    Tape tape;
    Var s_var = tape.Input(s, /*requires_grad=*/true);
    Var a_n = tape.GcnNormalizeDense(s_var);
    auto bound = gcn.BindParameters(&tape);
    Var x = tape.Input(g.features, false);
    Var logits = gcn.ForwardWithDensePropagation(&tape, a_n, x, bound,
                                                 /*training=*/true, rng);
    Var loss = tape.SoftmaxCrossEntropy(logits, labels, train_mask);
    tape.Backward(loss);

    // (1) GCN step.
    for (auto& [param, var] : bound) gnn_optimizer.Step(param, var.grad());

    // (2) Structure step: GNN loss + fidelity + smoothness gradients.
    Matrix grad = s_var.grad();
    linalg::Axpy(&grad, linalg::Sub(s, a_hat),
                 2.0f * options_.gamma_fidelity);
    linalg::Axpy(&grad, feature_dist, 0.5f * options_.lambda_smooth);
    linalg::Axpy(&s, grad, -options_.structure_lr);
    // Proximal L1: soft-threshold toward sparsity.
    float* sp = s.data();
    const float thr = options_.alpha_l1;
    for (int64_t i = 0; i < s.size(); ++i) {
      sp[i] = sp[i] > thr ? sp[i] - thr : (sp[i] < -thr ? sp[i] + thr : 0.0f);
    }
    // Periodic nuclear proximal step: spectral soft-threshold.
    if ((epoch + 1) % options_.lowrank_every == 0) {
      const int rank = std::min(options_.lowrank_rank, g.num_nodes);
      linalg::EigenResult eig =
          linalg::TopKEigenSymmetricDense(s, rank, rng, 25);
      for (float& v : eig.values) {
        v = v > 0.0f ? std::max(0.0f, v - options_.nuclear_tau)
                     : std::min(0.0f, v + options_.nuclear_tau);
      }
      s = linalg::LowRankReconstruct(eig);
    }
    SymmetrizeClamp(&s);
  }

  // Final training of a fresh GCN on the learned structure. When the
  // deadline interrupted the structure loop, this short training still
  // runs unbounded so the best-so-far structure yields a usable model
  // (the report carries the non-OK status either way).
  graph::Graph purified = g;
  purified.adjacency = linalg::SparseMatrix::FromDense(s, 0.01f);
  nn::Gcn final_gcn(g.features.cols(), g.num_classes, options_.gcn, rng);
  nn::TrainOptions final_options = train_options;
  if (!loop_status.ok()) final_options.deadline = status::Deadline();
  const nn::TrainReport train =
      nn::TrainNodeClassifier(&final_gcn, purified, final_options, rng);

  DefenseReport report;
  report.test_accuracy = train.test_accuracy;
  report.val_accuracy = train.val_accuracy;
  report.train_seconds = watch.Seconds();
  report.status = loop_status.ok()
                      ? train.status.WithContext("Pro-GNN final training")
                      : loop_status.WithContext("Pro-GNN");
  return report;
}

}  // namespace repro::defense
