#include "defense/svd.h"

#include <algorithm>

#include "debug/check.h"
#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "nn/trainer.h"
#include "obs/stopwatch.h"

namespace repro::defense {

using linalg::Matrix;
using linalg::SparseMatrix;

SvdDefender::SvdDefender() : options_(Options()) {}
SvdDefender::SvdDefender(const Options& options) : options_(options) {}

SparseMatrix SvdDefender::Purify(const graph::Graph& g,
                                 linalg::Rng* rng) const {
  PEEGA_CHECK_GT(options_.rank, 0) << " — SVD defense needs a positive rank";
  const int rank = std::min(options_.rank, g.num_nodes);
  const linalg::EigenResult eig =
      linalg::TopKEigenSymmetric(g.adjacency, rank, rng);
  Matrix reconstructed = linalg::LowRankReconstruct(eig);
  // Negative weights have no graph interpretation; clamp and sparsify.
  float* p = reconstructed.data();
  for (int64_t i = 0; i < reconstructed.size(); ++i) {
    if (p[i] < options_.sparsify_tol) p[i] = 0.0f;
  }
  for (int i = 0; i < reconstructed.rows(); ++i) reconstructed(i, i) = 0.0f;
  return SparseMatrix::FromDense(reconstructed);
}

DefenseReport SvdDefender::Run(const graph::Graph& g,
                               const nn::TrainOptions& train_options,
                               linalg::Rng* rng) {
  const obs::StopWatch watch;
  graph::Graph purified = g;
  purified.adjacency = Purify(g, rng);
  nn::Gcn model(g.features.cols(), g.num_classes, options_.gcn, rng);
  const nn::TrainReport train =
      nn::TrainNodeClassifier(&model, purified, train_options, rng);
  DefenseReport report;
  report.test_accuracy = train.test_accuracy;
  report.val_accuracy = train.val_accuracy;
  report.train_seconds = watch.Seconds();
  report.status = train.status.WithContext("GCN-SVD training");
  return report;
}

}  // namespace repro::defense
