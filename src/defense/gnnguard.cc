#include "defense/gnnguard.h"

#include <algorithm>
#include <tuple>

#include "linalg/ops.h"
#include "nn/trainer.h"
#include "obs/stopwatch.h"

namespace repro::defense {

using linalg::SparseMatrix;

GnnGuardDefender::GnnGuardDefender() : options_(Options()) {}
GnnGuardDefender::GnnGuardDefender(const Options& options)
    : options_(options) {}

SparseMatrix GnnGuardDefender::WeightedAdjacency(
    const graph::Graph& g) const {
  std::vector<std::tuple<int, int, float>> triplets;
  int kept = 0;
  for (const auto& [u, v] : g.EdgeList()) {
    const float sim = linalg::CosineSimilarity(g.features, u, v);
    if (sim < options_.prune_threshold) continue;
    const float w = std::max(sim, options_.min_weight);
    triplets.emplace_back(u, v, w);
    triplets.emplace_back(v, u, w);
    ++kept;
  }
  // Degenerate features (identity matrices) zero every similarity; fall
  // back to the unweighted topology rather than an empty graph.
  if (kept * 4 < g.NumEdges()) return g.adjacency;
  return SparseMatrix::FromTriplets(g.num_nodes, g.num_nodes, triplets);
}

DefenseReport GnnGuardDefender::Run(const graph::Graph& g,
                                    const nn::TrainOptions& train_options,
                                    linalg::Rng* rng) {
  const obs::StopWatch watch;
  graph::Graph guarded = g;
  guarded.adjacency = WeightedAdjacency(g);
  nn::Gcn model(g.features.cols(), g.num_classes, options_.gcn, rng);
  const nn::TrainReport train =
      nn::TrainNodeClassifier(&model, guarded, train_options, rng);
  DefenseReport report;
  report.test_accuracy = train.test_accuracy;
  report.val_accuracy = train.val_accuracy;
  report.train_seconds = watch.Seconds();
  report.status = train.status.WithContext("GNNGuard training");
  return report;
}

}  // namespace repro::defense
