#ifndef PEEGA_DEFENSE_JACCARD_H_
#define PEEGA_DEFENSE_JACCARD_H_

#include "defense/defender.h"
#include "nn/gcn.h"

namespace repro::defense {

/// GCN-Jaccard (Wu et al., IJCAI 2019): preprocessing defense that drops
/// every edge whose endpoints have Jaccard feature similarity below a
/// threshold, then trains a plain GCN on the pruned graph. Only
/// meaningful for binary non-identity features (it is skipped for the
/// Polblogs-style dataset, as in the paper's Tab. VI).
class JaccardDefender : public Defender {
 public:
  struct Options {
    float threshold = 0.02f;
    nn::Gcn::Options gcn;
  };

  JaccardDefender();
  explicit JaccardDefender(const Options& options);

  std::string name() const override { return "GCN-Jaccard"; }
  DefenseReport Run(const graph::Graph& g,
                    const nn::TrainOptions& train_options,
                    linalg::Rng* rng) override;

  /// The purified graph (exposed for tests).
  graph::Graph Purify(const graph::Graph& g) const;

 private:
  Options options_;
};

}  // namespace repro::defense

#endif  // PEEGA_DEFENSE_JACCARD_H_
