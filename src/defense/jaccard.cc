#include "defense/jaccard.h"

#include "debug/check.h"
#include "linalg/ops.h"
#include "nn/trainer.h"
#include "obs/stopwatch.h"

namespace repro::defense {

JaccardDefender::JaccardDefender() : options_(Options()) {}
JaccardDefender::JaccardDefender(const Options& options)
    : options_(options) {}

graph::Graph JaccardDefender::Purify(const graph::Graph& g) const {
  PEEGA_CHECK_GE(options_.threshold, 0.0f)
      << " — Jaccard similarity is bounded to [0, 1]";
  PEEGA_CHECK_LE(options_.threshold, 1.0f)
      << " — Jaccard similarity is bounded to [0, 1]";
  std::vector<std::pair<int, int>> kept;
  for (const auto& [u, v] : g.EdgeList()) {
    if (linalg::JaccardSimilarity(g.features, u, v) >= options_.threshold) {
      kept.emplace_back(u, v);
    }
  }
  return g.WithAdjacency(graph::AdjacencyFromEdges(g.num_nodes, kept));
}

DefenseReport JaccardDefender::Run(const graph::Graph& g,
                                   const nn::TrainOptions& train_options,
                                   linalg::Rng* rng) {
  const obs::StopWatch watch;
  const graph::Graph purified = Purify(g);
  nn::Gcn model(g.features.cols(), g.num_classes, options_.gcn, rng);
  const nn::TrainReport train =
      nn::TrainNodeClassifier(&model, purified, train_options, rng);
  DefenseReport report;
  report.test_accuracy = train.test_accuracy;
  report.val_accuracy = train.val_accuracy;
  report.train_seconds = watch.Seconds();
  report.status = train.status.WithContext("GCN-Jaccard training");
  return report;
}

}  // namespace repro::defense
