#ifndef PEEGA_DEFENSE_GNNGUARD_H_
#define PEEGA_DEFENSE_GNNGUARD_H_

#include "defense/defender.h"
#include "nn/gcn.h"

namespace repro::defense {

/// GNNGuard (Zhang & Zitnik, NeurIPS 2020), simplified: re-weights every
/// edge by the cosine similarity of its endpoints' features, prunes
/// edges below a threshold, and row-normalizes the result into the
/// propagation matrix a GCN trains on. Unlike GCN-Jaccard's hard
/// preprocessing, surviving edges keep a soft similarity weight, so
/// borderline edges are attenuated instead of kept at full strength.
/// (The original recomputes similarities on hidden layers per epoch; we
/// compute them once on the input features — the defense-relevant
/// signal, since attackers rarely perturb features; Sec. V-D1.)
class GnnGuardDefender : public Defender {
 public:
  struct Options {
    float prune_threshold = 0.05f;
    /// Weight floor so weakly similar but surviving edges still carry
    /// some message passing.
    float min_weight = 0.1f;
    nn::Gcn::Options gcn;
  };

  GnnGuardDefender();
  explicit GnnGuardDefender(const Options& options);

  std::string name() const override { return "GNNGuard"; }
  DefenseReport Run(const graph::Graph& g,
                    const nn::TrainOptions& train_options,
                    linalg::Rng* rng) override;

  /// The similarity-weighted pruned adjacency (exposed for tests).
  linalg::SparseMatrix WeightedAdjacency(const graph::Graph& g) const;

 private:
  Options options_;
};

}  // namespace repro::defense

#endif  // PEEGA_DEFENSE_GNNGUARD_H_
