#ifndef PEEGA_DEFENSE_MODEL_DEFENDERS_H_
#define PEEGA_DEFENSE_MODEL_DEFENDERS_H_

#include <memory>

#include "defense/defender.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/rgcn.h"
#include "nn/simpgcn.h"

namespace repro::defense {

/// Raw GCN trained directly on the input graph (the undefended victim).
class GcnDefender : public Defender {
 public:
  GcnDefender();
  explicit GcnDefender(const nn::Gcn::Options& options);
  std::string name() const override { return "GCN"; }
  DefenseReport Run(const graph::Graph& g,
                    const nn::TrainOptions& train_options,
                    linalg::Rng* rng) override;

 private:
  nn::Gcn::Options options_;
};

/// Raw GAT; its attention provides mild implicit robustness.
class GatDefender : public Defender {
 public:
  GatDefender();
  explicit GatDefender(const nn::Gat::Options& options);
  std::string name() const override { return "GAT"; }
  DefenseReport Run(const graph::Graph& g,
                    const nn::TrainOptions& train_options,
                    linalg::Rng* rng) override;

 private:
  nn::Gat::Options options_;
};

/// RGCN: Gaussian node representations with variance attention.
class RGcnDefender : public Defender {
 public:
  RGcnDefender();
  explicit RGcnDefender(const nn::RGcn::Options& options);
  std::string name() const override { return "RGCN"; }
  DefenseReport Run(const graph::Graph& g,
                    const nn::TrainOptions& train_options,
                    linalg::Rng* rng) override;

 private:
  nn::RGcn::Options options_;
};

/// SimPGCN: adaptive mixing of topology and feature-kNN propagation.
class SimPGcnDefender : public Defender {
 public:
  SimPGcnDefender();
  explicit SimPGcnDefender(const nn::SimPGcn::Options& options);
  std::string name() const override { return "SimPGCN"; }
  DefenseReport Run(const graph::Graph& g,
                    const nn::TrainOptions& train_options,
                    linalg::Rng* rng) override;

 private:
  nn::SimPGcn::Options options_;
};

}  // namespace repro::defense

#endif  // PEEGA_DEFENSE_MODEL_DEFENDERS_H_
