#ifndef PEEGA_DEFENSE_SVD_H_
#define PEEGA_DEFENSE_SVD_H_

#include "defense/defender.h"
#include "nn/gcn.h"

namespace repro::defense {

/// GCN-SVD (Entezari et al., WSDM 2020): replaces the poisoned adjacency
/// by its rank-k truncated spectral reconstruction (adversarial edge
/// flips are high-frequency, so a low-rank projection filters them),
/// then trains a GCN on the weighted reconstruction. The adjacency is
/// symmetric, so the truncated eigendecomposition equals the truncated
/// SVD up to signs.
class SvdDefender : public Defender {
 public:
  struct Options {
    int rank = 15;
    /// Reconstruction entries with |v| below this are dropped.
    float sparsify_tol = 0.05f;
    nn::Gcn::Options gcn;
  };

  SvdDefender();
  explicit SvdDefender(const Options& options);

  std::string name() const override { return "GCN-SVD"; }
  DefenseReport Run(const graph::Graph& g,
                    const nn::TrainOptions& train_options,
                    linalg::Rng* rng) override;

  /// Low-rank purified (weighted, non-negative) adjacency.
  linalg::SparseMatrix Purify(const graph::Graph& g,
                              linalg::Rng* rng) const;

 private:
  Options options_;
};

}  // namespace repro::defense

#endif  // PEEGA_DEFENSE_SVD_H_
