#include "defense/model_defenders.h"

#include <algorithm>

#include "obs/stopwatch.h"

namespace repro::defense {

namespace {

DefenseReport TrainAndReport(nn::Model* model, const graph::Graph& g,
                             const nn::TrainOptions& train_options,
                             linalg::Rng* rng) {
  const obs::StopWatch watch;
  const nn::TrainReport train =
      nn::TrainNodeClassifier(model, g, train_options, rng);
  DefenseReport report;
  report.test_accuracy = train.test_accuracy;
  report.val_accuracy = train.val_accuracy;
  report.train_seconds = watch.Seconds();
  report.status = train.status.WithContext("defense training");
  return report;
}

}  // namespace

GcnDefender::GcnDefender() : options_(nn::Gcn::Options()) {}
GcnDefender::GcnDefender(const nn::Gcn::Options& options)
    : options_(options) {}

DefenseReport GcnDefender::Run(const graph::Graph& g,
                               const nn::TrainOptions& train_options,
                               linalg::Rng* rng) {
  nn::Gcn model(g.features.cols(), g.num_classes, options_, rng);
  return TrainAndReport(&model, g, train_options, rng);
}

GatDefender::GatDefender() : options_(nn::Gat::Options()) {}
GatDefender::GatDefender(const nn::Gat::Options& options)
    : options_(options) {}

DefenseReport GatDefender::Run(const graph::Graph& g,
                               const nn::TrainOptions& train_options,
                               linalg::Rng* rng) {
  nn::Gat model(g.features.cols(), g.num_classes, options_, rng);
  // GAT trains stably at a lower learning rate than GCN (matching the
  // original implementation's per-model defaults).
  nn::TrainOptions tuned = train_options;
  tuned.lr = std::min(train_options.lr, 0.005f);
  return TrainAndReport(&model, g, tuned, rng);
}

RGcnDefender::RGcnDefender() : options_(nn::RGcn::Options()) {}
RGcnDefender::RGcnDefender(const nn::RGcn::Options& options)
    : options_(options) {}

DefenseReport RGcnDefender::Run(const graph::Graph& g,
                                const nn::TrainOptions& train_options,
                                linalg::Rng* rng) {
  nn::RGcn model(g.features.cols(), g.num_classes, options_, rng);
  return TrainAndReport(&model, g, train_options, rng);
}

SimPGcnDefender::SimPGcnDefender() : options_(nn::SimPGcn::Options()) {}
SimPGcnDefender::SimPGcnDefender(const nn::SimPGcn::Options& options)
    : options_(options) {}

DefenseReport SimPGcnDefender::Run(const graph::Graph& g,
                                   const nn::TrainOptions& train_options,
                                   linalg::Rng* rng) {
  nn::SimPGcn model(g.features.cols(), g.num_classes, options_, rng);
  return TrainAndReport(&model, g, train_options, rng);
}

}  // namespace repro::defense
