#ifndef PEEGA_DEFENSE_DEFENDER_H_
#define PEEGA_DEFENSE_DEFENDER_H_

#include <string>

#include "graph/graph.h"
#include "linalg/random.h"
#include "nn/trainer.h"

namespace repro::defense {

/// Outcome of training a defender on a (possibly poisoned) graph.
struct DefenseReport {
  double test_accuracy = 0.0;
  double val_accuracy = 0.0;
  /// Wall-clock seconds of the full defense pipeline, purification
  /// included (Tab. VIII).
  double train_seconds = 0.0;
  /// OK for a completed run; otherwise the accuracies describe the
  /// best-so-far model the trainer degraded to (see nn::TrainReport).
  status::Status status;
};

/// Interface of GNN defenders: given a poisoned graph, purify and/or
/// train robustly, then report test accuracy.
class Defender {
 public:
  virtual ~Defender() = default;

  virtual std::string name() const = 0;

  /// Runs the full defense pipeline on `g`. Implementations must not
  /// mutate `g`.
  virtual DefenseReport Run(const graph::Graph& g,
                            const nn::TrainOptions& train_options,
                            linalg::Rng* rng) = 0;
};

}  // namespace repro::defense

#endif  // PEEGA_DEFENSE_DEFENDER_H_
