#include "nn/rgcn.h"

#include "linalg/ops.h"
#include "nn/init.h"

namespace repro::nn {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;

RGcn::RGcn(int in_dim, int num_classes, const Options& options,
           linalg::Rng* rng)
    : options_(options) {
  w_mu1_ = GlorotUniform(in_dim, options.hidden_dim, rng);
  w_sigma1_ = GlorotUniform(in_dim, options.hidden_dim, rng);
  w_mu2_ = GlorotUniform(options.hidden_dim, num_classes, rng);
  w_sigma2_ = GlorotUniform(options.hidden_dim, num_classes, rng);
}

void RGcn::Prepare(const graph::Graph& g) {
  a_n_ = graph::GcnNormalize(g.adjacency);
}

RGcn::Forwarded RGcn::Forward(Tape* tape, const graph::Graph& g,
                              bool training, linalg::Rng* rng) {
  Forwarded result;
  auto bind = [&](Matrix* m) {
    Var v = tape->Input(*m, /*requires_grad=*/true);
    result.bound.emplace_back(m, v);
    return v;
  };
  Var wm1 = bind(&w_mu1_);
  Var ws1 = bind(&w_sigma1_);
  Var wm2 = bind(&w_mu2_);
  Var ws2 = bind(&w_sigma2_);

  Var x = tape->Input(g.features, /*requires_grad=*/false);
  if (training && options_.dropout > 0.0f) {
    x = tape->Dropout(x, DropoutMask(x.rows(), x.cols(), options_.dropout,
                                     rng));
  }
  // Layer 1: Gaussian embedding.
  Var mu = tape->Relu(tape->SpMMConst(a_n_, tape->MatMul(x, wm1)));
  Var sigma = tape->Relu(tape->SpMMConst(a_n_, tape->MatMul(x, ws1)));
  // Variance attention alpha = exp(-gamma * sigma).
  Var alpha = tape->Exp(tape->Scale(sigma, -options_.gamma));
  Var mu_att = tape->Mul(mu, alpha);
  Var sigma_att = tape->Mul(sigma, tape->Mul(alpha, alpha));
  // Layer 2 propagates attended mean/variance.
  Var mu2 = tape->SpMMConst(a_n_, tape->MatMul(mu_att, wm2));
  Var sigma2 =
      tape->Relu(tape->SpMMConst(a_n_, tape->MatMul(sigma_att, ws2)));
  if (training) {
    // Reparameterized sample z = mu + eps .* sqrt(sigma).
    Matrix eps =
        linalg::RandomNormal(mu2.rows(), mu2.cols(), 1.0f, rng);
    Var noise = tape->MulConst(tape->PowNonNeg(sigma2, 0.5f), eps);
    result.logits = tape->Add(mu2, noise);
  } else {
    result.logits = mu2;
  }
  return result;
}

std::vector<Matrix*> RGcn::Parameters() {
  return {&w_mu1_, &w_sigma1_, &w_mu2_, &w_sigma2_};
}

}  // namespace repro::nn
