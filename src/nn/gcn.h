#ifndef PEEGA_NN_GCN_H_
#define PEEGA_NN_GCN_H_

#include <memory>
#include <vector>

#include "nn/model.h"

namespace repro::nn {

/// Graph Convolutional Network (Kipf & Welling, 2017).
///
/// Z = softmax(A_n σ(... σ(A_n X W^0) ...) W^L) with A_n the symmetric
/// GCN normalization. The paper trains 2-layer GCNs as the primary
/// victim/backbone model (Eq. 1-2); layer count is configurable for the
/// Fig. 7(b) depth study.
class Gcn : public Model {
 public:
  struct Options {
    int hidden_dim = 16;
    int num_layers = 2;
    float dropout = 0.5f;
    bool bias = true;
  };

  Gcn(int in_dim, int num_classes, const Options& options,
      linalg::Rng* rng);

  void Prepare(const graph::Graph& g) override;
  Forwarded Forward(autograd::Tape* tape, const graph::Graph& g,
                    bool training, linalg::Rng* rng) override;
  std::vector<linalg::Matrix*> Parameters() override;

  /// Forward pass through the layer stack with an externally supplied
  /// propagation matrix and feature Var. `bound` must come from
  /// `BindParameters` on the same tape. Exposed so GNAT can run the same
  /// weights over several augmented graphs and attacks can propagate
  /// through a dense differentiable adjacency.
  autograd::Var ForwardWithPropagation(
      autograd::Tape* tape, const linalg::SparseMatrix& a_n,
      autograd::Var x,
      const std::vector<std::pair<linalg::Matrix*, autograd::Var>>& bound,
      bool training, linalg::Rng* rng);

  /// Dense variant: propagation is a tape Var (e.g. a normalized relaxed
  /// adjacency under attack).
  autograd::Var ForwardWithDensePropagation(
      autograd::Tape* tape, autograd::Var a_n, autograd::Var x,
      const std::vector<std::pair<linalg::Matrix*, autograd::Var>>& bound,
      bool training, linalg::Rng* rng);

  /// Binds all parameters onto `tape`.
  std::vector<std::pair<linalg::Matrix*, autograd::Var>> BindParameters(
      autograd::Tape* tape);

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<linalg::Matrix> weights_;
  std::vector<linalg::Matrix> biases_;
  linalg::SparseMatrix a_n_;  // cached by Prepare
};

}  // namespace repro::nn

#endif  // PEEGA_NN_GCN_H_
