#include "nn/init.h"

#include <cmath>

#include "linalg/ops.h"

namespace repro::nn {

linalg::Matrix GlorotUniform(int rows, int cols, linalg::Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return linalg::RandomUniform(rows, cols, -a, a, rng);
}

linalg::Matrix DropoutMask(int rows, int cols, float drop,
                           linalg::Rng* rng) {
  linalg::Matrix mask(rows, cols, 0.0f);
  if (drop <= 0.0f) {
    mask.Fill(1.0f);
    return mask;
  }
  const float keep_scale = 1.0f / (1.0f - drop);
  float* p = mask.data();
  for (int64_t i = 0; i < mask.size(); ++i) {
    p[i] = rng->Bernoulli(drop) ? 0.0f : keep_scale;
  }
  return mask;
}

}  // namespace repro::nn
