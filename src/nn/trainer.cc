#include "nn/trainer.h"

#include <cmath>
#include <limits>

#include "autograd/tape.h"
#include "debug/failpoints.h"
#include "graph/metrics.h"
#include "linalg/ops.h"
#include "nn/gcn.h"
#include "nn/optim.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace repro::nn {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;

TrainReport TrainNodeClassifier(Model* model, const graph::Graph& g,
                                const TrainOptions& options,
                                linalg::Rng* rng) {
  model->Prepare(g);
  Adam optimizer(options.lr, options.weight_decay);
  const Matrix labels = g.OneHotLabels();
  const std::vector<float> train_mask = g.NodeMask(g.train_nodes);

  TrainReport report;
  double best_val = -1.0;
  int since_best = 0;
  std::vector<Matrix> best_params;
  auto snapshot = [&]() {
    best_params.clear();
    for (Matrix* p : model->Parameters()) best_params.push_back(*p);
  };
  auto restore = [&]() {
    if (best_params.empty()) return;
    auto params = model->Parameters();
    for (size_t i = 0; i < params.size(); ++i) *params[i] = best_params[i];
  };

  static obs::Counter* const epochs_counter = obs::GetCounter("nn.epochs");
  static obs::Histogram* const epoch_ms = obs::GetHistogram(
      "nn.epoch_ms", obs::LatencyBucketsMs());

  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    report.status = options.deadline.Check("train epoch " +
                                           std::to_string(epoch));
    if (!report.status.ok()) break;  // best weights restored below
    const obs::TraceSpan epoch_span("nn.train_epoch");
    const obs::StopWatch epoch_watch;
    epochs_counter->Add(1);
    Tape tape;
    Model::Forwarded fwd = model->Forward(&tape, g, /*training=*/true, rng);
    Var loss = tape.SoftmaxCrossEntropy(fwd.logits, labels, train_mask);
    tape.Backward(loss);
    for (auto& [param, var] : fwd.bound) {
      optimizer.Step(param, var.grad());
    }
    report.final_loss = loss.value()(0, 0);
    if (PEEGA_FAILPOINT("trainer.epoch")) {
      report.final_loss = std::numeric_limits<double>::quiet_NaN();
    }
    if (!std::isfinite(report.final_loss)) {
      // The optimizer step that produced this loss is already applied;
      // restoring the best snapshot below discards the poisoned weights.
      report.status = status::NumericFault(
          "non-finite training loss at epoch " + std::to_string(epoch));
      break;
    }
    ++report.epochs_run;
    epoch_ms->Observe(epoch_watch.Millis());

    if (options.patience > 0) {
      const std::vector<int> preds = PredictLabels(model, g, rng);
      const double val_acc =
          graph::Accuracy(preds, g.labels, g.val_nodes);
      if (val_acc > best_val) {
        best_val = val_acc;
        since_best = 0;
        snapshot();
      } else if (++since_best >= options.patience) {
        break;
      }
    }
  }
  restore();

  const std::vector<int> preds = PredictLabels(model, g, rng);
  report.train_accuracy = graph::Accuracy(preds, g.labels, g.train_nodes);
  report.val_accuracy = graph::Accuracy(preds, g.labels, g.val_nodes);
  report.test_accuracy = graph::Accuracy(preds, g.labels, g.test_nodes);
  return report;
}

Matrix PredictLogits(Model* model, const graph::Graph& g,
                     linalg::Rng* rng) {
  Tape tape;
  Model::Forwarded fwd = model->Forward(&tape, g, /*training=*/false, rng);
  return fwd.logits.value();
}

std::vector<int> PredictLabels(Model* model, const graph::Graph& g,
                               linalg::Rng* rng) {
  return linalg::RowArgmax(PredictLogits(model, g, rng));
}

std::vector<int> SelfTrainLabels(const graph::Graph& g, linalg::Rng* rng) {
  Gcn::Options gcn_options;
  Gcn gcn(g.features.cols(), g.num_classes, gcn_options, rng);
  TrainOptions train_options;
  TrainNodeClassifier(&gcn, g, train_options, rng);
  std::vector<int> pseudo = PredictLabels(&gcn, g, rng);
  for (int v : g.train_nodes) pseudo[v] = g.labels[v];
  return pseudo;
}

}  // namespace repro::nn
