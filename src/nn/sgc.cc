#include "nn/sgc.h"

#include "linalg/ops.h"
#include "nn/init.h"

namespace repro::nn {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;

Sgc::Sgc(int in_dim, int num_classes, const Options& options,
         linalg::Rng* rng)
    : options_(options) {
  w_ = GlorotUniform(in_dim, num_classes, rng);
}

void Sgc::Prepare(const graph::Graph& g) {
  const auto a_n = graph::GcnNormalize(g.adjacency);
  propagated_ = g.features;
  for (int k = 0; k < options_.hops; ++k) {
    propagated_ = linalg::SpMM(a_n, propagated_);
  }
}

Sgc::Forwarded Sgc::Forward(Tape* tape, const graph::Graph& g,
                            bool training, linalg::Rng* rng) {
  (void)g;
  Forwarded result;
  Var w = tape->Input(w_, /*requires_grad=*/true);
  result.bound.emplace_back(&w_, w);
  Var x = tape->Input(propagated_, /*requires_grad=*/false);
  if (training && options_.dropout > 0.0f) {
    x = tape->Dropout(x, DropoutMask(x.rows(), x.cols(), options_.dropout,
                                     rng));
  }
  result.logits = tape->MatMul(x, w);
  return result;
}

std::vector<Matrix*> Sgc::Parameters() { return {&w_}; }

}  // namespace repro::nn
