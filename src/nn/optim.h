#ifndef PEEGA_NN_OPTIM_H_
#define PEEGA_NN_OPTIM_H_

#include <unordered_map>

#include "linalg/matrix.h"

namespace repro::nn {

/// Adam optimizer with decoupled L2 weight decay (the classic
/// loss-gradient formulation used by the GCN reference implementation:
/// the decay term is added to the gradient before the moment updates).
///
/// State (first/second moments and step counter) is keyed by the
/// parameter's address; a parameter matrix must stay at a stable address
/// for the optimizer's lifetime.
class Adam {
 public:
  explicit Adam(float lr = 0.01f, float weight_decay = 5e-4f,
                float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), weight_decay_(weight_decay), beta1_(beta1), beta2_(beta2),
        eps_(eps) {}

  /// Applies one Adam update of `param` using `grad`.
  void Step(linalg::Matrix* param, const linalg::Matrix& grad);

  /// Drops all accumulated state (e.g. when restarting training).
  void Reset() { state_.clear(); }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  struct State {
    linalg::Matrix m;
    linalg::Matrix v;
    int64_t t = 0;
  };

  float lr_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float eps_;
  std::unordered_map<linalg::Matrix*, State> state_;
};

/// Plain SGD step: param -= lr * (grad + weight_decay * param).
void SgdStep(linalg::Matrix* param, const linalg::Matrix& grad, float lr,
             float weight_decay = 0.0f);

}  // namespace repro::nn

#endif  // PEEGA_NN_OPTIM_H_
