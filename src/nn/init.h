#ifndef PEEGA_NN_INIT_H_
#define PEEGA_NN_INIT_H_

#include "linalg/matrix.h"
#include "linalg/random.h"

namespace repro::nn {

/// Glorot (Xavier) uniform initialization: U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)).
linalg::Matrix GlorotUniform(int rows, int cols, linalg::Rng* rng);

/// Inverted-dropout multiplier mask: each entry is 0 with probability
/// `drop` and 1/(1-drop) otherwise.
linalg::Matrix DropoutMask(int rows, int cols, float drop,
                           linalg::Rng* rng);

}  // namespace repro::nn

#endif  // PEEGA_NN_INIT_H_
