#include "nn/gat.h"

#include "debug/check.h"
#include "linalg/ops.h"
#include "nn/init.h"

namespace repro::nn {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;

Gat::Gat(int in_dim, int num_classes, const Options& options,
         linalg::Rng* rng)
    : options_(options) {
  PEEGA_CHECK_GE(options.num_heads, 1);
  for (int h = 0; h < options.num_heads; ++h) {
    w1_.push_back(GlorotUniform(in_dim, options.hidden_dim, rng));
    a1_src_.push_back(GlorotUniform(options.hidden_dim, 1, rng));
    a1_dst_.push_back(GlorotUniform(options.hidden_dim, 1, rng));
  }
  w2_ = GlorotUniform(options.hidden_dim, num_classes, rng);
  a2_src_ = GlorotUniform(num_classes, 1, rng);
  a2_dst_ = GlorotUniform(num_classes, 1, rng);
}

void Gat::Prepare(const graph::Graph& g) {
  mask_ = g.adjacency.ToDense();
  for (int i = 0; i < g.num_nodes; ++i) mask_(i, i) = 1.0f;
}

Var Gat::AttentionHead(Tape* tape, Var x, Var w, Var a_src, Var a_dst) {
  Var hw = tape->MatMul(x, w);                       // N x d
  Var s_src = tape->MatMul(hw, a_src);               // N x 1
  Var s_dst = tape->MatMul(hw, a_dst);               // N x 1
  const int n = hw.rows();
  Var e = tape->Add(tape->BroadcastCol(s_src, n),
                    tape->BroadcastRow(tape->Transpose(s_dst), n));
  e = tape->LeakyRelu(e, options_.leaky_slope);
  Var alpha = tape->MaskedRowSoftmax(e, mask_);
  return tape->MatMul(alpha, hw);
}

Gat::Forwarded Gat::Forward(Tape* tape, const graph::Graph& g,
                            bool training, linalg::Rng* rng) {
  Forwarded result;
  auto bind = [&](Matrix* m) {
    Var v = tape->Input(*m, /*requires_grad=*/true);
    result.bound.emplace_back(m, v);
    return v;
  };
  Var x = tape->Input(g.features, /*requires_grad=*/false);
  if (training && options_.dropout > 0.0f) {
    x = tape->Dropout(x, DropoutMask(x.rows(), x.cols(), options_.dropout,
                                     rng));
  }
  // Layer 1: average the heads, then ELU-ish nonlinearity (ReLU here).
  Var h;
  for (int head = 0; head < options_.num_heads; ++head) {
    Var w = bind(&w1_[head]);
    Var as = bind(&a1_src_[head]);
    Var ad = bind(&a1_dst_[head]);
    Var out = AttentionHead(tape, x, w, as, ad);
    h = head == 0 ? out : tape->Add(h, out);
  }
  if (options_.num_heads > 1) {
    h = tape->Scale(h, 1.0f / static_cast<float>(options_.num_heads));
  }
  h = tape->Relu(h);
  if (training && options_.dropout > 0.0f) {
    h = tape->Dropout(h, DropoutMask(h.rows(), h.cols(), options_.dropout,
                                     rng));
  }
  // Layer 2: single head producing class logits.
  Var w2 = bind(&w2_);
  Var as2 = bind(&a2_src_);
  Var ad2 = bind(&a2_dst_);
  result.logits = AttentionHead(tape, h, w2, as2, ad2);
  return result;
}

std::vector<Matrix*> Gat::Parameters() {
  std::vector<Matrix*> params;
  for (auto& m : w1_) params.push_back(&m);
  for (auto& m : a1_src_) params.push_back(&m);
  for (auto& m : a1_dst_) params.push_back(&m);
  params.push_back(&w2_);
  params.push_back(&a2_src_);
  params.push_back(&a2_dst_);
  return params;
}

}  // namespace repro::nn
