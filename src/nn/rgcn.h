#ifndef PEEGA_NN_RGCN_H_
#define PEEGA_NN_RGCN_H_

#include <vector>

#include "nn/model.h"

namespace repro::nn {

/// Robust GCN (Zhu et al., KDD 2019), simplified.
///
/// Nodes are embedded as Gaussian distributions (mean, variance). The
/// first layer produces mean = relu(A_n X W_mu) and variance =
/// relu(A_n X W_sigma); a variance-based attention alpha = exp(-gamma *
/// variance) down-weights high-variance (likely attacked) dimensions;
/// the second layer propagates mean * alpha and variance * alpha^2.
/// During training the output samples z = mean + eps * sqrt(variance)
/// (reparameterization); evaluation uses the mean.
///
/// Simplification vs. the original: the KL regularizer on the latent
/// Gaussians is dropped — the robustness mechanism the paper's
/// experiments probe is the variance attention, which is kept intact.
class RGcn : public Model {
 public:
  struct Options {
    int hidden_dim = 16;
    float dropout = 0.5f;
    float gamma = 1.0f;
  };

  RGcn(int in_dim, int num_classes, const Options& options,
       linalg::Rng* rng);

  void Prepare(const graph::Graph& g) override;
  Forwarded Forward(autograd::Tape* tape, const graph::Graph& g,
                    bool training, linalg::Rng* rng) override;
  std::vector<linalg::Matrix*> Parameters() override;

 private:
  Options options_;
  linalg::Matrix w_mu1_, w_sigma1_, w_mu2_, w_sigma2_;
  linalg::SparseMatrix a_n_;
};

}  // namespace repro::nn

#endif  // PEEGA_NN_RGCN_H_
