#ifndef PEEGA_NN_TRAINER_H_
#define PEEGA_NN_TRAINER_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/random.h"
#include "nn/model.h"
#include "status/deadline.h"
#include "status/status.h"

namespace repro::nn {

/// Training configuration following the GCN reference setup used by the
/// paper (Adam, lr 0.01, weight decay 5e-4, early stopping on validation
/// accuracy).
struct TrainOptions {
  int max_epochs = 200;
  float lr = 0.01f;
  float weight_decay = 5e-4f;
  /// Epochs without validation improvement before stopping (<=0 disables).
  int patience = 30;
  /// Wall-clock budget / cancellation for the epoch loop. On expiry the
  /// trainer stops, restores the best weights seen so far, and reports
  /// their metrics with `TrainReport::status` non-OK — never aborts.
  status::Deadline deadline;
};

struct TrainReport {
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double final_loss = 0.0;
  int epochs_run = 0;
  /// OK for a full run (incl. early stopping); kDeadlineExceeded /
  /// kCancelled / kNumericFault when the loop degraded to best-so-far.
  status::Status status;
};

/// Trains `model` on `g`'s training nodes with cross-entropy, early
/// stopping on validation accuracy (best weights restored). `Prepare` is
/// called internally.
TrainReport TrainNodeClassifier(Model* model, const graph::Graph& g,
                                const TrainOptions& options,
                                linalg::Rng* rng);

/// Eval-mode logits for all nodes.
linalg::Matrix PredictLogits(Model* model, const graph::Graph& g,
                             linalg::Rng* rng);

/// Eval-mode argmax class per node. Does NOT call `Prepare` (it runs
/// inside the training loop); callers with a fresh model or a changed
/// graph must `Prepare` first.
std::vector<int> PredictLabels(Model* model, const graph::Graph& g,
                               linalg::Rng* rng);

/// Pseudo-labels for every node obtained by training a fresh 2-layer GCN
/// on `g`'s labeled training nodes and predicting the rest; training
/// labels are kept as-is. This is the "self-training" step that gray-box
/// attackers (Metattack Meta-Self) use in place of unknown test labels.
std::vector<int> SelfTrainLabels(const graph::Graph& g,
                                 linalg::Rng* rng);

}  // namespace repro::nn

#endif  // PEEGA_NN_TRAINER_H_
