#include "nn/gcn.h"

#include "debug/check.h"
#include "nn/init.h"

namespace repro::nn {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;
using linalg::SparseMatrix;

Gcn::Gcn(int in_dim, int num_classes, const Options& options,
         linalg::Rng* rng)
    : options_(options) {
  PEEGA_CHECK_GE(options.num_layers, 1);
  int dim = in_dim;
  for (int l = 0; l < options.num_layers; ++l) {
    const int out_dim =
        l + 1 == options.num_layers ? num_classes : options.hidden_dim;
    weights_.push_back(GlorotUniform(dim, out_dim, rng));
    if (options.bias) biases_.push_back(Matrix(1, out_dim));
    dim = out_dim;
  }
}

void Gcn::Prepare(const graph::Graph& g) {
  a_n_ = graph::GcnNormalize(g.adjacency);
}

std::vector<std::pair<Matrix*, Var>> Gcn::BindParameters(Tape* tape) {
  std::vector<std::pair<Matrix*, Var>> bound;
  for (auto& w : weights_) {
    bound.emplace_back(&w, tape->Input(w, /*requires_grad=*/true));
  }
  for (auto& b : biases_) {
    bound.emplace_back(&b, tape->Input(b, /*requires_grad=*/true));
  }
  return bound;
}

Var Gcn::ForwardWithPropagation(
    Tape* tape, const SparseMatrix& a_n, Var x,
    const std::vector<std::pair<Matrix*, Var>>& bound, bool training,
    linalg::Rng* rng) {
  const int num_layers = options_.num_layers;
  Var h = x;
  for (int l = 0; l < num_layers; ++l) {
    if (training && options_.dropout > 0.0f) {
      h = tape->Dropout(
          h, DropoutMask(h.rows(), h.cols(), options_.dropout, rng));
    }
    h = tape->SpMMConst(a_n, tape->MatMul(h, bound[l].second));
    if (options_.bias) {
      h = tape->AddRowVector(h, bound[num_layers + l].second);
    }
    if (l + 1 < num_layers) h = tape->Relu(h);
  }
  return h;
}

Var Gcn::ForwardWithDensePropagation(
    Tape* tape, Var a_n, Var x,
    const std::vector<std::pair<Matrix*, Var>>& bound, bool training,
    linalg::Rng* rng) {
  const int num_layers = options_.num_layers;
  Var h = x;
  for (int l = 0; l < num_layers; ++l) {
    if (training && options_.dropout > 0.0f) {
      h = tape->Dropout(
          h, DropoutMask(h.rows(), h.cols(), options_.dropout, rng));
    }
    h = tape->MatMul(a_n, tape->MatMul(h, bound[l].second));
    if (options_.bias) {
      h = tape->AddRowVector(h, bound[num_layers + l].second);
    }
    if (l + 1 < num_layers) h = tape->Relu(h);
  }
  return h;
}

Gcn::Forwarded Gcn::Forward(Tape* tape, const graph::Graph& g,
                            bool training, linalg::Rng* rng) {
  Forwarded result;
  result.bound = BindParameters(tape);
  Var x = tape->Input(g.features, /*requires_grad=*/false);
  result.logits = ForwardWithPropagation(tape, a_n_, x, result.bound,
                                         training, rng);
  return result;
}

std::vector<Matrix*> Gcn::Parameters() {
  std::vector<Matrix*> params;
  for (auto& w : weights_) params.push_back(&w);
  for (auto& b : biases_) params.push_back(&b);
  return params;
}

}  // namespace repro::nn
