#ifndef PEEGA_NN_SIMPGCN_H_
#define PEEGA_NN_SIMPGCN_H_

#include <vector>

#include "nn/model.h"

namespace repro::nn {

/// Similarity-Preserving GCN (Jin et al., WSDM 2021), simplified.
///
/// Alongside the GCN propagation A_n, the model builds a kNN graph S over
/// node-feature cosine similarity and learns per-node gates
/// s = sigmoid(X w + b) that mix the two propagations:
///   H' = s ⊙ (A_n H W) + (1 - s) ⊙ (S_n H W) + gamma * (H W)
/// so that nodes whose graph neighborhood was poisoned can fall back to
/// feature-space neighbors and to their own features.
///
/// Simplification vs. the original: the self-supervised pairwise
/// similarity regression head is dropped; the adaptive structure/feature
/// mixing — the mechanism the paper's robustness comparisons exercise —
/// is kept.
class SimPGcn : public Model {
 public:
  struct Options {
    int hidden_dim = 16;
    int knn_k = 10;
    float dropout = 0.5f;
    float gamma = 0.1f;
  };

  SimPGcn(int in_dim, int num_classes, const Options& options,
          linalg::Rng* rng);

  void Prepare(const graph::Graph& g) override;
  Forwarded Forward(autograd::Tape* tape, const graph::Graph& g,
                    bool training, linalg::Rng* rng) override;
  std::vector<linalg::Matrix*> Parameters() override;

  /// Builds the symmetric kNN cosine-similarity graph over rows of `x`.
  /// Exposed for tests.
  static linalg::SparseMatrix BuildKnnGraph(const linalg::Matrix& x, int k);

 private:
  Options options_;
  linalg::Matrix w1_, w2_;
  linalg::Matrix gate_w1_, gate_b1_, gate_w2_, gate_b2_;
  linalg::SparseMatrix a_n_;
  linalg::SparseMatrix s_n_;
};

}  // namespace repro::nn

#endif  // PEEGA_NN_SIMPGCN_H_
