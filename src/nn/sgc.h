#ifndef PEEGA_NN_SGC_H_
#define PEEGA_NN_SGC_H_

#include <vector>

#include "nn/model.h"

namespace repro::nn {

/// Simple Graph Convolution (Wu et al., ICML 2019): the nonlinearity-
/// free GCN Z = softmax(A_n^K X W). This is exactly the linearized
/// surrogate PEEGA's Eq. 7 and Metattack's inner model assume, so SGC
/// serves two roles here: a cheap victim model, and a direct check that
/// the attackers' surrogate view of GCNs is faithful (their poison
/// graphs should transfer from SGC to GCN and back).
class Sgc : public Model {
 public:
  struct Options {
    int hops = 2;
    float dropout = 0.0f;
  };

  Sgc(int in_dim, int num_classes, const Options& options,
      linalg::Rng* rng);

  void Prepare(const graph::Graph& g) override;
  Forwarded Forward(autograd::Tape* tape, const graph::Graph& g,
                    bool training, linalg::Rng* rng) override;
  std::vector<linalg::Matrix*> Parameters() override;

 private:
  Options options_;
  linalg::Matrix w_;
  linalg::Matrix propagated_;  // A_n^K X, cached by Prepare
};

}  // namespace repro::nn

#endif  // PEEGA_NN_SGC_H_
