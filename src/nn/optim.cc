#include "nn/optim.h"

#include <cmath>

#include "debug/check.h"

namespace repro::nn {

void Adam::Step(linalg::Matrix* param, const linalg::Matrix& grad) {
  PEEGA_CHECK(param->SameShape(grad));
  State& s = state_[param];
  if (s.t == 0) {
    s.m = linalg::Matrix(param->rows(), param->cols());
    s.v = linalg::Matrix(param->rows(), param->cols());
  }
  ++s.t;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(s.t));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(s.t));
  float* p = param->data();
  float* m = s.m.data();
  float* v = s.v.data();
  const float* g = grad.data();
  const int64_t n = param->size();
  for (int64_t i = 0; i < n; ++i) {
    const float gi = g[i] + weight_decay_ * p[i];
    m[i] = beta1_ * m[i] + (1.0f - beta1_) * gi;
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * gi * gi;
    const float m_hat = m[i] / bc1;
    const float v_hat = v[i] / bc2;
    p[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

void SgdStep(linalg::Matrix* param, const linalg::Matrix& grad, float lr,
             float weight_decay) {
  PEEGA_CHECK(param->SameShape(grad));
  float* p = param->data();
  const float* g = grad.data();
  const int64_t n = param->size();
  for (int64_t i = 0; i < n; ++i) {
    p[i] -= lr * (g[i] + weight_decay * p[i]);
  }
}

}  // namespace repro::nn
