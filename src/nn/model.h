#ifndef PEEGA_NN_MODEL_H_
#define PEEGA_NN_MODEL_H_

#include <utility>
#include <vector>

#include "autograd/tape.h"
#include "graph/graph.h"
#include "linalg/matrix.h"
#include "linalg/random.h"

namespace repro::nn {

/// Interface of trainable node classifiers.
///
/// A model owns its parameter matrices. Each forward pass binds them onto
/// a fresh `Tape` (returning `Forwarded::bound`) so the trainer can read
/// the per-parameter gradients back after `Tape::Backward`.
class Model {
 public:
  virtual ~Model() = default;

  struct Forwarded {
    autograd::Var logits;
    /// (parameter, its tape handle) pairs for gradient retrieval.
    std::vector<std::pair<linalg::Matrix*, autograd::Var>> bound;
  };

  /// Precomputes propagation structures for `g` (normalized adjacency,
  /// feature kNN graph, ...). Called once before training or prediction
  /// on a given graph.
  virtual void Prepare(const graph::Graph& g) = 0;

  /// Records one forward pass on `tape`. `training` enables dropout and
  /// stochastic components; `rng` supplies their randomness.
  virtual Forwarded Forward(autograd::Tape* tape, const graph::Graph& g,
                            bool training, linalg::Rng* rng) = 0;

  /// All trainable parameters (stable addresses for optimizer state).
  virtual std::vector<linalg::Matrix*> Parameters() = 0;
};

}  // namespace repro::nn

#endif  // PEEGA_NN_MODEL_H_
