#ifndef PEEGA_NN_GAT_H_
#define PEEGA_NN_GAT_H_

#include <vector>

#include "nn/model.h"

namespace repro::nn {

/// Graph Attention Network (Velickovic et al., 2018).
///
/// Each layer computes HW = H W, per-edge attention logits
/// e_ij = LeakyReLU(a_src . (HW)_i + a_dst . (HW)_j), a softmax over each
/// node's masked neighborhood (A + I), and H' = alpha HW. Attention is
/// realized densely (N x N) which is exact and fast at the graph sizes we
/// run. Multi-head support averages head outputs.
class Gat : public Model {
 public:
  struct Options {
    int hidden_dim = 32;
    int num_heads = 2;
    float dropout = 0.3f;
    float leaky_slope = 0.2f;
  };

  Gat(int in_dim, int num_classes, const Options& options,
      linalg::Rng* rng);

  void Prepare(const graph::Graph& g) override;
  Forwarded Forward(autograd::Tape* tape, const graph::Graph& g,
                    bool training, linalg::Rng* rng) override;
  std::vector<linalg::Matrix*> Parameters() override;

 private:
  /// One attention head: returns alpha * (x W).
  autograd::Var AttentionHead(autograd::Tape* tape, autograd::Var x,
                              autograd::Var w, autograd::Var a_src,
                              autograd::Var a_dst);

  Options options_;
  // Layer 1: per-head W (in x hidden), a_src/a_dst (hidden x 1).
  std::vector<linalg::Matrix> w1_, a1_src_, a1_dst_;
  // Layer 2: single head to classes.
  linalg::Matrix w2_, a2_src_, a2_dst_;
  linalg::Matrix mask_;  // dense A + I mask, cached by Prepare
};

}  // namespace repro::nn

#endif  // PEEGA_NN_GAT_H_
