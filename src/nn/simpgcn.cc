#include "nn/simpgcn.h"

#include <algorithm>
#include <tuple>

#include "linalg/ops.h"
#include "nn/init.h"

namespace repro::nn {

using autograd::Tape;
using autograd::Var;
using linalg::Matrix;
using linalg::SparseMatrix;

SimPGcn::SimPGcn(int in_dim, int num_classes, const Options& options,
                 linalg::Rng* rng)
    : options_(options) {
  w1_ = GlorotUniform(in_dim, options.hidden_dim, rng);
  w2_ = GlorotUniform(options.hidden_dim, num_classes, rng);
  gate_w1_ = GlorotUniform(in_dim, 1, rng);
  gate_b1_ = Matrix(1, 1);
  gate_w2_ = GlorotUniform(in_dim, 1, rng);
  gate_b2_ = Matrix(1, 1);
}

SparseMatrix SimPGcn::BuildKnnGraph(const Matrix& x, int k) {
  const int n = x.rows();
  std::vector<std::tuple<int, int, float>> triplets;
  std::vector<std::pair<float, int>> sims;
  for (int i = 0; i < n; ++i) {
    sims.clear();
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const float s = linalg::CosineSimilarity(x, i, j);
      if (s > 0.0f) sims.emplace_back(s, j);
    }
    const int take = std::min<int>(k, static_cast<int>(sims.size()));
    std::partial_sort(sims.begin(), sims.begin() + take, sims.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (int t = 0; t < take; ++t) {
      const int j = sims[t].second;
      triplets.emplace_back(i, j, 1.0f);
      triplets.emplace_back(j, i, 1.0f);
    }
  }
  SparseMatrix knn = SparseMatrix::FromTriplets(n, n, triplets);
  for (float& v : knn.mutable_values()) v = v > 0.0f ? 1.0f : 0.0f;
  return knn;
}

void SimPGcn::Prepare(const graph::Graph& g) {
  a_n_ = graph::GcnNormalize(g.adjacency);
  s_n_ = graph::GcnNormalize(BuildKnnGraph(g.features, options_.knn_k));
}

SimPGcn::Forwarded SimPGcn::Forward(Tape* tape, const graph::Graph& g,
                                    bool training, linalg::Rng* rng) {
  Forwarded result;
  auto bind = [&](Matrix* m) {
    Var v = tape->Input(*m, /*requires_grad=*/true);
    result.bound.emplace_back(m, v);
    return v;
  };
  Var w1 = bind(&w1_);
  Var w2 = bind(&w2_);
  Var gw1 = bind(&gate_w1_);
  Var gb1 = bind(&gate_b1_);
  Var gw2 = bind(&gate_w2_);
  Var gb2 = bind(&gate_b2_);

  Var x = tape->Input(g.features, /*requires_grad=*/false);
  // Per-node gates from raw features (N x 1); the 1x1 bias broadcasts
  // across all rows.
  Var gate1 =
      tape->Sigmoid(tape->AddRowVector(tape->MatMul(x, gw1), gb1));
  Var gate2 =
      tape->Sigmoid(tape->AddRowVector(tape->MatMul(x, gw2), gb2));

  Var h = x;
  if (training && options_.dropout > 0.0f) {
    h = tape->Dropout(h, DropoutMask(h.rows(), h.cols(), options_.dropout,
                                     rng));
  }
  auto mixed_layer = [&](Var input, Var w, Var gate) {
    Var hw = tape->MatMul(input, w);
    Var topo = tape->SpMMConst(a_n_, hw);
    Var feat = tape->SpMMConst(s_n_, hw);
    Var ones = tape->Input(Matrix(input.rows(), 1, 1.0f), false);
    Var inv_gate = tape->Sub(ones, gate);
    Var mix = tape->Add(tape->ScaleRowsVar(topo, gate),
                        tape->ScaleRowsVar(feat, inv_gate));
    return tape->Add(mix, tape->Scale(hw, options_.gamma));
  };
  h = tape->Relu(mixed_layer(h, w1, gate1));
  if (training && options_.dropout > 0.0f) {
    h = tape->Dropout(h, DropoutMask(h.rows(), h.cols(), options_.dropout,
                                     rng));
  }
  result.logits = mixed_layer(h, w2, gate2);
  return result;
}

std::vector<Matrix*> SimPGcn::Parameters() {
  return {&w1_, &w2_, &gate_w1_, &gate_b1_, &gate_w2_, &gate_b2_};
}

}  // namespace repro::nn
