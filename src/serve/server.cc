#include "serve/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "attack/attacker.h"
#include "debug/failpoints.h"
#include "eval/pipeline.h"
#include "eval/registry.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "linalg/random.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "parallel/worker_thread.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "status/deadline.h"
#include "status/status.h"

namespace repro::serve {

namespace {

using status::Status;

constexpr size_t kMaxGraphCacheEntries = 16;
constexpr size_t kMaxRequestLineBytes = 1 << 20;

obs::Json Num(double v) { return obs::Json::MakeNumber(v); }
obs::Json Str(std::string s) { return obs::Json::MakeString(std::move(s)); }

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Deadline budget left, in the journal's convention (< 0 = unbounded).
double RemainingMsOf(const status::Deadline& deadline) {
  const double left = deadline.RemainingSeconds();
  return std::isinf(left) ? -1.0 : left * 1e3;
}

// Inverse of the response envelope's "code" string; false for "INTERNAL"
// and anything else CodeName never produces.
bool CodeFromName(const std::string& name, status::Code* out) {
  for (const status::Code code :
       {status::Code::kOk, status::Code::kInvalidInput,
        status::Code::kNumericFault, status::Code::kDeadlineExceeded,
        status::Code::kCancelled, status::Code::kIoError,
        status::Code::kResourceExhausted, status::Code::kUnavailable}) {
    if (name == status::CodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

// Per-tenant obs instruments, created on first use and cached; the
// "stats" op reads them back. Instrument names are bounded because
// ParseRequest validates tenant names.
struct TenantStats {
  obs::Counter* accepted;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Histogram* queue_ms;
  obs::Histogram* run_ms;
};

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts) : options(std::move(opts)) {}

  ServerOptions options;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;

  std::unique_ptr<parallel::WorkerThread> io_thread;
  std::unique_ptr<parallel::WorkerThread> scheduler_thread;

  struct Job {
    int64_t id = 0;
    int64_t uid = 0;  // journal identity; 0 when the journal is off
    std::string tenant;
    std::string op;
    obs::Json raw;
    int conn_id = -1;  // -1: recovered job, no client to respond to
    status::Deadline deadline;  // armed at admission
    obs::StopWatch waited;      // queue-wait clock
    bool cancelled = false;
    int attempt = 1;            // 1-based attempt this run would be
    double not_before_ms = 0.0;  // uptime instant a retry becomes due
  };

  struct Connection {
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    /// Torn down at the end of the current IO-loop pass. Deferred
    /// rather than erased inline: Respond() runs inside HandleLine(),
    /// which the loop calls while holding a reference into `conns` —
    /// erasing there would leave that reference dangling.
    bool doomed = false;
  };

  // ---- shared state (guarded by mu) --------------------------------
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Job> queue;
  bool paused = false;
  bool draining = false;
  bool stopping = false;
  int64_t running_id = -1;
  std::string running_tenant;
  status::Deadline running_deadline;
  // Completed-job responses en route from the scheduler to the IO loop.
  std::vector<std::pair<int, std::string>> outbox;
  std::map<std::string, TenantStats> tenants;

  // ---- durability (written in Start, then scheduler/IO threads) ----
  std::unique_ptr<Journal> journal;  // null when journal_dir is empty
  RecoveryInfo recovery_info;        // filled once, in Start()
  obs::StopWatch uptime;             // clock for retry due instants

  // ---- IO-thread-only state ----------------------------------------
  std::map<int, Connection> conns;
  int next_conn_id = 1;

  // ---- scheduler-thread-only state ---------------------------------
  std::map<std::string, graph::Graph> graph_cache;

  void WakeIo() {
    if (wake_write >= 0) {
      const char byte = 1;
      (void)!::write(wake_write, &byte, 1);
    }
  }

  TenantStats* GetTenant(const std::string& tenant) {
    const auto it = tenants.find(tenant);
    if (it != tenants.end()) return &it->second;
    const std::string prefix = "serve.tenant." + tenant + ".";
    TenantStats stats;
    stats.accepted = obs::GetCounter(prefix + "accepted");
    stats.rejected = obs::GetCounter(prefix + "rejected");
    stats.completed = obs::GetCounter(prefix + "completed");
    stats.failed = obs::GetCounter(prefix + "failed");
    stats.cancelled = obs::GetCounter(prefix + "cancelled");
    stats.queue_ms =
        obs::GetHistogram(prefix + "queue_ms", obs::LatencyBucketsMs());
    stats.run_ms =
        obs::GetHistogram(prefix + "run_ms", obs::LatencyBucketsMs());
    return &tenants.emplace(tenant, stats).first->second;
  }

  // ---- request handling (IO thread) --------------------------------

  void Respond(int conn_id, const obs::Json& response) {
    if (conn_id < 0) return;  // recovered job: no surviving client
    const auto it = conns.find(conn_id);
    if (it == conns.end() || it->second.doomed) return;
    if (PEEGA_FAILPOINT("serve.respond")) {
      // Simulates a response write failure: the connection is torn
      // down (at the end of this IO pass), so the client observes
      // UNAVAILABLE instead of a hang.
      it->second.doomed = true;
      it->second.outbuf.clear();
      return;
    }
    it->second.outbuf += EncodeLine(response);
  }

  void HandleLine(int conn_id, const std::string& line) {
    if (PEEGA_FAILPOINT("serve.parse")) {
      Respond(conn_id,
              MakeResponse(0, "default",
                           status::InvalidInput(
                               "injected failpoint serve.parse")));
      return;
    }
    Request request;
    const Status parsed = ParseRequest(line, &request);
    if (!parsed.ok()) {
      Respond(conn_id, MakeResponse(request.id, "default", parsed));
      return;
    }
    if (request.op == "ping") {
      obs::Json response =
          MakeResponse(request.id, request.tenant, Status::Ok());
      obs::Json result = obs::Json::MakeObject();
      result.object["pong"] = obs::Json::MakeBool(true);
      response.object["result"] = std::move(result);
      Respond(conn_id, response);
      return;
    }
    if (request.op == "stats") {
      obs::Json response =
          MakeResponse(request.id, request.tenant, Status::Ok());
      response.object["result"] = StatsJson();
      Respond(conn_id, response);
      return;
    }
    if (request.op == "pause" || request.op == "resume") {
      {
        std::lock_guard<std::mutex> lock(mu);
        paused = request.op == "pause";
      }
      cv.notify_all();
      Respond(conn_id,
              MakeResponse(request.id, request.tenant, Status::Ok()));
      return;
    }
    if (request.op == "cancel") {
      HandleCancel(conn_id, request);
      return;
    }
    if (request.op == "shutdown") {
      {
        std::lock_guard<std::mutex> lock(mu);
        draining = true;
      }
      cv.notify_all();
      obs::Json response =
          MakeResponse(request.id, request.tenant, Status::Ok());
      obs::Json result = obs::Json::MakeObject();
      result.object["draining"] = obs::Json::MakeBool(true);
      response.object["result"] = std::move(result);
      Respond(conn_id, response);
      return;
    }
    if (request.op == "attack" || request.op == "eval") {
      Admit(conn_id, request);
      return;
    }
    Respond(conn_id,
            MakeResponse(request.id, request.tenant,
                         status::InvalidInput("unknown op \"" +
                                              request.op + "\"")));
  }

  void Admit(int conn_id, const Request& request) {
    std::unique_lock<std::mutex> lock(mu);
    TenantStats* tenant = GetTenant(request.tenant);
    if (draining || stopping) {
      tenant->rejected->Add(1);
      lock.unlock();
      Respond(conn_id,
              MakeResponse(request.id, request.tenant,
                           status::Unavailable("server is draining")));
      return;
    }
    if (static_cast<int>(queue.size()) >= options.max_queue) {
      tenant->rejected->Add(1);
      lock.unlock();
      Respond(conn_id,
              MakeResponse(
                  request.id, request.tenant,
                  status::ResourceExhausted(
                      "job queue is full (max_queue=" +
                      std::to_string(options.max_queue) + ")")));
      return;
    }
    Job job;
    job.id = request.id;
    job.tenant = request.tenant;
    job.op = request.op;
    job.raw = request.raw;
    job.conn_id = conn_id;
    const double deadline_ms = GetNumber(request.raw, "deadline_ms", 0.0);
    // Armed here, at admission: queue wait spends the budget too.
    job.deadline = deadline_ms > 0.0
                       ? status::Deadline::AfterSeconds(deadline_ms / 1e3)
                       : status::Deadline::Cancellable();
    if (journal != nullptr) {
      job.uid = journal->NextUid();
      // Attack jobs get a server-assigned checkpoint path unless the
      // client chose one: that file is what lets a crash-recovered
      // campaign resume from its last committed flip.
      if (job.op == "attack" &&
          GetString(job.raw, "checkpoint", "").empty()) {
        job.raw.object["checkpoint"] =
            Str(Journal::CheckpointPath(journal->dir(), job.uid));
      }
      JournalRecord record;
      record.uid = job.uid;
      record.state = JobState::kAccepted;
      record.client_id = job.id;
      record.tenant = job.tenant;
      record.attempt = 0;
      record.remaining_ms = RemainingMsOf(job.deadline);
      record.request = job.raw;
      const Status logged = journal->AppendRecord(std::move(record));
      if (!logged.ok()) {
        // The durability promise cannot be kept; refuse the job rather
        // than silently accept it non-durably.
        tenant->rejected->Add(1);
        lock.unlock();
        Respond(conn_id, MakeResponse(request.id, request.tenant,
                                      logged.WithContext("journal accept")));
        return;
      }
    }
    tenant->accepted->Add(1);
    queue.push_back(std::move(job));
    obs::GetGauge("serve.queue_depth")
        ->Set(static_cast<double>(queue.size()));
    lock.unlock();
    cv.notify_one();
    // No response yet — it arrives when the job completes.
  }

  void HandleCancel(int conn_id, const Request& request) {
    const int64_t target =
        static_cast<int64_t>(GetNumber(request.raw, "target_id", -1));
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (Job& job : queue) {
        if (job.id == target && job.tenant == request.tenant) {
          job.cancelled = true;
          job.deadline.RequestCancel();
          found = true;
        }
      }
      if (running_id == target && running_tenant == request.tenant) {
        running_deadline.RequestCancel();
        found = true;
      }
    }
    // A job waiting out a retry backoff becomes due immediately once
    // cancelled; wake the scheduler so it reaps it now.
    cv.notify_all();
    obs::Json response =
        MakeResponse(request.id, request.tenant, Status::Ok());
    obs::Json result = obs::Json::MakeObject();
    result.object["found"] = obs::Json::MakeBool(found);
    response.object["result"] = std::move(result);
    Respond(conn_id, response);
  }

  obs::Json StatsJson() {
    std::lock_guard<std::mutex> lock(mu);
    obs::Json stats = obs::Json::MakeObject();
    stats.object["queue_depth"] =
        Num(static_cast<double>(queue.size()));
    stats.object["paused"] = obs::Json::MakeBool(paused);
    stats.object["draining"] = obs::Json::MakeBool(draining);
    obs::Json cache = obs::Json::MakeObject();
    cache.object["hits"] = Num(static_cast<double>(
        obs::GetCounter("serve.graph_cache.hit")->value()));
    cache.object["misses"] = Num(static_cast<double>(
        obs::GetCounter("serve.graph_cache.miss")->value()));
    stats.object["graph_cache"] = std::move(cache);
    obs::Json journal_json = obs::Json::MakeObject();
    journal_json.object["enabled"] =
        obs::Json::MakeBool(journal != nullptr);
    journal_json.object["appends"] = Num(static_cast<double>(
        obs::GetCounter("serve.journal.appends")->value()));
    journal_json.object["append_errors"] = Num(static_cast<double>(
        obs::GetCounter("serve.journal.append_errors")->value()));
    journal_json.object["compactions"] = Num(static_cast<double>(
        obs::GetCounter("serve.journal.compactions")->value()));
    stats.object["journal"] = std::move(journal_json);
    obs::Json recovery = obs::Json::MakeObject();
    recovery.object["requeued_jobs"] =
        Num(static_cast<double>(recovery_info.requeued_jobs));
    recovery.object["replayed_records"] =
        Num(static_cast<double>(recovery_info.replayed_records));
    recovery.object["corrupt_records"] =
        Num(static_cast<double>(recovery_info.corrupt_records));
    recovery.object["truncated_bytes"] =
        Num(static_cast<double>(recovery_info.truncated_bytes));
    recovery.object["recovery_ms"] = Num(recovery_info.recovery_ms);
    stats.object["recovery"] = std::move(recovery);
    obs::Json retry = obs::Json::MakeObject();
    retry.object["attempts"] = Num(static_cast<double>(
        obs::GetCounter("serve.retry.attempts")->value()));
    retry.object["succeeded"] = Num(static_cast<double>(
        obs::GetCounter("serve.retry.succeeded")->value()));
    retry.object["exhausted"] = Num(static_cast<double>(
        obs::GetCounter("serve.retry.exhausted")->value()));
    stats.object["retry"] = std::move(retry);
    obs::Json tenants_json = obs::Json::MakeObject();
    for (const auto& [name, t] : tenants) {
      obs::Json entry = obs::Json::MakeObject();
      entry.object["accepted"] =
          Num(static_cast<double>(t.accepted->value()));
      entry.object["rejected"] =
          Num(static_cast<double>(t.rejected->value()));
      entry.object["completed"] =
          Num(static_cast<double>(t.completed->value()));
      entry.object["failed"] = Num(static_cast<double>(t.failed->value()));
      entry.object["cancelled"] =
          Num(static_cast<double>(t.cancelled->value()));
      entry.object["queue_ms_count"] =
          Num(static_cast<double>(t.queue_ms->total_count()));
      entry.object["queue_ms_sum"] = Num(t.queue_ms->sum());
      entry.object["run_ms_count"] =
          Num(static_cast<double>(t.run_ms->total_count()));
      entry.object["run_ms_sum"] = Num(t.run_ms->sum());
      tenants_json.object[name] = std::move(entry);
    }
    stats.object["tenants"] = std::move(tenants_json);
    return stats;
  }

  // ---- job execution (scheduler thread) ----------------------------

  const graph::Graph* CachedGraph(const std::string& path,
                                  Status* failure) {
    const auto it = graph_cache.find(path);
    if (it != graph_cache.end()) {
      obs::GetCounter("serve.graph_cache.hit")->Add(1);
      return &it->second;
    }
    obs::GetCounter("serve.graph_cache.miss")->Add(1);
    status::StatusOr<graph::Graph> loaded = graph::LoadGraph(path);
    if (!loaded.ok()) {
      *failure = loaded.status();
      return nullptr;
    }
    if (graph_cache.size() >= kMaxGraphCacheEntries) graph_cache.clear();
    return &graph_cache.emplace(path, std::move(loaded).value())
                .first->second;
  }

  obs::Json RunAttackJob(const Job& job, const graph::Graph& g) {
    const obs::Json& r = job.raw;
    eval::AttackerSpec spec;
    spec.name = GetString(r, "attacker", "peega");
    spec.lambda = GetNumber(r, "lambda", 0.01);
    spec.norm_p = static_cast<int>(GetNumber(r, "p", 2));
    spec.layers = static_cast<int>(GetNumber(r, "layers", 2));
    spec.batch_size = static_cast<int>(GetNumber(r, "batch", 16));
    spec.mode = GetString(r, "mode", "both");
    spec.checkpoint_path = GetString(r, "checkpoint", "");
    spec.checkpoint_every =
        static_cast<int>(GetNumber(r, "checkpoint_every", 16));
    std::unique_ptr<attack::Attacker> attacker =
        eval::MakeAttackerByName(spec);
    if (attacker == nullptr) {
      return MakeResponse(job.id, job.tenant,
                          status::InvalidInput("unknown attacker \"" +
                                               spec.name + "\""));
    }
    attack::AttackOptions options;
    options.perturbation_rate = GetNumber(r, "rate", 0.1);
    options.feature_cost = GetNumber(r, "feature_cost", 1.0);
    options.deadline = job.deadline;
    linalg::Rng rng(
        static_cast<uint64_t>(GetNumber(r, "seed", 42.0)));
    const attack::AttackResult result =
        attacker->Attack(g, options, &rng);
    if (!result.status.ok() &&
        result.status.code() == status::Code::kInvalidInput) {
      return MakeResponse(job.id, job.tenant, result.status);
    }
    obs::Json response = MakeResponse(job.id, job.tenant, result.status);
    obs::Json res = obs::Json::MakeObject();
    res.object["attacker"] = Str(attacker->name());
    res.object["edge_modifications"] =
        Num(static_cast<double>(result.edge_modifications));
    res.object["feature_modifications"] =
        Num(static_cast<double>(result.feature_modifications));
    res.object["elapsed_seconds"] = Num(result.elapsed_seconds);
    res.object["final_objective"] = Num(result.final_objective);
    if (GetBool(r, "return_flips", false)) {
      obs::Json flips = obs::Json::MakeArray();
      for (const attack::Flip& flip : result.flips) {
        obs::Json triple = obs::Json::MakeArray();
        triple.array.push_back(Num(flip.is_feature ? 1 : 0));
        triple.array.push_back(Num(flip.a));
        triple.array.push_back(Num(flip.b));
        flips.array.push_back(std::move(triple));
      }
      res.object["flips"] = std::move(flips);
    }
    const std::string out = GetString(r, "out", "");
    if (!out.empty()) {
      const Status saved = graph::SaveGraph(result.poisoned, out);
      if (!saved.ok()) return MakeResponse(job.id, job.tenant, saved);
      res.object["out"] = Str(out);
    }
    response.object["result"] = std::move(res);
    return response;
  }

  obs::Json RunEvalJob(const Job& job, const graph::Graph& g) {
    const obs::Json& r = job.raw;
    const std::string name = GetString(r, "defender", "gnat");
    std::unique_ptr<defense::Defender> defender =
        eval::MakeDefenderByName(name);
    if (defender == nullptr) {
      return MakeResponse(job.id, job.tenant,
                          status::InvalidInput("unknown defender \"" +
                                               name + "\""));
    }
    eval::PipelineOptions options;
    options.runs = static_cast<int>(GetNumber(r, "runs", 1));
    options.seed = static_cast<uint64_t>(GetNumber(r, "seed", 42.0));
    options.train.deadline = job.deadline;
    const eval::DefenseEvaluation evaluation =
        eval::EvaluateDefense(defender.get(), g, options);
    obs::Json response =
        MakeResponse(job.id, job.tenant, evaluation.status);
    obs::Json res = obs::Json::MakeObject();
    res.object["defender"] = Str(defender->name());
    res.object["accuracy_mean"] = Num(evaluation.accuracy.mean);
    res.object["accuracy_std"] = Num(evaluation.accuracy.std);
    res.object["mean_train_seconds"] = Num(evaluation.mean_train_seconds);
    res.object["ok_runs"] = Num(evaluation.ok_runs);
    response.object["result"] = std::move(res);
    return response;
  }

  // Best-effort journal append for post-admission transitions: a failed
  // append degrades durability, not availability (it is counted by
  // serve.journal.append_errors inside the journal).
  void JournalTransition(const Job& job, JobState state,
                         const std::string& code_name) {
    if (journal == nullptr) return;
    JournalRecord record;
    record.uid = job.uid;
    record.state = state;
    record.client_id = job.id;
    record.tenant = job.tenant;
    record.attempt = job.attempt;
    record.code = code_name;
    record.remaining_ms = RemainingMsOf(job.deadline);
    journal->AppendRecord(std::move(record)).IgnoreError();
  }

  // Drops the server-assigned checkpoint of a terminal job (never a
  // client-chosen path). Best-effort: the journal record is what makes
  // the job terminal.
  void CleanupCheckpoint(const Job& job) {
    if (journal == nullptr || job.uid <= 0) return;
    const std::string path = GetString(job.raw, "checkpoint", "");
    if (path == Journal::CheckpointPath(journal->dir(), job.uid)) {
      ::unlink(path.c_str());
    }
  }

  obs::Json RunJob(const Job& job) {
    if (PEEGA_FAILPOINT("serve.execute")) {
      return MakeResponse(
          job.id, job.tenant,
          status::NumericFault("injected failpoint serve.execute"));
    }
    try {
      const std::string path = GetString(job.raw, "graph", "");
      if (path.empty()) {
        return MakeResponse(
            job.id, job.tenant,
            status::InvalidInput("job has no \"graph\" path"));
      }
      Status failure;
      const graph::Graph* g = CachedGraph(path, &failure);
      if (g == nullptr) {
        return MakeResponse(job.id, job.tenant,
                            failure.WithContext("load job graph"));
      }
      return job.op == "attack" ? RunAttackJob(job, *g)
                                : RunEvalJob(job, *g);
    } catch (...) {
      // A job must never take the server down; report and move on.
      obs::Json response = obs::Json::MakeObject();
      response.object["id"] = Num(static_cast<double>(job.id));
      response.object["tenant"] = Str(job.tenant);
      response.object["ok"] = obs::Json::MakeBool(false);
      response.object["code"] = Str("INTERNAL");
      response.object["error"] =
          Str("unexpected exception while running job");
      return response;
    }
  }

  // Picks the next due job, FIFO among due ones. A retry waiting out
  // its backoff is skipped until its instant arrives (the scheduler
  // sleeps at most until the earliest one); a cancelled job is always
  // due so it can be reaped immediately. Returns false once the server
  // should stop.
  bool NextJob(Job* out) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      if (stopping) return false;
      if ((!paused || draining) && !queue.empty()) {
        const double now = uptime.Millis();
        double next_due = -1.0;
        for (size_t i = 0; i < queue.size(); ++i) {
          Job& candidate = queue[i];
          if (candidate.cancelled || candidate.not_before_ms <= now) {
            *out = std::move(candidate);
            queue.erase(queue.begin() + static_cast<long>(i));
            obs::GetGauge("serve.queue_depth")
                ->Set(static_cast<double>(queue.size()));
            running_id = out->id;
            running_tenant = out->tenant;
            running_deadline = out->deadline;
            return true;
          }
          if (next_due < 0.0 || candidate.not_before_ms < next_due) {
            next_due = candidate.not_before_ms;
          }
        }
        // Everything queued is a retry waiting out its backoff.
        cv.wait_for(lock,
                    obs::DurationMs(next_due - uptime.Millis() + 0.5));
        continue;
      }
      if (draining && queue.empty()) {
        stopping = true;
        return false;
      }
      cv.wait(lock);
    }
  }

  void SchedulerLoop() {
    for (;;) {
      Job job;
      if (!NextJob(&job)) break;
      const double queue_ms = job.waited.Millis();
      obs::Json response;
      obs::StopWatch run_watch;
      bool executed = false;
      if (job.cancelled) {
        response = MakeResponse(
            job.id, job.tenant,
            status::Cancelled("job cancelled while queued"));
      } else if (const Status admission =
                     job.deadline.Check("serve queue wait");
                 !admission.ok()) {
        response = MakeResponse(job.id, job.tenant, admission);
      } else {
        JournalTransition(job, JobState::kRunning, "");
        response = RunJob(job);
        executed = true;
      }
      const double run_ms = run_watch.Millis();
      const std::string code = GetString(response, "code", "INTERNAL");
      // A transient failure re-enters the queue with deterministic
      // backoff until the attempt budget is spent; the client response
      // waits for the final attempt. Retries bypass admission (no
      // max_queue check, no accepted counter): the job was admitted
      // exactly once.
      status::Code parsed = status::Code::kOk;
      const bool transient_failure =
          executed && code != "OK" && CodeFromName(code, &parsed) &&
          status::IsTransient(parsed);
      if (transient_failure && job.attempt < options.max_attempts) {
        JournalTransition(job, JobState::kRetrying, code);
        const RetryPolicy policy{options.max_attempts,
                                 options.retry_backoff_ms,
                                 options.retry_backoff_max_ms};
        const double backoff = RetryBackoffMs(policy, job.attempt + 1);
        {
          std::lock_guard<std::mutex> lock(mu);
          running_id = -1;
          running_tenant.clear();
          running_deadline = status::Deadline();
          TenantStats* tenant = GetTenant(job.tenant);
          tenant->queue_ms->Observe(queue_ms);
          tenant->run_ms->Observe(run_ms);
          obs::GetCounter("serve.retry.attempts")->Add(1);
          job.attempt += 1;
          job.not_before_ms = uptime.Millis() + backoff;
          job.waited.Restart();
          queue.push_back(std::move(job));
          obs::GetGauge("serve.queue_depth")
              ->Set(static_cast<double>(queue.size()));
        }
        continue;
      }
      if (transient_failure) {
        obs::GetCounter("serve.retry.exhausted")->Add(1);
      }
      if (executed && code == "OK" && job.attempt > 1) {
        obs::GetCounter("serve.retry.succeeded")->Add(1);
      }
      JournalTransition(job,
                        code == "OK"          ? JobState::kDone
                        : code == "CANCELLED" ? JobState::kCancelled
                                              : JobState::kFailed,
                        code == "OK" ? "" : code);
      CleanupCheckpoint(job);
      response.object["queue_ms"] = Num(queue_ms);
      response.object["run_ms"] = Num(run_ms);
      response.object["attempts"] = Num(job.attempt);
      {
        std::lock_guard<std::mutex> lock(mu);
        running_id = -1;
        running_tenant.clear();
        running_deadline = status::Deadline();
        TenantStats* tenant = GetTenant(job.tenant);
        tenant->queue_ms->Observe(queue_ms);
        tenant->run_ms->Observe(run_ms);
        if (code == "OK") {
          tenant->completed->Add(1);
        } else if (code == "CANCELLED") {
          tenant->cancelled->Add(1);
        } else {
          tenant->failed->Add(1);
        }
        if (job.conn_id >= 0) {
          outbox.emplace_back(job.conn_id, EncodeLine(response));
        }
      }
      WakeIo();
    }
    WakeIo();
  }

  // ---- socket event loop (IO thread) -------------------------------

  void DrainOutbox() {
    std::vector<std::pair<int, std::string>> pending;
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.swap(outbox);
    }
    for (auto& [conn_id, line] : pending) {
      const auto it = conns.find(conn_id);
      if (it != conns.end() && !it->second.doomed) {
        it->second.outbuf += line;
      }
    }
  }

  bool Stopping() {
    std::lock_guard<std::mutex> lock(mu);
    return stopping;
  }

  void CloseConnection(int conn_id) {
    const auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    ::close(it->second.fd);
    conns.erase(it);
  }

  void IoLoop() {
    for (;;) {
      DrainOutbox();
      if (Stopping()) {
        bool flushed = true;
        for (auto& [id, conn] : conns) {
          if (!conn.outbuf.empty()) flushed = false;
        }
        if (flushed) break;
      }
      std::vector<pollfd> fds;
      std::vector<int> ids;  // conn id per pollfd (or -1 / -2)
      fds.push_back({wake_read, POLLIN, 0});
      ids.push_back(-1);
      if (listen_fd >= 0) {
        fds.push_back({listen_fd, POLLIN, 0});
        ids.push_back(-2);
      }
      for (auto& [id, conn] : conns) {
        short events = POLLIN;
        if (!conn.outbuf.empty()) events |= POLLOUT;
        fds.push_back({conn.fd, events, 0});
        ids.push_back(id);
      }
      const int ready = ::poll(fds.data(), fds.size(), -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      std::vector<int> to_close;
      for (size_t i = 0; i < fds.size(); ++i) {
        const short revents = fds[i].revents;
        if (revents == 0) continue;
        if (ids[i] == -1) {  // wake pipe: swallow the bytes
          char sink[256];
          while (::read(wake_read, sink, sizeof(sink)) > 0) {
          }
          continue;
        }
        if (ids[i] == -2) {  // new connection
          for (;;) {
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) break;
            if (PEEGA_FAILPOINT("serve.accept")) {
              ::close(fd);  // simulated accept failure: drop the peer
              continue;
            }
            SetNonBlocking(fd);
            Connection conn;
            conn.fd = fd;
            conns.emplace(next_conn_id++, conn);
          }
          continue;
        }
        const int conn_id = ids[i];
        auto it = conns.find(conn_id);
        if (it == conns.end()) continue;
        Connection& conn = it->second;
        bool dead = (revents & (POLLERR | POLLNVAL)) != 0;
        if (!dead && (revents & POLLIN) != 0) {
          char buf[4096];
          for (;;) {
            const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
            if (n > 0) {
              conn.inbuf.append(buf, static_cast<size_t>(n));
              if (conn.inbuf.size() > kMaxRequestLineBytes) {
                dead = true;  // protocol abuse: unbounded line
                break;
              }
              continue;
            }
            if (n == 0) {
              dead = true;  // peer closed
            }
            break;  // n < 0: EAGAIN (done) or error handled below
          }
          size_t start = 0;
          for (;;) {
            const size_t nl = conn.inbuf.find('\n', start);
            if (nl == std::string::npos) break;
            const std::string line = conn.inbuf.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty()) HandleLine(conn_id, line);
            if (conn.doomed) break;  // drop the rest of the burst
          }
          conn.inbuf.erase(0, start);
          if (conn.doomed) dead = true;
        }
        if ((revents & POLLOUT) != 0 && !conn.outbuf.empty()) {
          const ssize_t n =
              ::write(conn.fd, conn.outbuf.data(), conn.outbuf.size());
          if (n > 0) conn.outbuf.erase(0, static_cast<size_t>(n));
        }
        if ((revents & POLLHUP) != 0 && conn.outbuf.empty()) dead = true;
        if (dead && conn.outbuf.empty()) to_close.push_back(conn_id);
        if (dead && !conn.outbuf.empty()) {
          // Peer half-closed but responses are still pending: keep the
          // fd until the outbuf flushes (or write fails).
          const ssize_t n =
              ::write(conn.fd, conn.outbuf.data(), conn.outbuf.size());
          if (n > 0) {
            conn.outbuf.erase(0, static_cast<size_t>(n));
          } else {
            to_close.push_back(conn_id);
          }
          if (conn.outbuf.empty()) to_close.push_back(conn_id);
        }
      }
      for (const int conn_id : to_close) CloseConnection(conn_id);
    }
    for (auto& [id, conn] : conns) ::close(conn.fd);
    conns.clear();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
      ::unlink(options.socket_path.c_str());
    }
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  Shutdown();
  Wait();
  if (impl_->wake_read >= 0) ::close(impl_->wake_read);
  if (impl_->wake_write >= 0) ::close(impl_->wake_write);
}

status::Status Server::Start() {
  Impl& s = *impl_;
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (s.options.socket_path.empty() ||
      s.options.socket_path.size() >= sizeof(addr.sun_path)) {
    return status::InvalidInput("serve: bad socket path \"" +
                                s.options.socket_path + "\"");
  }
  if (s.options.max_queue < 1) {
    return status::InvalidInput("serve: max_queue must be >= 1");
  }
  if (s.options.max_attempts < 1) {
    return status::InvalidInput("serve: max_attempts must be >= 1");
  }
  // Durability first: replay the journal and re-enqueue non-terminal
  // jobs before the socket opens, so recovered work is ahead of any new
  // admission in the FIFO.
  if (!s.options.journal_dir.empty()) {
    obs::StopWatch recovery_watch;
    ReplayResult replay;
    status::StatusOr<std::unique_ptr<Journal>> journal =
        Journal::Open(s.options.journal_dir, &replay);
    if (!journal.ok()) {
      return journal.status().WithContext("serve journal");
    }
    s.journal = std::move(journal).value();
    s.recovery_info.requeued_jobs = static_cast<int>(replay.jobs.size());
    s.recovery_info.replayed_records = replay.replayed_records;
    s.recovery_info.corrupt_records = replay.corrupt_records;
    s.recovery_info.truncated_bytes = replay.truncated_bytes;
    s.recovery_info.warnings = replay.warnings;
    for (RecoveredJob& recovered : replay.jobs) {
      Impl::Job job;
      job.id = recovered.client_id;
      job.uid = recovered.uid;
      job.tenant = recovered.tenant;
      job.op = GetString(recovered.request, "op", "attack");
      job.raw = std::move(recovered.request);
      job.conn_id = -1;  // the client connection died with the old process
      job.attempt = recovered.next_attempt;
      // Re-arm what was left of the budget when the last record was
      // written, not a fresh one.
      job.deadline =
          recovered.remaining_ms >= 0.0
              ? status::Deadline::AfterSeconds(recovered.remaining_ms /
                                               1e3)
              : status::Deadline::Cancellable();
      s.queue.push_back(std::move(job));
    }
    obs::GetGauge("serve.queue_depth")
        ->Set(static_cast<double>(s.queue.size()));
    obs::GetCounter("serve.recovery.requeued_jobs")
        ->Add(s.recovery_info.requeued_jobs);
    obs::GetCounter("serve.recovery.replayed_records")
        ->Add(replay.replayed_records);
    obs::GetCounter("serve.recovery.corrupt_records")
        ->Add(replay.corrupt_records);
    s.recovery_info.recovery_ms = recovery_watch.Millis();
  }
  ::unlink(s.options.socket_path.c_str());
  s.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (s.listen_fd < 0) {
    return status::IoError("serve: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, s.options.socket_path.c_str(),
              s.options.socket_path.size());
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    return status::IoError("serve: bind(" + s.options.socket_path +
                           ") failed: " + std::strerror(errno));
  }
  if (::listen(s.listen_fd, s.options.listen_backlog) != 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    ::unlink(s.options.socket_path.c_str());
    return status::IoError("serve: listen() failed: " +
                           std::string(std::strerror(errno)));
  }
  SetNonBlocking(s.listen_fd);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    ::unlink(s.options.socket_path.c_str());
    return status::IoError("serve: pipe() failed: " +
                           std::string(std::strerror(errno)));
  }
  s.wake_read = pipe_fds[0];
  s.wake_write = pipe_fds[1];
  SetNonBlocking(s.wake_read);
  SetNonBlocking(s.wake_write);
  s.io_thread = std::make_unique<parallel::WorkerThread>(
      [impl = impl_.get()] { impl->IoLoop(); });
  s.scheduler_thread = std::make_unique<parallel::WorkerThread>(
      [impl = impl_.get()] { impl->SchedulerLoop(); });
  return status::Status::Ok();
}

void Server::Wait() {
  if (impl_->scheduler_thread != nullptr) impl_->scheduler_thread->Join();
  if (impl_->io_thread != nullptr) impl_->io_thread->Join();
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->draining = true;
  }
  impl_->cv.notify_all();
  impl_->WakeIo();
}

const RecoveryInfo& Server::recovery() const {
  return impl_->recovery_info;
}

}  // namespace repro::serve
