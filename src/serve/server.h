#ifndef PEEGA_SERVE_SERVER_H_
#define PEEGA_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "status/status.h"

namespace repro::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket. A stale socket
  /// file from a crashed previous run is unlinked on Start().
  std::string socket_path;
  /// Admission control: maximum number of queued (not yet running)
  /// jobs. A submission past this bound is rejected immediately with
  /// RESOURCE_EXHAUSTED instead of growing an unbounded backlog.
  int max_queue = 64;
  /// listen(2) backlog for pending connections.
  int listen_backlog = 128;
  /// Durability directory (`--journal <dir>`). Empty = no journal: jobs
  /// live only in memory, as before PR 10. Non-empty: every job state
  /// transition is fsync'd to <dir>/journal.jsonl BEFORE it takes
  /// effect, Start() replays the journal and re-enqueues non-terminal
  /// jobs, and attack jobs get a server-assigned checkpoint path under
  /// <dir> unless the client chose one.
  std::string journal_dir;
  /// Retry policy for jobs that fail with a transient code
  /// (status::IsTransient): total attempt budget (first run included)
  /// and deterministic exponential backoff base/cap. Retries re-enter
  /// the queue directly — no admission double-counting, no max_queue
  /// check.
  int max_attempts = 3;
  double retry_backoff_ms = 100.0;
  double retry_backoff_max_ms = 5000.0;
};

/// What Start() recovered from the journal; also surfaced through the
/// "stats" op so operators can read it post-hoc.
struct RecoveryInfo {
  int requeued_jobs = 0;      // non-terminal jobs re-enqueued
  int replayed_records = 0;   // records decoded + CRC-verified
  int corrupt_records = 0;    // records skipped (CRC/shape)
  int64_t truncated_bytes = 0;  // torn tail dropped
  double recovery_ms = 0.0;   // replay + re-enqueue wall time
  std::vector<std::string> warnings;  // "path:line: reason" per skip
};

/// Long-running multi-tenant job server (`graphguard serve`).
///
/// Two owned threads (`parallel::WorkerThread`, keeping the one-layer-
/// owns-threads rule intact):
///   - the IO thread runs a poll(2) loop over the listening socket and
///     every client connection, parsing newline-delimited JSON requests
///     and answering control ops (ping/stats/pause/resume/cancel/
///     shutdown) inline;
///   - the scheduler thread executes attack/eval jobs strictly FIFO,
///     one at a time, so every job sees the full deterministic thread
///     pool (`src/parallel`) and identical requests produce identical
///     results regardless of client concurrency.
///
/// Every job carries a `status::Deadline` armed at ADMISSION, so time
/// spent queued counts against the budget; an expired or cancelled job
/// is answered with its code instead of running. Shutdown drains: no
/// new jobs are admitted (UNAVAILABLE), queued jobs finish and their
/// responses are flushed, then the server exits.
///
/// Per-tenant obs instruments (serve.tenant.<name>.*): accepted /
/// rejected / completed / failed / cancelled counters plus queue-wait
/// and run-time histograms, all exposed through the "stats" op.
///
/// With `journal_dir` set the server is additionally crash-safe: an
/// ACCEPTED job is fsync'd to the write-ahead journal before it is
/// queued (an append failure rejects the job with IO_ERROR — the
/// durability promise is refused, not silently dropped), every state
/// transition is journaled, and a restart replays the journal and
/// re-runs every non-terminal job with its remaining deadline budget
/// and its checkpoint file, so a recovered PEEGA campaign resumes from
/// the last committed flip. Transient failures (status::IsTransient)
/// are retried with deterministic exponential backoff up to
/// `max_attempts`; responses to recovered jobs are dropped (the client
/// connection did not survive the crash) but their results — output
/// files, checkpoints, journal terminal records — are identical.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the IO + scheduler threads. Returns
  /// kInvalidInput/kIoError on a bad path or socket failure (the server
  /// is then inert and Wait() returns immediately).
  status::Status Start();

  /// Blocks until the server has fully drained and both threads exited
  /// (i.e. after a "shutdown" request or a Shutdown() call).
  void Wait();

  /// Programmatic graceful drain, equivalent to a "shutdown" request.
  void Shutdown();

  /// Journal recovery summary; meaningful after a successful Start()
  /// with `journal_dir` set (all-zero otherwise).
  const RecoveryInfo& recovery() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace repro::serve

#endif  // PEEGA_SERVE_SERVER_H_
