#ifndef PEEGA_SERVE_SERVER_H_
#define PEEGA_SERVE_SERVER_H_

#include <memory>
#include <string>

#include "status/status.h"

namespace repro::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket. A stale socket
  /// file from a crashed previous run is unlinked on Start().
  std::string socket_path;
  /// Admission control: maximum number of queued (not yet running)
  /// jobs. A submission past this bound is rejected immediately with
  /// RESOURCE_EXHAUSTED instead of growing an unbounded backlog.
  int max_queue = 64;
  /// listen(2) backlog for pending connections.
  int listen_backlog = 128;
};

/// Long-running multi-tenant job server (`graphguard serve`).
///
/// Two owned threads (`parallel::WorkerThread`, keeping the one-layer-
/// owns-threads rule intact):
///   - the IO thread runs a poll(2) loop over the listening socket and
///     every client connection, parsing newline-delimited JSON requests
///     and answering control ops (ping/stats/pause/resume/cancel/
///     shutdown) inline;
///   - the scheduler thread executes attack/eval jobs strictly FIFO,
///     one at a time, so every job sees the full deterministic thread
///     pool (`src/parallel`) and identical requests produce identical
///     results regardless of client concurrency.
///
/// Every job carries a `status::Deadline` armed at ADMISSION, so time
/// spent queued counts against the budget; an expired or cancelled job
/// is answered with its code instead of running. Shutdown drains: no
/// new jobs are admitted (UNAVAILABLE), queued jobs finish and their
/// responses are flushed, then the server exits.
///
/// Per-tenant obs instruments (serve.tenant.<name>.*): accepted /
/// rejected / completed / failed / cancelled counters plus queue-wait
/// and run-time histograms, all exposed through the "stats" op.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the IO + scheduler threads. Returns
  /// kInvalidInput/kIoError on a bad path or socket failure (the server
  /// is then inert and Wait() returns immediately).
  status::Status Start();

  /// Blocks until the server has fully drained and both threads exited
  /// (i.e. after a "shutdown" request or a Shutdown() call).
  void Wait();

  /// Programmatic graceful drain, equivalent to a "shutdown" request.
  void Shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace repro::serve

#endif  // PEEGA_SERVE_SERVER_H_
