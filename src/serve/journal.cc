#include "serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "debug/failpoints.h"
#include "obs/crc32.h"
#include "obs/metrics.h"

namespace repro::serve {

namespace {

using status::Status;

// Auto-compaction trigger: once the file holds this many records AND
// most of them belong to terminal jobs, rewrite it. Both thresholds are
// deterministic (record counts, no clocks) so tests can pin exactly
// when a compaction happens.
constexpr int64_t kCompactMinRecords = 1024;

obs::Json Num(double v) { return obs::Json::MakeNumber(v); }

status::Status Errno(const std::string& what) {
  return status::IoError(what + ": " + std::strerror(errno));
}

// fsync the directory so a rename (compaction) survives a power cut.
// Best-effort: a filesystem that refuses O_DIRECTORY fsync does not
// fail the operation.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

status::Status WriteAll(int fd, const std::string& bytes,
                        const std::string& path) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("journal write " + path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kAccepted:
      return "ACCEPTED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kRetrying:
      return "RETRYING";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

bool ParseJobState(const std::string& name, JobState* out) {
  for (const JobState state :
       {JobState::kAccepted, JobState::kRunning, JobState::kRetrying,
        JobState::kDone, JobState::kFailed, JobState::kCancelled}) {
    if (name == JobStateName(state)) {
      *out = state;
      return true;
    }
  }
  return false;
}

bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

std::string EncodeJournalRecord(const JournalRecord& record) {
  obs::Json doc = obs::Json::MakeObject();
  doc.object["v"] = Num(kJournalVersion);
  doc.object["seq"] = Num(static_cast<double>(record.seq));
  doc.object["uid"] = Num(static_cast<double>(record.uid));
  doc.object["state"] = obs::Json::MakeString(JobStateName(record.state));
  doc.object["id"] = Num(static_cast<double>(record.client_id));
  doc.object["tenant"] = obs::Json::MakeString(record.tenant);
  doc.object["attempt"] = Num(record.attempt);
  doc.object["remaining_ms"] = Num(record.remaining_ms);
  if (!record.code.empty()) {
    doc.object["code"] = obs::Json::MakeString(record.code);
  }
  if (record.state == JobState::kAccepted) {
    doc.object["request"] = record.request;
  }
  const uint32_t crc = obs::Crc32(doc.Dump());
  doc.object["crc"] = Num(static_cast<double>(crc));
  return doc.Dump() + "\n";
}

status::Status DecodeJournalRecord(const std::string& line,
                                   const std::string& where,
                                   JournalRecord* out) {
  obs::Json doc;
  std::string error;
  if (!obs::Json::Parse(line, &doc, &error)) {
    return status::IoError(where + ": bad journal record: " + error);
  }
  if (doc.type != obs::Json::Type::kObject) {
    return status::IoError(where + ": journal record is not an object");
  }
  const obs::Json* crc_field = doc.Find("crc");
  if (crc_field == nullptr ||
      crc_field->type != obs::Json::Type::kNumber) {
    return status::IoError(where + ": journal record has no crc");
  }
  const uint32_t stored = static_cast<uint32_t>(crc_field->number_value);
  obs::Json without_crc = doc;
  without_crc.object.erase("crc");
  const uint32_t computed = obs::Crc32(without_crc.Dump());
  if (stored != computed) {
    return status::IoError(
        where + ": crc mismatch (stored " + std::to_string(stored) +
        ", computed " + std::to_string(computed) + ")");
  }
  const obs::Json* version = doc.Find("v");
  if (version == nullptr ||
      version->type != obs::Json::Type::kNumber) {
    return status::IoError(where + ": journal record has no version");
  }
  if (static_cast<int>(version->number_value) != kJournalVersion) {
    return status::IoError(
        where + ": unsupported journal version " +
        std::to_string(static_cast<int>(version->number_value)));
  }
  const obs::Json* state = doc.Find("state");
  if (state == nullptr || state->type != obs::Json::Type::kString ||
      !ParseJobState(state->string_value, &out->state)) {
    return status::IoError(where + ": bad journal record state");
  }
  const auto number = [&doc](const char* key, double fallback) {
    const obs::Json* field = doc.Find(key);
    return field != nullptr && field->type == obs::Json::Type::kNumber
               ? field->number_value
               : fallback;
  };
  out->seq = static_cast<int64_t>(number("seq", 0));
  out->uid = static_cast<int64_t>(number("uid", 0));
  out->client_id = static_cast<int64_t>(number("id", 0));
  out->attempt = static_cast<int>(number("attempt", 0));
  out->remaining_ms = number("remaining_ms", -1.0);
  const obs::Json* tenant = doc.Find("tenant");
  if (tenant == nullptr || tenant->type != obs::Json::Type::kString) {
    return status::IoError(where + ": journal record has no tenant");
  }
  out->tenant = tenant->string_value;
  const obs::Json* code = doc.Find("code");
  out->code = code != nullptr && code->type == obs::Json::Type::kString
                  ? code->string_value
                  : "";
  out->request = obs::Json();
  if (out->state == JobState::kAccepted) {
    const obs::Json* request = doc.Find("request");
    if (request == nullptr ||
        request->type != obs::Json::Type::kObject) {
      return status::IoError(where +
                             ": ACCEPTED record has no request object");
    }
    out->request = *request;
  }
  return Status::Ok();
}

status::StatusOr<ReplayResult> ReplayJournal(const std::string& dir) {
  ReplayResult result;
  const std::string path = dir + "/" + kJournalFileName;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (errno == ENOENT) return result;  // fresh journal directory
    return Errno("journal open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // Fold records into per-uid recovery state, preserving admission
  // order for the re-enqueue.
  std::map<int64_t, size_t> index;  // uid -> slot in result.jobs
  size_t pos = 0;
  int64_t line_no = 0;
  while (pos < content.size()) {
    ++line_no;
    const size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn tail: the process died mid-append. Drop the fragment
      // loudly; Journal::Open's compaction rewrite discards the bytes.
      result.truncated_bytes =
          static_cast<int64_t>(content.size() - pos);
      result.warnings.push_back(
          path + ":" + std::to_string(line_no) + ": torn tail (" +
          std::to_string(result.truncated_bytes) + " bytes) truncated");
      break;
    }
    const std::string line = content.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_no);
    JournalRecord record;
    const Status decoded = DecodeJournalRecord(line, where, &record);
    if (!decoded.ok()) {
      // Bit rot / torn rewrite: skip this record, keep replaying — a
      // later valid record may still recover another job.
      ++result.corrupt_records;
      result.warnings.push_back(decoded.message());
      continue;
    }
    ++result.replayed_records;
    if (record.seq > result.max_seq) result.max_seq = record.seq;
    if (record.uid > result.max_uid) result.max_uid = record.uid;
    const auto slot = index.find(record.uid);
    switch (record.state) {
      case JobState::kAccepted: {
        RecoveredJob job;
        job.uid = record.uid;
        job.client_id = record.client_id;
        job.tenant = record.tenant;
        job.request = record.request;
        job.next_attempt = record.attempt + 1;
        job.remaining_ms = record.remaining_ms;
        if (slot != index.end()) {
          result.jobs[slot->second] = std::move(job);
        } else {
          index[record.uid] = result.jobs.size();
          result.jobs.push_back(std::move(job));
        }
        break;
      }
      case JobState::kRunning:
      case JobState::kRetrying: {
        if (slot == index.end()) {
          result.warnings.push_back(where +
                                    ": state record for unknown uid " +
                                    std::to_string(record.uid));
          break;
        }
        RecoveredJob& job = result.jobs[slot->second];
        // Killed mid-RUNNING(n): re-run attempt n (the checkpoint has
        // the progress). RETRYING(n) on disk: attempt n failed, the
        // next run is n+1.
        job.next_attempt = record.state == JobState::kRunning
                               ? record.attempt
                               : record.attempt + 1;
        job.remaining_ms = record.remaining_ms;
        break;
      }
      case JobState::kDone:
      case JobState::kFailed:
      case JobState::kCancelled: {
        if (record.state == JobState::kDone) ++result.done;
        if (record.state == JobState::kFailed) ++result.failed;
        if (record.state == JobState::kCancelled) ++result.cancelled;
        if (slot != index.end()) {
          // Tombstone: clear the slot but keep indices of later jobs
          // stable; compacted out below.
          result.jobs[slot->second].uid = -1;
          index.erase(slot);
        }
        break;
      }
    }
  }
  std::vector<RecoveredJob> live;
  live.reserve(result.jobs.size());
  for (RecoveredJob& job : result.jobs) {
    if (job.uid >= 0) live.push_back(std::move(job));
  }
  result.jobs = std::move(live);
  return result;
}

double RetryBackoffMs(const RetryPolicy& policy, int next_attempt) {
  if (next_attempt <= 2) return policy.backoff_base_ms;
  const int exponent = next_attempt - 2 > 30 ? 30 : next_attempt - 2;
  const double delay =
      policy.backoff_base_ms * static_cast<double>(1u << exponent);
  return delay < policy.backoff_max_ms ? delay : policy.backoff_max_ms;
}

std::string Journal::CheckpointPath(const std::string& dir, int64_t uid) {
  return dir + "/ckpt-" + std::to_string(uid) + ".json";
}

Journal::Journal(std::string dir, std::string path)
    : dir_(std::move(dir)), path_(std::move(path)) {}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

status::StatusOr<std::unique_ptr<Journal>> Journal::Open(
    const std::string& dir, ReplayResult* replay) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("journal mkdir " + dir);
  }
  status::StatusOr<ReplayResult> replayed = ReplayJournal(dir);
  if (!replayed.ok()) return replayed.status();
  std::unique_ptr<Journal> journal(
      new Journal(dir, dir + "/" + kJournalFileName));
  journal->last_seq_ = replayed->max_seq;
  journal->last_uid_ = replayed->max_uid;
  for (const RecoveredJob& job : replayed->jobs) {
    JournalRecord folded;
    folded.uid = job.uid;
    folded.state = JobState::kAccepted;
    folded.client_id = job.client_id;
    folded.tenant = job.tenant;
    folded.attempt = job.next_attempt - 1;
    folded.remaining_ms = job.remaining_ms;
    folded.request = job.request;
    journal->live_[job.uid] = std::move(folded);
  }
  // Rotate on open: rewrites the journal compacted, which also discards
  // any torn tail or corrupt records the replay skipped.
  int live = 0;
  PEEGA_RETURN_IF_ERROR(journal->CompactLocked(&live),
                        "journal open " + dir);
  if (replay != nullptr) *replay = *std::move(replayed);
  return journal;
}

int64_t Journal::NextUid() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++last_uid_;
}

status::Status Journal::AppendRecord(JournalRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(record);
}

status::Status Journal::AppendLocked(JournalRecord& record) {
  if (PEEGA_FAILPOINT("serve.journal.append")) {
    obs::GetCounter("serve.journal.append_errors")->Add(1);
    return status::IoError("injected failpoint serve.journal.append");
  }
  if (records_in_file_ >= kCompactMinRecords &&
      static_cast<int64_t>(live_.size()) * 4 < records_in_file_) {
    int live = 0;
    PEEGA_RETURN_IF_ERROR(CompactLocked(&live), "journal auto-compact");
  }
  record.seq = ++last_seq_;
  const std::string line = EncodeJournalRecord(record);
  const Status written = WriteAll(fd_, line, path_);
  if (!written.ok()) {
    obs::GetCounter("serve.journal.append_errors")->Add(1);
    return written;
  }
  if (::fsync(fd_) != 0) {
    obs::GetCounter("serve.journal.append_errors")->Add(1);
    return Errno("journal fsync " + path_);
  }
  ++records_in_file_;
  obs::GetCounter("serve.journal.appends")->Add(1);
  TrackLocked(record);
  return Status::Ok();
}

void Journal::TrackLocked(const JournalRecord& record) {
  switch (record.state) {
    case JobState::kAccepted:
      live_[record.uid] = record;
      break;
    case JobState::kRunning:
    case JobState::kRetrying: {
      const auto it = live_.find(record.uid);
      if (it == live_.end()) break;
      // Fold into the ACCEPTED-shaped live entry: attempt counts the
      // attempts already spent, so a RUNNING(n) folds to n-1 and a
      // RETRYING(n) to n (see ReplayJournal for the inverse).
      it->second.attempt = record.state == JobState::kRunning
                               ? record.attempt - 1
                               : record.attempt;
      it->second.remaining_ms = record.remaining_ms;
      break;
    }
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
      live_.erase(record.uid);
      break;
  }
}

status::StatusOr<int> Journal::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  PEEGA_RETURN_IF_ERROR(CompactLocked(&live), "journal compact");
  return live;
}

status::Status Journal::CompactLocked(int* live) {
  const std::string tmp = path_ + ".tmp";
  const int tmp_fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) return Errno("journal open " + tmp);
  for (auto& [uid, record] : live_) {
    record.seq = ++last_seq_;
    const Status written =
        WriteAll(tmp_fd, EncodeJournalRecord(record), tmp);
    if (!written.ok()) {
      ::close(tmp_fd);
      ::unlink(tmp.c_str());
      return written;
    }
  }
  if (::fsync(tmp_fd) != 0) {
    ::close(tmp_fd);
    ::unlink(tmp.c_str());
    return Errno("journal fsync " + tmp);
  }
  ::close(tmp_fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("journal rename " + tmp);
  }
  SyncDir(dir_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return Errno("journal reopen " + path_);
  records_in_file_ = static_cast<int64_t>(live_.size());
  *live = static_cast<int>(live_.size());
  obs::GetCounter("serve.journal.compactions")->Add(1);
  return Status::Ok();
}

}  // namespace repro::serve
