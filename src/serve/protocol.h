#ifndef PEEGA_SERVE_PROTOCOL_H_
#define PEEGA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "status/status.h"

namespace repro::serve {

/// Wire protocol of the `graphguard serve` job server: one JSON object
/// per line in both directions over a local (AF_UNIX) stream socket.
///
/// Request:  {"id":N, "tenant":"team-a", "op":"attack", ...op fields}
/// Response: {"id":N, "tenant":"team-a", "ok":true|false,
///            "code":"OK"|"RESOURCE_EXHAUSTED"|..., "error":"...",
///            "queue_ms":Q, "run_ms":R, "attempts":A, "result":{...}}
///
/// Ops: "ping", "attack", "eval", "stats", "cancel" (target_id),
/// "pause"/"resume" (operational scheduler gate), "shutdown" (graceful
/// drain). Attack/eval are queued jobs subject to admission control and
/// per-request deadlines (`deadline_ms`); the rest are answered inline.
/// "attempts" counts the runs the job took (> 1 after transient-failure
/// retries). With `--journal` the stats result additionally carries
/// "journal", "recovery", and "retry" objects (see server.h).
struct Request {
  int64_t id = 0;
  std::string tenant;
  std::string op;
  obs::Json raw;  // full request object for op-specific fields
};

/// Parses one request line. Enforces the envelope: a JSON object with a
/// string "op", an optional numeric "id" (default 0) and an optional
/// well-formed "tenant" (default "default"; max 32 chars of
/// [A-Za-z0-9_-], keeping per-tenant metric names bounded and clean).
status::Status ParseRequest(const std::string& line, Request* out);

/// Response envelope for `status`; callers attach op-specific fields
/// ("result", "queue_ms", ...) before encoding.
obs::Json MakeResponse(int64_t id, const std::string& tenant,
                       const status::Status& status);

/// Compact one-line encoding with the trailing newline appended.
std::string EncodeLine(const obs::Json& message);

/// Field accessors with defaults (absent key or wrong type -> default).
std::string GetString(const obs::Json& object, const std::string& key,
                      const std::string& fallback);
double GetNumber(const obs::Json& object, const std::string& key,
                 double fallback);
bool GetBool(const obs::Json& object, const std::string& key,
             bool fallback);

}  // namespace repro::serve

#endif  // PEEGA_SERVE_PROTOCOL_H_
