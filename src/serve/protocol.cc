#include "serve/protocol.h"

namespace repro::serve {

namespace {

bool ValidTenant(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 32) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

status::Status ParseRequest(const std::string& line, Request* out) {
  std::string error;
  if (!obs::Json::Parse(line, &out->raw, &error)) {
    return status::InvalidInput("bad request JSON: " + error);
  }
  if (out->raw.type != obs::Json::Type::kObject) {
    return status::InvalidInput("request must be a JSON object");
  }
  out->op = GetString(out->raw, "op", "");
  if (out->op.empty()) {
    return status::InvalidInput("request has no \"op\"");
  }
  out->id = static_cast<int64_t>(GetNumber(out->raw, "id", 0));
  out->tenant = GetString(out->raw, "tenant", "default");
  if (!ValidTenant(out->tenant)) {
    return status::InvalidInput("bad tenant name (want 1-32 chars of "
                                "[A-Za-z0-9_-])");
  }
  return status::Status::Ok();
}

obs::Json MakeResponse(int64_t id, const std::string& tenant,
                       const status::Status& status) {
  obs::Json response = obs::Json::MakeObject();
  response.object["id"] = obs::Json::MakeNumber(static_cast<double>(id));
  response.object["tenant"] = obs::Json::MakeString(tenant);
  response.object["ok"] = obs::Json::MakeBool(status.ok());
  response.object["code"] =
      obs::Json::MakeString(status::CodeName(status.code()));
  if (!status.ok()) {
    response.object["error"] = obs::Json::MakeString(status.message());
  }
  return response;
}

std::string EncodeLine(const obs::Json& message) {
  return message.Dump() + "\n";
}

std::string GetString(const obs::Json& object, const std::string& key,
                      const std::string& fallback) {
  const obs::Json* value = object.Find(key);
  if (value == nullptr || value->type != obs::Json::Type::kString) {
    return fallback;
  }
  return value->string_value;
}

double GetNumber(const obs::Json& object, const std::string& key,
                 double fallback) {
  const obs::Json* value = object.Find(key);
  if (value == nullptr || value->type != obs::Json::Type::kNumber) {
    return fallback;
  }
  return value->number_value;
}

bool GetBool(const obs::Json& object, const std::string& key,
             bool fallback) {
  const obs::Json* value = object.Find(key);
  if (value == nullptr || value->type != obs::Json::Type::kBool) {
    return fallback;
  }
  return value->bool_value;
}

}  // namespace repro::serve
