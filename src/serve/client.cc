#include "serve/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace repro::serve {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

status::Status Client::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return status::InvalidInput("client: bad socket path \"" +
                                socket_path + "\"");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return status::IoError("client: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    Close();
    return status::Unavailable("client: connect(" + socket_path +
                               ") failed: " + detail);
  }
  return status::Status::Ok();
}

status::Status Client::Send(const obs::Json& request) {
  if (fd_ < 0) return status::Unavailable("client: not connected");
  const std::string line = EncodeLine(request);
  size_t sent = 0;
  while (sent < line.size()) {
    // MSG_NOSIGNAL: a server that closed mid-drain must surface as a
    // Status, not as a SIGPIPE killing the embedding process.
    const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return status::Unavailable("client: server closed the connection");
      }
      return status::IoError("client: write failed: " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return status::Status::Ok();
}

status::StatusOr<obs::Json> Client::ReadResponse() {
  if (fd_ < 0) return status::Unavailable("client: not connected");
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      obs::Json response;
      std::string error;
      if (!obs::Json::Parse(line, &response, &error)) {
        return status::InvalidInput("client: bad response JSON: " +
                                    error);
      }
      return response;
    }
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      return status::Unavailable("client: server closed the connection");
    }
    return status::IoError("client: read failed: " +
                           std::string(std::strerror(errno)));
  }
}

status::StatusOr<obs::Json> Client::Call(const obs::Json& request) {
  PEEGA_RETURN_IF_ERROR(Send(request), "client call");
  return ReadResponse();
}

}  // namespace repro::serve
