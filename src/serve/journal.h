#ifndef PEEGA_SERVE_JOURNAL_H_
#define PEEGA_SERVE_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "status/status.h"

namespace repro::serve {

/// Write-ahead job journal for `graphguard serve` (`--journal <dir>`).
///
/// One newline-delimited JSON record per job state transition, fsync'd
/// before the transition takes effect, so a SIGKILL at any instant
/// loses at most work the PR-5 checkpoints already cover:
///
///   ACCEPTED ──► RUNNING(n) ──► DONE
///                    │  ▲
///                    │  └── backoff ── RETRYING(n, transient code)
///                    ├───► FAILED(code)   permanent / attempts spent
///                    └───► CANCELLED
///
/// On startup the server replays the journal, re-enqueues every job
/// whose latest record is non-terminal (re-arming the remaining
/// `Deadline` budget recorded with each transition and pointing attack
/// ops back at their checkpoint files), and then rewrites the journal
/// compacted — terminal jobs drop out, so replay stays O(live jobs).
/// Torn tails and CRC-corrupt records are truncated/skipped loudly
/// (counted + reported through the `stats` op), never aborted on.

/// Bump when the record shape changes incompatibly. Records from a
/// newer version are rejected (IO_ERROR) instead of misread.
inline constexpr int kJournalVersion = 1;
inline constexpr const char* kJournalFileName = "journal.jsonl";

enum class JobState {
  kAccepted,
  kRunning,
  kRetrying,
  kDone,
  kFailed,
  kCancelled,
};

/// Stable wire name ("ACCEPTED", "RUNNING", ...).
const char* JobStateName(JobState state);
bool ParseJobState(const std::string& name, JobState* out);

/// DONE / FAILED / CANCELLED — nothing left to replay.
bool IsTerminal(JobState state);

struct JournalRecord {
  int64_t seq = 0;   // assigned by Journal::AppendRecord, monotone per journal
  int64_t uid = 0;   // server-assigned job uid, unique across restarts
  JobState state = JobState::kAccepted;
  int64_t client_id = 0;  // client-chosen request id (response envelope)
  std::string tenant;
  /// For ACCEPTED: attempts already spent (0 on first admission, >0 only
  /// in compacted journals). For RUNNING: the 1-based attempt now
  /// starting. For RETRYING/FAILED: the attempt that just failed.
  int attempt = 0;
  std::string code;  // status::CodeName for RETRYING / FAILED
  /// Deadline budget left when the record was written; < 0 = unbounded.
  double remaining_ms = -1.0;
  /// Full request object (op-specific fields included); ACCEPTED only.
  obs::Json request;
};

/// One newline-terminated JSON line. The "crc" field is a CRC32
/// (obs::Crc32) over the record serialized WITHOUT the crc field —
/// obs::Json keys are map-ordered, so that byte layout is stable.
std::string EncodeJournalRecord(const JournalRecord& record);

/// Parses + CRC-checks one line. `where` ("path:line") prefixes every
/// error message; corrupt or version-incompatible records are IO_ERROR.
status::Status DecodeJournalRecord(const std::string& line,
                                   const std::string& where,
                                   JournalRecord* out);

/// A job whose latest journal record is non-terminal: what the server
/// needs to re-enqueue it after a crash.
struct RecoveredJob {
  int64_t uid = 0;
  int64_t client_id = 0;
  std::string tenant;
  obs::Json request;
  /// The attempt number the re-run should use (1-based). A job killed
  /// mid-RUNNING re-runs the same attempt (its checkpoint carries the
  /// progress); a job killed between RETRYING and the next RUNNING
  /// starts the next attempt.
  int next_attempt = 1;
  double remaining_ms = -1.0;  // deadline budget left; < 0 = unbounded
};

struct ReplayResult {
  std::vector<RecoveredJob> jobs;  // non-terminal, in admission order
  int64_t max_seq = 0;
  int64_t max_uid = 0;
  int replayed_records = 0;  // decoded + CRC-verified
  int corrupt_records = 0;   // skipped: CRC mismatch / bad shape
  int64_t truncated_bytes = 0;  // torn tail dropped at EOF
  int done = 0;
  int failed = 0;
  int cancelled = 0;
  /// "path:line: reason" per skipped record / torn tail — the loud part
  /// of "truncate loudly"; surfaced through the stats op and the CLI.
  std::vector<std::string> warnings;
};

/// Replays `dir`/journal.jsonl without touching it. A missing file is
/// an empty result; an unreadable file is IO_ERROR. Corrupt records are
/// skipped (counted + warned), a torn tail is dropped.
status::StatusOr<ReplayResult> ReplayJournal(const std::string& dir);

/// Deterministic retry policy for transient job failures
/// (status::IsTransient). No RNG, no jitter: identical failure
/// sequences schedule identical backoffs, which is what lets
/// journal_test pin the exact delays.
struct RetryPolicy {
  int max_attempts = 3;          // total attempts, first run included
  double backoff_base_ms = 100.0;
  double backoff_max_ms = 5000.0;
};

/// Delay before `next_attempt` (2-based): base, 2·base, 4·base, ...,
/// capped at backoff_max_ms.
double RetryBackoffMs(const RetryPolicy& policy, int next_attempt);

/// Append-only fsync'd journal writer with atomic compaction.
/// Thread-safe: the server appends from both its IO thread (admission)
/// and its scheduler thread (state transitions).
class Journal {
 public:
  /// Creates `dir` if needed, replays an existing journal into
  /// `*replay`, rewrites it compacted (live jobs only, tmp + fsync +
  /// rename), and opens it for appending. seq/uid counters resume past
  /// the replayed maxima.
  static status::StatusOr<std::unique_ptr<Journal>> Open(
      const std::string& dir, ReplayResult* replay);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Assigns the next seq, writes the record, fsyncs. IO_ERROR on write
  /// failure or when the serve.journal.append failpoint fires. Once the
  /// file accumulates enough terminal records it is compacted in place
  /// (atomically) before the append.
  status::Status AppendRecord(JournalRecord record);

  /// Next server-assigned job uid (monotone across restarts).
  int64_t NextUid();

  /// Drops all records of terminal jobs by atomically rewriting the
  /// file. Returns the number of live jobs kept.
  status::StatusOr<int> Compact();

  const std::string& path() const { return path_; }
  const std::string& dir() const { return dir_; }

  /// `dir`/ckpt-<uid>.json — where the server points a recovered (or
  /// journaled) attack job's checkpoint unless the client chose a path.
  static std::string CheckpointPath(const std::string& dir, int64_t uid);

 private:
  Journal(std::string dir, std::string path);

  status::Status AppendLocked(JournalRecord& record);
  status::Status CompactLocked(int* live);
  void TrackLocked(const JournalRecord& record);

  std::mutex mu_;
  std::string dir_;
  std::string path_;
  int fd_ = -1;
  int64_t last_seq_ = 0;
  int64_t last_uid_ = 0;
  int64_t records_in_file_ = 0;
  // Folded state per live job (an ACCEPTED-shaped record whose attempt
  // counts the attempts already spent), kept so compaction can rewrite
  // the file from memory. Terminal jobs are erased — compaction is just
  // "dump this map".
  std::map<int64_t, JournalRecord> live_;
};

}  // namespace repro::serve

#endif  // PEEGA_SERVE_JOURNAL_H_
