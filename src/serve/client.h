#ifndef PEEGA_SERVE_CLIENT_H_
#define PEEGA_SERVE_CLIENT_H_

#include <string>

#include "obs/json.h"
#include "serve/protocol.h"
#include "status/status.h"

namespace repro::serve {

/// Minimal blocking client for the newline-delimited JSON protocol.
/// One connection per Client; not thread-safe (use one per thread —
/// the serve_load bench and the tests do exactly that).
///
/// Send() and ReadResponse() are split so a caller can pipeline several
/// requests before collecting responses (responses to queued jobs come
/// back in completion order, which for one connection is submission
/// order — the scheduler is FIFO).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  status::Status Connect(const std::string& socket_path);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Writes one request line (blocking until fully written).
  status::Status Send(const obs::Json& request);

  /// Blocks until one full response line arrives; kUnavailable when the
  /// server closes the connection first.
  status::StatusOr<obs::Json> ReadResponse();

  /// Send + ReadResponse.
  status::StatusOr<obs::Json> Call(const obs::Json& request);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace repro::serve

#endif  // PEEGA_SERVE_CLIENT_H_
