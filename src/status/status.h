#ifndef PEEGA_STATUS_STATUS_H_
#define PEEGA_STATUS_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "debug/check.h"

namespace repro::status {

/// Recoverable-failure codes for the attack/defense pipeline. Everything
/// that can go wrong at runtime without indicating a programming error
/// maps onto one of these; programming errors stay PEEGA_CHECK aborts.
enum class Code {
  kOk = 0,
  kInvalidInput,       // malformed external data (files, checkpoints)
  kNumericFault,       // NaN/Inf detected mid-computation
  kDeadlineExceeded,   // wall-clock budget spent
  kCancelled,          // cooperative cancellation flag raised
  kIoError,            // filesystem read/write failure
  kResourceExhausted,  // admission control: queue/budget full, try later
  kUnavailable,        // endpoint draining or gone; retry elsewhere
};

/// Short stable name ("OK", "INVALID_INPUT", ...) used in table cells
/// (`ERR(<code>)`), bench JSON, and log lines.
const char* CodeName(Code code);

/// True for failures that a retry with fresh resources might clear:
/// NUMERIC_FAULT (often a poisoned intermediate from a transient fault),
/// IO_ERROR (filesystem hiccup), RESOURCE_EXHAUSTED (queue full, try
/// later), UNAVAILABLE (endpoint draining). Permanent codes —
/// INVALID_INPUT, CANCELLED, DEADLINE_EXCEEDED — describe the request
/// itself and retrying cannot help; kOk is not a failure at all. The
/// serve retry policy and `eval::Pipeline`'s `ERR(<code>)` table cells
/// both key off this single classification.
bool IsTransient(Code code);

/// A success-or-error value. Cheap to copy on the OK path (empty
/// message). Error statuses carry a human-readable message that grows
/// context as it propagates up through `PEEGA_RETURN_IF_ERROR` /
/// `WithContext`, outermost context first:
///
///   IO_ERROR: load campaign: read graph: /tmp/g.txt:12: bad token
class [[nodiscard]] Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CODE_NAME>: <message>".
  [[nodiscard]] std::string ToString() const;

  /// Returns a copy with `context` prepended to the message; no-op on OK
  /// statuses (context chains only describe failures).
  [[nodiscard]] Status WithContext(const std::string& context) const;

  /// Explicitly discards this status. The only sanctioned way to drop a
  /// Status on the floor — both the class-level [[nodiscard]] and the
  /// `status-discipline` analyzer pass treat a bare `F();` call as an
  /// error, and this call is the grep-able opt-out for the rare genuine
  /// fire-and-forget (e.g. best-effort checkpoint cleanup).
  void IgnoreError() const {}

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  Code code_;
  std::string message_;
};

inline Status InvalidInput(std::string message) {
  return Status(Code::kInvalidInput, std::move(message));
}
inline Status NumericFault(std::string message) {
  return Status(Code::kNumericFault, std::move(message));
}
inline Status DeadlineExceeded(std::string message) {
  return Status(Code::kDeadlineExceeded, std::move(message));
}
inline Status Cancelled(std::string message) {
  return Status(Code::kCancelled, std::move(message));
}
inline Status IoError(std::string message) {
  return Status(Code::kIoError, std::move(message));
}
inline Status ResourceExhausted(std::string message) {
  return Status(Code::kResourceExhausted, std::move(message));
}
inline Status Unavailable(std::string message) {
  return Status(Code::kUnavailable, std::move(message));
}

/// A `Status` or, on success, a value of type T. Access to `value()` on
/// an error is a programming bug and aborts via PEEGA_CHECK.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    PEEGA_CHECK(!status_.ok())
        << " — StatusOr constructed from an OK status without a value";
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::Ok()), value_(std::move(value)) {}

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// See Status::IgnoreError().
  void IgnoreError() const {}

  const T& value() const& {
    PEEGA_CHECK(ok()) << " — value() on error status: "
                      << status_.ToString();
    return *value_;
  }
  T& value() & {
    PEEGA_CHECK(ok()) << " — value() on error status: "
                      << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PEEGA_CHECK(ok()) << " — value() on error status: "
                      << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace repro::status

/// Propagates a non-OK status to the caller, prepending `context` so the
/// outermost frame reads first. Usage:
///   PEEGA_RETURN_IF_ERROR(ReadHeader(in), "load graph");
#define PEEGA_RETURN_IF_ERROR(expr, context)                        \
  do {                                                              \
    ::repro::status::Status peega_status_tmp_ = (expr);             \
    if (!peega_status_tmp_.ok()) {                                  \
      return peega_status_tmp_.WithContext(context);                \
    }                                                               \
  } while (0)

/// StatusOr variant: unwraps into `lhs` or propagates the error.
///   PEEGA_ASSIGN_OR_RETURN(Graph g, LoadGraph(path), "attack setup");
#define PEEGA_STATUS_CONCAT_INNER_(a, b) a##b
#define PEEGA_STATUS_CONCAT_(a, b) PEEGA_STATUS_CONCAT_INNER_(a, b)
#define PEEGA_ASSIGN_OR_RETURN(lhs, expr, context)                  \
  PEEGA_ASSIGN_OR_RETURN_IMPL_(                                     \
      PEEGA_STATUS_CONCAT_(peega_statusor_, __LINE__), lhs, expr,   \
      context)
#define PEEGA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr, context)       \
  auto tmp = (expr);                                                \
  if (!tmp.ok()) {                                                  \
    return tmp.status().WithContext(context);                       \
  }                                                                 \
  lhs = std::move(tmp).value()

#endif  // PEEGA_STATUS_STATUS_H_
