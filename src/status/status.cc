#include "status/status.h"

namespace repro::status {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidInput:
      return "INVALID_INPUT";
    case Code::kNumericFault:
      return "NUMERIC_FAULT";
    case Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Code::kCancelled:
      return "CANCELLED";
    case Code::kIoError:
      return "IO_ERROR";
    case Code::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case Code::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

bool IsTransient(Code code) {
  switch (code) {
    case Code::kNumericFault:
    case Code::kIoError:
    case Code::kResourceExhausted:
    case Code::kUnavailable:
      return true;
    case Code::kOk:
    case Code::kInvalidInput:
    case Code::kDeadlineExceeded:
    case Code::kCancelled:
      return false;
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  if (message_.empty()) return Status(code_, context);
  return Status(code_, context + ": " + message_);
}

}  // namespace repro::status
