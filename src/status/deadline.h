#ifndef PEEGA_STATUS_DEADLINE_H_
#define PEEGA_STATUS_DEADLINE_H_

#include <atomic>
#include <limits>
#include <memory>
#include <string>

#include "obs/stopwatch.h"
#include "status/status.h"

namespace repro::status {

/// Cooperative wall-clock budget + cancellation for long-running loops.
///
/// A default-constructed Deadline is unbounded and uncancellable:
/// `Check()` short-circuits without reading the clock, so threading a
/// Deadline through a hot loop costs nothing when no budget is set
/// (asserted against table7_attack_time). Copies share the cancellation
/// flag but carry their own start instant, so a Deadline can be handed
/// to workers and cancelled from the outside.
///
/// Loops poll `Check(where)` once per iteration and, on a non-OK result,
/// stop mutating and return their best-so-far result with the status
/// attached — never abort. The budget is measured from construction
/// (or the last `Restart()`), via `obs::StopWatch`.
class Deadline {
 public:
  /// Unbounded, uncancellable.
  Deadline() = default;

  /// Expires `budget_seconds` after construction. Also allocates a
  /// cancellation flag so `RequestCancel()` works on any bounded
  /// deadline and its copies.
  static Deadline AfterSeconds(double budget_seconds) {
    Deadline d;
    d.budget_seconds_ = budget_seconds;
    d.cancel_ = std::make_shared<std::atomic<bool>>(false);
    return d;
  }

  /// Unbounded but cancellable via `RequestCancel()` on any copy.
  static Deadline Cancellable() {
    Deadline d;
    d.cancel_ = std::make_shared<std::atomic<bool>>(false);
    return d;
  }

  bool unbounded() const {
    return cancel_ == nullptr &&
           budget_seconds_ == std::numeric_limits<double>::infinity();
  }

  /// Raises the shared cancellation flag (no-op on a default-constructed
  /// deadline, which has no flag).
  void RequestCancel() {
    if (cancel_) cancel_->store(true, std::memory_order_relaxed);
  }

  /// Re-arms the budget clock (the cancellation flag is untouched).
  void Restart() { watch_.Restart(); }

  /// Seconds of budget left (infinity when no budget was set, clamped at
  /// zero once spent). The serve journal records this at each job state
  /// transition so a crash-recovered job resumes with the budget it had
  /// left, not a fresh one.
  double RemainingSeconds() const {
    if (budget_seconds_ == std::numeric_limits<double>::infinity()) {
      return std::numeric_limits<double>::infinity();
    }
    const double left = budget_seconds_ - watch_.Seconds();
    return left > 0.0 ? left : 0.0;
  }

  /// OK while within budget and not cancelled. `where` names the loop
  /// for the status message ("PEEGA greedy loop", "GNAT epoch 17").
  Status Check(const std::string& where) const {
    if (cancel_ == nullptr &&
        budget_seconds_ == std::numeric_limits<double>::infinity()) {
      return Status::Ok();  // common case: no clock read, no allocation
    }
    if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
      return Cancelled(where);
    }
    if (watch_.Seconds() > budget_seconds_) {
      return DeadlineExceeded(where);
    }
    return Status::Ok();
  }

 private:
  obs::StopWatch watch_;
  double budget_seconds_ = std::numeric_limits<double>::infinity();
  std::shared_ptr<std::atomic<bool>> cancel_;  // shared across copies
};

}  // namespace repro::status

#endif  // PEEGA_STATUS_DEADLINE_H_
