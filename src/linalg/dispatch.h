#ifndef PEEGA_LINALG_DISPATCH_H_
#define PEEGA_LINALG_DISPATCH_H_

#include <string>

namespace repro::linalg {

/// \file
/// Runtime SIMD kernel dispatch.
///
/// Every hot kernel in `linalg/ops.h` and `linalg/incremental.h` exists
/// in up to three variants — a scalar reference (`generic`), an AVX2
/// implementation, and a NEON implementation — collected in per-op
/// `KernelTable`s (see `linalg/kernels/kernels.h`). One variant is
/// selected for the whole process the first time any kernel dispatches:
///
///   1. the `PEEGA_SIMD` environment variable (`generic|avx2|neon`),
///      which aborts loudly when it names a variant this binary did not
///      compile or this CPU cannot execute — a forced variant that
///      silently fell back would invalidate a differential-test run;
///   2. otherwise the best variant that is both compiled in and
///      supported by the CPU (detected via CPUID on x86), falling back
///      to `generic`.
///
/// The selection is observable everywhere results are recorded: the
/// `linalg.simd.variant` obs gauge, the `"simd"` key of every
/// `BENCH_*.json` config block, and `eval::RunMetadata`.
///
/// Determinism contract: a variant is only registered for an op if its
/// output is BITWISE IDENTICAL to the generic reference on every input
/// (DESIGN.md, "Kernel dispatch & determinism classes"). The op
/// registry (`linalg/op_registry.h`) turns that promise into
/// auto-generated differential tests, so `PEEGA_SIMD=generic` and
/// `PEEGA_SIMD=avx2` PEEGA campaigns commit identical flip sequences.

/// The kernel instruction-set variants, in preference order (higher is
/// preferred when supported). Values are stable: they are recorded in
/// the `linalg.simd.variant` gauge.
enum class SimdVariant : int {
  kGeneric = 0,  ///< portable scalar reference — always compiled
  kAvx2 = 1,     ///< x86-64 AVX2 (256-bit float lanes)
  kNeon = 2,     ///< aarch64 NEON (128-bit float lanes)
};

inline constexpr int kNumSimdVariants = 3;

/// Lower-case stable name ("generic", "avx2", "neon") used by the
/// PEEGA_SIMD env variable, bench JSON, and run metadata.
const char* SimdVariantName(SimdVariant variant);

/// True when this binary contains kernel code for `variant` (decided at
/// compile time: the AVX2/NEON translation units are only built when
/// the toolchain targets that architecture).
bool SimdVariantCompiled(SimdVariant variant);

/// True when `variant` is compiled in AND the running CPU can execute
/// it (CPUID check for AVX2; NEON is baseline on aarch64).
bool SimdVariantUsable(SimdVariant variant);

/// The variant every dispatched kernel currently runs. Resolved once
/// from PEEGA_SIMD / CPUID on first use (see file comment), then
/// constant until `SetSimdVariantForTesting` overrides it. Also keeps
/// the `linalg.simd.variant` gauge in sync.
SimdVariant ActiveSimdVariant();

/// Forces the active variant, for differential tests and per-variant
/// benchmarks. Aborts (PEEGA_CHECK) when `variant` is not usable on
/// this machine — tests must skip instead of silently comparing
/// generic against itself. Not thread-safe against concurrently
/// running kernels; call between kernel invocations only.
void SetSimdVariantForTesting(SimdVariant variant);

/// RAII forced-variant scope for tests and benchmarks: forces
/// `variant` on construction, restores the previous active variant on
/// destruction.
class ScopedSimdVariant {
 public:
  explicit ScopedSimdVariant(SimdVariant variant);
  ~ScopedSimdVariant();

  ScopedSimdVariant(const ScopedSimdVariant&) = delete;
  ScopedSimdVariant& operator=(const ScopedSimdVariant&) = delete;

 private:
  SimdVariant previous_;
};

/// Per-op variant table. `generic` is mandatory (it is the reference
/// implementation every other variant is differentially tested
/// against); `avx2`/`neon` are null when not compiled or not
/// implemented for the op. Tables are static data in
/// `linalg/kernels/kernels.cc`; `Select` resolves the active variant's
/// function pointer, falling back to `generic` when the active variant
/// has no implementation for this op.
template <typename Fn>
struct KernelTable {
  const char* op;  ///< registry name, e.g. "linalg.matmul"
  Fn generic;
  Fn avx2;
  Fn neon;

  Fn Select() const {
    switch (ActiveSimdVariant()) {
      case SimdVariant::kAvx2:
        if (avx2 != nullptr) return avx2;
        break;
      case SimdVariant::kNeon:
        if (neon != nullptr) return neon;
        break;
      case SimdVariant::kGeneric:
        break;
    }
    return generic;
  }
};

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_DISPATCH_H_
