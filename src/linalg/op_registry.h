#ifndef PEEGA_LINALG_OP_REGISTRY_H_
#define PEEGA_LINALG_OP_REGISTRY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace repro::linalg {

/// \file
/// Declarative metadata for every dispatched linalg op.
///
/// Each hot kernel behind `linalg/dispatch.h` has one `OpInfo` entry
/// describing its public API, cost, parallel split, determinism class
/// and which SIMD variants are implemented in source. The registry is
/// the single source of truth for three consumers:
///
///  - `tools/gen_op_docs` renders it into `docs/OPS.md` (CI fails when
///    the committed file drifts from the registry);
///  - `tests/dispatch_test.cc` walks it to differentially test every
///    compiled variant against the scalar reference, bit for bit, via
///    the per-op `probe` hook — a new op registered here is covered
///    with zero new test code;
///  - `ValidateOpRegistry()` cross-checks it against the live dispatch
///    tables in `linalg/kernels/kernels.h`, so the metadata cannot
///    silently drift from the wiring.

/// How an op's SIMD variants relate to the scalar reference. Every
/// class in this enum guarantees bit-identical outputs across variants;
/// the distinction is HOW that is achieved (see DESIGN.md, "Kernel
/// dispatch & determinism classes").
enum class DeterminismClass {
  /// Vector lanes map to distinct output elements and replay the scalar
  /// per-element accumulation order; multiplies and adds round
  /// separately (no FMA contraction).
  kLanePerOutput,
  /// Only the scalar reference exists; vectorizing would have to
  /// reassociate a single accumulator, so the op is deliberately left
  /// unvectorized to stay bitwise.
  kReferenceOnly,
};

const char* DeterminismClassName(DeterminismClass c);

struct OpInfo {
  /// Dispatch-table op name, e.g. "linalg.matmul". Must match the
  /// `op` field of the corresponding `KernelTable`.
  const char* name;
  /// Public entry point(s), e.g. "linalg::MatMul".
  const char* api;
  /// One-line description for the docs.
  const char* summary;
  /// Flop cost, e.g. "O(m · k · n)".
  const char* complexity;
  /// How ParallelFor splits the work (and why that is deterministic).
  const char* parallelism;
  DeterminismClass determinism;
  /// Variants implemented in source. Static (platform-independent) so
  /// docs generated from the registry are identical on every machine;
  /// `ValidateOpRegistry` checks them against what this build compiled.
  bool generic;
  bool avx2;
  bool neon;
  /// Runs the op's public wrapper on fixed seeded inputs that cover the
  /// vector-width boundaries (sizes below / at / above one vector, plus
  /// scalar-tail sizes) and appends every output float to `*out`. The
  /// differential test calls this under each forced SIMD variant and
  /// compares the streams bit for bit.
  std::function<void(std::vector<float>* out)> probe;
};

/// All registered ops, in docs order. Built once, never mutated.
const std::vector<OpInfo>& OpRegistry();

/// Looks up an op by dispatch name; nullptr when absent.
const OpInfo* FindOp(std::string_view name);

/// Cross-checks the registry against the live dispatch tables: every
/// table has exactly one entry and vice versa, names match, every op
/// has a generic reference, and each variant this build compiled in is
/// declared in the registry (and vice versa for the gates this build
/// enables). Returns an empty string on success, else a description of
/// the first mismatch.
std::string ValidateOpRegistry();

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_OP_REGISTRY_H_
