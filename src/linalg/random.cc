#include "linalg/random.h"

#include <algorithm>
#include <numeric>

#include "debug/check.h"

namespace repro::linalg {

std::vector<int> Rng::Permutation(int n) {
  PEEGA_CHECK_GE(n, 0);
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::vector<int> Rng::Sample(int n, int k) {
  PEEGA_CHECK_GE(k, 0);
  PEEGA_CHECK_LE(k, n);
  // Partial Fisher-Yates: O(n) memory but only k swaps.
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(UniformInt(i, n - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace repro::linalg
