#include "linalg/dispatch.h"

#include <atomic>
#include <cstdlib>

#include "debug/check.h"
#include "obs/metrics.h"

namespace repro::linalg {

namespace {

// Keeps the gauge in sync with every variant transition so BENCH_*.json
// metrics snapshots record what actually ran, including mid-bench
// forced-variant scopes.
void PublishVariantGauge(SimdVariant variant) {
  static obs::Gauge* const gauge = obs::GetGauge("linalg.simd.variant");
  gauge->Set(static_cast<double>(static_cast<int>(variant)));
}

SimdVariant ResolveInitialVariant() {
  const char* env = std::getenv("PEEGA_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const std::string requested(env);
    SimdVariant variant = SimdVariant::kGeneric;
    bool known = false;
    for (int v = 0; v < kNumSimdVariants; ++v) {
      const SimdVariant candidate = static_cast<SimdVariant>(v);
      if (requested == SimdVariantName(candidate)) {
        variant = candidate;
        known = true;
        break;
      }
    }
    PEEGA_CHECK(known) << " — PEEGA_SIMD='" << requested
                       << "' is not one of generic|avx2|neon";
    // A forced variant that silently fell back to generic would turn a
    // differential-test run into generic-vs-generic; fail loudly.
    PEEGA_CHECK(SimdVariantCompiled(variant))
        << " — PEEGA_SIMD=" << requested
        << " requested but this binary was built without that variant";
    PEEGA_CHECK(SimdVariantUsable(variant))
        << " — PEEGA_SIMD=" << requested
        << " requested but this CPU does not support it";
    return variant;
  }
  // Best usable variant in preference order.
  if (SimdVariantUsable(SimdVariant::kAvx2)) return SimdVariant::kAvx2;
  if (SimdVariantUsable(SimdVariant::kNeon)) return SimdVariant::kNeon;
  return SimdVariant::kGeneric;
}

std::atomic<int>& ActiveVariantStorage() {
  // Lazily resolved: first ActiveSimdVariant() call pays the env/CPUID
  // lookup, every later call is one relaxed load on the kernel path.
  static std::atomic<int> active{[] {
    const SimdVariant variant = ResolveInitialVariant();
    PublishVariantGauge(variant);
    return static_cast<int>(variant);
  }()};
  return active;
}

}  // namespace

const char* SimdVariantName(SimdVariant variant) {
  switch (variant) {
    case SimdVariant::kGeneric:
      return "generic";
    case SimdVariant::kAvx2:
      return "avx2";
    case SimdVariant::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SimdVariantCompiled(SimdVariant variant) {
  switch (variant) {
    case SimdVariant::kGeneric:
      return true;
    case SimdVariant::kAvx2:
#if defined(PEEGA_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case SimdVariant::kNeon:
#if defined(PEEGA_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool SimdVariantUsable(SimdVariant variant) {
  if (!SimdVariantCompiled(variant)) return false;
  switch (variant) {
    case SimdVariant::kGeneric:
      return true;
    case SimdVariant::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdVariant::kNeon:
      // NEON is baseline on aarch64; the TU is only compiled there.
      return true;
  }
  return false;
}

SimdVariant ActiveSimdVariant() {
  return static_cast<SimdVariant>(
      ActiveVariantStorage().load(std::memory_order_relaxed));
}

void SetSimdVariantForTesting(SimdVariant variant) {
  PEEGA_CHECK(SimdVariantUsable(variant))
      << " — cannot force SIMD variant '" << SimdVariantName(variant)
      << "': not compiled in or not supported by this CPU";
  ActiveVariantStorage().store(static_cast<int>(variant),
                               std::memory_order_relaxed);
  PublishVariantGauge(variant);
}

ScopedSimdVariant::ScopedSimdVariant(SimdVariant variant)
    : previous_(ActiveSimdVariant()) {
  SetSimdVariantForTesting(variant);
}

ScopedSimdVariant::~ScopedSimdVariant() {
  SetSimdVariantForTesting(previous_);
}

}  // namespace repro::linalg
