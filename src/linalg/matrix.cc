#include "linalg/matrix.h"

#include <algorithm>

namespace repro::linalg {

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Constant(int rows, int cols, float value) {
  return Matrix(rows, cols, value);
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  const int r = static_cast<int>(rows.size());
  const int c = static_cast<int>(rows[0].size());
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    PEEGA_CHECK_EQ(static_cast<int>(rows[i].size()), c);
    std::copy(rows[i].begin(), rows[i].end(), m.row(i));
  }
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Matrix::ShapeString() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_);
}

}  // namespace repro::linalg
