// Scalar reference kernels — the implementations every other variant is
// differentially tested against, moved verbatim from the pre-dispatch
// loop bodies of linalg/ops.cc and linalg/incremental.cc so their float
// accumulation order (and hence every golden fixture and the engine ==
// tape bitwise guarantee) is unchanged. Compiled with -ffp-contract=off
// like all kernel TUs, which pins the mul-then-add rounding the SIMD
// variants reproduce lane-for-lane.

#include <algorithm>
#include <cmath>

#include "linalg/kernels/variants.h"

namespace repro::linalg::kernels::generic {

void MatMulRows(const float* a, const float* b, float* c, int64_t r0,
                int64_t r1, int k, int n) {
  constexpr int kBlock = 64;
  for (int k0 = 0; k0 < k; k0 += kBlock) {
    const int k1 = std::min(k0 + kBlock, k);
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const float* arow = a + static_cast<int64_t>(i) * k;
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int kk = k0; kk < k1; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<int64_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void MatMulTransACols(const float* a, const float* b, float* c, int64_t j0,
                      int64_t j1, int k_rows, int m, int n) {
  for (int kk = 0; kk < k_rows; ++kk) {
    const float* arow = a + static_cast<int64_t>(kk) * m;
    const float* brow = b + static_cast<int64_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int j = static_cast<int>(j0); j < static_cast<int>(j1); ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void MatMulTransBRows(const float* a, const float* b, float* c, int64_t r0,
                      int64_t r1, int k, int n) {
  for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
    const float* arow = a + static_cast<int64_t>(i) * k;
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<int64_t>(j) * k;
      float dot = 0.0f;
      for (int kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
      crow[j] = dot;
    }
  }
}

void SpMMRows(const int64_t* row_ptr, const int* col_idx, const float* values,
              const float* b, float* c, int64_t r0, int64_t r1, int n) {
  for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int64_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk) {
      const float v = values[kk];
      const float* brow = b + static_cast<int64_t>(col_idx[kk]) * n;
      for (int j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
}

void SpMVRows(const int64_t* row_ptr, const int* col_idx, const float* values,
              const float* x, float* y, int64_t r0, int64_t r1) {
  for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
    float acc = 0.0f;
    for (int64_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk) {
      acc += values[kk] * x[col_idx[kk]];
    }
    y[i] = acc;
  }
}

void RowSoftmaxRows(const float* a, float* c, int64_t r0, int64_t r1, int n) {
  for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
    const float* arow = a + static_cast<int64_t>(i) * n;
    float* crow = c + static_cast<int64_t>(i) * n;
    float row_max = arow[0];
    for (int j = 1; j < n; ++j) row_max = std::max(row_max, arow[j]);
    float denom = 0.0f;
    for (int j = 0; j < n; ++j) {
      crow[j] = std::exp(arow[j] - row_max);
      denom += crow[j];
    }
    const float inv = 1.0f / denom;
    for (int j = 0; j < n; ++j) crow[j] *= inv;
  }
}

void NormalizedSpMMRow(const int* neighbors, int degree, int r,
                       const float* scale, const float* b, int cols,
                       float* out_row) {
  for (int j = 0; j < cols; ++j) out_row[j] = 0.0f;
  // Stored (ascending-column) order with the self-loop merged in sorted
  // position — the accumulation order of linalg::SpMM on
  // graph::GcnNormalize's CSR, and of the dense MatMul on the tape's
  // normalized adjacency (zero entries skipped there).
  const float sr = scale[r];
  const auto apply = [&](int k) {
    const float v = sr * scale[k];
    const float* brow = b + static_cast<int64_t>(k) * cols;
    for (int j = 0; j < cols; ++j) out_row[j] += v * brow[j];
  };
  bool self_done = false;
  for (int idx = 0; idx < degree; ++idx) {
    const int k = neighbors[idx];
    if (!self_done && r < k) {
      apply(r);
      self_done = true;
    }
    apply(k);
  }
  if (!self_done) apply(r);
}

void DotRow(const float* a_row, const float* b, int64_t n, int k,
            float* out_row) {
  // Ascending-k float dots, the accumulation order of
  // linalg::MatMulTransB.
  for (int64_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    float dot = 0.0f;
    for (int kk = 0; kk < k; ++kk) dot += a_row[kk] * brow[kk];
    out_row[j] = dot;
  }
}

void DotColsRow(const float* a_row, const float* b, const int* cols,
                int64_t num_cols, int k, float* out_row) {
  for (int64_t c = 0; c < num_cols; ++c) {
    const int j = cols[c];
    const float* brow = b + static_cast<int64_t>(j) * k;
    float dot = 0.0f;
    for (int kk = 0; kk < k; ++kk) dot += a_row[kk] * brow[kk];
    out_row[j] = dot;
  }
}

}  // namespace repro::linalg::kernels::generic
