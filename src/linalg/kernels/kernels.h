#ifndef PEEGA_LINALG_KERNELS_KERNELS_H_
#define PEEGA_LINALG_KERNELS_KERNELS_H_

#include <cstdint>
#include <vector>

#include "linalg/dispatch.h"

namespace repro::linalg::kernels {

/// \file
/// Chunk- and row-level kernel signatures plus the per-op variant
/// tables behind `linalg/ops.cc` and `linalg/incremental.cc`.
///
/// The public kernels keep their orchestration (shape checks, tracing,
/// FLOP counters, `parallel::ParallelFor` chunking) and resolve ONE
/// function pointer per call from the op's `KernelTable`; the pointed-to
/// functions below do the arithmetic for one chunk (dense ops) or one
/// row (the row-subset repair ops). Signatures are raw pointers + sizes
/// on purpose: the AVX2/NEON translation units are compiled with
/// instruction-set flags the rest of the tree must not assume, so they
/// must not instantiate inline class members that could be ODR-merged
/// into baseline code.
///
/// Variant contract (DESIGN.md, "Kernel dispatch & determinism
/// classes"): every non-generic variant reproduces the generic float
/// accumulation order per output element EXACTLY — vector lanes map to
/// distinct output elements, never to partial sums of one element, and
/// multiplies/adds round separately (no FMA contraction; the kernel TUs
/// compile with `-ffp-contract=off`). The op registry
/// (`linalg/op_registry.h`) auto-generates bitwise differential tests
/// for every compiled variant from this promise.

// ---------------------------------------------------------------------------
// Chunk kernels (dense ops; all matrices row-major, stride = cols)
// ---------------------------------------------------------------------------

/// Rows [r0, r1) of C(m×n) = A(m×k) · B(k×n), cache-blocked over k with
/// block 64; per-element accumulation ascends kk within ascending
/// k-blocks, zero `a` entries skipped.
using MatMulRowsFn = void (*)(const float* a, const float* b, float* c,
                              int64_t r0, int64_t r1, int k, int n);

/// Column slice [j0, j1) of C(m×n) = A(k_rows×m)ᵀ · B(k_rows×n);
/// kk-outer streaming order, per-element accumulation ascends kk.
using MatMulTransAColsFn = void (*)(const float* a, const float* b, float* c,
                                    int64_t j0, int64_t j1, int k_rows, int m,
                                    int n);

/// Rows [r0, r1) of C(m×n) = A(m×k) · B(n×k)ᵀ; each element is an
/// ascending-k dot product.
using MatMulTransBRowsFn = void (*)(const float* a, const float* b, float* c,
                                    int64_t r0, int64_t r1, int k, int n);

/// Rows [r0, r1) of C = S · B for CSR S; each row accumulates its
/// nonzeros in stored (ascending-column) order.
using SpMMRowsFn = void (*)(const int64_t* row_ptr, const int* col_idx,
                            const float* values, const float* b, float* c,
                            int64_t r0, int64_t r1, int n);

/// Rows [r0, r1) of y = S · x for CSR S, stored-order accumulation.
using SpMVRowsFn = void (*)(const int64_t* row_ptr, const int* col_idx,
                            const float* values, const float* x, float* y,
                            int64_t r0, int64_t r1);

/// Rows [r0, r1) of the max-stabilized row softmax; the exp/denominator
/// scan is scalar in every variant (libm exp in ascending-j order).
using RowSoftmaxRowsFn = void (*)(const float* a, float* c, int64_t r0,
                                  int64_t r1, int n);

// ---------------------------------------------------------------------------
// Row kernels (row-subset repair ops of the incremental engine)
// ---------------------------------------------------------------------------

/// Row `r` of A_n · B for the GCN-normalized adjacency implied by
/// `neighbors`/`scale` (entry value scale[r]·scale[k]); the self-loop is
/// merged in sorted position exactly as in `linalg::SpMM` on
/// `graph::GcnNormalize`'s CSR. `b` is (n×cols); writes `out_row`.
using NormalizedSpMMRowFn = void (*)(const int* neighbors, int degree, int r,
                                     const float* scale, const float* b,
                                     int cols, float* out_row);

/// One row of A · Bᵀ: out_row[j] = dot(a_row, b + j·k) for j in [0, n),
/// each dot ascending-k.
using DotRowFn = void (*)(const float* a_row, const float* b, int64_t n,
                          int k, float* out_row);

/// Subset-column companion: out_row[cols[c]] = dot(a_row, b + cols[c]·k)
/// for c in [0, num_cols); untouched columns keep their values.
using DotColsRowFn = void (*)(const float* a_row, const float* b,
                              const int* cols, int64_t num_cols, int k,
                              float* out_row);

// ---------------------------------------------------------------------------
// Per-op tables
// ---------------------------------------------------------------------------

const KernelTable<MatMulRowsFn>& MatMulTable();
const KernelTable<MatMulTransAColsFn>& MatMulTransATable();
const KernelTable<MatMulTransBRowsFn>& MatMulTransBTable();
const KernelTable<SpMMRowsFn>& SpMMTable();
const KernelTable<SpMVRowsFn>& SpMVTable();
const KernelTable<RowSoftmaxRowsFn>& RowSoftmaxTable();
const KernelTable<NormalizedSpMMRowFn>& NormalizedSpMMRowTable();
const KernelTable<DotRowFn>& DotRowTable();
const KernelTable<DotColsRowFn>& DotColsRowTable();

/// The AVX2 dot-family kernels address B rows through 32-bit gather
/// offsets (lane l reads b[row_l·k + kk]); callers fall back to the
/// generic kernel when `max_row·k + k` could exceed INT32_MAX.
inline bool GatherOffsetsFit(int64_t max_row, int64_t k) {
  return max_row * k + k <= int64_t{INT32_MAX};
}

/// Introspection row for the registry self-check and gen_op_docs: which
/// variants of each dispatched op this binary actually compiled.
struct KernelTableInfo {
  const char* op;
  bool has_generic = false;
  bool has_avx2 = false;
  bool has_neon = false;
};

/// One entry per kernel table above, in table-declaration order. The op
/// registry cross-checks this against its own entries in both
/// directions (every dispatched op documented, every documented variant
/// compiled where the toolchain allows).
std::vector<KernelTableInfo> AllKernelTables();

}  // namespace repro::linalg::kernels

#endif  // PEEGA_LINALG_KERNELS_KERNELS_H_
