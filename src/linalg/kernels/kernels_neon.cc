// NEON kernel variants for aarch64, covering the saxpy-family ops
// (matmul, matmul_ta, spmm, normalized_spmm_rows). The gather-based dot
// kernels have no NEON implementation — NEON lacks a gather load, so a
// lane-per-output mapping would degenerate to scalar lane inserts — and
// dispatch falls back to generic for them.
//
// Same bitwise-equality discipline as kernels_avx2.cc: lanes map to
// distinct output columns, multiplies and adds round separately
// (vmulq_f32 + vaddq_f32, never the fused vmlaq/vfmaq: aarch64 scalar
// references are ALSO compiled with -ffp-contract=off, so the generic
// kernel rounds mul and add separately there too).

#include <arm_neon.h>

#include <algorithm>

#include "linalg/kernels/variants.h"

namespace repro::linalg::kernels::neon {

namespace {

// crow[j] += av * brow[j] for j in [0, n); lane l owns element j + l.
inline void AxpyRow(float av, const float* brow, float* crow, int n) {
  const float32x4_t vav = vdupq_n_f32(av);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const float32x4_t vb = vld1q_f32(brow + j);
    const float32x4_t vc = vld1q_f32(crow + j);
    vst1q_f32(crow + j, vaddq_f32(vc, vmulq_f32(vav, vb)));
  }
  for (; j < n; ++j) crow[j] += av * brow[j];
}

}  // namespace

void MatMulRows(const float* a, const float* b, float* c, int64_t r0,
                int64_t r1, int k, int n) {
  constexpr int kBlock = 64;
  for (int k0 = 0; k0 < k; k0 += kBlock) {
    const int k1 = std::min(k0 + kBlock, k);
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const float* arow = a + static_cast<int64_t>(i) * k;
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int kk = k0; kk < k1; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        AxpyRow(av, b + static_cast<int64_t>(kk) * n, crow, n);
      }
    }
  }
}

void MatMulTransACols(const float* a, const float* b, float* c, int64_t j0,
                      int64_t j1, int k_rows, int m, int n) {
  const int jb = static_cast<int>(j0);
  const int je = static_cast<int>(j1);
  for (int kk = 0; kk < k_rows; ++kk) {
    const float* arow = a + static_cast<int64_t>(kk) * m;
    const float* brow = b + static_cast<int64_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<int64_t>(i) * n;
      const float32x4_t vav = vdupq_n_f32(av);
      int j = jb;
      for (; j + 4 <= je; j += 4) {
        const float32x4_t vb = vld1q_f32(brow + j);
        const float32x4_t vc = vld1q_f32(crow + j);
        vst1q_f32(crow + j, vaddq_f32(vc, vmulq_f32(vav, vb)));
      }
      for (; j < je; ++j) crow[j] += av * brow[j];
    }
  }
}

void SpMMRows(const int64_t* row_ptr, const int* col_idx, const float* values,
              const float* b, float* c, int64_t r0, int64_t r1, int n) {
  for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int64_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk) {
      AxpyRow(values[kk], b + static_cast<int64_t>(col_idx[kk]) * n, crow, n);
    }
  }
}

void NormalizedSpMMRow(const int* neighbors, int degree, int r,
                       const float* scale, const float* b, int cols,
                       float* out_row) {
  {
    const float32x4_t vzero = vdupq_n_f32(0.0f);
    int j = 0;
    for (; j + 4 <= cols; j += 4) vst1q_f32(out_row + j, vzero);
    for (; j < cols; ++j) out_row[j] = 0.0f;
  }
  const float sr = scale[r];
  const auto apply = [&](int k) {
    AxpyRow(sr * scale[k], b + static_cast<int64_t>(k) * cols, out_row, cols);
  };
  bool self_done = false;
  for (int idx = 0; idx < degree; ++idx) {
    const int k = neighbors[idx];
    if (!self_done && r < k) {
      apply(r);
      self_done = true;
    }
    apply(k);
  }
  if (!self_done) apply(r);
}

}  // namespace repro::linalg::kernels::neon
