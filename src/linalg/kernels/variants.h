#ifndef PEEGA_LINALG_KERNELS_VARIANTS_H_
#define PEEGA_LINALG_KERNELS_VARIANTS_H_

#include <cstdint>

// Internal declarations shared by the variant translation units and the
// table definitions in kernels.cc. Each namespace mirrors a subset of
// the signatures in kernels.h; an op/variant pair missing here is
// simply not implemented (its table slot stays null and dispatch falls
// back to generic). The AVX2/NEON blocks are guarded by the same
// compile definitions CMake sets when it builds those TUs, so kernels.cc
// sees exactly the symbols the link will provide.

namespace repro::linalg::kernels {

namespace generic {
void MatMulRows(const float* a, const float* b, float* c, int64_t r0,
                int64_t r1, int k, int n);
void MatMulTransACols(const float* a, const float* b, float* c, int64_t j0,
                      int64_t j1, int k_rows, int m, int n);
void MatMulTransBRows(const float* a, const float* b, float* c, int64_t r0,
                      int64_t r1, int k, int n);
void SpMMRows(const int64_t* row_ptr, const int* col_idx, const float* values,
              const float* b, float* c, int64_t r0, int64_t r1, int n);
void SpMVRows(const int64_t* row_ptr, const int* col_idx, const float* values,
              const float* x, float* y, int64_t r0, int64_t r1);
void RowSoftmaxRows(const float* a, float* c, int64_t r0, int64_t r1, int n);
void NormalizedSpMMRow(const int* neighbors, int degree, int r,
                       const float* scale, const float* b, int cols,
                       float* out_row);
void DotRow(const float* a_row, const float* b, int64_t n, int k,
            float* out_row);
void DotColsRow(const float* a_row, const float* b, const int* cols,
                int64_t num_cols, int k, float* out_row);
}  // namespace generic

#if defined(PEEGA_HAVE_AVX2)
namespace avx2 {
void MatMulRows(const float* a, const float* b, float* c, int64_t r0,
                int64_t r1, int k, int n);
void MatMulTransACols(const float* a, const float* b, float* c, int64_t j0,
                      int64_t j1, int k_rows, int m, int n);
void MatMulTransBRows(const float* a, const float* b, float* c, int64_t r0,
                      int64_t r1, int k, int n);
void SpMMRows(const int64_t* row_ptr, const int* col_idx, const float* values,
              const float* b, float* c, int64_t r0, int64_t r1, int n);
void RowSoftmaxRows(const float* a, float* c, int64_t r0, int64_t r1, int n);
void NormalizedSpMMRow(const int* neighbors, int degree, int r,
                       const float* scale, const float* b, int cols,
                       float* out_row);
void DotRow(const float* a_row, const float* b, int64_t n, int k,
            float* out_row);
void DotColsRow(const float* a_row, const float* b, const int* cols,
                int64_t num_cols, int k, float* out_row);
}  // namespace avx2
#endif  // PEEGA_HAVE_AVX2

#if defined(PEEGA_HAVE_NEON)
namespace neon {
void MatMulRows(const float* a, const float* b, float* c, int64_t r0,
                int64_t r1, int k, int n);
void MatMulTransACols(const float* a, const float* b, float* c, int64_t j0,
                      int64_t j1, int k_rows, int m, int n);
void SpMMRows(const int64_t* row_ptr, const int* col_idx, const float* values,
              const float* b, float* c, int64_t r0, int64_t r1, int n);
void NormalizedSpMMRow(const int* neighbors, int degree, int r,
                       const float* scale, const float* b, int cols,
                       float* out_row);
}  // namespace neon
#endif  // PEEGA_HAVE_NEON

}  // namespace repro::linalg::kernels

#endif  // PEEGA_LINALG_KERNELS_VARIANTS_H_
