// AVX2 kernel variants. Compiled with -mavx2 -ffp-contract=off in its
// own translation unit (never on the baseline tree) and reached only
// through the dispatch tables after a CPUID check.
//
// Bitwise-equality discipline (DESIGN.md, "Kernel dispatch &
// determinism classes"): every vector lane owns ONE output element and
// replays the generic kernel's accumulation sequence for that element —
// saxpy kernels vectorize across the contiguous j (output-column) loop,
// dot kernels keep the ascending-k scan per output and spread EIGHT
// DIFFERENT outputs across lanes via strided gathers. Multiplies and
// adds round separately (_mm256_mul_ps + _mm256_add_ps, never
// _mm256_fmadd_ps): the baseline x86-64 scalar reference has no FMA, so
// a fused variant would differ in the last bit and flip greedy argmax
// decisions. Scalar tails reuse the exact generic expressions.

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "linalg/kernels/variants.h"

namespace repro::linalg::kernels::avx2 {

namespace {

// crow[j] += av * brow[j] for j in [0, n) — the shared saxpy inner loop
// of MatMulRows / SpMMRows / NormalizedSpMMRow. Lane l handles element
// j + l; per element the operation sequence equals the scalar loop.
inline void AxpyRow(float av, const float* brow, float* crow, int n) {
  const __m256 vav = _mm256_set1_ps(av);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vb = _mm256_loadu_ps(brow + j);
    const __m256 vc = _mm256_loadu_ps(crow + j);
    _mm256_storeu_ps(crow + j, _mm256_add_ps(vc, _mm256_mul_ps(vav, vb)));
  }
  for (; j < n; ++j) crow[j] += av * brow[j];
}

// Eight ascending-k dot products at once: lane l accumulates
// dot(a_row, b + (base_row + l)·k) through a stride-k gather, exactly
// the generic per-output order. Caller guarantees (base-relative)
// gather offsets fit int32 (kernels.h GatherOffsetsFit).
inline __m256 DotEight(const float* a_row, const float* b_tile, int k) {
  const __m256i vidx =
      _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                         _mm256_set1_epi32(k));
  __m256 acc = _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const __m256 va = _mm256_set1_ps(a_row[kk]);
    const __m256 vb = _mm256_i32gather_ps(b_tile + kk, vidx, 4);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
  }
  return acc;
}

inline float DotScalar(const float* a_row, const float* brow, int k) {
  float dot = 0.0f;
  for (int kk = 0; kk < k; ++kk) dot += a_row[kk] * brow[kk];
  return dot;
}

}  // namespace

void MatMulRows(const float* a, const float* b, float* c, int64_t r0,
                int64_t r1, int k, int n) {
  constexpr int kBlock = 64;
  for (int k0 = 0; k0 < k; k0 += kBlock) {
    const int k1 = std::min(k0 + kBlock, k);
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const float* arow = a + static_cast<int64_t>(i) * k;
      float* crow = c + static_cast<int64_t>(i) * n;
      for (int kk = k0; kk < k1; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        AxpyRow(av, b + static_cast<int64_t>(kk) * n, crow, n);
      }
    }
  }
}

void MatMulTransACols(const float* a, const float* b, float* c, int64_t j0,
                      int64_t j1, int k_rows, int m, int n) {
  const int jb = static_cast<int>(j0);
  const int je = static_cast<int>(j1);
  for (int kk = 0; kk < k_rows; ++kk) {
    const float* arow = a + static_cast<int64_t>(kk) * m;
    const float* brow = b + static_cast<int64_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<int64_t>(i) * n;
      const __m256 vav = _mm256_set1_ps(av);
      int j = jb;
      for (; j + 8 <= je; j += 8) {
        const __m256 vb = _mm256_loadu_ps(brow + j);
        const __m256 vc = _mm256_loadu_ps(crow + j);
        _mm256_storeu_ps(crow + j, _mm256_add_ps(vc, _mm256_mul_ps(vav, vb)));
      }
      for (; j < je; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransBRows(const float* a, const float* b, float* c, int64_t r0,
                      int64_t r1, int k, int n) {
  for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
    const float* arow = a + static_cast<int64_t>(i) * k;
    float* crow = c + static_cast<int64_t>(i) * n;
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      _mm256_storeu_ps(crow + j,
                       DotEight(arow, b + static_cast<int64_t>(j) * k, k));
    }
    for (; j < n; ++j) {
      crow[j] = DotScalar(arow, b + static_cast<int64_t>(j) * k, k);
    }
  }
}

void SpMMRows(const int64_t* row_ptr, const int* col_idx, const float* values,
              const float* b, float* c, int64_t r0, int64_t r1, int n) {
  for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
    float* crow = c + static_cast<int64_t>(i) * n;
    for (int64_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk) {
      AxpyRow(values[kk], b + static_cast<int64_t>(col_idx[kk]) * n, crow, n);
    }
  }
}

void RowSoftmaxRows(const float* a, float* c, int64_t r0, int64_t r1, int n) {
  for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
    const float* arow = a + static_cast<int64_t>(i) * n;
    float* crow = c + static_cast<int64_t>(i) * n;
    // Lane-parallel max then horizontal reduce: float max is exact
    // selection (associative and commutative on the non-NaN inputs the
    // numerics guard admits), so the reassociation is value-identical
    // to the scalar scan; a ±0 tie feeds exp(±0) = 1.0f either way.
    float row_max;
    if (n >= 8) {
      __m256 vmax = _mm256_loadu_ps(arow);
      int j = 8;
      for (; j + 8 <= n; j += 8) {
        vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(arow + j));
      }
      alignas(32) float lanes[8];
      _mm256_store_ps(lanes, vmax);
      row_max = lanes[0];
      for (int l = 1; l < 8; ++l) row_max = std::max(row_max, lanes[l]);
      for (; j < n; ++j) row_max = std::max(row_max, arow[j]);
    } else {
      row_max = arow[0];
      for (int j = 1; j < n; ++j) row_max = std::max(row_max, arow[j]);
    }
    // The exp + denominator scan stays scalar in every variant: libm
    // exp calls in ascending-j order ARE the reference accumulation.
    float denom = 0.0f;
    for (int j = 0; j < n; ++j) {
      crow[j] = std::exp(arow[j] - row_max);
      denom += crow[j];
    }
    const float inv = 1.0f / denom;
    const __m256 vinv = _mm256_set1_ps(inv);
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      _mm256_storeu_ps(crow + j,
                       _mm256_mul_ps(_mm256_loadu_ps(crow + j), vinv));
    }
    for (; j < n; ++j) crow[j] *= inv;
  }
}

void NormalizedSpMMRow(const int* neighbors, int degree, int r,
                       const float* scale, const float* b, int cols,
                       float* out_row) {
  {
    const __m256 vzero = _mm256_setzero_ps();
    int j = 0;
    for (; j + 8 <= cols; j += 8) _mm256_storeu_ps(out_row + j, vzero);
    for (; j < cols; ++j) out_row[j] = 0.0f;
  }
  const float sr = scale[r];
  const auto apply = [&](int k) {
    AxpyRow(sr * scale[k], b + static_cast<int64_t>(k) * cols, out_row, cols);
  };
  bool self_done = false;
  for (int idx = 0; idx < degree; ++idx) {
    const int k = neighbors[idx];
    if (!self_done && r < k) {
      apply(r);
      self_done = true;
    }
    apply(k);
  }
  if (!self_done) apply(r);
}

void DotRow(const float* a_row, const float* b, int64_t n, int k,
            float* out_row) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(out_row + j, DotEight(a_row, b + j * k, k));
  }
  for (; j < n; ++j) out_row[j] = DotScalar(a_row, b + j * k, k);
}

void DotColsRow(const float* a_row, const float* b, const int* cols,
                int64_t num_cols, int k, float* out_row) {
  const __m256i vk = _mm256_set1_epi32(k);
  int64_t c = 0;
  for (; c + 8 <= num_cols; c += 8) {
    const __m256i vcols = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cols + c));
    const __m256i vidx = _mm256_mullo_epi32(vcols, vk);
    __m256 acc = _mm256_setzero_ps();
    for (int kk = 0; kk < k; ++kk) {
      const __m256 va = _mm256_set1_ps(a_row[kk]);
      const __m256 vb = _mm256_i32gather_ps(b + kk, vidx, 4);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, acc);
    for (int l = 0; l < 8; ++l) out_row[cols[c + l]] = lanes[l];
  }
  for (; c < num_cols; ++c) {
    const int j = cols[c];
    out_row[j] = DotScalar(a_row, b + static_cast<int64_t>(j) * k, k);
  }
}

}  // namespace repro::linalg::kernels::avx2
