// Per-op dispatch tables. The variant slots are wired at compile time
// from the same PEEGA_HAVE_* definitions that gate the variant TUs, so
// a table can never reference a symbol the link does not provide; at
// runtime KernelTable::Select() narrows further to what the CPU
// supports. AllKernelTables() exposes the wiring to the op registry's
// self-check and to gen_op_docs.

#include "linalg/kernels/kernels.h"

#include "linalg/kernels/variants.h"

namespace repro::linalg::kernels {

#if defined(PEEGA_HAVE_AVX2)
#define PEEGA_AVX2_FN(fn) (&avx2::fn)
#else
#define PEEGA_AVX2_FN(fn) nullptr
#endif

#if defined(PEEGA_HAVE_NEON)
#define PEEGA_NEON_FN(fn) (&neon::fn)
#else
#define PEEGA_NEON_FN(fn) nullptr
#endif

const KernelTable<MatMulRowsFn>& MatMulTable() {
  static const KernelTable<MatMulRowsFn> table = {
      "linalg.matmul", &generic::MatMulRows, PEEGA_AVX2_FN(MatMulRows),
      PEEGA_NEON_FN(MatMulRows)};
  return table;
}

const KernelTable<MatMulTransAColsFn>& MatMulTransATable() {
  static const KernelTable<MatMulTransAColsFn> table = {
      "linalg.matmul_ta", &generic::MatMulTransACols,
      PEEGA_AVX2_FN(MatMulTransACols), PEEGA_NEON_FN(MatMulTransACols)};
  return table;
}

const KernelTable<MatMulTransBRowsFn>& MatMulTransBTable() {
  static const KernelTable<MatMulTransBRowsFn> table = {
      "linalg.matmul_tb", &generic::MatMulTransBRows,
      PEEGA_AVX2_FN(MatMulTransBRows), nullptr};
  return table;
}

const KernelTable<SpMMRowsFn>& SpMMTable() {
  static const KernelTable<SpMMRowsFn> table = {
      "linalg.spmm", &generic::SpMMRows, PEEGA_AVX2_FN(SpMMRows),
      PEEGA_NEON_FN(SpMMRows)};
  return table;
}

const KernelTable<SpMVRowsFn>& SpMVTable() {
  // Reference-only: each output is ONE float accumulator scanned along
  // the row's nonzeros, so any lane-parallel split would reassociate
  // the sum and break the bitwise class (see docs/OPS.md).
  static const KernelTable<SpMVRowsFn> table = {
      "linalg.spmv", &generic::SpMVRows, nullptr, nullptr};
  return table;
}

const KernelTable<RowSoftmaxRowsFn>& RowSoftmaxTable() {
  static const KernelTable<RowSoftmaxRowsFn> table = {
      "linalg.row_softmax", &generic::RowSoftmaxRows,
      PEEGA_AVX2_FN(RowSoftmaxRows), nullptr};
  return table;
}

const KernelTable<NormalizedSpMMRowFn>& NormalizedSpMMRowTable() {
  static const KernelTable<NormalizedSpMMRowFn> table = {
      "linalg.normalized_spmm_rows", &generic::NormalizedSpMMRow,
      PEEGA_AVX2_FN(NormalizedSpMMRow), PEEGA_NEON_FN(NormalizedSpMMRow)};
  return table;
}

const KernelTable<DotRowFn>& DotRowTable() {
  static const KernelTable<DotRowFn> table = {
      "linalg.dot_rows", &generic::DotRow, PEEGA_AVX2_FN(DotRow), nullptr};
  return table;
}

const KernelTable<DotColsRowFn>& DotColsRowTable() {
  static const KernelTable<DotColsRowFn> table = {
      "linalg.dot_cols", &generic::DotColsRow, PEEGA_AVX2_FN(DotColsRow),
      nullptr};
  return table;
}

#undef PEEGA_AVX2_FN
#undef PEEGA_NEON_FN

namespace {

template <typename Fn>
KernelTableInfo InfoOf(const KernelTable<Fn>& table) {
  KernelTableInfo info;
  info.op = table.op;
  info.has_generic = table.generic != nullptr;
  info.has_avx2 = table.avx2 != nullptr;
  info.has_neon = table.neon != nullptr;
  return info;
}

}  // namespace

std::vector<KernelTableInfo> AllKernelTables() {
  return {
      InfoOf(MatMulTable()),        InfoOf(MatMulTransATable()),
      InfoOf(MatMulTransBTable()),  InfoOf(SpMMTable()),
      InfoOf(SpMVTable()),          InfoOf(RowSoftmaxTable()),
      InfoOf(NormalizedSpMMRowTable()), InfoOf(DotRowTable()),
      InfoOf(DotColsRowTable()),
  };
}

}  // namespace repro::linalg::kernels
