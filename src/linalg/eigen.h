#ifndef PEEGA_LINALG_EIGEN_H_
#define PEEGA_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/random.h"
#include "linalg/sparse.h"

namespace repro::linalg {

/// Result of a truncated symmetric eigendecomposition: the `k` eigenpairs
/// with the largest |eigenvalue|. `vectors` is n x k (column j is the
/// eigenvector of `values[j]`).
struct EigenResult {
  std::vector<float> values;
  Matrix vectors;
};

/// Truncated eigendecomposition of a symmetric matrix via subspace
/// (block power) iteration with Rayleigh-Ritz projection.
///
/// Used by GCN-SVD (low-rank purification of a symmetric poisoned
/// adjacency) and GF-Attack (spectral filter scores). `iters` controls
/// convergence; 30-50 suffices for the well-separated graph spectra we
/// handle.
EigenResult TopKEigenSymmetric(const SparseMatrix& a, int k, Rng* rng,
                               int iters = 40);

/// Dense variant of `TopKEigenSymmetric` for small matrices / tests.
EigenResult TopKEigenSymmetricDense(const Matrix& a, int k, Rng* rng,
                                    int iters = 40);

/// Reconstructs `U diag(values) U^T` from an eigendecomposition.
Matrix LowRankReconstruct(const EigenResult& eig);

/// QR-orthonormalizes the columns of `m` in place (modified Gram-Schmidt).
void OrthonormalizeColumns(Matrix* m);

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_EIGEN_H_
