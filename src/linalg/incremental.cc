#include "linalg/incremental.h"

#include "debug/check.h"
#include "debug/numerics.h"
#include "linalg/kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace repro::linalg {

namespace {

// Chunk grains over the row/column subsets. Outputs are disjoint per
// row (or per column set within a row), so the partition only affects
// load balance, never the result.
constexpr int64_t kSpmmRowGrain = 16;  // O(deg * cols) work per row
constexpr int64_t kDotRowGrain = 2;    // O(b.rows * cols) work per row

// Scans the freshly written rows for NaN/Inf in debug-numerics builds;
// checking only the touched rows keeps the guard proportional to the
// incremental work instead of the full matrix.
void CheckRowsFinite(const Matrix& m, const std::vector<int>& rows,
                     const char* what) {
  if constexpr (debug::NumericsGuardEnabled()) {
    for (int r : rows) {
      debug::CheckFiniteArray(m.row(r), m.cols(), m.cols(), what, __FILE__,
                              __LINE__);
    }
  }
}

}  // namespace

void NormalizedSpMMRows(const std::vector<std::vector<int>>& neighbors,
                        const std::vector<float>& scale,
                        const std::vector<int>& rows, const Matrix& b,
                        Matrix* out) {
  const int n = static_cast<int>(neighbors.size());
  PEEGA_CHECK_EQ(static_cast<int>(scale.size()), n);
  PEEGA_CHECK_EQ(b.rows(), n);
  PEEGA_CHECK_EQ(out->rows(), n);
  PEEGA_CHECK_EQ(out->cols(), b.cols());
  const obs::TraceSpan span("linalg.norm_spmm_rows");
  static obs::Counter* const calls =
      obs::GetCounter("linalg.incremental.calls");
  static obs::Counter* const flops =
      obs::GetCounter("linalg.incremental.flops");
  calls->Add(1);
  const int cols = b.cols();
  const kernels::NormalizedSpMMRowFn kernel =
      kernels::NormalizedSpMMRowTable().Select();
  parallel::ParallelFor(
      0, static_cast<int64_t>(rows.size()), kSpmmRowGrain,
      [&](int64_t i0, int64_t i1) {
        uint64_t work = 0;
        for (int64_t i = i0; i < i1; ++i) {
          const int r = rows[static_cast<size_t>(i)];
          const std::vector<int>& nbrs = neighbors[r];
          kernel(nbrs.data(), static_cast<int>(nbrs.size()), r, scale.data(),
                 b.data(), cols, out->row(r));
          work += nbrs.size() + 1;
        }
        flops->Add(2 * work * static_cast<uint64_t>(cols));
      });
  CheckRowsFinite(*out, rows, "NormalizedSpMMRows");
}

void NormalizedSpMM(const std::vector<std::vector<int>>& neighbors,
                    const std::vector<float>& scale, const Matrix& b,
                    Matrix* out) {
  std::vector<int> all(neighbors.size());
  for (size_t r = 0; r < all.size(); ++r) all[r] = static_cast<int>(r);
  NormalizedSpMMRows(neighbors, scale, all, b, out);
}

void DotRowsInto(const Matrix& a, const Matrix& b,
                 const std::vector<int>& rows,
                 const std::vector<char>* row_nonzero, Matrix* out) {
  PEEGA_CHECK_EQ(a.cols(), b.cols());
  PEEGA_CHECK_EQ(out->rows(), a.rows());
  PEEGA_CHECK_EQ(out->cols(), b.rows());
  const obs::TraceSpan span("linalg.dot_rows");
  static obs::Counter* const calls =
      obs::GetCounter("linalg.incremental.calls");
  static obs::Counter* const flops =
      obs::GetCounter("linalg.incremental.flops");
  calls->Add(1);
  const int n = b.rows(), k = a.cols();
  // The AVX2 variant gathers 8 consecutive B-rows per step through
  // 32-bit offsets of at most 8·k elements; fall back to generic when
  // that could overflow (the variants are bitwise-equal either way).
  const kernels::DotRowFn kernel = kernels::GatherOffsetsFit(7, k)
                                       ? kernels::DotRowTable().Select()
                                       : kernels::DotRowTable().generic;
  parallel::ParallelFor(
      0, static_cast<int64_t>(rows.size()), kDotRowGrain,
      [&](int64_t i0, int64_t i1) {
        uint64_t dots = 0;
        for (int64_t i = i0; i < i1; ++i) {
          const int r = rows[static_cast<size_t>(i)];
          float* crow = out->row(r);
          if (row_nonzero != nullptr && !(*row_nonzero)[r]) {
            for (int j = 0; j < n; ++j) crow[j] = 0.0f;
            continue;
          }
          kernel(a.row(r), b.data(), n, k, crow);
          dots += static_cast<uint64_t>(n);
        }
        flops->Add(2 * dots * static_cast<uint64_t>(k));
      });
  CheckRowsFinite(*out, rows, "DotRowsInto");
}

void DotColsInto(const Matrix& a, const Matrix& b,
                 const std::vector<int>& cols,
                 const std::vector<char>* row_nonzero, Matrix* out) {
  PEEGA_CHECK_EQ(a.cols(), b.cols());
  PEEGA_CHECK_EQ(out->rows(), a.rows());
  PEEGA_CHECK_EQ(out->cols(), b.rows());
  const obs::TraceSpan span("linalg.dot_cols");
  static obs::Counter* const calls =
      obs::GetCounter("linalg.incremental.calls");
  static obs::Counter* const flops =
      obs::GetCounter("linalg.incremental.flops");
  calls->Add(1);
  const int k = a.cols();
  flops->Add(2ull * static_cast<uint64_t>(a.rows()) *
             static_cast<uint64_t>(cols.size()) * static_cast<uint64_t>(k));
  // The AVX2 variant gathers through ABSOLUTE 32-bit offsets col·k, so
  // the largest addressable B row index bounds the guard here.
  const kernels::DotColsRowFn kernel =
      kernels::GatherOffsetsFit(b.rows() > 0 ? b.rows() - 1 : 0, k)
          ? kernels::DotColsRowTable().Select()
          : kernels::DotColsRowTable().generic;
  parallel::ParallelFor(0, a.rows(), kSpmmRowGrain, [&](int64_t r0,
                                                        int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      float* crow = out->row(i);
      if (row_nonzero != nullptr && !(*row_nonzero)[i]) {
        for (const int j : cols) crow[j] = 0.0f;
        continue;
      }
      kernel(a.row(i), b.data(), cols.data(),
             static_cast<int64_t>(cols.size()), k, crow);
    }
  });
  if constexpr (debug::NumericsGuardEnabled()) {
    for (int i = 0; i < out->rows(); ++i) {
      for (const int j : cols) {
        debug::CheckFiniteArray(out->row(i) + j, 1, 0, "DotColsInto",
                                __FILE__, __LINE__);
      }
    }
  }
}

}  // namespace repro::linalg
