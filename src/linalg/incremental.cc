#include "linalg/incremental.h"

#include "debug/check.h"
#include "debug/numerics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace repro::linalg {

namespace {

// Chunk grains over the row/column subsets. Outputs are disjoint per
// row (or per column set within a row), so the partition only affects
// load balance, never the result.
constexpr int64_t kSpmmRowGrain = 16;  // O(deg * cols) work per row
constexpr int64_t kDotRowGrain = 2;    // O(b.rows * cols) work per row

// Scans the freshly written rows for NaN/Inf in debug-numerics builds;
// checking only the touched rows keeps the guard proportional to the
// incremental work instead of the full matrix.
void CheckRowsFinite(const Matrix& m, const std::vector<int>& rows,
                     const char* what) {
  if constexpr (debug::NumericsGuardEnabled()) {
    for (int r : rows) {
      debug::CheckFiniteArray(m.row(r), m.cols(), m.cols(), what, __FILE__,
                              __LINE__);
    }
  }
}

}  // namespace

void NormalizedSpMMRows(const std::vector<std::vector<int>>& neighbors,
                        const std::vector<float>& scale,
                        const std::vector<int>& rows, const Matrix& b,
                        Matrix* out) {
  const int n = static_cast<int>(neighbors.size());
  PEEGA_CHECK_EQ(static_cast<int>(scale.size()), n);
  PEEGA_CHECK_EQ(b.rows(), n);
  PEEGA_CHECK_EQ(out->rows(), n);
  PEEGA_CHECK_EQ(out->cols(), b.cols());
  const obs::TraceSpan span("linalg.norm_spmm_rows");
  static obs::Counter* const calls =
      obs::GetCounter("linalg.incremental.calls");
  static obs::Counter* const flops =
      obs::GetCounter("linalg.incremental.flops");
  calls->Add(1);
  const int cols = b.cols();
  parallel::ParallelFor(
      0, static_cast<int64_t>(rows.size()), kSpmmRowGrain,
      [&](int64_t i0, int64_t i1) {
        uint64_t work = 0;
        for (int64_t i = i0; i < i1; ++i) {
          const int r = rows[static_cast<size_t>(i)];
          float* crow = out->row(r);
          for (int j = 0; j < cols; ++j) crow[j] = 0.0f;
          // Stored (ascending-column) order with the self-loop merged in
          // sorted position — the accumulation order of linalg::SpMM on
          // graph::GcnNormalize's CSR, and of the dense MatMul on the
          // tape's normalized adjacency (zero entries skipped there).
          const float sr = scale[r];
          const auto apply = [&](int k) {
            const float v = sr * scale[k];
            const float* brow = b.row(k);
            for (int j = 0; j < cols; ++j) crow[j] += v * brow[j];
          };
          bool self_done = false;
          for (const int k : neighbors[r]) {
            if (!self_done && r < k) {
              apply(r);
              self_done = true;
            }
            apply(k);
          }
          if (!self_done) apply(r);
          work += neighbors[r].size() + 1;
        }
        flops->Add(2 * work * static_cast<uint64_t>(cols));
      });
  CheckRowsFinite(*out, rows, "NormalizedSpMMRows");
}

void NormalizedSpMM(const std::vector<std::vector<int>>& neighbors,
                    const std::vector<float>& scale, const Matrix& b,
                    Matrix* out) {
  std::vector<int> all(neighbors.size());
  for (size_t r = 0; r < all.size(); ++r) all[r] = static_cast<int>(r);
  NormalizedSpMMRows(neighbors, scale, all, b, out);
}

void DotRowsInto(const Matrix& a, const Matrix& b,
                 const std::vector<int>& rows,
                 const std::vector<char>* row_nonzero, Matrix* out) {
  PEEGA_CHECK_EQ(a.cols(), b.cols());
  PEEGA_CHECK_EQ(out->rows(), a.rows());
  PEEGA_CHECK_EQ(out->cols(), b.rows());
  const obs::TraceSpan span("linalg.dot_rows");
  static obs::Counter* const calls =
      obs::GetCounter("linalg.incremental.calls");
  static obs::Counter* const flops =
      obs::GetCounter("linalg.incremental.flops");
  calls->Add(1);
  const int n = b.rows(), k = a.cols();
  parallel::ParallelFor(
      0, static_cast<int64_t>(rows.size()), kDotRowGrain,
      [&](int64_t i0, int64_t i1) {
        uint64_t dots = 0;
        for (int64_t i = i0; i < i1; ++i) {
          const int r = rows[static_cast<size_t>(i)];
          float* crow = out->row(r);
          if (row_nonzero != nullptr && !(*row_nonzero)[r]) {
            for (int j = 0; j < n; ++j) crow[j] = 0.0f;
            continue;
          }
          const float* arow = a.row(r);
          // Ascending-k float dots, the accumulation order of
          // linalg::MatMulTransB.
          for (int j = 0; j < n; ++j) {
            const float* brow = b.row(j);
            float dot = 0.0f;
            for (int kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
            crow[j] = dot;
          }
          dots += static_cast<uint64_t>(n);
        }
        flops->Add(2 * dots * static_cast<uint64_t>(k));
      });
  CheckRowsFinite(*out, rows, "DotRowsInto");
}

void DotColsInto(const Matrix& a, const Matrix& b,
                 const std::vector<int>& cols,
                 const std::vector<char>* row_nonzero, Matrix* out) {
  PEEGA_CHECK_EQ(a.cols(), b.cols());
  PEEGA_CHECK_EQ(out->rows(), a.rows());
  PEEGA_CHECK_EQ(out->cols(), b.rows());
  const obs::TraceSpan span("linalg.dot_cols");
  static obs::Counter* const calls =
      obs::GetCounter("linalg.incremental.calls");
  static obs::Counter* const flops =
      obs::GetCounter("linalg.incremental.flops");
  calls->Add(1);
  const int k = a.cols();
  flops->Add(2ull * static_cast<uint64_t>(a.rows()) *
             static_cast<uint64_t>(cols.size()) * static_cast<uint64_t>(k));
  parallel::ParallelFor(0, a.rows(), kSpmmRowGrain, [&](int64_t r0,
                                                        int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      float* crow = out->row(i);
      if (row_nonzero != nullptr && !(*row_nonzero)[i]) {
        for (const int j : cols) crow[j] = 0.0f;
        continue;
      }
      const float* arow = a.row(i);
      for (const int j : cols) {
        const float* brow = b.row(j);
        float dot = 0.0f;
        for (int kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
        crow[j] = dot;
      }
    }
  });
  if constexpr (debug::NumericsGuardEnabled()) {
    for (int i = 0; i < out->rows(); ++i) {
      for (const int j : cols) {
        debug::CheckFiniteArray(out->row(i) + j, 1, 0, "DotColsInto",
                                __FILE__, __LINE__);
      }
    }
  }
}

}  // namespace repro::linalg
