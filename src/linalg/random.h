#ifndef PEEGA_LINALG_RANDOM_H_
#define PEEGA_LINALG_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace repro::linalg {

/// Seeded random number generator used throughout the library.
///
/// All stochastic components (dataset generators, weight initialization,
/// dropout, attack tie-breaking) draw from an explicitly passed `Rng` so
/// every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal sample scaled by `stddev`.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Samples `k` distinct values from {0, ..., n-1} (k <= n).
  std::vector<int> Sample(int n, int k);

  /// Derives an independent child generator; useful for giving each
  /// repetition of an experiment its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_RANDOM_H_
