#ifndef PEEGA_LINALG_MATRIX_H_
#define PEEGA_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "debug/check.h"

namespace repro::linalg {

/// Row-major dense matrix of floats.
///
/// `Matrix` is the workhorse value type of the library: node feature
/// matrices, GNN layer weights, relaxed adjacency matrices during attacks,
/// and gradients are all `Matrix`. It is a plain copyable value type; all
/// numerical kernels live in `linalg/ops.h`.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a `rows` x `cols` matrix filled with `fill`.
  Matrix(int rows, int cols, float fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    PEEGA_CHECK_GE(rows, 0);
    PEEGA_CHECK_GE(cols, 0);
  }

  /// Creates a matrix taking ownership of an existing flat buffer.
  Matrix(int rows, int cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    PEEGA_CHECK_EQ(static_cast<size_t>(rows) * cols, data_.size());
  }

  /// Identity matrix of size n.
  static Matrix Identity(int n);

  /// Matrix with every entry equal to `value`.
  static Matrix Constant(int rows, int cols, float value);

  /// Builds from a nested initializer-style vector (row per inner vector).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return data_.empty(); }

  float& operator()(int r, int c) {
    PEEGA_CHECK_GE(r, 0);
    PEEGA_CHECK_LT(r, rows_);
    PEEGA_CHECK_GE(c, 0);
    PEEGA_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float operator()(int r, int c) const {
    PEEGA_CHECK_GE(r, 0);
    PEEGA_CHECK_LT(r, rows_);
    PEEGA_CHECK_GE(c, 0);
    PEEGA_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Flat access for hot loops: unchecked in Release, bounds-checked in
  /// Debug builds via PEEGA_DCHECK (compiled out under NDEBUG).
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) {
    PEEGA_DCHECK_GE(r, 0);
    PEEGA_DCHECK_LT(r, rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const float* row(int r) const {
    PEEGA_DCHECK_GE(r, 0);
    PEEGA_DCHECK_LT(r, rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Human-readable "rows x cols" string for error messages.
  std::string ShapeString() const;

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_MATRIX_H_
