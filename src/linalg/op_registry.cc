#include "linalg/op_registry.h"

#include <cmath>
#include <set>
#include <tuple>

#include "linalg/incremental.h"
#include "linalg/kernels/kernels.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"
#include "linalg/random.h"
#include "linalg/sparse.h"

namespace repro::linalg {

const char* DeterminismClassName(DeterminismClass c) {
  switch (c) {
    case DeterminismClass::kLanePerOutput:
      return "lane-per-output";
    case DeterminismClass::kReferenceOnly:
      return "reference-only";
  }
  return "unknown";
}

namespace {

// Probe input sizes straddle the AVX2 (8-float) and NEON (4-float)
// vector widths so every probe exercises full vector bodies AND the
// scalar tails: below one lane group, exactly one, one-plus-a-tail,
// and several groups plus a tail.
constexpr int kProbeDims[] = {1, 3, 7, 8, 9, 17, 33};

// Deterministic dense test matrix; ~20% exact zeros exercise the
// zero-skip branches of the saxpy kernels.
Matrix ProbeMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    float* row = m.row(i);
    for (int j = 0; j < cols; ++j) {
      row[j] = rng->Bernoulli(0.2)
                   ? 0.0f
                   : static_cast<float>(rng->Uniform(-1.0, 1.0));
    }
  }
  return m;
}

void Append(const Matrix& m, std::vector<float>* out) {
  out->insert(out->end(), m.data(), m.data() + m.size());
}

// Sorted random neighbor lists plus the matching GCN scales
// s_i = 1/sqrt(deg_i + 1); the adjacency is symmetric and loop-free,
// matching what graph::GcnNormalize feeds NormalizedSpMMRows.
std::pair<std::vector<std::vector<int>>, std::vector<float>> ProbeGraph(
    int n, Rng* rng) {
  std::vector<std::set<int>> adj(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(0.3)) {
        adj[i].insert(j);
        adj[j].insert(i);
      }
    }
  }
  std::vector<std::vector<int>> neighbors(n);
  std::vector<float> scale(n);
  for (int i = 0; i < n; ++i) {
    neighbors[i].assign(adj[i].begin(), adj[i].end());
    scale[i] = 1.0f / std::sqrt(static_cast<float>(neighbors[i].size()) + 1.0f);
  }
  return {std::move(neighbors), std::move(scale)};
}

void ProbeMatMul(std::vector<float>* out) {
  Rng rng(101);
  for (const int n : kProbeDims) {
    Append(MatMul(ProbeMatrix(5, 9, &rng), ProbeMatrix(9, n, &rng)), out);
  }
  Append(MatMul(ProbeMatrix(9, 65, &rng), ProbeMatrix(65, 12, &rng)), out);
}

void ProbeMatMulTransA(std::vector<float>* out) {
  Rng rng(102);
  for (const int n : kProbeDims) {
    Append(MatMulTransA(ProbeMatrix(9, 5, &rng), ProbeMatrix(9, n, &rng)),
           out);
  }
  Append(MatMulTransA(ProbeMatrix(65, 9, &rng), ProbeMatrix(65, 12, &rng)),
         out);
}

void ProbeMatMulTransB(std::vector<float>* out) {
  Rng rng(103);
  for (const int n : kProbeDims) {
    // n B-rows → n dot products per A-row; the gather path needs >= 8.
    Append(MatMulTransB(ProbeMatrix(5, 9, &rng), ProbeMatrix(n, 9, &rng)),
           out);
  }
  Append(MatMulTransB(ProbeMatrix(4, 65, &rng), ProbeMatrix(19, 65, &rng)),
         out);
}

void ProbeSpMM(std::vector<float>* out) {
  Rng rng(104);
  std::vector<std::tuple<int, int, float>> triplets;
  const int rows = 13, cols = 11;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.Bernoulli(0.35)) {
        triplets.emplace_back(i, j,
                              static_cast<float>(rng.Uniform(-1.0, 1.0)));
      }
    }
  }
  const SparseMatrix s = SparseMatrix::FromTriplets(rows, cols, triplets);
  for (const int n : kProbeDims) {
    Append(SpMM(s, ProbeMatrix(cols, n, &rng)), out);
  }
}

void ProbeSpMV(std::vector<float>* out) {
  Rng rng(105);
  std::vector<std::tuple<int, int, float>> triplets;
  const int rows = 17, cols = 17;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.Bernoulli(0.3)) {
        triplets.emplace_back(i, j,
                              static_cast<float>(rng.Uniform(-1.0, 1.0)));
      }
    }
  }
  const SparseMatrix s = SparseMatrix::FromTriplets(rows, cols, triplets);
  std::vector<float> x(cols);
  for (float& v : x) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  const std::vector<float> y = SpMV(s, x);
  out->insert(out->end(), y.begin(), y.end());
}

void ProbeRowSoftmax(std::vector<float>* out) {
  Rng rng(106);
  for (const int n : kProbeDims) {
    Matrix a = ProbeMatrix(6, n, &rng);
    // Plant an exact duplicate of each row max so the vector max scan
    // sees ties (the generic and SIMD scans must resolve identically —
    // max is exact selection, so they do).
    for (int i = 0; i < a.rows() && n > 1; ++i) {
      float* row = a.row(i);
      int best = 0;
      for (int j = 1; j < n; ++j) {
        if (row[j] > row[best]) best = j;
      }
      row[(best + 1) % n] = row[best];
    }
    Append(RowSoftmax(a), out);
  }
}

void ProbeNormalizedSpMMRows(std::vector<float>* out) {
  Rng rng(107);
  const int n = 14;
  auto [neighbors, scale] = ProbeGraph(n, &rng);
  for (const int cols : kProbeDims) {
    const Matrix b = ProbeMatrix(n, cols, &rng);
    Matrix full(n, cols);
    NormalizedSpMM(neighbors, scale, b, &full);
    Append(full, out);
    // Partial refresh of a row subset on top of the full product —
    // the engine's actual usage pattern.
    Matrix partial = full;
    NormalizedSpMMRows(neighbors, scale, {0, 3, 7, n - 1}, b, &partial);
    Append(partial, out);
  }
}

void ProbeDotRows(std::vector<float>* out) {
  Rng rng(108);
  for (const int n : kProbeDims) {
    const Matrix a = ProbeMatrix(7, 9, &rng);
    const Matrix b = ProbeMatrix(n, 9, &rng);
    Matrix c(a.rows(), b.rows());
    std::vector<char> nonzero(a.rows(), 1);
    nonzero[2] = 0;
    DotRowsInto(a, b, {0, 2, 4, 6}, &nonzero, &c);
    Append(c, out);
  }
}

void ProbeDotCols(std::vector<float>* out) {
  Rng rng(109);
  const Matrix a = ProbeMatrix(9, 9, &rng);
  const Matrix b = ProbeMatrix(21, 9, &rng);
  std::vector<char> nonzero(a.rows(), 1);
  nonzero[4] = 0;
  // Unsorted column subsets of varying size exercise the gathered
  // (8 at a time) and scalar-tail paths.
  const std::vector<std::vector<int>> col_sets = {
      {5}, {2, 19, 7}, {0, 1, 2, 3, 4, 5, 6, 7, 20, 11, 9}};
  for (const auto& cols : col_sets) {
    Matrix c(a.rows(), b.rows());
    DotColsInto(a, b, cols, &nonzero, &c);
    Append(c, out);
  }
}

std::vector<OpInfo> BuildRegistry() {
  std::vector<OpInfo> ops;
  ops.push_back({"linalg.matmul", "linalg::MatMul",
                 "Dense C = A · B with k-blocked saxpy inner loops.",
                 "O(m · k · n)",
                 "row-parallel; each chunk owns rows [r0, r1) of C",
                 DeterminismClass::kLanePerOutput, true, true, true,
                 &ProbeMatMul});
  ops.push_back({"linalg.matmul_ta", "linalg::MatMulTransA",
                 "Dense C = Aᵀ · B, streaming rows of A and B together.",
                 "O(k · m · n)",
                 "column-parallel; each chunk owns columns [j0, j1) of C",
                 DeterminismClass::kLanePerOutput, true, true, true,
                 &ProbeMatMulTransA});
  ops.push_back({"linalg.matmul_tb", "linalg::MatMulTransB",
                 "Dense C = A · Bᵀ as ascending-k float dot products.",
                 "O(m · k · n)",
                 "row-parallel; each chunk owns rows [r0, r1) of C",
                 DeterminismClass::kLanePerOutput, true, true, false,
                 &ProbeMatMulTransB});
  ops.push_back({"linalg.spmm", "linalg::SpMM",
                 "CSR sparse × dense product, nonzeros in stored order.",
                 "O(nnz · n)",
                 "row-parallel over CSR rows; disjoint output rows",
                 DeterminismClass::kLanePerOutput, true, true, true,
                 &ProbeSpMM});
  ops.push_back({"linalg.spmv", "linalg::SpMV",
                 "CSR sparse × dense vector product.", "O(nnz)",
                 "row-parallel over CSR rows; disjoint output elements",
                 DeterminismClass::kReferenceOnly, true, false, false,
                 &ProbeSpMV});
  ops.push_back({"linalg.row_softmax", "linalg::RowSoftmax",
                 "Numerically stabilized per-row softmax.", "O(m · n)",
                 "row-parallel; each chunk owns rows [r0, r1) of C",
                 DeterminismClass::kLanePerOutput, true, true, false,
                 &ProbeRowSoftmax});
  ops.push_back({"linalg.normalized_spmm_rows",
                 "linalg::NormalizedSpMMRows / linalg::NormalizedSpMM",
                 "Row subset of A_n · B for the GCN-normalized adjacency "
                 "implied by neighbor lists and per-node scales.",
                 "O(Σ_r (deg_r + 1) · n)",
                 "parallel over the requested row subset; disjoint rows",
                 DeterminismClass::kLanePerOutput, true, true, true,
                 &ProbeNormalizedSpMMRows});
  ops.push_back({"linalg.dot_rows", "linalg::DotRowsInto",
                 "Row subset of A · Bᵀ as ascending-k dot products.",
                 "O(|rows| · n · k)",
                 "parallel over the requested row subset; disjoint rows",
                 DeterminismClass::kLanePerOutput, true, true, false,
                 &ProbeDotRows});
  ops.push_back({"linalg.dot_cols", "linalg::DotColsInto",
                 "Column subset of A · Bᵀ as ascending-k dot products.",
                 "O(m · |cols| · k)",
                 "row-parallel; disjoint column sets within each row",
                 DeterminismClass::kLanePerOutput, true, true, false,
                 &ProbeDotCols});
  return ops;
}

}  // namespace

const std::vector<OpInfo>& OpRegistry() {
  static const std::vector<OpInfo>* const registry =
      new std::vector<OpInfo>(BuildRegistry());
  return *registry;
}

const OpInfo* FindOp(std::string_view name) {
  for (const OpInfo& op : OpRegistry()) {
    if (name == op.name) return &op;
  }
  return nullptr;
}

std::string ValidateOpRegistry() {
  const std::vector<OpInfo>& reg = OpRegistry();
  const std::vector<kernels::KernelTableInfo> tables =
      kernels::AllKernelTables();
  if (reg.size() != tables.size()) {
    return "registry has " + std::to_string(reg.size()) +
           " ops but dispatch exposes " + std::to_string(tables.size()) +
           " kernel tables";
  }
  std::set<std::string> seen;
  for (const OpInfo& op : reg) {
    if (!seen.insert(op.name).second) {
      return std::string("duplicate op name: ") + op.name;
    }
    if (!op.generic) {
      return std::string(op.name) + ": every op needs a generic reference";
    }
    if (!op.probe) {
      return std::string(op.name) + ": missing differential-test probe";
    }
    const kernels::KernelTableInfo* table = nullptr;
    for (const kernels::KernelTableInfo& t : tables) {
      if (op.name == t.op) {
        table = &t;
        break;
      }
    }
    if (table == nullptr) {
      return std::string(op.name) + ": no dispatch table with this name";
    }
    if (!table->has_generic) {
      return std::string(op.name) + ": dispatch table lacks a generic slot";
    }
    // A compiled-in variant must be declared; and when this build
    // enables a variant's compile gate, the declaration must match the
    // wiring exactly (the registry lists SOURCE-level availability, so
    // on builds without the gate the table slot is legitimately null).
    if (table->has_avx2 && !op.avx2) {
      return std::string(op.name) + ": avx2 kernel wired but not declared";
    }
    if (table->has_neon && !op.neon) {
      return std::string(op.name) + ": neon kernel wired but not declared";
    }
#if defined(PEEGA_HAVE_AVX2)
    if (op.avx2 != table->has_avx2) {
      return std::string(op.name) + ": avx2 declaration disagrees with table";
    }
#endif
#if defined(PEEGA_HAVE_NEON)
    if (op.neon != table->has_neon) {
      return std::string(op.name) + ": neon declaration disagrees with table";
    }
#endif
  }
  return "";
}

}  // namespace repro::linalg
