#ifndef PEEGA_LINALG_SPARSE_H_
#define PEEGA_LINALG_SPARSE_H_

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace repro::linalg {

/// Compressed-sparse-row matrix of floats.
///
/// Used for graph adjacency matrices and the normalized propagation
/// matrices of GNN layers. Construction goes through coordinate triplets
/// (`FromTriplets`) or a dense matrix; once built the structure is
/// immutable (graph edits build a new `SparseMatrix`, which mirrors how
/// the attackers produce a new poisoned graph per step).
///
/// Thread-safety: a built `SparseMatrix` is effectively immutable, so
/// concurrent reads (the row-parallel SpMM/SpMV kernels in
/// `linalg/ops.h` rely on this) are safe. `mutable_values()` is the one
/// escape hatch and must not be used while kernels are running.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  /// Builds from (row, col, value) triplets. Duplicate coordinates are
  /// summed. Triplets need not be sorted. Serial; O(nnz log nnz).
  static SparseMatrix FromTriplets(
      int rows, int cols,
      const std::vector<std::tuple<int, int, float>>& triplets);

  /// Converts a dense matrix, keeping entries with |v| > `tol`.
  /// Serial; O(rows · cols).
  static SparseMatrix FromDense(const Matrix& dense, float tol = 0.0f);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// CSR arrays. `row_ptr()` has rows()+1 entries.
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Number of stored entries in row `r`.
  int RowNnz(int r) const {
    return static_cast<int>(row_ptr_[r + 1] - row_ptr_[r]);
  }

  /// Returns the stored value at (r, c), or 0 if absent. O(log nnz(r)).
  float At(int r, int c) const;

  /// Densifies; intended for small matrices and tests. Row-parallel
  /// (disjoint output rows); O(rows · cols + nnz);
  /// bitwise-deterministic at any thread count.
  Matrix ToDense() const;

  /// Transposed copy. Serial; O(nnz log nnz) via `FromTriplets`.
  SparseMatrix Transposed() const;

 private:
  int rows_;
  int cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int> col_idx_;  // sorted within each row
  std::vector<float> values_;
};

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_SPARSE_H_
