#ifndef PEEGA_LINALG_INCREMENTAL_H_
#define PEEGA_LINALG_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace repro::linalg {

/// \file
/// Sparse row/column update kernels for the incremental PEEGA objective
/// engine (core/peega_engine.h).
///
/// The engine maintains the poisoned adjacency as sorted neighbor lists
/// plus per-node GCN scales s_i = 1/sqrt(deg_i + 1), and refreshes only
/// the rows a flip touched. Each kernel below reproduces the float
/// accumulation order of the corresponding full kernel in `linalg/ops.h`
/// exactly — `NormalizedSpMMRows` matches `SpMM` on the normalized
/// adjacency (ascending stored-column order with the self-loop merged
/// in sorted position, entry value s_r * s_k) and the dot kernels match
/// `MatMulTransB` (ascending-k float dot products) — so a row updated
/// incrementally is bitwise identical to the same row of a from-scratch
/// recompute, and hence to the dense autograd tape path. That bitwise
/// agreement is what makes the tape engine a differential-testing oracle
/// for the incremental engine (see DESIGN.md, "Incremental objective
/// engine").
///
/// Threading: all kernels chunk over the given row subset with disjoint
/// output rows, so results are bitwise-deterministic at any thread count.

/// For each r in `rows`: out[r] = sum over k in sorted({r} ∪ neighbors[r])
/// of (scale[r] * scale[k]) * b[k] — row r of A_n * B for the GCN-
/// normalized adjacency A_n = D^{-1/2}(A + I)D^{-1/2} implied by
/// `neighbors`/`scale`. Rows of `out` not listed in `rows` are untouched.
/// O(sum_r (deg_r + 1) * b.cols()).
void NormalizedSpMMRows(const std::vector<std::vector<int>>& neighbors,
                        const std::vector<float>& scale,
                        const std::vector<int>& rows, const Matrix& b,
                        Matrix* out);

/// NormalizedSpMMRows over every row: out = A_n * B. O(nnz * b.cols()).
void NormalizedSpMM(const std::vector<std::vector<int>>& neighbors,
                    const std::vector<float>& scale, const Matrix& b,
                    Matrix* out);

/// For each r in `rows`: out[r][j] = dot(a[r], b[j]) for all j — row r of
/// A * B^T, the pairwise-product rows the engine's cached gradient terms
/// T_m = G_M H_m^T are refreshed with. Rows whose `row_nonzero` flag is 0
/// are known all-zero in `a` and are cleared without computing dots.
/// O(|rows| * b.rows() * a.cols()).
void DotRowsInto(const Matrix& a, const Matrix& b,
                 const std::vector<int>& rows,
                 const std::vector<char>* row_nonzero, Matrix* out);

/// Column-update companion of `DotRowsInto`: for every row i of `a` and
/// each j in `cols`, out[i][j] = dot(a[i], b[j]) (0 when row_nonzero says
/// a[i] is all-zero). Used when rows of B changed (a feature flip moved
/// rows of H_m) so whole columns of A * B^T must be refreshed.
/// O(a.rows() * |cols| * a.cols()).
void DotColsInto(const Matrix& a, const Matrix& b,
                 const std::vector<int>& cols,
                 const std::vector<char>* row_nonzero, Matrix* out);

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_INCREMENTAL_H_
