#include "linalg/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "debug/check.h"
#include "debug/failpoints.h"
#include "debug/numerics.h"
#include "linalg/kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace repro::linalg {

namespace {

// Static-chunk grains for the parallel kernels. For row-parallel ops the
// grain only affects load balance (outputs are disjoint per row, so any
// partition is bitwise-deterministic); for the ordered-chunk reductions
// at the bottom of this file the grain also FIXES the floating-point
// association, so changing kReduceGrain changes low-order bits of Sum /
// FrobeniusNorm on large inputs (never their determinism).
constexpr int64_t kMatMulRowGrain = 8;    // rows per chunk, O(k*n) work/row
constexpr int64_t kRowGrain = 64;         // rows per chunk, O(n) work/row
constexpr int64_t kElemGrain = 1 << 14;   // flat elements per chunk
constexpr int64_t kReduceGrain = 1 << 15; // flat elements per reduce chunk

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  PEEGA_CHECK_EQ(a.cols(), b.rows());
  const obs::TraceSpan span("linalg.matmul");
  static obs::Counter* const calls = obs::GetCounter("linalg.matmul.calls");
  static obs::Counter* const flops = obs::GetCounter("linalg.matmul.flops");
  calls->Add(1);
  flops->Add(2ull * static_cast<uint64_t>(a.rows()) *
             static_cast<uint64_t>(a.cols()) *
             static_cast<uint64_t>(b.cols()));
  Matrix c(a.rows(), b.cols());
  const int k = a.cols(), n = b.cols();
  // Row-parallel: each chunk owns rows [r0, r1) of C outright, and the
  // per-row accumulation order (k-blocks ascending, kk ascending within
  // a block) matches the serial kernel exactly in every SIMD variant.
  const kernels::MatMulRowsFn kernel = kernels::MatMulTable().Select();
  parallel::ParallelFor(0, a.rows(), kMatMulRowGrain, [&](int64_t r0,
                                                          int64_t r1) {
    kernel(a.data(), b.data(), c.data(), r0, r1, k, n);
  });
  PEEGA_CHECK_FINITE_MAT(c, "MatMul");
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  PEEGA_CHECK_EQ(a.rows(), b.rows());
  const obs::TraceSpan span("linalg.matmul_ta");
  static obs::Counter* const flops = obs::GetCounter("linalg.matmul.flops");
  flops->Add(2ull * static_cast<uint64_t>(a.rows()) *
             static_cast<uint64_t>(a.cols()) *
             static_cast<uint64_t>(b.cols()));
  Matrix c(a.cols(), b.cols());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  // Column-parallel: each chunk owns the column slice [j0, j1) of every
  // row of C, keeping the cache-friendly kk-outer streaming order and
  // the serial per-element accumulation order (kk ascending).
  const kernels::MatMulTransAColsFn kernel =
      kernels::MatMulTransATable().Select();
  parallel::ParallelFor(0, b.cols(), kMatMulRowGrain * 4, [&](int64_t j0,
                                                              int64_t j1) {
    kernel(a.data(), b.data(), c.data(), j0, j1, k, m, n);
  });
  PEEGA_CHECK_FINITE_MAT(c, "MatMulTransA");
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  PEEGA_CHECK_EQ(a.cols(), b.cols());
  const obs::TraceSpan span("linalg.matmul_tb");
  static obs::Counter* const flops = obs::GetCounter("linalg.matmul.flops");
  flops->Add(2ull * static_cast<uint64_t>(a.rows()) *
             static_cast<uint64_t>(a.cols()) *
             static_cast<uint64_t>(b.rows()));
  Matrix c(a.rows(), b.rows());
  const int n = b.rows(), k = a.cols();
  // The AVX2 variant gathers 8 B-rows per step through 32-bit offsets
  // of at most 8·k elements; fall back to generic when that could
  // overflow (same results either way — the variants are bitwise-equal).
  const kernels::MatMulTransBRowsFn kernel =
      kernels::GatherOffsetsFit(7, k) ? kernels::MatMulTransBTable().Select()
                                      : kernels::MatMulTransBTable().generic;
  parallel::ParallelFor(0, a.rows(), kMatMulRowGrain, [&](int64_t r0,
                                                          int64_t r1) {
    kernel(a.data(), b.data(), c.data(), r0, r1, k, n);
  });
  PEEGA_CHECK_FINITE_MAT(c, "MatMulTransB");
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  // Chunks own rows of T (= columns of A) outright.
  parallel::ParallelFor(0, a.cols(), kRowGrain, [&](int64_t j0, int64_t j1) {
    for (int j = static_cast<int>(j0); j < static_cast<int>(j1); ++j) {
      float* trow = t.row(j);
      for (int i = 0; i < a.rows(); ++i) trow[i] = a(i, j);
    }
  });
  return t;
}

namespace {

template <typename F>
Matrix Elementwise(const Matrix& a, const Matrix& b, F f) {
  PEEGA_CHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  parallel::ParallelFor(0, a.size(), kElemGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] = f(pa[i], pb[i]);
  });
  return c;
}

template <typename F>
Matrix Map(const Matrix& a, F f) {
  Matrix c(a.rows(), a.cols());
  const float* pa = a.data();
  float* pc = c.data();
  parallel::ParallelFor(0, a.size(), kElemGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] = f(pa[i]);
  });
  return c;
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  return Elementwise(a, b, [](float x, float y) { return x + y; });
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  return Elementwise(a, b, [](float x, float y) { return x - y; });
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  return Elementwise(a, b, [](float x, float y) { return x * y; });
}

Matrix Affine(const Matrix& a, float scale, float offset) {
  return Map(a, [scale, offset](float x) { return x * scale + offset; });
}

void Axpy(Matrix* a, const Matrix& b, float scale) {
  PEEGA_CHECK(a->SameShape(b));
  float* pa = a->data();
  const float* pb = b.data();
  parallel::ParallelFor(0, a->size(), kElemGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] += scale * pb[i];
  });
}

Matrix AddRowVector(const Matrix& a, const std::vector<float>& v) {
  PEEGA_CHECK_EQ(static_cast<int>(v.size()), a.cols());
  Matrix c(a.rows(), a.cols());
  parallel::ParallelFor(0, a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      for (int j = 0; j < a.cols(); ++j) crow[j] = arow[j] + v[j];
    }
  });
  return c;
}

Matrix ScaleRows(const Matrix& a, const std::vector<float>& s) {
  PEEGA_CHECK_EQ(static_cast<int>(s.size()), a.rows());
  Matrix c(a.rows(), a.cols());
  parallel::ParallelFor(0, a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      const float sv = s[i];
      for (int j = 0; j < a.cols(); ++j) crow[j] = arow[j] * sv;
    }
  });
  return c;
}

Matrix ScaleCols(const Matrix& a, const std::vector<float>& s) {
  PEEGA_CHECK_EQ(static_cast<int>(s.size()), a.cols());
  Matrix c(a.rows(), a.cols());
  parallel::ParallelFor(0, a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      for (int j = 0; j < a.cols(); ++j) crow[j] = arow[j] * s[j];
    }
  });
  return c;
}

std::vector<float> RowSums(const Matrix& a) {
  std::vector<float> sums(a.rows(), 0.0f);
  parallel::ParallelFor(0, a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const float* arow = a.row(i);
      float acc = 0.0f;
      for (int j = 0; j < a.cols(); ++j) acc += arow[j];
      sums[i] = acc;
    }
  });
  return sums;
}

double Sum(const Matrix& a) {
  const float* p = a.data();
  return parallel::ParallelReduce<double>(
      0, a.size(), kReduceGrain, 0.0,
      [&](int64_t lo, int64_t hi) {
        double acc = 0.0;
        for (int64_t i = lo; i < hi; ++i) acc += p[i];
        return acc;
      },
      [](double x, double y) { return x + y; });
}

double FrobeniusNorm(const Matrix& a) {
  const float* p = a.data();
  const double sq = parallel::ParallelReduce<double>(
      0, a.size(), kReduceGrain, 0.0,
      [&](int64_t lo, int64_t hi) {
        double acc = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          acc += static_cast<double>(p[i]) * p[i];
        }
        return acc;
      },
      [](double x, double y) { return x + y; });
  return std::sqrt(sq);
}

int64_t CountNonZero(const Matrix& a, float tol) {
  const float* p = a.data();
  return parallel::ParallelReduce<int64_t>(
      0, a.size(), kReduceGrain, int64_t{0},
      [&](int64_t lo, int64_t hi) {
        int64_t count = 0;
        for (int64_t i = lo; i < hi; ++i) {
          if (std::fabs(p[i]) > tol) ++count;
        }
        return count;
      },
      [](int64_t x, int64_t y) { return x + y; });
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  PEEGA_CHECK(a.SameShape(b));
  const float* pa = a.data();
  const float* pb = b.data();
  return parallel::ParallelReduce<float>(
      0, a.size(), kReduceGrain, 0.0f,
      [&](int64_t lo, int64_t hi) {
        float max_diff = 0.0f;
        for (int64_t i = lo; i < hi; ++i) {
          max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
        }
        return max_diff;
      },
      [](float x, float y) { return std::max(x, y); });
}

Matrix Relu(const Matrix& a) {
  return Map(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Matrix LeakyRelu(const Matrix& a, float slope) {
  return Map(a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}

Matrix Sigmoid(const Matrix& a) {
  return Map(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix c(a.rows(), a.cols());
  const int n = a.cols();
  const kernels::RowSoftmaxRowsFn kernel = kernels::RowSoftmaxTable().Select();
  parallel::ParallelFor(0, a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    kernel(a.data(), c.data(), r0, r1, n);
  });
  PEEGA_CHECK_FINITE_MAT(c, "RowSoftmax");
  return c;
}

std::vector<int> RowArgmax(const Matrix& a) {
  std::vector<int> result(a.rows(), 0);
  parallel::ParallelFor(0, a.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const float* arow = a.row(i);
      int best = 0;
      for (int j = 1; j < a.cols(); ++j) {
        if (arow[j] > arow[best]) best = j;
      }
      result[i] = best;
    }
  });
  return result;
}

Matrix RandomNormal(int rows, int cols, float stddev, Rng* rng) {
  // Serial by contract: the RNG stream is sequential state.
  Matrix m(rows, cols);
  float* p = m.data();
  const int64_t n = m.size();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return m;
}

Matrix RandomUniform(int rows, int cols, float lo, float hi, Rng* rng) {
  // Serial by contract: the RNG stream is sequential state.
  Matrix m(rows, cols);
  float* p = m.data();
  const int64_t n = m.size();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

Matrix SpMM(const SparseMatrix& s, const Matrix& b) {
  PEEGA_CHECK_EQ(s.cols(), b.rows());
  const obs::TraceSpan span("linalg.spmm");
  static obs::Counter* const calls = obs::GetCounter("linalg.spmm.calls");
  static obs::Counter* const flops = obs::GetCounter("linalg.spmm.flops");
  calls->Add(1);
  flops->Add(2ull * static_cast<uint64_t>(s.nnz()) *
             static_cast<uint64_t>(b.cols()));
  Matrix c(s.rows(), b.cols());
  const auto& row_ptr = s.row_ptr();
  const auto& col_idx = s.col_idx();
  const auto& values = s.values();
  const int n = b.cols();
  // Row-parallel over CSR rows: chunk [r0, r1) owns rows [r0, r1) of C,
  // and each row's nonzeros are accumulated in stored (ascending column)
  // order exactly as in the serial kernel.
  const kernels::SpMMRowsFn kernel = kernels::SpMMTable().Select();
  parallel::ParallelFor(0, s.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
    kernel(row_ptr.data(), col_idx.data(), values.data(), b.data(), c.data(),
           r0, r1, n);
  });
  PEEGA_CHECK_FINITE_MAT(c, "SpMM");
  // Failpoint after the (debug-numerics-only) finite check: an armed
  // "linalg.spmm" simulates a silent kernel fault, which callers must
  // catch via their own non-finite sentinels and degrade gracefully.
  // The whole output is poisoned with +Inf rather than NaN: ReLU clamps
  // NaN to zero (NaN > 0 is false), which would silently mask the fault,
  // while Inf survives activations and collapses to NaN in any softmax
  // or norm downstream.
  if (PEEGA_FAILPOINT("linalg.spmm")) {
    c.Fill(std::numeric_limits<float>::infinity());
  }
  return c;
}

std::vector<float> SpMV(const SparseMatrix& s, const std::vector<float>& x) {
  PEEGA_CHECK_EQ(s.cols(), static_cast<int>(x.size()));
  const obs::TraceSpan span("linalg.spmv");
  static obs::Counter* const flops = obs::GetCounter("linalg.spmm.flops");
  flops->Add(2ull * static_cast<uint64_t>(s.nnz()));
  std::vector<float> y(s.rows(), 0.0f);
  const auto& row_ptr = s.row_ptr();
  const auto& col_idx = s.col_idx();
  const auto& values = s.values();
  // Reference-only op: SpMV has no SIMD variants (see the table comment
  // in kernels.cc), so Select() always resolves to the scalar kernel.
  const kernels::SpMVRowsFn kernel = kernels::SpMVTable().Select();
  parallel::ParallelFor(0, s.rows(), kRowGrain * 4, [&](int64_t r0,
                                                        int64_t r1) {
    kernel(row_ptr.data(), col_idx.data(), values.data(), x.data(), y.data(),
           r0, r1);
  });
  PEEGA_CHECK_FINITE_VEC(y, "SpMV");
  return y;
}

float CosineSimilarity(const Matrix& x, int i, int j) {
  const float* a = x.row(i);
  const float* b = x.row(j);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int k = 0; k < x.cols(); ++k) {
    dot += static_cast<double>(a[k]) * b[k];
    na += static_cast<double>(a[k]) * a[k];
    nb += static_cast<double>(b[k]) * b[k];
  }
  if (na == 0.0 || nb == 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

float JaccardSimilarity(const Matrix& x, int i, int j) {
  const float* a = x.row(i);
  const float* b = x.row(j);
  int inter = 0, uni = 0;
  for (int k = 0; k < x.cols(); ++k) {
    const bool av = a[k] > 0.5f;
    const bool bv = b[k] > 0.5f;
    inter += (av && bv) ? 1 : 0;
    uni += (av || bv) ? 1 : 0;
  }
  if (uni == 0) return 0.0f;
  return static_cast<float>(inter) / static_cast<float>(uni);
}

std::vector<float> RSqrt(const std::vector<float>& x) {
  std::vector<float> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] > 0.0f ? 1.0f / std::sqrt(x[i]) : 0.0f;
  }
  return y;
}

}  // namespace repro::linalg
