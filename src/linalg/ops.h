#ifndef PEEGA_LINALG_OPS_H_
#define PEEGA_LINALG_OPS_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/random.h"
#include "linalg/sparse.h"

namespace repro::linalg {

// ---------------------------------------------------------------------------
// Dense kernels
// ---------------------------------------------------------------------------

/// C = A * B. Cache-blocked i-k-j loop order.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing A^T.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing B^T.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Returns A^T.
Matrix Transpose(const Matrix& a);

/// Elementwise a + b, a - b, a ⊙ b (same shape).
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Mul(const Matrix& a, const Matrix& b);

/// a * scalar + offset, elementwise.
Matrix Affine(const Matrix& a, float scale, float offset = 0.0f);

/// In-place a += b * scale.
void Axpy(Matrix* a, const Matrix& b, float scale);

/// Adds vector `v` (length = a.cols()) to every row of a.
Matrix AddRowVector(const Matrix& a, const std::vector<float>& v);

/// Scales row r of a by s[r] (s.size() == a.rows()).
Matrix ScaleRows(const Matrix& a, const std::vector<float>& s);

/// Scales column c of a by s[c] (s.size() == a.cols()).
Matrix ScaleCols(const Matrix& a, const std::vector<float>& s);

/// Per-row sums / means; length = rows().
std::vector<float> RowSums(const Matrix& a);

/// Sum of all entries.
double Sum(const Matrix& a);

/// Frobenius norm and squared Frobenius norm.
double FrobeniusNorm(const Matrix& a);

/// Number of entries with |v| > tol ("L0 norm" used for attack budgets).
int64_t CountNonZero(const Matrix& a, float tol = 0.5f);

/// Max absolute entrywise difference, for test comparisons.
float MaxAbsDiff(const Matrix& a, const Matrix& b);

/// ReLU, LeakyReLU, sigmoid, elementwise.
Matrix Relu(const Matrix& a);
Matrix LeakyRelu(const Matrix& a, float slope);
Matrix Sigmoid(const Matrix& a);

/// Row-wise softmax. Numerically stabilized by the row max.
Matrix RowSoftmax(const Matrix& a);

/// Row-wise argmax; ties resolve to the lowest index.
std::vector<int> RowArgmax(const Matrix& a);

/// Fills with N(0, stddev) / U(lo, hi) samples.
Matrix RandomNormal(int rows, int cols, float stddev, Rng* rng);
Matrix RandomUniform(int rows, int cols, float lo, float hi, Rng* rng);

// ---------------------------------------------------------------------------
// Sparse kernels
// ---------------------------------------------------------------------------

/// C = S * B for CSR S and dense B.
Matrix SpMM(const SparseMatrix& s, const Matrix& b);

/// y = S * x.
std::vector<float> SpMV(const SparseMatrix& s, const std::vector<float>& x);

// ---------------------------------------------------------------------------
// Similarity measures used by defenders
// ---------------------------------------------------------------------------

/// Cosine similarity between rows i and j of `x`. Returns 0 when either
/// row is all-zero.
float CosineSimilarity(const Matrix& x, int i, int j);

/// Jaccard similarity between binary rows i and j of `x` (entries > 0.5
/// are treated as 1).
float JaccardSimilarity(const Matrix& x, int i, int j);

// ---------------------------------------------------------------------------
// Vector helpers
// ---------------------------------------------------------------------------

/// Elementwise x^(-1/2) with 0 mapped to 0 (degree normalization).
std::vector<float> RSqrt(const std::vector<float>& x);

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_OPS_H_
