#ifndef PEEGA_LINALG_OPS_H_
#define PEEGA_LINALG_OPS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/random.h"
#include "linalg/sparse.h"

namespace repro::linalg {

/// \file
/// Numerical kernels over `Matrix` / `SparseMatrix`.
///
/// Threading: every kernel below is internally parallelized over the
/// process-wide pool in `parallel/thread_pool.h` unless its doc says
/// "serial". Parallel kernels use deterministic static chunking with
/// disjoint per-chunk outputs, so their results are **bitwise identical
/// at any thread count** (see DESIGN.md, "Determinism & threading").
/// All kernels are safe to call concurrently on distinct outputs only
/// in the sense that they never touch global mutable state besides the
/// shared pool; the library is driven by one orchestrating thread.
///
/// SIMD: the hot kernels dispatch per-row work through the per-op
/// `KernelTable`s in `linalg/kernels/kernels.h` (scalar reference plus
/// optional AVX2/NEON variants picked once at startup; force with
/// `PEEGA_SIMD`). Every variant is **bitwise identical** to the scalar
/// reference — see DESIGN.md, "Kernel dispatch & determinism classes",
/// and the generated op inventory in docs/OPS.md.

// ---------------------------------------------------------------------------
// Dense kernels
// ---------------------------------------------------------------------------

/// C = A * B. Cache-blocked i-k-j loop order, row-parallel.
/// Complexity O(m·k·n); bitwise-deterministic at any thread count.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing A^T. Column-parallel (each chunk
/// owns a column slice of C). Complexity O(k·m·n); bitwise-deterministic
/// at any thread count.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing B^T. Row-parallel dot products.
/// Complexity O(m·n·k); bitwise-deterministic at any thread count.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Returns A^T. Parallel over output rows. Complexity O(m·n).
Matrix Transpose(const Matrix& a);

/// Elementwise a + b (same shape). Flat-parallel; O(m·n).
Matrix Add(const Matrix& a, const Matrix& b);
/// Elementwise a - b (same shape). Flat-parallel; O(m·n).
Matrix Sub(const Matrix& a, const Matrix& b);
/// Elementwise a ⊙ b (same shape). Flat-parallel; O(m·n).
Matrix Mul(const Matrix& a, const Matrix& b);

/// a * scale + offset, elementwise. Flat-parallel; O(m·n).
Matrix Affine(const Matrix& a, float scale, float offset = 0.0f);

/// In-place a += b * scale. Flat-parallel; O(m·n).
void Axpy(Matrix* a, const Matrix& b, float scale);

/// Adds vector `v` (length = a.cols()) to every row of a.
/// Row-parallel; O(m·n).
Matrix AddRowVector(const Matrix& a, const std::vector<float>& v);

/// Scales row r of a by s[r] (s.size() == a.rows()).
/// Row-parallel; O(m·n).
Matrix ScaleRows(const Matrix& a, const std::vector<float>& s);

/// Scales column c of a by s[c] (s.size() == a.cols()).
/// Row-parallel; O(m·n).
Matrix ScaleCols(const Matrix& a, const std::vector<float>& s);

/// Per-row sums; length = rows(). Row-parallel; O(m·n); each row's
/// accumulation order matches the serial loop (bitwise-deterministic).
std::vector<float> RowSums(const Matrix& a);

/// Sum of all entries, accumulated in double. Chunked parallel
/// reduction; O(m·n). Deterministic at any thread count, but the
/// floating-point association is fixed by the internal reduce grain,
/// not by a single left-to-right scan (low-order bits may differ from
/// a serial sum on inputs larger than one chunk).
double Sum(const Matrix& a);

/// Frobenius norm, accumulated in double. Chunked parallel reduction;
/// O(m·n); same association caveat as `Sum`.
double FrobeniusNorm(const Matrix& a);

/// Number of entries with |v| > tol (the "L0 norm" used for attack
/// budgets). Chunked parallel reduction; O(m·n); exact (integer).
int64_t CountNonZero(const Matrix& a, float tol = 0.5f);

/// Max absolute entrywise difference, for test comparisons. Chunked
/// parallel reduction; O(m·n); exact (max is associative).
float MaxAbsDiff(const Matrix& a, const Matrix& b);

/// ReLU, elementwise. Flat-parallel; O(m·n).
Matrix Relu(const Matrix& a);
/// LeakyReLU with negative slope `slope`, elementwise. Flat-parallel.
Matrix LeakyRelu(const Matrix& a, float slope);
/// Logistic sigmoid, elementwise. Flat-parallel; O(m·n).
Matrix Sigmoid(const Matrix& a);

/// Row-wise softmax, numerically stabilized by the row max.
/// Row-parallel; O(m·n); bitwise-deterministic at any thread count.
Matrix RowSoftmax(const Matrix& a);

/// Row-wise argmax; ties resolve to the lowest index. Row-parallel;
/// O(m·n); deterministic (each row is scanned serially).
std::vector<int> RowArgmax(const Matrix& a);

/// Fills with N(0, stddev) samples. Serial: the RNG stream is
/// sequential state, so parallel draws would break seed reproducibility.
Matrix RandomNormal(int rows, int cols, float stddev, Rng* rng);
/// Fills with U(lo, hi) samples. Serial (same RNG-stream reason).
Matrix RandomUniform(int rows, int cols, float lo, float hi, Rng* rng);

// ---------------------------------------------------------------------------
// Sparse kernels
// ---------------------------------------------------------------------------

/// C = S * B for CSR S and dense B. Row-parallel over CSR rows; each
/// row's nonzeros accumulate in stored (ascending-column) order.
/// Complexity O(nnz · B.cols()); bitwise-deterministic at any thread
/// count.
Matrix SpMM(const SparseMatrix& s, const Matrix& b);

/// y = S * x. Row-parallel; O(nnz); bitwise-deterministic at any
/// thread count.
std::vector<float> SpMV(const SparseMatrix& s, const std::vector<float>& x);

// ---------------------------------------------------------------------------
// Similarity measures used by defenders
// ---------------------------------------------------------------------------

/// Cosine similarity between rows i and j of `x`. Returns 0 when either
/// row is all-zero. Serial; O(cols).
float CosineSimilarity(const Matrix& x, int i, int j);

/// Jaccard similarity between binary rows i and j of `x` (entries > 0.5
/// are treated as 1). Serial; O(cols).
float JaccardSimilarity(const Matrix& x, int i, int j);

// ---------------------------------------------------------------------------
// Vector helpers
// ---------------------------------------------------------------------------

/// Elementwise x^(-1/2) with 0 mapped to 0 (degree normalization).
/// Serial; O(n).
std::vector<float> RSqrt(const std::vector<float>& x);

}  // namespace repro::linalg

#endif  // PEEGA_LINALG_OPS_H_
