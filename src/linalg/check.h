#ifndef PEEGA_LINALG_CHECK_H_
#define PEEGA_LINALG_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight CHECK macros for invariant validation. A failed check prints
// the condition with its source location and aborts; these guard API
// misuse (shape mismatches, out-of-range indices), not recoverable errors.

#define REPRO_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond, __FILE__, \
                   __LINE__);                                              \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define REPRO_CHECK_EQ(a, b) REPRO_CHECK((a) == (b))
#define REPRO_CHECK_NE(a, b) REPRO_CHECK((a) != (b))
#define REPRO_CHECK_LT(a, b) REPRO_CHECK((a) < (b))
#define REPRO_CHECK_LE(a, b) REPRO_CHECK((a) <= (b))
#define REPRO_CHECK_GT(a, b) REPRO_CHECK((a) > (b))
#define REPRO_CHECK_GE(a, b) REPRO_CHECK((a) >= (b))

#endif  // PEEGA_LINALG_CHECK_H_
