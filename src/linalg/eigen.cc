#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "debug/check.h"
#include "linalg/ops.h"

namespace repro::linalg {

void OrthonormalizeColumns(Matrix* m) {
  const int n = m->rows();
  const int k = m->cols();
  for (int j = 0; j < k; ++j) {
    double norm_before = 0.0;
    for (int i = 0; i < n; ++i) {
      norm_before += static_cast<double>((*m)(i, j)) * (*m)(i, j);
    }
    norm_before = std::sqrt(norm_before);
    // Subtract projections onto previous columns. Two passes ("twice is
    // enough"): a single pass leaves O(eps * kappa) residual components
    // that explode when the remaining norm is tiny (rank-deficient
    // subspaces), destroying orthogonality after normalization.
    for (int pass = 0; pass < 2; ++pass) {
      for (int p = 0; p < j; ++p) {
        double dot = 0.0;
        for (int i = 0; i < n; ++i) dot += (*m)(i, j) * (*m)(i, p);
        for (int i = 0; i < n; ++i) {
          (*m)(i, j) -= static_cast<float>(dot) * (*m)(i, p);
        }
      }
    }
    double norm = 0.0;
    for (int i = 0; i < n; ++i) {
      norm += static_cast<double>((*m)(i, j)) * (*m)(i, j);
    }
    norm = std::sqrt(norm);
    // Columns numerically inside the span of previous ones are zeroed
    // instead of normalizing amplified rounding noise.
    const bool degenerate = norm <= 1e-12 || norm < 1e-6 * norm_before;
    const float inv = degenerate ? 0.0f : static_cast<float>(1.0 / norm);
    for (int i = 0; i < n; ++i) (*m)(i, j) *= inv;
  }
}

namespace {

/// Jacobi eigendecomposition of a small dense symmetric matrix (k x k).
/// Returns eigenvalues (descending |value|) and eigenvectors as columns.
EigenResult JacobiEigen(Matrix a) {
  const int n = a.rows();
  PEEGA_CHECK_EQ(n, a.cols());
  Matrix v = Matrix::Identity(n);
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += std::fabs(a(p, q));
    }
    if (off < 1e-10) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::fabs(a(p, q)) < 1e-14) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double sign = theta >= 0.0 ? 1.0 : -1.0;
        const double t =
            sign / (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int i = 0; i < n; ++i) {
          const double aip = a(i, p), aiq = a(i, q);
          a(i, p) = static_cast<float>(c * aip - s * aiq);
          a(i, q) = static_cast<float>(s * aip + c * aiq);
        }
        for (int i = 0; i < n; ++i) {
          const double api = a(p, i), aqi = a(q, i);
          a(p, i) = static_cast<float>(c * api - s * aqi);
          a(q, i) = static_cast<float>(s * api + c * aqi);
        }
        for (int i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = static_cast<float>(c * vip - s * viq);
          v(i, q) = static_cast<float>(s * vip + c * viq);
        }
      }
    }
  }
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return std::fabs(a(x, x)) > std::fabs(a(y, y));
  });
  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    result.values[j] = a(order[j], order[j]);
    for (int i = 0; i < n; ++i) result.vectors(i, j) = v(i, order[j]);
  }
  return result;
}

template <typename MultiplyFn>
EigenResult SubspaceIteration(int n, int k, MultiplyFn multiply, Rng* rng,
                              int iters) {
  PEEGA_CHECK_GT(k, 0);
  PEEGA_CHECK_LE(k, n);
  // Over-sample the subspace a little for faster convergence.
  const int kb = std::min(n, k + 4);
  Matrix q = RandomNormal(n, kb, 1.0f, rng);
  OrthonormalizeColumns(&q);
  for (int it = 0; it < iters; ++it) {
    q = multiply(q);
    OrthonormalizeColumns(&q);
  }
  // Rayleigh-Ritz: B = Q^T A Q, eigendecompose the small kb x kb matrix.
  Matrix aq = multiply(q);
  Matrix b = MatMulTransA(q, aq);
  // Symmetrize against round-off.
  for (int i = 0; i < kb; ++i) {
    for (int j = i + 1; j < kb; ++j) {
      const float avg = 0.5f * (b(i, j) + b(j, i));
      b(i, j) = avg;
      b(j, i) = avg;
    }
  }
  EigenResult small = JacobiEigen(b);
  EigenResult result;
  result.values.assign(small.values.begin(), small.values.begin() + k);
  Matrix sub(kb, k);
  for (int i = 0; i < kb; ++i) {
    for (int j = 0; j < k; ++j) sub(i, j) = small.vectors(i, j);
  }
  result.vectors = MatMul(q, sub);
  return result;
}

}  // namespace

EigenResult TopKEigenSymmetric(const SparseMatrix& a, int k, Rng* rng,
                               int iters) {
  PEEGA_CHECK_EQ(a.rows(), a.cols());
  return SubspaceIteration(
      a.rows(), k, [&a](const Matrix& q) { return SpMM(a, q); }, rng, iters);
}

EigenResult TopKEigenSymmetricDense(const Matrix& a, int k, Rng* rng,
                                    int iters) {
  PEEGA_CHECK_EQ(a.rows(), a.cols());
  return SubspaceIteration(
      a.rows(), k, [&a](const Matrix& q) { return MatMul(a, q); }, rng,
      iters);
}

Matrix LowRankReconstruct(const EigenResult& eig) {
  const int k = static_cast<int>(eig.values.size());
  PEEGA_CHECK_EQ(k, eig.vectors.cols());
  Matrix scaled = ScaleCols(eig.vectors, eig.values);
  return MatMulTransB(scaled, eig.vectors);
}

}  // namespace repro::linalg
