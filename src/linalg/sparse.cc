#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "debug/check.h"
#include "parallel/thread_pool.h"

namespace repro::linalg {

SparseMatrix SparseMatrix::FromTriplets(
    int rows, int cols,
    const std::vector<std::tuple<int, int, float>>& triplets) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::vector<std::tuple<int, int, float>> sorted = triplets;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });
  m.row_ptr_.assign(rows + 1, 0);
  int prev_r = -1;
  int prev_c = -1;
  for (const auto& [r, c, v] : sorted) {
    PEEGA_CHECK_GE(r, 0);
    PEEGA_CHECK_LT(r, rows);
    PEEGA_CHECK_GE(c, 0);
    PEEGA_CHECK_LT(c, cols);
    if (r == prev_r && c == prev_c) {
      m.values_.back() += v;  // duplicate coordinate: accumulate
      continue;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    m.row_ptr_[r + 1] = static_cast<int64_t>(m.col_idx_.size());
    prev_r = r;
    prev_c = c;
  }
  // Rows with no entries inherit the running prefix.
  for (int r = 0; r < rows; ++r) {
    m.row_ptr_[r + 1] = std::max(m.row_ptr_[r + 1], m.row_ptr_[r]);
  }
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense, float tol) {
  SparseMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (int r = 0; r < m.rows_; ++r) {
    const float* row = dense.row(r);
    for (int c = 0; c < m.cols_; ++c) {
      if (std::fabs(row[c]) > tol) {
        m.col_idx_.push_back(c);
        m.values_.push_back(row[c]);
      }
    }
    m.row_ptr_[r + 1] = static_cast<int64_t>(m.col_idx_.size());
  }
  return m;
}

float SparseMatrix::At(int r, int c) const {
  PEEGA_CHECK_GE(r, 0);
  PEEGA_CHECK_LT(r, rows_);
  const int* begin = col_idx_.data() + row_ptr_[r];
  const int* end = col_idx_.data() + row_ptr_[r + 1];
  const int* it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0f;
  return values_[it - col_idx_.data()];
}

Matrix SparseMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  parallel::ParallelFor(0, rows_, 64, [&](int64_t r0, int64_t r1) {
    for (int r = static_cast<int>(r0); r < static_cast<int>(r1); ++r) {
      float* drow = dense.row(r);
      for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        drow[col_idx_[k]] += values_[k];
      }
    }
  });
  return dense;
}

SparseMatrix SparseMatrix::Transposed() const {
  std::vector<std::tuple<int, int, float>> triplets;
  triplets.reserve(values_.size());
  for (int r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      triplets.emplace_back(col_idx_[k], r, values_[k]);
    }
  }
  return FromTriplets(cols_, rows_, triplets);
}

}  // namespace repro::linalg
