# Empty compiler generated dependencies file for table4_cora.
# This may be replaced when dependencies are built.
