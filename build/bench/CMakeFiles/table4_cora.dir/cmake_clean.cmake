file(REMOVE_RECURSE
  "CMakeFiles/table4_cora.dir/table4_cora.cc.o"
  "CMakeFiles/table4_cora.dir/table4_cora.cc.o.d"
  "table4_cora"
  "table4_cora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
