file(REMOVE_RECURSE
  "CMakeFiles/fig8_lambda_p.dir/fig8_lambda_p.cc.o"
  "CMakeFiles/fig8_lambda_p.dir/fig8_lambda_p.cc.o.d"
  "fig8_lambda_p"
  "fig8_lambda_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lambda_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
