# Empty dependencies file for fig8_lambda_p.
# This may be replaced when dependencies are built.
