file(REMOVE_RECURSE
  "CMakeFiles/table7_attack_time.dir/table7_attack_time.cc.o"
  "CMakeFiles/table7_attack_time.dir/table7_attack_time.cc.o.d"
  "table7_attack_time"
  "table7_attack_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_attack_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
