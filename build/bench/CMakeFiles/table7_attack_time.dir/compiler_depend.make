# Empty compiler generated dependencies file for table7_attack_time.
# This may be replaced when dependencies are built.
