file(REMOVE_RECURSE
  "CMakeFiles/fig7_sensitivity.dir/fig7_sensitivity.cc.o"
  "CMakeFiles/fig7_sensitivity.dir/fig7_sensitivity.cc.o.d"
  "fig7_sensitivity"
  "fig7_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
