file(REMOVE_RECURSE
  "CMakeFiles/fig3_label_similarity.dir/fig3_label_similarity.cc.o"
  "CMakeFiles/fig3_label_similarity.dir/fig3_label_similarity.cc.o.d"
  "fig3_label_similarity"
  "fig3_label_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_label_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
