# Empty dependencies file for fig3_label_similarity.
# This may be replaced when dependencies are built.
