# Empty compiler generated dependencies file for table8_defense_time.
# This may be replaced when dependencies are built.
