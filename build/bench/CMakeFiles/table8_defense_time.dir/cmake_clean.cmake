file(REMOVE_RECURSE
  "CMakeFiles/table8_defense_time.dir/table8_defense_time.cc.o"
  "CMakeFiles/table8_defense_time.dir/table8_defense_time.cc.o.d"
  "table8_defense_time"
  "table8_defense_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_defense_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
