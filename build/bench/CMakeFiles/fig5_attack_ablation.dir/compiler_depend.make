# Empty compiler generated dependencies file for fig5_attack_ablation.
# This may be replaced when dependencies are built.
