file(REMOVE_RECURSE
  "CMakeFiles/fig5_attack_ablation.dir/fig5_attack_ablation.cc.o"
  "CMakeFiles/fig5_attack_ablation.dir/fig5_attack_ablation.cc.o.d"
  "fig5_attack_ablation"
  "fig5_attack_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_attack_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
