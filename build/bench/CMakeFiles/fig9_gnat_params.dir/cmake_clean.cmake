file(REMOVE_RECURSE
  "CMakeFiles/fig9_gnat_params.dir/fig9_gnat_params.cc.o"
  "CMakeFiles/fig9_gnat_params.dir/fig9_gnat_params.cc.o.d"
  "fig9_gnat_params"
  "fig9_gnat_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_gnat_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
