# Empty dependencies file for fig2_edge_diff.
# This may be replaced when dependencies are built.
