file(REMOVE_RECURSE
  "CMakeFiles/fig2_edge_diff.dir/fig2_edge_diff.cc.o"
  "CMakeFiles/fig2_edge_diff.dir/fig2_edge_diff.cc.o.d"
  "fig2_edge_diff"
  "fig2_edge_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_edge_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
