# Empty compiler generated dependencies file for fig1_homophily.
# This may be replaced when dependencies are built.
