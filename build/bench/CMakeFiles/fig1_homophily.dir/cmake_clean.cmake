file(REMOVE_RECURSE
  "CMakeFiles/fig1_homophily.dir/fig1_homophily.cc.o"
  "CMakeFiles/fig1_homophily.dir/fig1_homophily.cc.o.d"
  "fig1_homophily"
  "fig1_homophily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_homophily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
