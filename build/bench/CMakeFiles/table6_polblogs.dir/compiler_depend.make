# Empty compiler generated dependencies file for table6_polblogs.
# This may be replaced when dependencies are built.
