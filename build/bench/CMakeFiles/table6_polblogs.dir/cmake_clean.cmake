file(REMOVE_RECURSE
  "CMakeFiles/table6_polblogs.dir/table6_polblogs.cc.o"
  "CMakeFiles/table6_polblogs.dir/table6_polblogs.cc.o.d"
  "table6_polblogs"
  "table6_polblogs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_polblogs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
