file(REMOVE_RECURSE
  "CMakeFiles/fig6_ptb_rate.dir/fig6_ptb_rate.cc.o"
  "CMakeFiles/fig6_ptb_rate.dir/fig6_ptb_rate.cc.o.d"
  "fig6_ptb_rate"
  "fig6_ptb_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ptb_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
