# Empty dependencies file for fig6_ptb_rate.
# This may be replaced when dependencies are built.
