file(REMOVE_RECURSE
  "CMakeFiles/table9_defense_ablation.dir/table9_defense_ablation.cc.o"
  "CMakeFiles/table9_defense_ablation.dir/table9_defense_ablation.cc.o.d"
  "table9_defense_ablation"
  "table9_defense_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_defense_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
