file(REMOVE_RECURSE
  "CMakeFiles/table5_citeseer.dir/table5_citeseer.cc.o"
  "CMakeFiles/table5_citeseer.dir/table5_citeseer.cc.o.d"
  "table5_citeseer"
  "table5_citeseer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_citeseer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
