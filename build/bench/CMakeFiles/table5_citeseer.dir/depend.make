# Empty dependencies file for table5_citeseer.
# This may be replaced when dependencies are built.
