file(REMOVE_RECURSE
  "CMakeFiles/privacy_publication.dir/privacy_publication.cpp.o"
  "CMakeFiles/privacy_publication.dir/privacy_publication.cpp.o.d"
  "privacy_publication"
  "privacy_publication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_publication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
