# Empty dependencies file for privacy_publication.
# This may be replaced when dependencies are built.
