# Empty compiler generated dependencies file for robust_training.
# This may be replaced when dependencies are built.
