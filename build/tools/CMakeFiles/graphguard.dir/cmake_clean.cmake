file(REMOVE_RECURSE
  "CMakeFiles/graphguard.dir/graphguard.cc.o"
  "CMakeFiles/graphguard.dir/graphguard.cc.o.d"
  "graphguard"
  "graphguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
