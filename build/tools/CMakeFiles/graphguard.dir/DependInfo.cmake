
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/graphguard.cc" "tools/CMakeFiles/graphguard.dir/graphguard.cc.o" "gcc" "tools/CMakeFiles/graphguard.dir/graphguard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/repro_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/repro_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/repro_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/repro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/repro_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/repro_autograd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
