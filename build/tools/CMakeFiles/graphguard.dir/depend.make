# Empty dependencies file for graphguard.
# This may be replaced when dependencies are built.
