
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gnat.cc" "src/core/CMakeFiles/repro_core.dir/gnat.cc.o" "gcc" "src/core/CMakeFiles/repro_core.dir/gnat.cc.o.d"
  "/root/repo/src/core/peega.cc" "src/core/CMakeFiles/repro_core.dir/peega.cc.o" "gcc" "src/core/CMakeFiles/repro_core.dir/peega.cc.o.d"
  "/root/repo/src/core/peega_batch.cc" "src/core/CMakeFiles/repro_core.dir/peega_batch.cc.o" "gcc" "src/core/CMakeFiles/repro_core.dir/peega_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/repro_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/repro_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/repro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/repro_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
