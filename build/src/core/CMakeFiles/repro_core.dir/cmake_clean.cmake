file(REMOVE_RECURSE
  "CMakeFiles/repro_core.dir/gnat.cc.o"
  "CMakeFiles/repro_core.dir/gnat.cc.o.d"
  "CMakeFiles/repro_core.dir/peega.cc.o"
  "CMakeFiles/repro_core.dir/peega.cc.o.d"
  "CMakeFiles/repro_core.dir/peega_batch.cc.o"
  "CMakeFiles/repro_core.dir/peega_batch.cc.o.d"
  "librepro_core.a"
  "librepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
