file(REMOVE_RECURSE
  "CMakeFiles/repro_nn.dir/gat.cc.o"
  "CMakeFiles/repro_nn.dir/gat.cc.o.d"
  "CMakeFiles/repro_nn.dir/gcn.cc.o"
  "CMakeFiles/repro_nn.dir/gcn.cc.o.d"
  "CMakeFiles/repro_nn.dir/init.cc.o"
  "CMakeFiles/repro_nn.dir/init.cc.o.d"
  "CMakeFiles/repro_nn.dir/optim.cc.o"
  "CMakeFiles/repro_nn.dir/optim.cc.o.d"
  "CMakeFiles/repro_nn.dir/rgcn.cc.o"
  "CMakeFiles/repro_nn.dir/rgcn.cc.o.d"
  "CMakeFiles/repro_nn.dir/sgc.cc.o"
  "CMakeFiles/repro_nn.dir/sgc.cc.o.d"
  "CMakeFiles/repro_nn.dir/simpgcn.cc.o"
  "CMakeFiles/repro_nn.dir/simpgcn.cc.o.d"
  "CMakeFiles/repro_nn.dir/trainer.cc.o"
  "CMakeFiles/repro_nn.dir/trainer.cc.o.d"
  "librepro_nn.a"
  "librepro_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
