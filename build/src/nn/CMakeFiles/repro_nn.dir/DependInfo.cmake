
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gat.cc" "src/nn/CMakeFiles/repro_nn.dir/gat.cc.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/gat.cc.o.d"
  "/root/repo/src/nn/gcn.cc" "src/nn/CMakeFiles/repro_nn.dir/gcn.cc.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/gcn.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/repro_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/repro_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/optim.cc.o.d"
  "/root/repo/src/nn/rgcn.cc" "src/nn/CMakeFiles/repro_nn.dir/rgcn.cc.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/rgcn.cc.o.d"
  "/root/repo/src/nn/sgc.cc" "src/nn/CMakeFiles/repro_nn.dir/sgc.cc.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/sgc.cc.o.d"
  "/root/repo/src/nn/simpgcn.cc" "src/nn/CMakeFiles/repro_nn.dir/simpgcn.cc.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/simpgcn.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/repro_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/repro_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/repro_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/repro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/repro_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
