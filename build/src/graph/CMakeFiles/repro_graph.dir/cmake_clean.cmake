file(REMOVE_RECURSE
  "CMakeFiles/repro_graph.dir/generators.cc.o"
  "CMakeFiles/repro_graph.dir/generators.cc.o.d"
  "CMakeFiles/repro_graph.dir/graph.cc.o"
  "CMakeFiles/repro_graph.dir/graph.cc.o.d"
  "CMakeFiles/repro_graph.dir/io.cc.o"
  "CMakeFiles/repro_graph.dir/io.cc.o.d"
  "CMakeFiles/repro_graph.dir/metrics.cc.o"
  "CMakeFiles/repro_graph.dir/metrics.cc.o.d"
  "librepro_graph.a"
  "librepro_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
