file(REMOVE_RECURSE
  "librepro_defense.a"
)
