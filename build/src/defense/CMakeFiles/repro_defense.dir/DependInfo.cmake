
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/gnnguard.cc" "src/defense/CMakeFiles/repro_defense.dir/gnnguard.cc.o" "gcc" "src/defense/CMakeFiles/repro_defense.dir/gnnguard.cc.o.d"
  "/root/repo/src/defense/jaccard.cc" "src/defense/CMakeFiles/repro_defense.dir/jaccard.cc.o" "gcc" "src/defense/CMakeFiles/repro_defense.dir/jaccard.cc.o.d"
  "/root/repo/src/defense/model_defenders.cc" "src/defense/CMakeFiles/repro_defense.dir/model_defenders.cc.o" "gcc" "src/defense/CMakeFiles/repro_defense.dir/model_defenders.cc.o.d"
  "/root/repo/src/defense/prognn.cc" "src/defense/CMakeFiles/repro_defense.dir/prognn.cc.o" "gcc" "src/defense/CMakeFiles/repro_defense.dir/prognn.cc.o.d"
  "/root/repo/src/defense/svd.cc" "src/defense/CMakeFiles/repro_defense.dir/svd.cc.o" "gcc" "src/defense/CMakeFiles/repro_defense.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/repro_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/repro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/repro_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
