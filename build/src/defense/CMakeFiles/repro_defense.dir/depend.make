# Empty dependencies file for repro_defense.
# This may be replaced when dependencies are built.
