file(REMOVE_RECURSE
  "CMakeFiles/repro_defense.dir/gnnguard.cc.o"
  "CMakeFiles/repro_defense.dir/gnnguard.cc.o.d"
  "CMakeFiles/repro_defense.dir/jaccard.cc.o"
  "CMakeFiles/repro_defense.dir/jaccard.cc.o.d"
  "CMakeFiles/repro_defense.dir/model_defenders.cc.o"
  "CMakeFiles/repro_defense.dir/model_defenders.cc.o.d"
  "CMakeFiles/repro_defense.dir/prognn.cc.o"
  "CMakeFiles/repro_defense.dir/prognn.cc.o.d"
  "CMakeFiles/repro_defense.dir/svd.cc.o"
  "CMakeFiles/repro_defense.dir/svd.cc.o.d"
  "librepro_defense.a"
  "librepro_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
