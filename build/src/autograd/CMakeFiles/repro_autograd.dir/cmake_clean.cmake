file(REMOVE_RECURSE
  "CMakeFiles/repro_autograd.dir/tape.cc.o"
  "CMakeFiles/repro_autograd.dir/tape.cc.o.d"
  "librepro_autograd.a"
  "librepro_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
