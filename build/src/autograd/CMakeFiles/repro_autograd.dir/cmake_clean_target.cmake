file(REMOVE_RECURSE
  "librepro_autograd.a"
)
