# Empty compiler generated dependencies file for repro_autograd.
# This may be replaced when dependencies are built.
