# Empty compiler generated dependencies file for repro_attack.
# This may be replaced when dependencies are built.
