file(REMOVE_RECURSE
  "librepro_attack.a"
)
