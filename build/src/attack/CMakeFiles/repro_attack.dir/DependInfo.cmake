
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/common.cc" "src/attack/CMakeFiles/repro_attack.dir/common.cc.o" "gcc" "src/attack/CMakeFiles/repro_attack.dir/common.cc.o.d"
  "/root/repo/src/attack/dice.cc" "src/attack/CMakeFiles/repro_attack.dir/dice.cc.o" "gcc" "src/attack/CMakeFiles/repro_attack.dir/dice.cc.o.d"
  "/root/repo/src/attack/gf_attack.cc" "src/attack/CMakeFiles/repro_attack.dir/gf_attack.cc.o" "gcc" "src/attack/CMakeFiles/repro_attack.dir/gf_attack.cc.o.d"
  "/root/repo/src/attack/metattack.cc" "src/attack/CMakeFiles/repro_attack.dir/metattack.cc.o" "gcc" "src/attack/CMakeFiles/repro_attack.dir/metattack.cc.o.d"
  "/root/repo/src/attack/pgd.cc" "src/attack/CMakeFiles/repro_attack.dir/pgd.cc.o" "gcc" "src/attack/CMakeFiles/repro_attack.dir/pgd.cc.o.d"
  "/root/repo/src/attack/random_attack.cc" "src/attack/CMakeFiles/repro_attack.dir/random_attack.cc.o" "gcc" "src/attack/CMakeFiles/repro_attack.dir/random_attack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/repro_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/repro_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/repro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/repro_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
