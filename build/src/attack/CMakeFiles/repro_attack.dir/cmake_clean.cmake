file(REMOVE_RECURSE
  "CMakeFiles/repro_attack.dir/common.cc.o"
  "CMakeFiles/repro_attack.dir/common.cc.o.d"
  "CMakeFiles/repro_attack.dir/dice.cc.o"
  "CMakeFiles/repro_attack.dir/dice.cc.o.d"
  "CMakeFiles/repro_attack.dir/gf_attack.cc.o"
  "CMakeFiles/repro_attack.dir/gf_attack.cc.o.d"
  "CMakeFiles/repro_attack.dir/metattack.cc.o"
  "CMakeFiles/repro_attack.dir/metattack.cc.o.d"
  "CMakeFiles/repro_attack.dir/pgd.cc.o"
  "CMakeFiles/repro_attack.dir/pgd.cc.o.d"
  "CMakeFiles/repro_attack.dir/random_attack.cc.o"
  "CMakeFiles/repro_attack.dir/random_attack.cc.o.d"
  "librepro_attack.a"
  "librepro_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
