file(REMOVE_RECURSE
  "CMakeFiles/repro_eval.dir/args.cc.o"
  "CMakeFiles/repro_eval.dir/args.cc.o.d"
  "CMakeFiles/repro_eval.dir/pipeline.cc.o"
  "CMakeFiles/repro_eval.dir/pipeline.cc.o.d"
  "CMakeFiles/repro_eval.dir/stats.cc.o"
  "CMakeFiles/repro_eval.dir/stats.cc.o.d"
  "CMakeFiles/repro_eval.dir/table.cc.o"
  "CMakeFiles/repro_eval.dir/table.cc.o.d"
  "librepro_eval.a"
  "librepro_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
