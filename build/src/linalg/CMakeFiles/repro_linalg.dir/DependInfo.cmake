
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/eigen.cc" "src/linalg/CMakeFiles/repro_linalg.dir/eigen.cc.o" "gcc" "src/linalg/CMakeFiles/repro_linalg.dir/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/repro_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/repro_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/ops.cc" "src/linalg/CMakeFiles/repro_linalg.dir/ops.cc.o" "gcc" "src/linalg/CMakeFiles/repro_linalg.dir/ops.cc.o.d"
  "/root/repo/src/linalg/random.cc" "src/linalg/CMakeFiles/repro_linalg.dir/random.cc.o" "gcc" "src/linalg/CMakeFiles/repro_linalg.dir/random.cc.o.d"
  "/root/repo/src/linalg/sparse.cc" "src/linalg/CMakeFiles/repro_linalg.dir/sparse.cc.o" "gcc" "src/linalg/CMakeFiles/repro_linalg.dir/sparse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
