file(REMOVE_RECURSE
  "CMakeFiles/repro_linalg.dir/eigen.cc.o"
  "CMakeFiles/repro_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/repro_linalg.dir/matrix.cc.o"
  "CMakeFiles/repro_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/repro_linalg.dir/ops.cc.o"
  "CMakeFiles/repro_linalg.dir/ops.cc.o.d"
  "CMakeFiles/repro_linalg.dir/random.cc.o"
  "CMakeFiles/repro_linalg.dir/random.cc.o.d"
  "CMakeFiles/repro_linalg.dir/sparse.cc.o"
  "CMakeFiles/repro_linalg.dir/sparse.cc.o.d"
  "librepro_linalg.a"
  "librepro_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
