file(REMOVE_RECURSE
  "CMakeFiles/peega_test.dir/peega_test.cc.o"
  "CMakeFiles/peega_test.dir/peega_test.cc.o.d"
  "peega_test"
  "peega_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peega_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
