# Empty dependencies file for peega_test.
# This may be replaced when dependencies are built.
