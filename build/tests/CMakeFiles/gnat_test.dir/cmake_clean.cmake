file(REMOVE_RECURSE
  "CMakeFiles/gnat_test.dir/gnat_test.cc.o"
  "CMakeFiles/gnat_test.dir/gnat_test.cc.o.d"
  "gnat_test"
  "gnat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
