# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(linalg_test "/root/repo/build/tests/linalg_test")
set_tests_properties(linalg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autograd_test "/root/repo/build/tests/autograd_test")
set_tests_properties(autograd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(attack_test "/root/repo/build/tests/attack_test")
set_tests_properties(attack_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(peega_test "/root/repo/build/tests/peega_test")
set_tests_properties(peega_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gnat_test "/root/repo/build/tests/gnat_test")
set_tests_properties(gnat_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(defense_test "/root/repo/build/tests/defense_test")
set_tests_properties(defense_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;repro_add_test;/root/repo/tests/CMakeLists.txt;0;")
