// Reproduces Fig. 1: the proportion of edges whose endpoints share a
// label, across five homophilous datasets. The paper reports >= 70.43%
// on all of its datasets — the property PEEGA's global view (Eq. 6)
// relies on.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("fig1_homophily", &argc, argv);
  const double scale = bench::Scale();
  linalg::Rng rng(20220901);
  const std::vector<graph::Graph> graphs = {
      graph::MakeCoraLike(&rng, scale),
      graph::MakeCiteseerLike(&rng, scale),
      graph::MakePolblogsLike(&rng, scale),
      graph::MakePubmedLike(&rng, scale),
      graph::MakeBlogLike(&rng, scale),
  };
  std::printf("Fig. 1 — same-label edge proportion per dataset\n");
  eval::TablePrinter table({"Dataset", "Nodes", "Edges", "SameLabel%"});
  for (const auto& g : graphs) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.2f",
                  100.0 * graph::HomophilyRatio(g));
    table.AddRow({g.name, std::to_string(g.num_nodes),
                  std::to_string(g.NumEdges()), pct});
  }
  table.Print(std::cout);
  std::printf("paper: all five datasets >= 70.43%%\n");
  return 0;
}
