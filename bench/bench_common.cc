#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "defense/jaccard.h"
#include "defense/model_defenders.h"
#include "defense/prognn.h"
#include "defense/svd.h"
#include "debug/check.h"

namespace repro::bench {

double Scale() {
  const char* env = std::getenv("REPRO_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

int Runs() {
  const char* env = std::getenv("REPRO_RUNS");
  if (env == nullptr) return 2;
  const int runs = std::atoi(env);
  return runs > 0 ? runs : 2;
}

Dataset MakeDataset(const std::string& name, double extra_scale) {
  const double scale = Scale() * extra_scale;
  linalg::Rng rng(20220901);  // fixed per-dataset generation seed
  Dataset dataset;
  dataset.name = name;
  if (name == "cora") {
    dataset.graph = graph::MakeCoraLike(&rng, scale);
    dataset.gnat.k_t = 2;
    dataset.gnat.k_f = 10;
    dataset.gnat.k_e = 10;
  } else if (name == "citeseer") {
    dataset.graph = graph::MakeCiteseerLike(&rng, scale);
    dataset.gnat.k_t = 2;
    dataset.gnat.k_f = 15;
    dataset.gnat.k_e = 10;
  } else if (name == "polblogs") {
    dataset.graph = graph::MakePolblogsLike(&rng, scale);
    dataset.features_usable = false;
    // Identity features: PEEGA attacks topology only (feature flips on
    // one-hot IDs are degenerate, mirroring the paper's Tab. VI
    // footnote for feature-similarity defenses), and GNAT runs as
    // GNAT\f = topology + ego views.
    dataset.peega.mode = core::PeegaAttack::Mode::kTopologyOnly;
    dataset.gnat.use_feature = false;
    dataset.gnat.k_t = 2;
    dataset.gnat.k_e = 20;
  } else {
    PEEGA_CHECK(false);
  }
  return dataset;
}

std::vector<std::unique_ptr<attack::Attacker>> MakeAttackers(
    const Dataset& dataset) {
  std::vector<std::unique_ptr<attack::Attacker>> attackers;
  attackers.push_back(std::make_unique<attack::PgdAttack>());
  attackers.push_back(std::make_unique<attack::MinMaxAttack>());
  attack::Metattack::Options meta;
  meta.attack_features = dataset.features_usable;
  attackers.push_back(std::make_unique<attack::Metattack>(meta));
  attackers.push_back(std::make_unique<attack::GfAttack>());
  attackers.push_back(std::make_unique<core::PeegaAttack>(dataset.peega));
  return attackers;
}

std::vector<std::unique_ptr<defense::Defender>> MakeDefenders(
    const Dataset& dataset) {
  std::vector<std::unique_ptr<defense::Defender>> defenders;
  defenders.push_back(std::make_unique<defense::GcnDefender>());
  defenders.push_back(std::make_unique<defense::GatDefender>());
  if (dataset.features_usable) {
    defenders.push_back(std::make_unique<defense::JaccardDefender>());
  }
  defenders.push_back(std::make_unique<defense::SvdDefender>());
  defenders.push_back(std::make_unique<defense::RGcnDefender>());
  // Pro-GNN's alternating structure learning is its defining cost (the
  // paper reports it slowest by orders of magnitude); the bench uses a
  // schedule long enough to both converge and expose that cost.
  defense::ProGnnDefender::Options prognn;
  prognn.outer_epochs = 120;
  prognn.lowrank_every = 20;
  defenders.push_back(std::make_unique<defense::ProGnnDefender>(prognn));
  defenders.push_back(std::make_unique<defense::SimPGcnDefender>());
  defenders.push_back(std::make_unique<core::GnatDefender>(dataset.gnat));
  return defenders;
}

nn::TrainOptions BenchTrainOptions() {
  nn::TrainOptions options;
  options.max_epochs = 150;
  options.patience = 25;
  return options;
}

eval::PipelineOptions BenchPipeline() {
  eval::PipelineOptions options;
  options.runs = Runs();
  options.seed = 917;
  options.train = BenchTrainOptions();
  return options;
}

void PrintRunMetadata() {
  const std::string line =
      eval::FormatRunMetadata(eval::CollectRunMetadata(BenchPipeline()));
  std::printf("%s\n", line.c_str());
}

}  // namespace repro::bench
