#include "bench_common.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>

#include "defense/jaccard.h"
#include "defense/model_defenders.h"
#include "defense/prognn.h"
#include "defense/svd.h"
#include "debug/check.h"
#include "linalg/dispatch.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace repro::bench {

double Scale() {
  const char* env = std::getenv("REPRO_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

int Runs() {
  const char* env = std::getenv("REPRO_RUNS");
  if (env == nullptr) return 2;
  const int runs = std::atoi(env);
  return runs > 0 ? runs : 2;
}

Dataset MakeDataset(const std::string& name, double extra_scale) {
  const double scale = Scale() * extra_scale;
  linalg::Rng rng(20220901);  // fixed per-dataset generation seed
  Dataset dataset;
  dataset.name = name;
  if (name == "cora") {
    dataset.graph = graph::MakeCoraLike(&rng, scale);
    dataset.gnat.k_t = 2;
    dataset.gnat.k_f = 10;
    dataset.gnat.k_e = 10;
  } else if (name == "citeseer") {
    dataset.graph = graph::MakeCiteseerLike(&rng, scale);
    dataset.gnat.k_t = 2;
    dataset.gnat.k_f = 15;
    dataset.gnat.k_e = 10;
  } else if (name == "polblogs") {
    dataset.graph = graph::MakePolblogsLike(&rng, scale);
    dataset.features_usable = false;
    // Identity features: PEEGA attacks topology only (feature flips on
    // one-hot IDs are degenerate, mirroring the paper's Tab. VI
    // footnote for feature-similarity defenses), and GNAT runs as
    // GNAT\f = topology + ego views.
    dataset.peega.mode = core::PeegaAttack::Mode::kTopologyOnly;
    dataset.gnat.use_feature = false;
    dataset.gnat.k_t = 2;
    dataset.gnat.k_e = 20;
  } else {
    PEEGA_CHECK(false);
  }
  return dataset;
}

std::vector<std::unique_ptr<attack::Attacker>> MakeAttackers(
    const Dataset& dataset) {
  std::vector<std::unique_ptr<attack::Attacker>> attackers;
  attackers.push_back(std::make_unique<attack::PgdAttack>());
  attackers.push_back(std::make_unique<attack::MinMaxAttack>());
  attack::Metattack::Options meta;
  meta.attack_features = dataset.features_usable;
  attackers.push_back(std::make_unique<attack::Metattack>(meta));
  attackers.push_back(std::make_unique<attack::GfAttack>());
  attackers.push_back(std::make_unique<core::PeegaAttack>(dataset.peega));
  return attackers;
}

std::vector<std::unique_ptr<defense::Defender>> MakeDefenders(
    const Dataset& dataset) {
  std::vector<std::unique_ptr<defense::Defender>> defenders;
  defenders.push_back(std::make_unique<defense::GcnDefender>());
  defenders.push_back(std::make_unique<defense::GatDefender>());
  if (dataset.features_usable) {
    defenders.push_back(std::make_unique<defense::JaccardDefender>());
  }
  defenders.push_back(std::make_unique<defense::SvdDefender>());
  defenders.push_back(std::make_unique<defense::RGcnDefender>());
  // Pro-GNN's alternating structure learning is its defining cost (the
  // paper reports it slowest by orders of magnitude); the bench uses a
  // schedule long enough to both converge and expose that cost.
  defense::ProGnnDefender::Options prognn;
  prognn.outer_epochs = 120;
  prognn.lowrank_every = 20;
  defenders.push_back(std::make_unique<defense::ProGnnDefender>(prognn));
  defenders.push_back(std::make_unique<defense::SimPGcnDefender>());
  defenders.push_back(std::make_unique<core::GnatDefender>(dataset.gnat));
  return defenders;
}

nn::TrainOptions BenchTrainOptions() {
  nn::TrainOptions options;
  options.max_epochs = 150;
  options.patience = 25;
  return options;
}

eval::PipelineOptions BenchPipeline() {
  eval::PipelineOptions options;
  options.runs = Runs();
  options.seed = 917;
  options.train = BenchTrainOptions();
  return options;
}

void PrintRunMetadata() {
  const std::string line =
      eval::FormatRunMetadata(eval::CollectRunMetadata(BenchPipeline()));
  std::printf("%s\n", line.c_str());
}

int64_t PeakRssBytes() {
  // VmHWM is the kernel's high-water mark of the resident set, in kB.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    return static_cast<int64_t>(
               std::atoll(line.c_str() + sizeof("VmHWM:") - 1)) *
           1024;
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
  }
  return 0;
}

std::string ConsumeFlag(const char* flag, int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) != flag) continue;
    PEEGA_CHECK_LT(i + 1, *argc) << " — " << flag << " needs a value";
    const std::string value = argv[i + 1];
    for (int j = i; j + 2 <= *argc; ++j) argv[j] = argv[j + 2];
    *argc -= 2;
    argv[*argc] = nullptr;
    return value;
  }
  return "";
}

namespace {

// The summary line buckets phases by the prefix before ':' so e.g. all
// "attack:<name>" phases print as one attack=...s total.
std::string PhasePrefix(const std::string& name) {
  const size_t colon = name.find(':');
  return colon == std::string::npos ? name : name.substr(0, colon);
}

}  // namespace

BenchReporter::BenchReporter(const std::string& bench, int* argc,
                             char** argv)
    : bench_(bench) {
  json_path_ = ConsumeFlag("--json", argc, argv);
  trace_path_ = ConsumeFlag("--trace", argc, argv);
  if (!trace_path_.empty()) obs::SetTracing(true);
  // Every BENCH_*.json records which SIMD variant produced its numbers;
  // CI's schema check rejects files without it.
  Config("simd", linalg::SimdVariantName(linalg::ActiveSimdVariant()));
  PrintRunMetadata();
}

BenchReporter::~BenchReporter() { Finish(); }

void BenchReporter::Config(const std::string& key, const std::string& value) {
  string_config_.emplace_back(key, value);
}

void BenchReporter::Config(const std::string& key, double value) {
  number_config_.emplace_back(key, value);
}

BenchReporter::Phase* BenchReporter::GetPhase(const std::string& name) {
  const auto it = phase_index_.find(name);
  if (it != phase_index_.end()) return &phases_[it->second];
  phase_index_[name] = phases_.size();
  Phase phase;
  phase.name = name;
  phases_.push_back(std::move(phase));
  return &phases_.back();
}

void BenchReporter::RecordPhase(const std::string& name, double seconds,
                                uint64_t count) {
  Phase* phase = GetPhase(name);
  phase->wall_ms += seconds * 1e3;
  phase->count += count;
}

void BenchReporter::RecordPhaseStatus(const std::string& name,
                                      const status::Status& status) {
  if (status.ok()) return;
  eval::RecordPipelineError(status.WithContext("phase " + name));
  Phase* phase = GetPhase(name);
  if (phase->status == "OK") phase->status = status::CodeName(status.code());
}

RepeatStats BenchReporter::MeasureRepeats(const std::string& name,
                                          int warmup, int repeats,
                                          const std::function<void()>& fn) {
  // Warm-up runs populate caches, spin up pool workers, and trigger
  // lazy one-time work (static metric lookups, allocator growth); their
  // timings are discarded so the recorded stats cover steady state only.
  for (int i = 0; i < warmup; ++i) fn();
  repeats = std::max(repeats, 1);
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    const obs::StopWatch watch;
    fn();
    ms.push_back(watch.Millis());
  }
  std::vector<double> sorted = ms;
  std::sort(sorted.begin(), sorted.end());
  RepeatStats stats;
  stats.repeats = repeats;
  stats.min_ms = sorted.front();
  stats.median_ms = repeats % 2 == 1
                        ? sorted[static_cast<size_t>(repeats / 2)]
                        : 0.5 * (sorted[static_cast<size_t>(repeats / 2) - 1] +
                                 sorted[static_cast<size_t>(repeats / 2)]);
  stats.mean_ms = std::accumulate(ms.begin(), ms.end(), 0.0) /
                  static_cast<double>(repeats);

  const double total_seconds =
      std::accumulate(ms.begin(), ms.end(), 0.0) / 1e3;
  RecordPhase(name, total_seconds, static_cast<uint64_t>(repeats));
  Phase* phase = GetPhase(name);
  phase->has_stats = true;
  phase->stats = stats;
  return stats;
}

void BenchReporter::RecordPhaseRss(const std::string& name) {
  GetPhase(name)->peak_rss_bytes = PeakRssBytes();
}

void BenchReporter::Finish() {
  if (finished_) return;
  finished_ = true;
  RecordPhase("total", total_.Seconds());

  const eval::RunMetadata metadata =
      eval::CollectRunMetadata(BenchPipeline());

  // One-line phase summary, buckets in first-appearance order.
  std::vector<std::string> prefix_order;
  std::map<std::string, double> prefix_ms;
  for (const Phase& phase : phases_) {
    const std::string prefix = PhasePrefix(phase.name);
    if (prefix_ms.insert({prefix, 0.0}).second) {
      prefix_order.push_back(prefix);
    }
    prefix_ms[prefix] += phase.wall_ms;
  }
  std::ostringstream summary;
  summary << "phase-summary:";
  for (const std::string& prefix : prefix_order) {
    summary << ' ' << prefix << '=';
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3fs", prefix_ms[prefix] / 1e3);
    summary << buffer;
  }
  std::printf("%s\n", summary.str().c_str());

  if (!json_path_.empty()) {
    obs::Json root = obs::Json::MakeObject();
    root.object["bench"] = obs::Json::MakeString(bench_);
    obs::Json config = obs::Json::MakeObject();
    for (const auto& [key, value] : string_config_) {
      config.object[key] = obs::Json::MakeString(value);
    }
    for (const auto& [key, value] : number_config_) {
      config.object[key] = obs::Json::MakeNumber(value);
    }
    root.object["config"] = std::move(config);
    root.object["threads"] =
        obs::Json::MakeNumber(static_cast<double>(metadata.threads));

    obs::Json metrics;
    std::string error;
    PEEGA_CHECK(obs::Json::Parse(obs::MetricsToJson(metadata.metrics),
                                 &metrics, &error))
        << " — metrics snapshot must round-trip: " << error;
    root.object["metrics"] = std::move(metrics);

    obs::Json phases = obs::Json::MakeArray();
    for (const Phase& phase : phases_) {
      obs::Json entry = obs::Json::MakeObject();
      entry.object["name"] = obs::Json::MakeString(phase.name);
      entry.object["wall_ms"] = obs::Json::MakeNumber(phase.wall_ms);
      entry.object["count"] =
          obs::Json::MakeNumber(static_cast<double>(phase.count));
      entry.object["status"] = obs::Json::MakeString(phase.status);
      if (phase.peak_rss_bytes > 0) {
        entry.object["peak_rss_bytes"] = obs::Json::MakeNumber(
            static_cast<double>(phase.peak_rss_bytes));
      }
      if (phase.has_stats) {
        entry.object["min_ms"] = obs::Json::MakeNumber(phase.stats.min_ms);
        entry.object["median_ms"] =
            obs::Json::MakeNumber(phase.stats.median_ms);
        entry.object["mean_ms"] = obs::Json::MakeNumber(phase.stats.mean_ms);
        entry.object["repeats"] =
            obs::Json::MakeNumber(static_cast<double>(phase.stats.repeats));
      }
      phases.array.push_back(std::move(entry));
    }
    root.object["phases"] = std::move(phases);

    std::ofstream out(json_path_);
    PEEGA_CHECK(out.good()) << " — cannot open " << json_path_;
    root.Write(out);
    out << '\n';
    std::printf("bench-json: %s\n", json_path_.c_str());

    // Trend store: one compact summary line appended (never rewritten)
    // to bench-artifacts/<bench>.jsonl in the working directory, so
    // successive runs accumulate a comparable series — the full
    // BENCH_*.json is a snapshot, the .jsonl is the history.
    obs::Json trend = obs::Json::MakeObject();
    trend.object["bench"] = obs::Json::MakeString(bench_);
    trend.object["unix_time"] = obs::Json::MakeNumber(
        static_cast<double>(std::time(nullptr)));
    trend.object["threads"] =
        obs::Json::MakeNumber(static_cast<double>(metadata.threads));
    trend.object["total_ms"] =
        obs::Json::MakeNumber(GetPhase("total")->wall_ms);
    obs::Json trend_config = obs::Json::MakeObject();
    for (const auto& [key, value] : string_config_) {
      trend_config.object[key] = obs::Json::MakeString(value);
    }
    for (const auto& [key, value] : number_config_) {
      trend_config.object[key] = obs::Json::MakeNumber(value);
    }
    trend.object["config"] = std::move(trend_config);
    std::error_code trend_dir_error;
    std::filesystem::create_directories("bench-artifacts",
                                        trend_dir_error);
    const std::string trend_path = "bench-artifacts/" + bench_ + ".jsonl";
    std::ofstream trend_out(trend_path, std::ios::app);
    if (!trend_dir_error && trend_out.good()) {
      trend_out << trend.Dump() << '\n';
      std::printf("bench-trend: %s\n", trend_path.c_str());
    }
  }

  if (!trace_path_.empty()) {
    PEEGA_CHECK(obs::WriteTrace(trace_path_))
        << " — cannot write " << trace_path_;
    std::printf("bench-trace: %s\n", trace_path_.c_str());
  }
}

}  // namespace repro::bench
