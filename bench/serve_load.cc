// Load generator for the `graphguard serve` job server.
//
// Spawns N concurrent clients (own AF_UNIX connection each) that submit
// an attack+eval mix against one server and measures the distribution
// of end-to-end request latencies client-side. Emits via BenchReporter:
//   config: clients, jobs_per_client, submitted, accepted, rejected,
//           unavailable, deadline_exceeded, deadline_forced,
//           p50_ms / p95_ms / p99_ms, throughput_rps, rejection_rate
//   phases: load:run (whole mixed-load window), per-op buckets.
//
// Flags (after the common --json/--trace):
//   --socket <path>    connect to an already-running server; when
//                      omitted an in-process server is started on a
//                      temporary socket and drained at the end
//   --clients <n>      concurrent client threads (default 64)
//   --jobs <n>         jobs per client (default 4)
//   --deadline-fail <n> first n clients each add one attack with a
//                      sub-microsecond deadline to exercise the
//                      DEADLINE_EXCEEDED failure path (default 1)
//   --max-queue <n>    queue bound for the in-process server only
//   --shutdown <0|1>   send a shutdown op when done (default: 1 for
//                      the in-process server, 0 for an external one)
//   --journal <dir>    durability directory for the in-process server
//   --chaos <0|1>      chaos drill (default 0): the server is expected
//                      to fail — transient job codes (NUMERIC_FAULT,
//                      IO_ERROR) and dropped connections are tolerated
//                      and counted (clients reconnect and keep going),
//                      and the journal/recovery/retry stats objects are
//                      emitted as chaos metrics (recovered_jobs,
//                      replayed_records, retry_attempts, ...). The CI
//                      serve-chaos job SIGKILLs and restarts the server
//                      under this mode.
//
// Exit code is non-zero on any hang-adjacent failure: a client that
// cannot connect, a transport error, an unexpected response code, or a
// per-tenant counter mismatch between the server's `stats` op and the
// client-side tallies. Under --chaos only unexpected response codes
// fail the run; the point is that every failure mode is a *classified*
// degradation, never a hang or a crash of the bench itself.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "linalg/random.h"
#include "obs/json.h"
#include "obs/stopwatch.h"
#include "parallel/worker_thread.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "status/status.h"

namespace repro::bench {
namespace {

using obs::Json;

struct ClientTally {
  std::vector<double> latencies_ms;  // admitted jobs only
  int submitted = 0;
  int accepted = 0;
  int rejected = 0;            // RESOURCE_EXHAUSTED
  int unavailable = 0;         // draining server
  int deadline_exceeded = 0;
  int transient = 0;           // chaos only: NUMERIC_FAULT / IO_ERROR
  int disconnects = 0;         // chaos only: connection lost, reconnected
  int unexpected = 0;          // any code the mix cannot produce
  int transport_errors = 0;
};

Json MakeRequest(int64_t id, const std::string& tenant,
                 const std::string& op) {
  Json request = Json::MakeObject();
  request.object["id"] = Json::MakeNumber(static_cast<double>(id));
  request.object["tenant"] = Json::MakeString(tenant);
  request.object["op"] = Json::MakeString(op);
  return request;
}

Json AttackRequest(int64_t id, const std::string& tenant,
                   const std::string& graph_path,
                   const std::string& attacker) {
  Json request = MakeRequest(id, tenant, "attack");
  request.object["graph"] = Json::MakeString(graph_path);
  request.object["attacker"] = Json::MakeString(attacker);
  request.object["rate"] = Json::MakeNumber(0.05);
  request.object["seed"] = Json::MakeNumber(11);
  return request;
}

Json EvalRequest(int64_t id, const std::string& tenant,
                 const std::string& graph_path) {
  Json request = MakeRequest(id, tenant, "eval");
  request.object["graph"] = Json::MakeString(graph_path);
  request.object["defender"] = Json::MakeString("gcn");
  request.object["runs"] = Json::MakeNumber(1);
  request.object["seed"] = Json::MakeNumber(11);
  return request;
}

/// One client's whole session: connect, submit its slice of the mix,
/// classify every response. Any transport failure aborts the session
/// (counted, never retried — a hang would show up here as the bench
/// itself wedging, which is exactly what the CI smoke guards against).
// Chaos reconnect: the server may be between SIGKILL and restart, so
// keep knocking for a few seconds before giving up.
bool ChaosConnect(serve::Client* client, const std::string& socket_path) {
  for (int i = 0; i < 400; ++i) {
    if (client->Connect(socket_path).ok()) return true;
    ::usleep(20000);
  }
  return false;
}

void RunClient(const std::string& socket_path, const std::string& tenant,
               const std::string& graph_path, int jobs, bool force_deadline,
               bool send_eval, bool chaos, ClientTally* tally) {
  serve::Client client;
  if (chaos ? !ChaosConnect(&client, socket_path)
            : !client.Connect(socket_path).ok()) {
    tally->transport_errors++;
    return;
  }
  std::vector<Json> requests;
  for (int j = 0; j < jobs; ++j) {
    // Job 1 is the expensive attacker so cheap and slow work interleave
    // in the server's FIFO queue; the rest are cheap random flips.
    requests.push_back(AttackRequest(
        j + 1, tenant, graph_path, j == 1 ? "peega" : "random"));
  }
  if (send_eval && !requests.empty()) {
    requests.back() = EvalRequest(jobs, tenant, graph_path);
  }
  if (force_deadline) {
    Json doomed =
        AttackRequest(jobs + 1, tenant, graph_path, "random");
    doomed.object["deadline_ms"] = Json::MakeNumber(1e-6);
    requests.push_back(std::move(doomed));
  }
  for (const Json& request : requests) {
    tally->submitted++;
    obs::StopWatch watch;
    status::StatusOr<Json> response = client.Call(request);
    if (!response.ok()) {
      if (!chaos) {
        tally->transport_errors++;
        return;
      }
      // The server died under us (that's the drill). The in-flight
      // response is lost — the journal guarantees the JOB is not —
      // so reconnect and move on to the next request.
      tally->disconnects++;
      client.Close();
      if (!ChaosConnect(&client, socket_path)) {
        tally->transport_errors++;
        return;
      }
      continue;
    }
    const std::string code =
        serve::GetString(*response, "code", "<missing>");
    if (code == "OK") {
      tally->accepted++;
      tally->latencies_ms.push_back(watch.Seconds() * 1e3);
    } else if (code == "DEADLINE_EXCEEDED") {
      tally->accepted++;
      tally->deadline_exceeded++;
      tally->latencies_ms.push_back(watch.Seconds() * 1e3);
    } else if (code == "RESOURCE_EXHAUSTED") {
      tally->rejected++;
    } else if (code == "UNAVAILABLE") {
      tally->unavailable++;
    } else if (chaos && (code == "NUMERIC_FAULT" || code == "IO_ERROR")) {
      // Injected transient failure that exhausted its retry budget (or
      // refused admission at a journal-append failpoint): a classified
      // degradation, not a bench failure.
      tally->transient++;
    } else {
      std::fprintf(stderr, "serve_load: %s job %s -> %s: %s\n",
                   tenant.c_str(),
                   serve::GetString(request, "op", "?").c_str(),
                   code.c_str(),
                   serve::GetString(*response, "error", "").c_str());
      tally->unexpected++;
    }
  }
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int Main(int argc, char** argv) {
  BenchReporter reporter("serve", &argc, argv);

  const std::string socket_flag = ConsumeFlag("--socket", &argc, argv);
  const std::string clients_flag = ConsumeFlag("--clients", &argc, argv);
  const std::string jobs_flag = ConsumeFlag("--jobs", &argc, argv);
  const std::string deadline_flag =
      ConsumeFlag("--deadline-fail", &argc, argv);
  const std::string max_queue_flag =
      ConsumeFlag("--max-queue", &argc, argv);
  const std::string shutdown_flag = ConsumeFlag("--shutdown", &argc, argv);
  const std::string journal_flag = ConsumeFlag("--journal", &argc, argv);
  const std::string chaos_flag = ConsumeFlag("--chaos", &argc, argv);

  const int clients =
      clients_flag.empty() ? 64 : std::atoi(clients_flag.c_str());
  const int jobs = jobs_flag.empty() ? 4 : std::atoi(jobs_flag.c_str());
  const int deadline_fail =
      deadline_flag.empty() ? 1 : std::atoi(deadline_flag.c_str());
  const bool chaos = !chaos_flag.empty() && chaos_flag != "0";
  const bool self_serve = socket_flag.empty();
  const bool send_shutdown =
      shutdown_flag.empty() ? self_serve : shutdown_flag != "0";

  // Tenant names carry the pid so repeated runs against one long-lived
  // server keep their per-tenant counters disjoint.
  const std::string run_tag = std::to_string(::getpid());
  const std::string temp_dir = std::filesystem::temp_directory_path();
  const std::string graph_path =
      temp_dir + "/serve_load_" + run_tag + "_graph.txt";
  {
    linalg::Rng rng(20240502);
    const graph::Graph g = graph::MakeCoraLike(&rng, 0.05);
    const status::Status saved = graph::SaveGraph(g, graph_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "serve_load: %s\n", saved.ToString().c_str());
      return 1;
    }
    reporter.Config("graph_nodes", static_cast<double>(g.num_nodes));
  }

  std::unique_ptr<serve::Server> server;
  std::string socket_path = socket_flag;
  if (self_serve) {
    serve::ServerOptions options;
    options.socket_path = temp_dir + "/serve_load_" + run_tag + ".sock";
    options.max_queue = max_queue_flag.empty()
                            ? 64
                            : std::atoi(max_queue_flag.c_str());
    options.journal_dir = journal_flag;
    server = std::make_unique<serve::Server>(options);
    const status::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "serve_load: %s\n", started.ToString().c_str());
      return 1;
    }
    socket_path = options.socket_path;
  }
  reporter.Config("socket", socket_path);
  reporter.Config("clients", static_cast<double>(clients));
  reporter.Config("jobs_per_client", static_cast<double>(jobs));
  reporter.Config("deadline_forced", static_cast<double>(deadline_fail));
  reporter.Config("chaos", chaos ? 1.0 : 0.0);

  std::vector<ClientTally> tallies(static_cast<size_t>(clients));
  obs::StopWatch load_watch;
  {
    std::vector<std::unique_ptr<parallel::WorkerThread>> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.push_back(std::make_unique<parallel::WorkerThread>([&, c] {
        RunClient(socket_path, "load" + run_tag + "-" + std::to_string(c),
                  graph_path, jobs, /*force_deadline=*/c < deadline_fail,
                  /*send_eval=*/c % 16 == 0, chaos, &tallies[c]);
      }));
    }
    for (auto& worker : workers) worker->Join();
  }
  const double load_seconds = load_watch.Seconds();
  reporter.RecordPhase("load:run", load_seconds);

  ClientTally total;
  std::vector<double> latencies;
  for (const ClientTally& tally : tallies) {
    total.submitted += tally.submitted;
    total.accepted += tally.accepted;
    total.rejected += tally.rejected;
    total.unavailable += tally.unavailable;
    total.deadline_exceeded += tally.deadline_exceeded;
    total.transient += tally.transient;
    total.disconnects += tally.disconnects;
    total.unexpected += tally.unexpected;
    total.transport_errors += tally.transport_errors;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());

  // Cross-check the server's per-tenant counters against the
  // client-side tallies: every admission and rejection this run caused
  // must be attributed to exactly this run's tenants.
  int stats_accepted = -1;
  int stats_rejected = -1;
  int stats_completed = -1;
  bool chaos_stats_seen = false;
  {
    serve::Client control;
    const bool control_connected =
        chaos ? ChaosConnect(&control, socket_path)
              : control.Connect(socket_path).ok();
    if (control_connected) {
      status::StatusOr<Json> stats =
          control.Call(MakeRequest(1, "bench-control", "stats"));
      const Json* result =
          stats.ok() ? stats->Find("result") : nullptr;
      // Chaos drill payoff: the server's own account of what the crash
      // cost (nothing) and what the retries absorbed, surfaced into the
      // bench artifact for the CI schema check.
      if (chaos && result != nullptr) {
        const Json* recovery = result->Find("recovery");
        const Json* retry = result->Find("retry");
        const Json* journal = result->Find("journal");
        if (recovery != nullptr && retry != nullptr) {
          chaos_stats_seen = true;
          reporter.Config(
              "recovered_jobs",
              serve::GetNumber(*recovery, "requeued_jobs", 0.0));
          reporter.Config(
              "replayed_records",
              serve::GetNumber(*recovery, "replayed_records", 0.0));
          reporter.Config(
              "corrupt_records",
              serve::GetNumber(*recovery, "corrupt_records", 0.0));
          reporter.Config("recovery_ms",
                          serve::GetNumber(*recovery, "recovery_ms", 0.0));
          reporter.Config("retry_attempts",
                          serve::GetNumber(*retry, "attempts", 0.0));
          reporter.Config("retry_succeeded",
                          serve::GetNumber(*retry, "succeeded", 0.0));
          reporter.Config("retry_exhausted",
                          serve::GetNumber(*retry, "exhausted", 0.0));
        }
        if (journal != nullptr) {
          reporter.Config("journal_appends",
                          serve::GetNumber(*journal, "appends", 0.0));
          reporter.Config(
              "journal_append_errors",
              serve::GetNumber(*journal, "append_errors", 0.0));
        }
      }
      const Json* tenants =
          result != nullptr ? result->Find("tenants") : nullptr;
      if (tenants != nullptr) {
        stats_accepted = stats_rejected = stats_completed = 0;
        const std::string prefix = "load" + run_tag + "-";
        for (const auto& [name, entry] : tenants->object) {
          if (name.rfind(prefix, 0) != 0) continue;
          stats_accepted += static_cast<int>(
              serve::GetNumber(entry, "accepted", 0.0));
          stats_rejected += static_cast<int>(
              serve::GetNumber(entry, "rejected", 0.0));
          stats_completed += static_cast<int>(
              serve::GetNumber(entry, "completed", 0.0));
        }
      }
      if (send_shutdown) {
        status::StatusOr<Json> drained =
            control.Call(MakeRequest(2, "bench-control", "shutdown"));
        if (!drained.ok()) {
          std::fprintf(stderr, "serve_load: shutdown failed: %s\n",
                       drained.status().ToString().c_str());
        }
      }
    }
  }
  if (server != nullptr) server->Wait();
  std::filesystem::remove(graph_path);

  const double throughput =
      load_seconds > 0.0 ? total.accepted / load_seconds : 0.0;
  const double rejection_rate =
      total.submitted > 0
          ? static_cast<double>(total.rejected) / total.submitted
          : 0.0;
  reporter.Config("submitted", static_cast<double>(total.submitted));
  reporter.Config("accepted", static_cast<double>(total.accepted));
  reporter.Config("rejected", static_cast<double>(total.rejected));
  reporter.Config("unavailable", static_cast<double>(total.unavailable));
  reporter.Config("deadline_exceeded",
                  static_cast<double>(total.deadline_exceeded));
  if (chaos) {
    reporter.Config("transient", static_cast<double>(total.transient));
    reporter.Config("disconnects",
                    static_cast<double>(total.disconnects));
  }
  reporter.Config("p50_ms", Percentile(latencies, 0.50));
  reporter.Config("p95_ms", Percentile(latencies, 0.95));
  reporter.Config("p99_ms", Percentile(latencies, 0.99));
  reporter.Config("throughput_rps", throughput);
  reporter.Config("rejection_rate", rejection_rate);

  std::printf(
      "serve-load%s: %d clients x %d jobs -> %d accepted %d rejected "
      "%d unavailable %d deadline-exceeded %d transient "
      "%d disconnects in %.2fs "
      "(%.1f rps, p50 %.1fms p95 %.1fms p99 %.1fms)\n",
      chaos ? " (chaos)" : "", clients, jobs, total.accepted,
      total.rejected, total.unavailable, total.deadline_exceeded,
      total.transient, total.disconnects, load_seconds, throughput,
      Percentile(latencies, 0.50), Percentile(latencies, 0.95),
      Percentile(latencies, 0.99));

  // Under chaos, lost connections are the drill, not a failure; an
  // unexpected response code still is.
  bool ok = total.unexpected == 0 &&
            (chaos || total.transport_errors == 0);
  if (!ok) {
    std::fprintf(stderr,
                 "serve_load: FAILED — %d unexpected codes, "
                 "%d transport errors\n",
                 total.unexpected, total.transport_errors);
  }
  if (chaos && !chaos_stats_seen) {
    std::fprintf(stderr,
                 "serve_load: FAILED — chaos run but the stats op "
                 "reported no recovery/retry objects (server not "
                 "started with --journal?)\n");
    ok = false;
  }
  // With UNAVAILABLE rejections a client stops early, so stats can only
  // be reconciled when the server stayed up for the whole mix. A chaos
  // run loses responses by design, so the cross-check is skipped.
  if (!chaos && stats_accepted >= 0 && total.unavailable == 0) {
    if (stats_accepted != total.accepted ||
        stats_rejected != total.rejected) {
      std::fprintf(stderr,
                   "serve_load: FAILED — stats mismatch: server saw "
                   "%d accepted / %d rejected / %d completed, clients "
                   "saw %d accepted / %d rejected\n",
                   stats_accepted, stats_rejected, stats_completed,
                   total.accepted, total.rejected);
      ok = false;
    }
  } else if (stats_accepted < 0) {
    std::fprintf(stderr,
                 "serve_load: note — stats op unavailable, per-tenant "
                 "cross-check skipped\n");
  }
  reporter.Finish();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace repro::bench

int main(int argc, char** argv) {
  return repro::bench::Main(argc, argv);
}
