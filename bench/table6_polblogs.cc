// Reproduces Tab. VI: node classification accuracy on the Polblogs-like
// dataset under a 0.1 perturbation rate. GCN-Jaccard and GNAT's feature
// view are dropped (identity features), as in the paper's footnote.
#include "table_accuracy.h"

int main() {
  const auto dataset = repro::bench::MakeDataset("polblogs");
  repro::bench::RunAccuracyTable(dataset, 0.1);
  return 0;
}
