// Reproduces Tab. VI: node classification accuracy on the Polblogs-like
// dataset under a 0.1 perturbation rate. GCN-Jaccard and GNAT's feature
// view are dropped (identity features), as in the paper's footnote.
#include "table_accuracy.h"

int main(int argc, char** argv) {
  repro::bench::BenchReporter reporter("table6_polblogs", &argc, argv);
  const auto dataset = repro::bench::MakeDataset("polblogs");
  repro::bench::RunAccuracyTable(&reporter, dataset, 0.1);
  return 0;
}
