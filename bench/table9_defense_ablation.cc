// Reproduces Tab. IX: GNAT variant ablation under PEEGA at r = 0.1.
// Variants: single views (t / f / e), multi-view combinations (t+f,
// t+e, f+e, t+f+e) and merged-graph counterparts (tf, te, fe, tfe).
// The paper's shape: multi-view > merged > single, with t+f+e best.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("table9_defense_ablation", &argc, argv);
  const std::vector<std::string> names = {"cora", "citeseer", "polblogs"};
  const eval::PipelineOptions pipeline = bench::BenchPipeline();

  std::printf("Tab. IX — GNAT ablation under PEEGA (r=0.1, %d runs)\n",
              pipeline.runs);

  struct Variant {
    const char* label;
    bool t, f, e, merged;
  };
  const Variant variants[] = {
      {"GNAT-t", true, false, false, false},
      {"GNAT-f", false, true, false, false},
      {"GNAT-e", false, false, true, false},
      {"GNAT-t+f", true, true, false, false},
      {"GNAT-t+e", true, false, true, false},
      {"GNAT-f+e", false, true, true, false},
      {"GNAT-t+f+e", true, true, true, false},
      {"GNAT-tf", true, true, false, true},
      {"GNAT-te", true, false, true, true},
      {"GNAT-fe", false, true, true, true},
      {"GNAT-tfe", true, true, true, true},
  };

  std::vector<std::string> header = {"Variant"};
  std::vector<bench::Dataset> datasets;
  std::vector<graph::Graph> poisoned;
  for (const auto& name : names) {
    datasets.push_back(bench::MakeDataset(name));
    header.push_back(datasets.back().graph.name);
    core::PeegaAttack attacker(datasets.back().peega);
    attack::AttackOptions options;
    options.perturbation_rate = 0.1;
    poisoned.push_back(eval::RunAttack(&attacker, datasets.back().graph,
                                       options, pipeline.seed)
                           .poisoned);
  }

  eval::TablePrinter table(header);
  for (const auto& variant : variants) {
    std::vector<std::string> row = {variant.label};
    for (size_t d = 0; d < datasets.size(); ++d) {
      // Feature view is not applicable on identity features.
      if (variant.f && !datasets[d].features_usable) {
        row.push_back("-");
        continue;
      }
      core::GnatDefender::Options options = datasets[d].gnat;
      options.use_topology = variant.t;
      options.use_feature = variant.f;
      options.use_ego = variant.e;
      options.merge_views = variant.merged;
      core::GnatDefender gnat(options);
      const auto result =
          eval::EvaluateDefense(&gnat, poisoned[d], pipeline);
      row.push_back(eval::FormatMeanStd(result.accuracy));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf("paper: multi-view (x+y) beats merged (xy); t+f+e best "
              "where features are usable\n");
  return 0;
}
