// Reproduces Tab. VIII: training time of each defender on the clean
// graphs. The paper's shape: GCN fastest, GNAT only slightly slower
// (three GCN views), Pro-GNN orders of magnitude slower (joint structure
// learning).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/stats.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("table8_defense_time", &argc, argv);
  const std::vector<std::string> names = {"cora", "citeseer", "polblogs"};
  const int runs = bench::Runs();

  std::printf("Tab. VIII — defender training time in seconds (clean "
              "graphs, %d runs)\n", runs);
  std::vector<bench::Dataset> datasets;
  std::vector<std::string> header = {"Defender"};
  for (const auto& name : names) {
    datasets.push_back(bench::MakeDataset(name));
    header.push_back(datasets.back().graph.name);
  }
  eval::TablePrinter table(header);

  // Use the cora defender list for row names; polblogs lacks Jaccard and
  // reports "-" there (as in the paper's Tab. VI footnote).
  auto row_defenders = bench::MakeDefenders(datasets[0]);
  for (size_t d = 0; d < row_defenders.size(); ++d) {
    std::vector<std::string> row = {row_defenders[d]->name()};
    for (auto& dataset : datasets) {
      auto defenders = bench::MakeDefenders(dataset);
      // Match by name (lists differ when Jaccard is dropped).
      defense::Defender* match = nullptr;
      for (auto& defender : defenders) {
        if (defender->name() == row_defenders[d]->name() ||
            (row_defenders[d]->name() == "GNAT" &&
             defender->name().rfind("GNAT", 0) == 0)) {
          match = defender.get();
        }
      }
      if (match == nullptr) {
        row.push_back("-");
        continue;
      }
      eval::PipelineOptions pipeline = bench::BenchPipeline();
      pipeline.runs = runs;
      const auto result =
          eval::EvaluateDefense(match, dataset.graph, pipeline);
      reporter.RecordPhase("defense:" + match->name(),
                           result.mean_train_seconds * runs,
                           static_cast<uint64_t>(runs));
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.2f",
                    result.mean_train_seconds);
      row.push_back(buffer);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf("paper: GCN fastest; GNAT ~2x GCN; Pro-GNN slowest by far\n");
  return 0;
}
