// Google-benchmark microbenchmarks of the numerical substrate: dense
// matmul, SpMM, GCN normalization, truncated eigendecomposition, one
// autodiff train step, and one PEEGA greedy step. These bound the cost
// of everything the experiment harnesses do.
#include <benchmark/benchmark.h>

#include "autograd/tape.h"
#include "core/peega.h"
#include "graph/generators.h"
#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "nn/gcn.h"
#include "nn/optim.h"

namespace {

using namespace repro;
using linalg::Matrix;
using linalg::Rng;

void BM_DenseMatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = linalg::RandomNormal(n, n, 1.0f, &rng);
  const Matrix b = linalg::RandomNormal(n, n, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(128)->Arg(256)->Arg(512);

void BM_SpMM(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const graph::Graph g = graph::MakeCoraLike(&rng, n / 500.0);
  const auto a_n = graph::GcnNormalize(g.adjacency);
  const Matrix x = g.features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::SpMM(a_n, x));
  }
}
BENCHMARK(BM_SpMM)->Arg(250)->Arg(500)->Arg(1000);

void BM_GcnNormalize(benchmark::State& state) {
  Rng rng(3);
  const graph::Graph g = graph::MakeCoraLike(&rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GcnNormalize(g.adjacency));
  }
}
BENCHMARK(BM_GcnNormalize);

void BM_TopKEigen(benchmark::State& state) {
  const int rank = static_cast<int>(state.range(0));
  Rng rng(4);
  const graph::Graph g = graph::MakeCoraLike(&rng, 1.0);
  const auto a_n = graph::GcnNormalize(g.adjacency);
  for (auto _ : state) {
    Rng eig_rng(5);
    benchmark::DoNotOptimize(
        linalg::TopKEigenSymmetric(a_n, rank, &eig_rng));
  }
}
BENCHMARK(BM_TopKEigen)->Arg(8)->Arg(16)->Arg(32);

void BM_GcnTrainStep(benchmark::State& state) {
  Rng rng(6);
  const graph::Graph g = graph::MakeCoraLike(&rng, 1.0);
  nn::Gcn gcn(g.features.cols(), g.num_classes, nn::Gcn::Options(), &rng);
  gcn.Prepare(g);
  nn::Adam adam;
  const Matrix labels = g.OneHotLabels();
  const auto mask = g.NodeMask(g.train_nodes);
  for (auto _ : state) {
    autograd::Tape tape;
    auto fwd = gcn.Forward(&tape, g, /*training=*/true, &rng);
    auto loss = tape.SoftmaxCrossEntropy(fwd.logits, labels, mask);
    tape.Backward(loss);
    for (auto& [param, var] : fwd.bound) adam.Step(param, var.grad());
  }
}
BENCHMARK(BM_GcnTrainStep);

void BM_PeegaGreedyStep(benchmark::State& state) {
  Rng rng(7);
  const graph::Graph g = graph::MakeCoraLike(&rng, 0.5);
  // One greedy step == attack with a budget of one flip.
  for (auto _ : state) {
    core::PeegaAttack attacker;
    attack::AttackOptions options;
    options.perturbation_rate = 1e-9;  // clamps to budget 1
    Rng step_rng(8);
    benchmark::DoNotOptimize(attacker.Attack(g, options, &step_rng));
  }
}
BENCHMARK(BM_PeegaGreedyStep);

}  // namespace

BENCHMARK_MAIN();
