// Google-benchmark microbenchmarks of the numerical substrate: dense
// matmul, SpMM, GCN normalization, truncated eigendecomposition, one
// autodiff train step, and one PEEGA greedy step. These bound the cost
// of everything the experiment harnesses do.
//
// The *Threads variants sweep the pool size (1/2/4/8) through
// parallel::SetNumThreads so the speedup of the row-parallel kernels is
// measured in one run; the per-benchmark label records the count.
// Record results as JSON for EXPERIMENTS.md with e.g.
//   ./build/bench/micro_kernels --benchmark_filter=Threads
//       --benchmark_out=BENCH_threads.json --benchmark_out_format=json
// (one command line; wrapped here for width)
// Speedup requires real cores; on a 1-core machine the sweep instead
// demonstrates the determinism contract (identical outputs, no gain).
#include <benchmark/benchmark.h>

#include <string>

#include "autograd/tape.h"
#include "bench_common.h"
#include "core/peega.h"
#include "graph/generators.h"
#include "linalg/dispatch.h"
#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "nn/gcn.h"
#include "nn/optim.h"
#include "parallel/thread_pool.h"

namespace {

using namespace repro;
using linalg::Matrix;
using linalg::Rng;

// RAII pool-size override so a sweep benchmark can't leak its thread
// count into later benchmarks (registration order is not a contract).
class ScopedThreads {
 public:
  explicit ScopedThreads(benchmark::State& state, int threads)
      : state_(state) {
    parallel::SetNumThreads(threads);
    state_.SetLabel("threads=" + std::to_string(parallel::NumThreads()));
  }
  ~ScopedThreads() { parallel::SetNumThreads(0); }

 private:
  benchmark::State& state_;
};

void BM_DenseMatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = linalg::RandomNormal(n, n, 1.0f, &rng);
  const Matrix b = linalg::RandomNormal(n, n, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(128)->Arg(256)->Arg(512);

void BM_SpMM(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const graph::Graph g = graph::MakeCoraLike(&rng, n / 500.0);
  const auto a_n = graph::GcnNormalize(g.adjacency);
  const Matrix x = g.features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::SpMM(a_n, x));
  }
}
BENCHMARK(BM_SpMM)->Arg(250)->Arg(500)->Arg(1000);

void BM_GcnNormalize(benchmark::State& state) {
  Rng rng(3);
  const graph::Graph g = graph::MakeCoraLike(&rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GcnNormalize(g.adjacency));
  }
}
BENCHMARK(BM_GcnNormalize);

void BM_TopKEigen(benchmark::State& state) {
  const int rank = static_cast<int>(state.range(0));
  Rng rng(4);
  const graph::Graph g = graph::MakeCoraLike(&rng, 1.0);
  const auto a_n = graph::GcnNormalize(g.adjacency);
  for (auto _ : state) {
    Rng eig_rng(5);
    benchmark::DoNotOptimize(
        linalg::TopKEigenSymmetric(a_n, rank, &eig_rng));
  }
}
BENCHMARK(BM_TopKEigen)->Arg(8)->Arg(16)->Arg(32);

void BM_GcnTrainStep(benchmark::State& state) {
  Rng rng(6);
  const graph::Graph g = graph::MakeCoraLike(&rng, 1.0);
  nn::Gcn gcn(g.features.cols(), g.num_classes, nn::Gcn::Options(), &rng);
  gcn.Prepare(g);
  nn::Adam adam;
  const Matrix labels = g.OneHotLabels();
  const auto mask = g.NodeMask(g.train_nodes);
  for (auto _ : state) {
    autograd::Tape tape;
    auto fwd = gcn.Forward(&tape, g, /*training=*/true, &rng);
    auto loss = tape.SoftmaxCrossEntropy(fwd.logits, labels, mask);
    tape.Backward(loss);
    for (auto& [param, var] : fwd.bound) adam.Step(param, var.grad());
  }
}
BENCHMARK(BM_GcnTrainStep);

void BM_PeegaGreedyStep(benchmark::State& state) {
  Rng rng(7);
  const graph::Graph g = graph::MakeCoraLike(&rng, 0.5);
  // One greedy step == attack with a budget of one flip.
  for (auto _ : state) {
    core::PeegaAttack attacker;
    attack::AttackOptions options;
    options.perturbation_rate = 1e-9;  // clamps to budget 1
    Rng step_rng(8);
    benchmark::DoNotOptimize(attacker.Attack(g, options, &step_rng));
  }
}
BENCHMARK(BM_PeegaGreedyStep);

// --------------------------------------------------------------------------
// Thread-count sweeps of the parallel hot paths (see file comment for
// how to record these as BENCH_*.json).
// --------------------------------------------------------------------------

void BM_DenseMatMulThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ScopedThreads scope(state, static_cast<int>(state.range(1)));
  Rng rng(1);
  const Matrix a = linalg::RandomNormal(n, n, 1.0f, &rng);
  const Matrix b = linalg::RandomNormal(n, n, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_DenseMatMulThreads)->ArgsProduct({{512}, {1, 2, 4, 8}});

void BM_SpMMThreads(benchmark::State& state) {
  const ScopedThreads scope(state, static_cast<int>(state.range(0)));
  Rng rng(2);
  const graph::Graph g = graph::MakeCoraLike(&rng, 2.0);
  const auto a_n = graph::GcnNormalize(g.adjacency);
  const Matrix x = g.features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::SpMM(a_n, x));
  }
}
BENCHMARK(BM_SpMMThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PeegaGreedyStepThreads(benchmark::State& state) {
  const ScopedThreads scope(state, static_cast<int>(state.range(0)));
  Rng rng(7);
  const graph::Graph g = graph::MakeCoraLike(&rng, 0.5);
  for (auto _ : state) {
    core::PeegaAttack attacker;
    attack::AttackOptions options;
    options.perturbation_rate = 1e-9;  // clamps to budget 1
    Rng step_rng(8);
    benchmark::DoNotOptimize(attacker.Attack(g, options, &step_rng));
  }
}
BENCHMARK(BM_PeegaGreedyStepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --------------------------------------------------------------------------
// SIMD-variant sweeps of the dispatched kernels. Registered dynamically
// (RegisterSimdVariantBenchmarks, called from main) for exactly the
// variants this machine can run, so the suite never reports a forced
// variant that silently fell back. Record with e.g.
//   ./build/bench/micro_kernels --benchmark_filter=Simd
//       --json BENCH_simd.json
// The dispatch contract makes the outputs bitwise-identical across
// these rows; only the time may differ.
// --------------------------------------------------------------------------

void BM_DenseMatMulSimd(benchmark::State& state, linalg::SimdVariant v) {
  const linalg::ScopedSimdVariant scope(v);
  state.SetLabel(std::string("simd=") + linalg::SimdVariantName(v));
  const int n = 256;
  Rng rng(1);
  const Matrix a = linalg::RandomNormal(n, n, 1.0f, &rng);
  const Matrix b = linalg::RandomNormal(n, n, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}

void BM_MatMulTransBSimd(benchmark::State& state, linalg::SimdVariant v) {
  const linalg::ScopedSimdVariant scope(v);
  state.SetLabel(std::string("simd=") + linalg::SimdVariantName(v));
  Rng rng(9);
  const Matrix a = linalg::RandomNormal(256, 128, 1.0f, &rng);
  const Matrix b = linalg::RandomNormal(256, 128, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatMulTransB(a, b));
  }
}

void BM_SpMMSimd(benchmark::State& state, linalg::SimdVariant v) {
  const linalg::ScopedSimdVariant scope(v);
  state.SetLabel(std::string("simd=") + linalg::SimdVariantName(v));
  Rng rng(2);
  const graph::Graph g = graph::MakeCoraLike(&rng, 2.0);
  const auto a_n = graph::GcnNormalize(g.adjacency);
  const Matrix x = g.features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::SpMM(a_n, x));
  }
}

void BM_RowSoftmaxSimd(benchmark::State& state, linalg::SimdVariant v) {
  const linalg::ScopedSimdVariant scope(v);
  state.SetLabel(std::string("simd=") + linalg::SimdVariantName(v));
  Rng rng(10);
  const Matrix a = linalg::RandomNormal(2048, 64, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::RowSoftmax(a));
  }
}

void BM_PeegaGreedyStepSimd(benchmark::State& state, linalg::SimdVariant v) {
  const linalg::ScopedSimdVariant scope(v);
  state.SetLabel(std::string("simd=") + linalg::SimdVariantName(v));
  Rng rng(7);
  const graph::Graph g = graph::MakeCoraLike(&rng, 0.5);
  for (auto _ : state) {
    core::PeegaAttack attacker;
    attack::AttackOptions options;
    options.perturbation_rate = 1e-9;  // clamps to budget 1
    Rng step_rng(8);
    benchmark::DoNotOptimize(attacker.Attack(g, options, &step_rng));
  }
}

void RegisterSimdVariantBenchmarks() {
  using Fn = void (*)(benchmark::State&, linalg::SimdVariant);
  const std::pair<const char*, Fn> benches[] = {
      {"BM_DenseMatMulSimd", &BM_DenseMatMulSimd},
      {"BM_MatMulTransBSimd", &BM_MatMulTransBSimd},
      {"BM_SpMMSimd", &BM_SpMMSimd},
      {"BM_RowSoftmaxSimd", &BM_RowSoftmaxSimd},
      {"BM_PeegaGreedyStepSimd", &BM_PeegaGreedyStepSimd},
  };
  for (const auto& [name, fn] : benches) {
    for (const linalg::SimdVariant v :
         {linalg::SimdVariant::kGeneric, linalg::SimdVariant::kAvx2,
          linalg::SimdVariant::kNeon}) {
      if (!linalg::SimdVariantUsable(v)) continue;
      benchmark::RegisterBenchmark(
          (std::string(name) + "/" + linalg::SimdVariantName(v)).c_str(),
          fn, v);
    }
  }
}

}  // namespace

// Forwards every google-benchmark result into the BenchReporter so
// `--json` emits the same {bench, config, threads, metrics, phases}
// schema as the table/fig benches: one phase per benchmark, wall_ms =
// accumulated real time, count = iterations.
class PhaseForwardingReporter : public benchmark::ConsoleReporter {
 public:
  explicit PhaseForwardingReporter(repro::bench::BenchReporter* out)
      : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      out_->RecordPhase(run.benchmark_name(), run.real_accumulated_time,
                        static_cast<uint64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  repro::bench::BenchReporter* out_;
};

// Custom main (instead of BENCHMARK_MAIN) so the run-metadata line —
// including the default thread count — lands in every saved bench log,
// and --json/--trace work exactly as in the table benches. The reporter
// consumes its flags before benchmark::Initialize sees argv.
int main(int argc, char** argv) {
  repro::bench::BenchReporter reporter("micro_kernels", &argc, argv);
  RegisterSimdVariantBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  PhaseForwardingReporter display(&reporter);
  benchmark::RunSpecifiedBenchmarks(&display);
  benchmark::Shutdown();
  return 0;
}
