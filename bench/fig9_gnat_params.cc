// Reproduces Fig. 9 — GNAT hyper-parameter sensitivity on the
// Citeseer-like dataset under PEEGA at r = 0.1: sweeping k_t (topology
// graph hops), k_f (feature-graph neighbors), and k_e (ego self-loop
// weight) one at a time around the defaults. The paper's shape:
// accuracy rises then falls as each parameter grows.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("fig9_gnat_params", &argc, argv);
  const auto dataset = bench::MakeDataset("citeseer");
  const eval::PipelineOptions pipeline = bench::BenchPipeline();

  core::PeegaAttack attacker(dataset.peega);
  attack::AttackOptions attack_options;
  attack_options.perturbation_rate = 0.1;
  const graph::Graph poisoned =
      eval::RunAttack(&attacker, dataset.graph, attack_options,
                      pipeline.seed)
          .poisoned;

  auto accuracy = [&](const core::GnatDefender::Options& options) {
    core::GnatDefender gnat(options);
    return eval::FormatMeanStd(
        eval::EvaluateDefense(&gnat, poisoned, pipeline).accuracy);
  };

  std::printf("Fig. 9 — GNAT parameter sweeps (%s, PEEGA r=0.1, defaults "
              "{k_t=%d, k_f=%d, k_e=%d})\n",
              dataset.graph.name.c_str(), dataset.gnat.k_t,
              dataset.gnat.k_f, dataset.gnat.k_e);

  {
    eval::TablePrinter table({"k_t", "Accuracy"});
    for (const int k_t : {1, 2, 3}) {
      core::GnatDefender::Options options = dataset.gnat;
      options.k_t = k_t;
      table.AddRow({std::to_string(k_t), accuracy(options)});
    }
    table.Print(std::cout);
  }
  {
    eval::TablePrinter table({"k_f", "Accuracy"});
    for (const int k_f : {0, 5, 10, 15, 20}) {
      core::GnatDefender::Options options = dataset.gnat;
      options.k_f = k_f;
      table.AddRow({std::to_string(k_f), accuracy(options)});
    }
    table.Print(std::cout);
  }
  {
    eval::TablePrinter table({"k_e", "Accuracy"});
    for (const int k_e : {0, 5, 10, 15, 20}) {
      core::GnatDefender::Options options = dataset.gnat;
      options.k_e = k_e;
      table.AddRow({std::to_string(k_e), accuracy(options)});
    }
    table.Print(std::cout);
  }
  std::printf("paper: each sweep rises then falls around the tuned "
              "default\n");
  return 0;
}
