// Reproduces Tab. VII: wall-clock seconds each attacker needs to produce
// a poison graph at r = 0.1 on the three datasets. The paper's shape:
// PEEGA is the fastest designed attacker (single-level objective, no
// inner model training); PGD < MinMax < Metattack; GF-Attack pays for
// per-candidate spectral recomputation.
//
// Flags (beyond the common --json/--trace):
//   --engine {tape,incremental}   objective engine PEEGA uses in the
//     main table (default incremental; see EXPERIMENTS.md).
//   --scale-n1e6 1                adds the million-node smoke phase to
//     the scale campaign (off by default: too slow for CI).
//
// After the table the bench runs both engines head-to-head on a fixed
// n=1000 cora-like graph and records the speedup (and a flip-sequence
// equality check) under "engine:*" phases and the
// "engine_speedup_n1000" config key of BENCH_table7.json; then the
// sparse-first scale campaign runs PEEGA on streaming SBM graphs at
// n=1e4/1e5, recording wall-clock and peak RSS under "scale:*" phases.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/peega.h"
#include "debug/check.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/streaming_sbm.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("table7_attack_time", &argc, argv);
  const std::string scale_n1e6 =
      bench::ConsumeFlag("--scale-n1e6", &argc, argv);
  const std::string engine_flag = bench::ConsumeFlag("--engine", &argc, argv);
  PEEGA_CHECK(engine_flag.empty() || engine_flag == "tape" ||
              engine_flag == "incremental")
      << " — --engine takes tape or incremental, got " << engine_flag;
  const core::PeegaAttack::Engine engine =
      engine_flag == "tape" ? core::PeegaAttack::Engine::kTape
                            : core::PeegaAttack::Engine::kIncremental;
  reporter.Config("engine", engine_flag.empty() ? "incremental" : engine_flag);

  const std::vector<std::string> names = {"cora", "citeseer", "polblogs"};
  attack::AttackOptions options;
  options.perturbation_rate = 0.1;
  const int runs = bench::Runs();
  reporter.Config("perturbation_rate", options.perturbation_rate);

  std::printf("Tab. VII — attack generation time in seconds (r=0.1, "
              "%d runs)\n", runs);
  std::vector<std::string> header = {"Attacker"};
  std::vector<bench::Dataset> datasets;
  for (const auto& name : names) {
    datasets.push_back(bench::MakeDataset(name));
    datasets.back().peega.engine = engine;
    header.push_back(datasets.back().graph.name);
  }
  eval::TablePrinter table(header);

  // One row per attacker; attacker list is identical across datasets.
  const size_t n_attackers = bench::MakeAttackers(datasets[0]).size();
  for (size_t a = 0; a < n_attackers; ++a) {
    std::vector<std::string> row;
    for (const auto& dataset : datasets) {
      auto attackers = bench::MakeAttackers(dataset);
      if (row.empty()) row.push_back(attackers[a]->name());
      // One warm-up attack (seed 917, discarded) keeps pool spin-up and
      // lazy one-time work out of the first measured cell; the measured
      // repeats reuse the historical seeds 917..917+runs-1 so the table
      // is unchanged from before the warm-up fix.
      std::vector<double> seconds;
      const int warmup = 1;
      int calls = 0;
      reporter.MeasureRepeats(
          "attack:" + attackers[a]->name() + ":" + dataset.graph.name,
          warmup, runs, [&] {
            const int run = calls++ - warmup;  // negative during warm-up
            const auto result =
                eval::RunAttack(attackers[a].get(), dataset.graph, options,
                                917 + std::max(run, 0));
            if (run >= 0) seconds.push_back(result.elapsed_seconds);
          });
      row.push_back(
          eval::FormatMeanStd(eval::Summarize(seconds), 1.0, 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf("paper: PEEGA fastest on Cora/Citeseer; bi-level attackers "
              "(Metattack) and spectral scoring (GF-Attack) slowest\n");

  // --- Incremental vs tape engine, fixed n = 1000 -------------------------
  // Same PEEGA attack through both objective engines on one cora-like
  // graph of exactly 1000 nodes (independent of REPRO_SCALE, so the
  // recorded speedup is comparable across runs). Small rate keeps the
  // tape side affordable; both engines must commit the identical flip
  // sequence — the bench double-checks the differential contract before
  // reporting a speedup.
  {
    linalg::Rng graph_rng(20220901);
    const graph::Graph g = graph::MakeCoraLike(&graph_rng, 2.0);  // n = 1000
    PEEGA_CHECK_EQ(g.num_nodes, 1000);
    attack::AttackOptions compare;
    compare.perturbation_rate = 0.01;
    reporter.Config("engine_compare_nodes",
                    static_cast<double>(g.num_nodes));
    reporter.Config("engine_compare_rate", compare.perturbation_rate);

    double wall_ms[2] = {0.0, 0.0};
    attack::AttackResult results[2];
    const core::PeegaAttack::Engine engines[2] = {
        core::PeegaAttack::Engine::kTape,
        core::PeegaAttack::Engine::kIncremental};
    const char* engine_names[2] = {"tape", "incremental"};
    for (int e = 0; e < 2; ++e) {
      core::PeegaAttack::Options peega;
      peega.engine = engines[e];
      core::PeegaAttack attacker(peega);
      const auto stats = reporter.MeasureRepeats(
          std::string("engine:") + engine_names[e] + ":n1000",
          /*warmup=*/0, /*repeats=*/1, [&] {
            linalg::Rng rng(917);
            results[e] = attacker.Attack(g, compare, &rng);
          });
      wall_ms[e] = stats.min_ms;
    }
    PEEGA_CHECK_EQ(results[0].flips.size(), results[1].flips.size());
    for (size_t i = 0; i < results[0].flips.size(); ++i) {
      const attack::Flip& t = results[0].flips[i];
      const attack::Flip& n = results[1].flips[i];
      PEEGA_CHECK(t.is_feature == n.is_feature && t.a == n.a && t.b == n.b)
          << " — engines diverged at flip " << i;
    }
    const double speedup = wall_ms[0] / std::max(wall_ms[1], 1e-9);
    reporter.Config("engine_speedup_n1000", speedup);
    std::printf("engine comparison (n=%d, r=%.2f, %zu flips): tape %.2fs, "
                "incremental %.2fs, speedup %.1fx\n",
                g.num_nodes, compare.perturbation_rate,
                results[0].flips.size(), wall_ms[0] / 1e3, wall_ms[1] / 1e3,
                speedup);
  }

  // --- Sparse-first scale campaign: streaming SBM -------------------------
  // PEEGA on streaming SBM graphs far beyond the dense path's reach:
  // incremental engine in features-only mode, where every engine cache
  // is O(N·F) and the commit path never touches an N x N matrix. Each
  // phase records wall-clock AND the process peak RSS; CI asserts a
  // ceiling on the n1e5 value that a single dense adjacency (40 GB at
  // n=1e5) would blow through, proving the path stayed sparse. Phases
  // run smallest-first because peak RSS is a process-wide high-water
  // mark. The budget is pinned to ~10 flips at every n so the phases
  // compare per-iteration cost, not budget growth.
  {
    std::vector<std::pair<int, const char*>> sizes = {{10000, "n1e4"},
                                                      {100000, "n1e5"}};
    if (scale_n1e6 == "1") sizes.emplace_back(1000000, "n1e6");
    for (const auto& [n, tag] : sizes) {
      graph::StreamingSbmConfig config;
      config.num_nodes = n;
      config.seed = 7;
      graph::Graph g;
      reporter.MeasureRepeats(std::string("scale_gen:") + tag,
                              /*warmup=*/0, /*repeats=*/1, [&] {
                                graph::StreamingSbm stream(config);
                                g = stream.Materialize();
                              });
      attack::AttackOptions scale_options;
      scale_options.perturbation_rate =
          10.0 / static_cast<double>(g.NumEdges());
      core::PeegaAttack::Options peega;
      peega.engine = core::PeegaAttack::Engine::kIncremental;
      peega.mode = core::PeegaAttack::Mode::kFeaturesOnly;
      core::PeegaAttack attacker(peega);
      attack::AttackResult result;
      const std::string phase = std::string("scale:") + tag;
      reporter.MeasureRepeats(phase, /*warmup=*/0, /*repeats=*/1, [&] {
        linalg::Rng rng(917);
        result = attacker.Attack(g, scale_options, &rng);
      });
      reporter.RecordPhaseRss(phase);
      reporter.RecordPhaseStatus(phase, result.status);
      reporter.Config(std::string("scale_") + tag + "_nodes",
                      static_cast<double>(n));
      reporter.Config(std::string("scale_") + tag + "_edges",
                      static_cast<double>(g.NumEdges()));
      reporter.Config(std::string("scale_") + tag + "_flips",
                      static_cast<double>(result.flips.size()));
      std::printf("scale %s: n=%d |E|=%lld flips=%zu peak-rss=%.1f MB\n",
                  tag, n, static_cast<long long>(g.NumEdges()),
                  result.flips.size(),
                  static_cast<double>(bench::PeakRssBytes()) / (1024.0 * 1024.0));
    }
  }
  return 0;
}
