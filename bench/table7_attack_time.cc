// Reproduces Tab. VII: wall-clock seconds each attacker needs to produce
// a poison graph at r = 0.1 on the three datasets. The paper's shape:
// PEEGA is the fastest designed attacker (single-level objective, no
// inner model training); PGD < MinMax < Metattack; GF-Attack pays for
// per-candidate spectral recomputation.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/stats.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("table7_attack_time", &argc, argv);
  const std::vector<std::string> names = {"cora", "citeseer", "polblogs"};
  attack::AttackOptions options;
  options.perturbation_rate = 0.1;
  const int runs = bench::Runs();
  reporter.Config("perturbation_rate", options.perturbation_rate);

  std::printf("Tab. VII — attack generation time in seconds (r=0.1, "
              "%d runs)\n", runs);
  std::vector<std::string> header = {"Attacker"};
  std::vector<bench::Dataset> datasets;
  for (const auto& name : names) {
    datasets.push_back(bench::MakeDataset(name));
    header.push_back(datasets.back().graph.name);
  }
  eval::TablePrinter table(header);

  // One row per attacker; attacker list is identical across datasets.
  const size_t n_attackers = bench::MakeAttackers(datasets[0]).size();
  for (size_t a = 0; a < n_attackers; ++a) {
    std::vector<std::string> row;
    for (const auto& dataset : datasets) {
      auto attackers = bench::MakeAttackers(dataset);
      if (row.empty()) row.push_back(attackers[a]->name());
      // One warm-up attack (seed 917, discarded) keeps pool spin-up and
      // lazy one-time work out of the first measured cell; the measured
      // repeats reuse the historical seeds 917..917+runs-1 so the table
      // is unchanged from before the warm-up fix.
      std::vector<double> seconds;
      const int warmup = 1;
      int calls = 0;
      reporter.MeasureRepeats(
          "attack:" + attackers[a]->name() + ":" + dataset.graph.name,
          warmup, runs, [&] {
            const int run = calls++ - warmup;  // negative during warm-up
            const auto result =
                eval::RunAttack(attackers[a].get(), dataset.graph, options,
                                917 + std::max(run, 0));
            if (run >= 0) seconds.push_back(result.elapsed_seconds);
          });
      row.push_back(
          eval::FormatMeanStd(eval::Summarize(seconds), 1.0, 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf("paper: PEEGA fastest on Cora/Citeseer; bi-level attackers "
              "(Metattack) and spectral scoring (GF-Attack) slowest\n");
  return 0;
}
