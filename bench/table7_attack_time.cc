// Reproduces Tab. VII: wall-clock seconds each attacker needs to produce
// a poison graph at r = 0.1 on the three datasets. The paper's shape:
// PEEGA is the fastest designed attacker (single-level objective, no
// inner model training); PGD < MinMax < Metattack; GF-Attack pays for
// per-candidate spectral recomputation.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/stats.h"
#include "eval/table.h"

int main() {
  using namespace repro;
  bench::PrintRunMetadata();
  const std::vector<std::string> names = {"cora", "citeseer", "polblogs"};
  attack::AttackOptions options;
  options.perturbation_rate = 0.1;
  const int runs = bench::Runs();

  std::printf("Tab. VII — attack generation time in seconds (r=0.1, "
              "%d runs)\n", runs);
  std::vector<std::string> header = {"Attacker"};
  std::vector<bench::Dataset> datasets;
  for (const auto& name : names) {
    datasets.push_back(bench::MakeDataset(name));
    header.push_back(datasets.back().graph.name);
  }
  eval::TablePrinter table(header);

  // One row per attacker; attacker list is identical across datasets.
  const size_t n_attackers = bench::MakeAttackers(datasets[0]).size();
  for (size_t a = 0; a < n_attackers; ++a) {
    std::vector<std::string> row;
    for (const auto& dataset : datasets) {
      auto attackers = bench::MakeAttackers(dataset);
      if (row.empty()) row.push_back(attackers[a]->name());
      std::vector<double> seconds;
      for (int run = 0; run < runs; ++run) {
        const auto result = eval::RunAttack(
            attackers[a].get(), dataset.graph, options, 917 + run);
        seconds.push_back(result.elapsed_seconds);
      }
      row.push_back(
          eval::FormatMeanStd(eval::Summarize(seconds), 1.0, 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf("paper: PEEGA fastest on Cora/Citeseer; bi-level attackers "
              "(Metattack) and spectral scoring (GF-Attack) slowest\n");
  return 0;
}
