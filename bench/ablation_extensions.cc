// Ablation bench for the conclusion's future-work extensions:
//  (1) PEEGA-Batch: attack generation time and GCN accuracy as the
//      per-gradient batch size grows (1 = exact Alg. 1). The paper
//      predicts a large speedup from parallel selection; this bench
//      quantifies the speed/effectiveness trade-off.
//  (2) GNAT pruning: accuracy of GNAT with and without the edge-removal
//      pass, against PEEGA and DICE poisons.
#include <cstdio>
#include <iostream>

#include "attack/dice.h"
#include "bench_common.h"
#include "core/peega_batch.h"
#include "defense/model_defenders.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("ablation_extensions", &argc, argv);
  const auto dataset = bench::MakeDataset("cora");
  const eval::PipelineOptions pipeline = bench::BenchPipeline();
  attack::AttackOptions attack_options;
  attack_options.perturbation_rate = 0.1;

  std::printf("Ablation (1) — PEEGA-Batch batch size (%s, r=0.1)\n",
              dataset.graph.name.c_str());
  {
    eval::TablePrinter table(
        {"BatchSize", "Seconds", "GCN Acc"});
    for (const int batch : {1, 4, 16, 64}) {
      core::PeegaBatchAttack::Options options;
      options.peega = dataset.peega;
      options.batch_size = batch;
      core::PeegaBatchAttack attacker(options);
      const auto result = eval::RunAttack(&attacker, dataset.graph,
                                          attack_options, pipeline.seed);
      defense::GcnDefender gcn;
      const auto accuracy =
          eval::EvaluateDefense(&gcn, result.poisoned, pipeline).accuracy;
      char seconds[32];
      std::snprintf(seconds, sizeof(seconds), "%.2f",
                    result.elapsed_seconds);
      table.AddRow({std::to_string(batch), seconds,
                    eval::FormatMeanStd(accuracy)});
    }
    table.Print(std::cout);
    std::printf("expected: time shrinks ~linearly in batch size, attack "
                "strength degrades gracefully\n");
  }

  std::printf("\nAblation (2) — GNAT with edge pruning (%s, r=0.1)\n",
              dataset.graph.name.c_str());
  {
    core::PeegaAttack peega(dataset.peega);
    attack::DiceAttack dice;
    eval::TablePrinter table({"Poison", "GNAT", "GNAT+prune"});
    std::vector<std::pair<std::string, graph::Graph>> poisons;
    poisons.emplace_back(
        "PEEGA", eval::RunAttack(&peega, dataset.graph, attack_options,
                                 pipeline.seed)
                     .poisoned);
    poisons.emplace_back(
        "DICE", eval::RunAttack(&dice, dataset.graph, attack_options,
                                pipeline.seed)
                    .poisoned);
    for (const auto& [name, poisoned] : poisons) {
      core::GnatDefender plain(dataset.gnat);
      core::GnatDefender::Options prune_options = dataset.gnat;
      prune_options.prune_threshold = 0.02f;
      core::GnatDefender pruned(prune_options);
      table.AddRow(
          {name,
           eval::FormatMeanStd(
               eval::EvaluateDefense(&plain, poisoned, pipeline).accuracy),
           eval::FormatMeanStd(
               eval::EvaluateDefense(&pruned, poisoned, pipeline)
                   .accuracy)});
    }
    table.Print(std::cout);
    std::printf("finding: pruning only pays off when feature similarity "
                "separates legitimate from adversarial edges; at this "
                "feature sparsity it also removes intra-class edges and "
                "costs a few points — the nuance behind the paper's "
                "future-work framing\n");
  }
  return 0;
}
