#ifndef PEEGA_BENCH_TABLE_ACCURACY_H_
#define PEEGA_BENCH_TABLE_ACCURACY_H_

#include "bench_common.h"

namespace repro::bench {

/// Runs the Tab. IV/V/VI protocol on `dataset`: every attacker poisons
/// the graph at `perturbation_rate`, every defender trains on each
/// poison graph (plus the clean row), and the accuracy table is printed
/// in the paper's layout. The best defender per row is marked with (),
/// the strongest attacker per column with *. Attack and defense wall
/// time land in `reporter` as "attack:<name>"/"defense:<name>" phases,
/// so the phase-summary line splits attack from defense cost.
void RunAccuracyTable(BenchReporter* reporter, const Dataset& dataset,
                      double perturbation_rate);

}  // namespace repro::bench

#endif  // PEEGA_BENCH_TABLE_ACCURACY_H_
