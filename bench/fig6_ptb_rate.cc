// Reproduces Fig. 6: accuracy of GCN / Pro-GNN / GNAT under Metattack
// and PEEGA across perturbation rates r in {0, 0.05, 0.1, 0.15, 0.2}.
// The paper's shape: all curves fall with r; GNAT is the flattest and
// highest on every dataset.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "defense/model_defenders.h"
#include "defense/prognn.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("fig6_ptb_rate", &argc, argv);
  const std::vector<std::string> names = {"cora", "citeseer", "polblogs"};
  const std::vector<double> rates = {0.0, 0.05, 0.1, 0.15, 0.2};
  // Reduced graphs: this bench runs 2 attackers x 4 nonzero rates per
  // dataset plus 3 defenders per poison graph.
  const double extra_scale = 0.7;
  eval::PipelineOptions pipeline = bench::BenchPipeline();
  pipeline.runs = 1;

  for (const auto& name : names) {
    const auto dataset = bench::MakeDataset(name, extra_scale);
    std::printf("Fig. 6 — accuracy vs perturbation rate (%s)\n",
                dataset.graph.name.c_str());
    eval::TablePrinter table({"r", "GCN+M", "GCN+P", "ProGNN+M",
                              "ProGNN+P", "GNAT+M", "GNAT+P"});
    for (const double rate : rates) {
      graph::Graph meta_poison = dataset.graph;
      graph::Graph peega_poison = dataset.graph;
      if (rate > 0.0) {
        attack::AttackOptions options;
        options.perturbation_rate = rate;
        attack::Metattack::Options meta_options;
        meta_options.attack_features = dataset.features_usable;
        attack::Metattack metattack(meta_options);
        const auto meta_result = eval::RunAttack(&metattack, dataset.graph,
                                                 options, pipeline.seed);
        reporter.RecordPhase("attack:" + metattack.name(),
                             meta_result.elapsed_seconds);
        meta_poison = meta_result.poisoned;
        core::PeegaAttack peega(dataset.peega);
        const auto peega_result = eval::RunAttack(&peega, dataset.graph,
                                                  options, pipeline.seed);
        reporter.RecordPhase("attack:" + peega.name(),
                             peega_result.elapsed_seconds);
        peega_poison = peega_result.poisoned;
      }
      auto cell = [&](defense::Defender* defender,
                      const graph::Graph& g) {
        const eval::DefenseEvaluation evaluation =
            eval::EvaluateDefense(defender, g, pipeline);
        reporter.RecordPhase("defense:" + defender->name(),
                             evaluation.mean_train_seconds * pipeline.runs,
                             static_cast<uint64_t>(pipeline.runs));
        return eval::FormatMeanStd(evaluation.accuracy);
      };
      defense::GcnDefender gcn;
      defense::ProGnnDefender::Options prognn_options;
      prognn_options.outer_epochs = 30;
      prognn_options.lowrank_every = 15;
      defense::ProGnnDefender prognn(prognn_options);
      core::GnatDefender gnat(dataset.gnat);
      char rate_str[16];
      std::snprintf(rate_str, sizeof(rate_str), "%.2f", rate);
      table.AddRow({rate_str, cell(&gcn, meta_poison),
                    cell(&gcn, peega_poison), cell(&prognn, meta_poison),
                    cell(&prognn, peega_poison), cell(&gnat, meta_poison),
                    cell(&gnat, peega_poison)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf("paper: accuracy falls with r; GNAT flattest/highest; "
              "PEEGA >= Metattack on Citeseer/Polblogs\n");
  return 0;
}
