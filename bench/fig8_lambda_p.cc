// Reproduces Fig. 8 — PEEGA hyper-parameter sensitivity, evaluated by
// GCN accuracy on the poison graph (lower = stronger attack):
//  (a) trade-off lambda between self view and global view;
//  (b) norm p of the representation distance.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "defense/model_defenders.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("fig8_lambda_p", &argc, argv);
  const std::vector<std::string> names = {"cora", "citeseer", "polblogs"};
  eval::PipelineOptions pipeline = bench::BenchPipeline();
  pipeline.runs = 1;

  std::vector<bench::Dataset> datasets;
  for (const auto& name : names) datasets.push_back(bench::MakeDataset(name));

  auto gcn_accuracy = [&](const bench::Dataset& dataset,
                          const core::PeegaAttack::Options& options) {
    core::PeegaAttack attacker(options);
    attack::AttackOptions attack_options;
    attack_options.perturbation_rate = 0.1;
    const auto poisoned = eval::RunAttack(&attacker, dataset.graph,
                                          attack_options, pipeline.seed)
                              .poisoned;
    defense::GcnDefender gcn;
    return eval::FormatMeanStd(
        eval::EvaluateDefense(&gcn, poisoned, pipeline).accuracy);
  };

  std::printf("Fig. 8(a) — lambda sweep (GCN accuracy, r=0.1)\n");
  {
    std::vector<std::string> header = {"lambda"};
    for (const auto& dataset : datasets) header.push_back(dataset.graph.name);
    eval::TablePrinter table(header);
    for (const float lambda :
         {0.0f, 0.005f, 0.01f, 0.015f, 0.02f, 0.03f}) {
      std::vector<std::string> row;
      char lambda_str[16];
      std::snprintf(lambda_str, sizeof(lambda_str), "%.3f", lambda);
      row.push_back(lambda_str);
      for (const auto& dataset : datasets) {
        core::PeegaAttack::Options options = dataset.peega;
        options.lambda = lambda;
        row.push_back(gcn_accuracy(dataset, options));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::printf("paper: accuracy dips at an intermediate lambda "
                "(global view helps, too much hurts)\n");
  }

  std::printf("\nFig. 8(b) — norm p sweep (GCN accuracy, r=0.1)\n");
  {
    std::vector<std::string> header = {"p"};
    for (const auto& dataset : datasets) header.push_back(dataset.graph.name);
    eval::TablePrinter table(header);
    for (const int p : {1, 2, 3}) {
      std::vector<std::string> row = {std::to_string(p)};
      for (const auto& dataset : datasets) {
        core::PeegaAttack::Options options = dataset.peega;
        options.norm_p = p;
        row.push_back(gcn_accuracy(dataset, options));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::printf("paper: p=2 best on Cora/Citeseer, p=1 best on Polblogs\n");
  }
  return 0;
}
