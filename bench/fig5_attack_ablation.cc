// Reproduces Fig. 5 — PEEGA attack-surface ablation on the Cora-like
// dataset:
//  (a) FP (features only) vs TM (topology only) vs TM+FP at r = 0.1,
//      evaluated by GCN accuracy — TM and TM+FP nearly tie, FP is weak;
//  (b) feature-cost beta sweep: as beta rises, feature modifications
//      drop and topology modifications rise; GCN accuracy dips at an
//      intermediate beta while GNAT stays flat.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "defense/model_defenders.h"
#include "eval/table.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("fig5_attack_ablation", &argc, argv);
  const auto dataset = bench::MakeDataset("cora");
  const eval::PipelineOptions pipeline = bench::BenchPipeline();

  std::printf("Fig. 5(a) — PEEGA variants FP / TM / TM+FP (%s, r=0.1)\n",
              dataset.graph.name.c_str());
  {
    eval::TablePrinter table({"Variant", "EdgeMods", "FeatMods",
                              "GCN Acc"});
    struct Variant {
      const char* name;
      core::PeegaAttack::Mode mode;
    };
    const Variant variants[] = {
        {"FP", core::PeegaAttack::Mode::kFeaturesOnly},
        {"TM", core::PeegaAttack::Mode::kTopologyOnly},
        {"TM+FP", core::PeegaAttack::Mode::kTopologyAndFeatures},
    };
    for (const auto& variant : variants) {
      core::PeegaAttack::Options options = dataset.peega;
      options.mode = variant.mode;
      core::PeegaAttack attacker(options);
      attack::AttackOptions attack_options;
      attack_options.perturbation_rate = 0.1;
      const auto result = eval::RunAttack(&attacker, dataset.graph,
                                          attack_options, pipeline.seed);
      defense::GcnDefender gcn;
      const auto accuracy =
          eval::EvaluateDefense(&gcn, result.poisoned, pipeline).accuracy;
      table.AddRow({variant.name,
                    std::to_string(result.edge_modifications),
                    std::to_string(result.feature_modifications),
                    eval::FormatMeanStd(accuracy)});
    }
    table.Print(std::cout);
    std::printf("paper: TM ≈ TM+FP, FP contributes little at equal cost\n");
  }

  std::printf("\nFig. 5(b) — feature-cost beta sweep (%s, r=0.1)\n",
              dataset.graph.name.c_str());
  {
    eval::TablePrinter table({"beta", "EdgeMods", "FeatMods", "GCN Acc",
                              "GNAT Acc"});
    for (const double beta : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      core::PeegaAttack attacker(dataset.peega);
      attack::AttackOptions attack_options;
      attack_options.perturbation_rate = 0.1;
      attack_options.feature_cost = beta;
      const auto result = eval::RunAttack(&attacker, dataset.graph,
                                          attack_options, pipeline.seed);
      defense::GcnDefender gcn;
      core::GnatDefender gnat(dataset.gnat);
      const auto gcn_acc =
          eval::EvaluateDefense(&gcn, result.poisoned, pipeline).accuracy;
      const auto gnat_acc =
          eval::EvaluateDefense(&gnat, result.poisoned, pipeline).accuracy;
      char beta_str[16];
      std::snprintf(beta_str, sizeof(beta_str), "%.1f", beta);
      table.AddRow({beta_str, std::to_string(result.edge_modifications),
                    std::to_string(result.feature_modifications),
                    eval::FormatMeanStd(gcn_acc),
                    eval::FormatMeanStd(gnat_acc)});
    }
    table.Print(std::cout);
    std::printf("paper: feature mods fall / edge mods rise with beta; "
                "GNAT stays the flattest line\n");
  }
  return 0;
}
