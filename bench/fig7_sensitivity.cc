// Reproduces Fig. 7:
//  (a) accuracy of GCN under PEEGA / Metattack as the fraction of
//      attacker-controlled nodes grows from 0.1 to 1.0 — more access,
//      stronger attack; PEEGA at least matches Metattack;
//  (b) PEEGA_l surrogate-depth sweep (l = 1..4) against GCN victims of
//      depth 2..4 — l = 2 is the sweet spot, l = 1 is weak.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "defense/model_defenders.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("fig7_sensitivity", &argc, argv);
  const auto dataset = bench::MakeDataset("cora");
  eval::PipelineOptions pipeline = bench::BenchPipeline();
  pipeline.runs = 1;

  std::printf("Fig. 7(a) — accuracy vs attacker-node rate (%s, r=0.1)\n",
              dataset.graph.name.c_str());
  {
    eval::TablePrinter table({"NodeRate", "GCN+P", "GCN+M"});
    for (const double node_rate : {0.1, 0.25, 0.5, 0.75, 1.0}) {
      linalg::Rng subset_rng(1234);
      attack::AttackOptions options;
      options.perturbation_rate = 0.1;
      if (node_rate < 1.0) {
        options.attacker_nodes = subset_rng.Sample(
            dataset.graph.num_nodes,
            static_cast<int>(node_rate * dataset.graph.num_nodes));
      }
      core::PeegaAttack peega(dataset.peega);
      attack::Metattack::Options meta_options;
      meta_options.attack_features = true;
      attack::Metattack metattack(meta_options);
      defense::GcnDefender gcn;
      auto accuracy = [&](attack::Attacker* attacker) {
        const auto poisoned =
            eval::RunAttack(attacker, dataset.graph, options,
                            pipeline.seed)
                .poisoned;
        return eval::FormatMeanStd(
            eval::EvaluateDefense(&gcn, poisoned, pipeline).accuracy);
      };
      char rate_str[16];
      std::snprintf(rate_str, sizeof(rate_str), "%.2f", node_rate);
      table.AddRow({rate_str, accuracy(&peega), accuracy(&metattack)});
    }
    table.Print(std::cout);
    std::printf("paper: accuracy falls as attacker access grows; PEEGA "
                "at or below Metattack\n");
  }

  std::printf("\nFig. 7(b) — PEEGA_l depth sweep vs GCN depth (%s, "
              "r=0.1)\n",
              dataset.graph.name.c_str());
  {
    eval::TablePrinter table(
        {"Victim", "PEEGA_1", "PEEGA_2", "PEEGA_3", "PEEGA_4"});
    // Generate the four poison graphs once.
    std::vector<graph::Graph> poisons;
    for (int l = 1; l <= 4; ++l) {
      core::PeegaAttack::Options options = dataset.peega;
      options.layers = l;
      core::PeegaAttack attacker(options);
      attack::AttackOptions attack_options;
      attack_options.perturbation_rate = 0.1;
      poisons.push_back(eval::RunAttack(&attacker, dataset.graph,
                                        attack_options, pipeline.seed)
                            .poisoned);
    }
    for (int victim_layers = 2; victim_layers <= 4; ++victim_layers) {
      nn::Gcn::Options gcn_options;
      gcn_options.num_layers = victim_layers;
      std::vector<std::string> row = {
          "GCN-" + std::to_string(victim_layers)};
      for (const auto& poisoned : poisons) {
        defense::GcnDefender gcn(gcn_options);
        row.push_back(eval::FormatMeanStd(
            eval::EvaluateDefense(&gcn, poisoned, pipeline).accuracy));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::printf("paper: PEEGA_2 strongest (lowest victim accuracy); "
                "PEEGA_1 weak\n");
  }
  return 0;
}
