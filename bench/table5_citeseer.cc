// Reproduces Tab. V: node classification accuracy on the Citeseer-like
// dataset under a 0.1 perturbation rate, for every attacker x defender.
#include "table_accuracy.h"

int main() {
  const auto dataset = repro::bench::MakeDataset("citeseer");
  repro::bench::RunAccuracyTable(dataset, 0.1);
  return 0;
}
