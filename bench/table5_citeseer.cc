// Reproduces Tab. V: node classification accuracy on the Citeseer-like
// dataset under a 0.1 perturbation rate, for every attacker x defender.
#include "table_accuracy.h"

int main(int argc, char** argv) {
  repro::bench::BenchReporter reporter("table5_citeseer", &argc, argv);
  const auto dataset = repro::bench::MakeDataset("citeseer");
  repro::bench::RunAccuracyTable(&reporter, dataset, 0.1);
  return 0;
}
