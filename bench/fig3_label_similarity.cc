// Reproduces Fig. 3: cross-label neighborhood similarity under Metattack
// at increasing perturbation rates, with the GCN accuracy on each poison
// graph. The paper's finding: the clean graph has high intra-label and
// low inter-label similarity; as r grows, inter-label similarity rises
// (contexts blur) and accuracy falls.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "defense/model_defenders.h"
#include "eval/table.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("fig3_label_similarity", &argc, argv);
  // Metattack is greedy per-edge, so large r is expensive; the bench
  // sweeps smaller rates than the paper's {0, 0.5, 1, 5} on a reduced
  // graph — the monotone trend is the reproduced shape.
  const auto dataset = bench::MakeDataset("cora", 0.5);
  const std::vector<double> rates = {0.0, 0.05, 0.1, 0.25, 0.5};

  std::printf("Fig. 3 — label-context similarity vs Metattack rate (%s)\n",
              dataset.graph.name.c_str());
  eval::TablePrinter table(
      {"Ptb_rate", "IntraSim", "InterSim", "GCN Acc"});
  for (const double rate : rates) {
    graph::Graph poisoned = dataset.graph;
    if (rate > 0.0) {
      attack::Metattack attacker;
      attack::AttackOptions options;
      options.perturbation_rate = rate;
      poisoned =
          eval::RunAttack(&attacker, dataset.graph, options, 917).poisoned;
    }
    const auto sim = graph::CrossLabelSimilarity(poisoned);
    const auto summary = graph::SummarizeLabelSimilarity(sim);
    defense::GcnDefender gcn;
    const auto eval_result =
        eval::EvaluateDefense(&gcn, poisoned, bench::BenchPipeline());
    char intra[32], inter[32];
    std::snprintf(intra, sizeof(intra), "%.3f", summary.intra);
    std::snprintf(inter, sizeof(inter), "%.3f", summary.inter);
    char rate_str[32];
    std::snprintf(rate_str, sizeof(rate_str), "%.2f", rate);
    table.AddRow({rate_str, intra, inter,
                  eval::FormatMeanStd(eval_result.accuracy)});
  }
  table.Print(std::cout);
  std::printf(
      "paper: inter-label similarity rises and accuracy falls with r\n");
  return 0;
}
