#ifndef PEEGA_BENCH_BENCH_COMMON_H_
#define PEEGA_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "attack/attacker.h"
#include "attack/gf_attack.h"
#include "attack/metattack.h"
#include "attack/pgd.h"
#include "core/gnat.h"
#include "core/peega.h"
#include "defense/defender.h"
#include "eval/pipeline.h"
#include "graph/generators.h"

namespace repro::bench {

/// Global size multiplier from the REPRO_SCALE environment variable
/// (default 1.0 = CI-sized graphs; ~5 approaches the paper's datasets).
double Scale();

/// Repetitions per accuracy cell from REPRO_RUNS (default 2).
int Runs();

/// One evaluation dataset with its paper-style tuned hyper-parameters
/// (the paper tunes lambda/p per dataset for PEEGA, Sec. V-A3, and
/// k_t/k_f/k_e per dataset for GNAT; identity-feature datasets drop all
/// feature-similarity components, Tab. VI footnote).
struct Dataset {
  std::string name;
  graph::Graph graph;
  core::PeegaAttack::Options peega;
  core::GnatDefender::Options gnat;
  /// False for Polblogs-style identity features: GCN-Jaccard and GNAT's
  /// feature view are not applicable.
  bool features_usable = true;
};

/// name in {"cora", "citeseer", "polblogs"}; `extra_scale` multiplies the
/// global Scale() (used by the heavier sweep benches).
Dataset MakeDataset(const std::string& name, double extra_scale = 1.0);

/// The attacker line-up of the paper's evaluation, in table order:
/// PGD, MinMax, Metattack, GF-Attack, PEEGA (with per-dataset options).
std::vector<std::unique_ptr<attack::Attacker>> MakeAttackers(
    const Dataset& dataset);

/// The defender line-up of the paper's tables, in column order:
/// GCN, GAT, [GCN-Jaccard,] GCN-SVD, RGCN, Pro-GNN, SimPGCN, GNAT.
/// GCN-Jaccard is omitted when `dataset.features_usable` is false.
std::vector<std::unique_ptr<defense::Defender>> MakeDefenders(
    const Dataset& dataset);

/// Training options used by every bench (shorter than the test default
/// to keep single-core runs snappy; early stopping still applies).
nn::TrainOptions BenchTrainOptions();

/// Pipeline options seeded deterministically.
eval::PipelineOptions BenchPipeline();

/// Prints the eval run-metadata line (thread count, runs, seed) so every
/// bench log records the threading configuration its numbers came from —
/// timing cells are only comparable at a known thread count, while
/// accuracy cells must be identical at every thread count.
void PrintRunMetadata();

}  // namespace repro::bench

#endif  // PEEGA_BENCH_BENCH_COMMON_H_
