#ifndef PEEGA_BENCH_BENCH_COMMON_H_
#define PEEGA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/attacker.h"
#include "attack/gf_attack.h"
#include "attack/metattack.h"
#include "attack/pgd.h"
#include "core/gnat.h"
#include "core/peega.h"
#include "defense/defender.h"
#include "eval/pipeline.h"
#include "graph/generators.h"
#include "obs/stopwatch.h"
#include "status/status.h"

namespace repro::bench {

/// Global size multiplier from the REPRO_SCALE environment variable
/// (default 1.0 = CI-sized graphs; ~5 approaches the paper's datasets).
double Scale();

/// Repetitions per accuracy cell from REPRO_RUNS (default 2).
int Runs();

/// One evaluation dataset with its paper-style tuned hyper-parameters
/// (the paper tunes lambda/p per dataset for PEEGA, Sec. V-A3, and
/// k_t/k_f/k_e per dataset for GNAT; identity-feature datasets drop all
/// feature-similarity components, Tab. VI footnote).
struct Dataset {
  std::string name;
  graph::Graph graph;
  core::PeegaAttack::Options peega;
  core::GnatDefender::Options gnat;
  /// False for Polblogs-style identity features: GCN-Jaccard and GNAT's
  /// feature view are not applicable.
  bool features_usable = true;
};

/// name in {"cora", "citeseer", "polblogs"}; `extra_scale` multiplies the
/// global Scale() (used by the heavier sweep benches).
Dataset MakeDataset(const std::string& name, double extra_scale = 1.0);

/// The attacker line-up of the paper's evaluation, in table order:
/// PGD, MinMax, Metattack, GF-Attack, PEEGA (with per-dataset options).
std::vector<std::unique_ptr<attack::Attacker>> MakeAttackers(
    const Dataset& dataset);

/// The defender line-up of the paper's tables, in column order:
/// GCN, GAT, [GCN-Jaccard,] GCN-SVD, RGCN, Pro-GNN, SimPGCN, GNAT.
/// GCN-Jaccard is omitted when `dataset.features_usable` is false.
std::vector<std::unique_ptr<defense::Defender>> MakeDefenders(
    const Dataset& dataset);

/// Training options used by every bench (shorter than the test default
/// to keep single-core runs snappy; early stopping still applies).
nn::TrainOptions BenchTrainOptions();

/// Pipeline options seeded deterministically.
eval::PipelineOptions BenchPipeline();

/// Prints the eval run-metadata line (thread count, runs, seed) so every
/// bench log records the threading configuration its numbers came from —
/// timing cells are only comparable at a known thread count, while
/// accuracy cells must be identical at every thread count.
void PrintRunMetadata();

/// Removes `flag` and its value from argv in place, returning the value
/// or "" when the flag is absent (argv[argc] stays nullptr). Used for
/// bench-specific flags like table7's `--engine {tape,incremental}`.
std::string ConsumeFlag(const char* flag, int* argc, char** argv);

/// Peak resident-set size of this process in bytes (VmHWM from
/// /proc/self/status, falling back to getrusage), or 0 when neither
/// source is available. A high-water mark: monotone over the process
/// lifetime, so scale benches that must attribute a peak to one phase
/// run that phase in a fresh process or order phases smallest-first.
int64_t PeakRssBytes();

/// Timing statistics over the measured repeats of one phase; warm-up
/// iterations are run first and never enter these numbers.
struct RepeatStats {
  double min_ms = 0.0;
  double median_ms = 0.0;
  double mean_ms = 0.0;
  int repeats = 0;
};

/// Machine-readable output for every bench binary.
///
/// Construction parses (and strips from argv) two flags:
///   --json <path>    write a BENCH_*.json report on Finish()
///   --trace <path>   enable tracing, write a Chrome trace on Finish()
/// and prints the run-metadata line. `Finish()` — called at the latest
/// by the destructor — always records a "total" phase spanning the
/// reporter's lifetime, prints a one-line `phase-summary:` (wall time
/// aggregated by the prefix before ':', e.g. all "attack:*" phases in
/// one bucket), and, with --json, writes the stable schema
///   {"bench":..., "config":{...}, "threads":N,
///    "metrics":{counters,gauges,histograms},
///    "phases":[{"name":..., "wall_ms":..., "count":..., "status":"OK",
///               ("min_ms"/"median_ms"/"mean_ms" with MeasureRepeats)]}
/// "status" is the status-code name of the first failure recorded for
/// the phase via RecordPhaseStatus (CI's schema check requires the key).
/// The embedded metrics snapshot is taken at Finish() time, so counter
/// totals cover exactly the bench's work.
///
/// With --json, Finish() additionally appends one compact summary line
/// ({"bench","unix_time","threads","total_ms","config"}) to the
/// append-only trend store `bench-artifacts/<bench>.jsonl` in the
/// working directory: the BENCH_*.json is the latest snapshot, the
/// .jsonl accumulates a comparable series across runs.
class BenchReporter {
 public:
  /// `argc`/`argv` are adjusted in place (consumed flags removed) so a
  /// later argument parser — e.g. benchmark::Initialize — sees only
  /// what this reporter did not handle.
  BenchReporter(const std::string& bench, int* argc, char** argv);
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Records a config key echoed verbatim into the JSON "config" object.
  void Config(const std::string& key, const std::string& value);
  void Config(const std::string& key, double value);

  /// Accumulates `seconds` of wall time under phase `name`; repeated
  /// calls with one name add up (wall_ms sums, count grows by `count`).
  void RecordPhase(const std::string& name, double seconds,
                   uint64_t count = 1);

  /// Marks phase `name` with a non-OK status code name (e.g.
  /// "DEADLINE_EXCEEDED"). Every phase carries "status":"OK" in the JSON
  /// by default; benches call this when the run behind a phase degraded
  /// (error cell in the printed table), so artifacts alone reveal it.
  /// Repeated calls keep the FIRST non-OK status. No-op when `status`
  /// is OK.
  void RecordPhaseStatus(const std::string& name,
                         const status::Status& status);

  /// Runs `fn` `warmup` times unmeasured, then `repeats` measured times;
  /// records the measured total under `name` with min/median/mean stats.
  RepeatStats MeasureRepeats(const std::string& name, int warmup,
                             int repeats, const std::function<void()>& fn);

  /// Stamps the process peak RSS (PeakRssBytes()) onto phase `name`,
  /// adding a "peak_rss_bytes" key to its JSON entry. The scale phases
  /// of table7 use this to prove the sparse path never materializes a
  /// dense N x N adjacency — CI asserts a ceiling on the recorded value.
  void RecordPhaseRss(const std::string& name);

  /// Writes the JSON/trace artifacts and the phase-summary line.
  /// Idempotent; runs at destruction when not called explicitly.
  void Finish();

  const std::string& json_path() const { return json_path_; }
  const std::string& trace_path() const { return trace_path_; }

 private:
  struct Phase {
    std::string name;
    double wall_ms = 0.0;
    uint64_t count = 0;
    std::string status = "OK";  // CodeName of the first non-OK status
    bool has_stats = false;
    RepeatStats stats;
    int64_t peak_rss_bytes = 0;  // 0 = not recorded (key omitted)
  };

  Phase* GetPhase(const std::string& name);

  std::string bench_;
  std::string json_path_;
  std::string trace_path_;
  std::vector<std::pair<std::string, std::string>> string_config_;
  std::vector<std::pair<std::string, double>> number_config_;
  std::vector<Phase> phases_;  // insertion order = JSON order
  std::map<std::string, size_t> phase_index_;
  obs::StopWatch total_;  // construction → Finish() = the "total" phase
  bool finished_ = false;
};

}  // namespace repro::bench

#endif  // PEEGA_BENCH_BENCH_COMMON_H_
