// Reproduces Fig. 2: edge modifications of each attacker at r = 0.1,
// split into Add/Del x Same/Diff-label buckets. The paper's insight
// (Sec. IV-A): every effective attacker predominantly ADDS edges between
// nodes with DIFFERENT labels.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace repro;
  bench::BenchReporter reporter("fig2_edge_diff", &argc, argv);
  const auto dataset = bench::MakeDataset("cora");
  const auto attackers = bench::MakeAttackers(dataset);
  attack::AttackOptions options;
  options.perturbation_rate = 0.1;

  std::printf("Fig. 2 — edge diff between poison and clean graph (%s, "
              "r=0.1)\n",
              dataset.graph.name.c_str());
  eval::TablePrinter table({"Attacker", "Add+Same", "Add+Diff", "Del+Same",
                            "Del+Diff"});
  for (const auto& attacker : attackers) {
    const auto result =
        eval::RunAttack(attacker.get(), dataset.graph, options, 917);
    const auto diff =
        graph::ComputeEdgeDiff(dataset.graph, result.poisoned);
    table.AddRow({attacker->name(), std::to_string(diff.add_same),
                  std::to_string(diff.add_diff),
                  std::to_string(diff.del_same),
                  std::to_string(diff.del_diff)});
  }
  table.Print(std::cout);
  std::printf("paper: Add+Diff dominates for every effective attacker\n");
  return 0;
}
