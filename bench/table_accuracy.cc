#include "table_accuracy.h"

#include <cstdio>
#include <iostream>
#include <limits>

#include "eval/stats.h"
#include "eval/table.h"

namespace repro::bench {

void RunAccuracyTable(BenchReporter* reporter, const Dataset& dataset,
                      double perturbation_rate) {
  reporter->Config("dataset", dataset.graph.name);
  reporter->Config("perturbation_rate", perturbation_rate);
  const auto attackers = MakeAttackers(dataset);
  const auto defenders = MakeDefenders(dataset);
  const eval::PipelineOptions pipeline = BenchPipeline();

  std::printf(
      "Node classification accuracy on %s (N=%d, |E|=%lld, r=%.2f, "
      "%d runs)\n",
      dataset.graph.name.c_str(), dataset.graph.num_nodes,
      static_cast<long long>(dataset.graph.NumEdges()), perturbation_rate,
      pipeline.runs);

  // Rows: clean + one per attacker. Columns: defenders.
  std::vector<std::string> row_names = {"Clean"};
  std::vector<graph::Graph> graphs = {dataset.graph};
  attack::AttackOptions attack_options;
  attack_options.perturbation_rate = perturbation_rate;
  for (const auto& attacker : attackers) {
    const auto result = eval::RunAttack(attacker.get(), dataset.graph,
                                        attack_options, pipeline.seed);
    row_names.push_back(attacker->name());
    graphs.push_back(result.poisoned);
    reporter->RecordPhase("attack:" + attacker->name(),
                          result.elapsed_seconds);
    reporter->RecordPhaseStatus("attack:" + attacker->name(),
                                result.status);
    std::printf("  [attack] %-10s edges=%d features=%d (%.1fs)%s\n",
                attacker->name().c_str(), result.edge_modifications,
                result.feature_modifications, result.elapsed_seconds,
                result.status.ok()
                    ? ""
                    : (" " + result.status.ToString()).c_str());
  }

  std::vector<std::vector<eval::MeanStd>> cells(
      graphs.size(), std::vector<eval::MeanStd>(defenders.size()));
  // Failed cells render as ERR(<code>) instead of killing the table;
  // a cell with zero surviving runs is also excluded from the best-of
  // scans below.
  std::vector<std::vector<std::string>> cell_errors(
      graphs.size(), std::vector<std::string>(defenders.size()));
  for (size_t r = 0; r < graphs.size(); ++r) {
    for (size_t c = 0; c < defenders.size(); ++c) {
      const eval::DefenseEvaluation evaluation =
          eval::EvaluateDefense(defenders[c].get(), graphs[r], pipeline);
      cells[r][c] = evaluation.accuracy;
      reporter->RecordPhase(
          "defense:" + defenders[c]->name(),
          evaluation.mean_train_seconds * pipeline.runs,
          static_cast<uint64_t>(pipeline.runs));
      if (!evaluation.status.ok()) {
        reporter->RecordPhaseStatus("defense:" + defenders[c]->name(),
                                    evaluation.status);
        if (evaluation.ok_runs == 0) {
          cell_errors[r][c] = eval::ErrorCell(evaluation.status);
        }
      }
    }
  }

  // Strongest attacker per defender column (lowest accuracy, skipping
  // the clean row) and best defender per row (highest accuracy).
  std::vector<size_t> best_attacker(defenders.size(), 1);
  for (size_t c = 0; c < defenders.size(); ++c) {
    for (size_t r = 1; r < graphs.size(); ++r) {
      if (cell_errors[r][c].empty() &&
          (!cell_errors[best_attacker[c]][c].empty() ||
           cells[r][c].mean < cells[best_attacker[c]][c].mean)) {
        best_attacker[c] = r;
      }
    }
  }

  std::vector<std::string> header = {"Attacker"};
  for (const auto& defender : defenders) header.push_back(defender->name());
  eval::TablePrinter table(header);
  for (size_t r = 0; r < graphs.size(); ++r) {
    size_t best_defender = 0;
    for (size_t c = 1; c < defenders.size(); ++c) {
      if (cell_errors[r][c].empty() &&
          (!cell_errors[r][best_defender].empty() ||
           cells[r][c].mean > cells[r][best_defender].mean)) {
        best_defender = c;
      }
    }
    std::vector<std::string> row = {row_names[r]};
    for (size_t c = 0; c < defenders.size(); ++c) {
      if (!cell_errors[r][c].empty()) {
        row.push_back(cell_errors[r][c]);
        continue;
      }
      std::string cell = eval::FormatMeanStd(cells[r][c]);
      if (c == best_defender && cell_errors[r][best_defender].empty()) {
        cell = "(" + cell + ")";
      }
      if (r > 0 && best_attacker[c] == r) cell += "*";
      row.push_back(cell);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf(
      "() = best defender per row; * = strongest attacker per column\n");
}

}  // namespace repro::bench
