#include "lexer.h"

#include <cctype>

namespace repro::analyze {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace {

// Multi-character punctuators, longest first so maximal munch is a
// linear scan. Only operators the passes may ever need to distinguish
// are listed; everything else falls through to single-char tokens.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*",
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  std::vector<Token> Run() {
    while (pos_ < text_.size()) {
      if (!SkipWhitespaceAndComments()) break;
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (at_line_start_ && c == '#') {
        LexDirective();
      } else if (IsIdentStart(c)) {
        LexIdentifierOrRawString();
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                 (c == '.' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) !=
                      0)) {
        LexNumber();
      } else if (c == '"') {
        LexString();
      } else if (c == '\'') {
        LexCharLiteral();
      } else {
        LexPunct();
      }
      at_line_start_ = false;
    }
    return std::move(tokens_);
  }

 private:
  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
  }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  // Advances one byte, maintaining line/col.
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
      at_line_start_ = true;
    } else {
      ++col_;
    }
    ++pos_;
  }

  // Consumes a backslash-newline splice if one starts here. Returns
  // true when a splice was eaten (physical line advances, the logical
  // line — and at_line_start_ — do not).
  bool EatSplice() {
    if (Peek() == '\\' && Peek(1) == '\n') {
      pos_ += 2;
      ++line_;
      col_ = 1;
      return true;
    }
    if (Peek() == '\\' && Peek(1) == '\r' && Peek(2) == '\n') {
      pos_ += 3;
      ++line_;
      col_ = 1;
      return true;
    }
    return false;
  }

  // Skips spaces, newlines, splices, and both comment forms. Returns
  // false only at end of input.
  bool SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      if (EatSplice()) continue;
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
          c == '\f') {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          if (!EatSplice()) Advance();  // spliced line comments continue
        }
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < text_.size() &&
               !(text_[pos_] == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ < text_.size()) {
          Advance();
          Advance();
        }
        continue;
      }
      return true;
    }
    return false;
  }

  void Emit(TokenKind kind, std::string text, int line, int col) {
    tokens_.push_back(Token{kind, std::move(text), line, col});
  }

  // `#` [ws] word — emitted as one kDirective token "#word". After
  // `#include`, the header-name gets its own token kind so passes can
  // match <immintrin.h> as a single unit.
  void LexDirective() {
    const int line = line_, col = col_;
    Advance();  // '#'
    while (pos_ < text_.size() && (Peek() == ' ' || Peek() == '\t')) {
      Advance();
    }
    std::string word;
    while (pos_ < text_.size() && IsIdentChar(Peek())) {
      word += text_[pos_];
      Advance();
      EatSplice();
    }
    Emit(TokenKind::kDirective, "#" + word, line, col);
    if (word != "include") return;
    while (pos_ < text_.size() && (Peek() == ' ' || Peek() == '\t')) {
      Advance();
    }
    const char open = Peek();
    if (open != '"' && open != '<') return;
    const char close = open == '"' ? '"' : '>';
    const int hline = line_, hcol = col_;
    Advance();
    std::string path;
    while (pos_ < text_.size() && Peek() != close && Peek() != '\n') {
      path += text_[pos_];
      Advance();
    }
    if (Peek() == close) Advance();
    Emit(open == '"' ? TokenKind::kQuotedHeader : TokenKind::kAngleHeader,
         std::move(path), hline, hcol);
  }

  void LexIdentifierOrRawString() {
    const int line = line_, col = col_;
    std::string word;
    while (pos_ < text_.size() && IsIdentChar(Peek())) {
      word += text_[pos_];
      Advance();
      EatSplice();
    }
    // R"delim( … )delim" — and the encoding-prefixed forms u8R"…" etc.
    const bool raw_prefix =
        (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
         word == "LR");
    if (raw_prefix && Peek() == '"') {
      LexRawString(line, col);
      return;
    }
    // Plain-prefixed strings (u8"x") — drop the prefix, lex the literal.
    if ((word == "u8" || word == "u" || word == "U" || word == "L") &&
        Peek() == '"') {
      LexString();
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(word), line, col);
  }

  void LexRawString(int line, int col) {
    Advance();  // '"'
    std::string delim;
    while (pos_ < text_.size() && Peek() != '(' && Peek() != '\n') {
      delim += text_[pos_];
      Advance();
    }
    if (Peek() == '(') Advance();
    const std::string terminator = ")" + delim + "\"";
    std::string body;
    while (pos_ < text_.size() &&
           text_.compare(pos_, terminator.size(), terminator) != 0) {
      body += text_[pos_];
      Advance();
    }
    for (size_t i = 0; i < terminator.size() && pos_ < text_.size(); ++i) {
      Advance();
    }
    Emit(TokenKind::kString, std::move(body), line, col);
  }

  void LexNumber() {
    const int line = line_, col = col_;
    std::string num;
    while (pos_ < text_.size()) {
      if (EatSplice()) continue;
      const char c = Peek();
      if (IsIdentChar(c) || c == '.') {
        num += c;
        Advance();
        // Exponent signs belong to the pp-number: 1e+5, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (Peek() == '+' || Peek() == '-')) {
          num += Peek();
          Advance();
        }
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, std::move(num), line, col);
  }

  void LexString() {
    const int line = line_, col = col_;
    Advance();  // '"'
    std::string body;
    while (pos_ < text_.size() && Peek() != '"') {
      if (Peek() == '\\' && pos_ + 1 < text_.size()) {
        body += text_[pos_];
        Advance();
        body += text_[pos_];
        Advance();
        continue;
      }
      if (Peek() == '\n') break;  // unterminated; recover at the newline
      body += text_[pos_];
      Advance();
    }
    if (Peek() == '"') Advance();
    Emit(TokenKind::kString, std::move(body), line, col);
  }

  void LexCharLiteral() {
    const int line = line_, col = col_;
    Advance();  // '\''
    std::string body;
    while (pos_ < text_.size() && Peek() != '\'') {
      if (Peek() == '\\' && pos_ + 1 < text_.size()) {
        body += text_[pos_];
        Advance();
        body += text_[pos_];
        Advance();
        continue;
      }
      if (Peek() == '\n') break;
      body += text_[pos_];
      Advance();
    }
    if (Peek() == '\'') Advance();
    Emit(TokenKind::kCharLiteral, std::move(body), line, col);
  }

  void LexPunct() {
    const int line = line_, col = col_;
    for (const char* p : kPuncts) {
      const size_t n = std::char_traits<char>::length(p);
      if (text_.compare(pos_, n, p) == 0) {
        for (size_t i = 0; i < n; ++i) Advance();
        Emit(TokenKind::kPunct, p, line, col);
        return;
      }
    }
    std::string one(1, text_[pos_]);
    Advance();
    Emit(TokenKind::kPunct, std::move(one), line, col);
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> Lex(const std::string& text) { return Lexer(text).Run(); }

bool MatchQualified(const std::vector<Token>& tokens, size_t i,
                    const std::vector<std::string>& parts,
                    bool last_is_prefix) {
  size_t t = i;
  for (size_t p = 0; p < parts.size(); ++p) {
    if (p > 0) {
      if (t >= tokens.size() || !tokens[t].IsPunct("::")) return false;
      ++t;
    }
    if (t >= tokens.size() || tokens[t].kind != TokenKind::kIdentifier) {
      return false;
    }
    const bool last = p + 1 == parts.size();
    if (last && last_is_prefix) {
      if (tokens[t].text.rfind(parts[p], 0) != 0) return false;
    } else if (tokens[t].text != parts[p]) {
      return false;
    }
    ++t;
  }
  return true;
}

}  // namespace repro::analyze
