#ifndef PEEGA_TOOLS_ANALYZE_LEXER_H_
#define PEEGA_TOOLS_ANALYZE_LEXER_H_

#include <string>
#include <vector>

namespace repro::analyze {

/// \file
/// A small C++ lexer for static analysis — NOT a compiler front end.
///
/// It produces a flat token stream with exact line:column positions,
/// which is all the project's passes need: comments are consumed (never
/// tokenized), string/char literals become single tokens whose contents
/// can never be mistaken for code, raw strings honor their delimiter,
/// and backslash-newline splices continue the logical line while the
/// physical line counter keeps advancing (so positions always name the
/// physical line an editor would jump to). Preprocessor directives are
/// tokenized in-stream: the `#include`/`#pragma`/`#ifndef` word becomes
/// one kDirective token and the rest of the directive line is lexed
/// normally, except the header-name after `#include`, which becomes a
/// single kQuotedHeader / kAngleHeader token holding the bare path.

enum class TokenKind {
  kIdentifier,    // names and keywords, including `new`, `for`, `while`
  kNumber,        // pp-number: 12, 0x1f, 1.5e-3f
  kString,        // "..." or R"delim(...)delim"; text = contents only
  kCharLiteral,   // '...'; text = contents only
  kPunct,         // operators/punctuation, maximal munch ("::", "->", …)
  kDirective,     // "#include", "#pragma", … ('#' glued to the word)
  kQuotedHeader,  // the path inside #include "..."
  kAngleHeader,   // the path inside #include <...>
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based physical line of the token's first character
  int col = 0;   // 1-based byte column on that line

  bool Is(TokenKind k, const char* t) const {
    return kind == k && text == t;
  }
  bool IsIdent(const char* t) const { return Is(TokenKind::kIdentifier, t); }
  bool IsPunct(const char* t) const { return Is(TokenKind::kPunct, t); }
};

/// Lexes `text` into tokens. Never fails: unterminated literals and
/// stray bytes degrade into best-effort tokens rather than errors, so
/// the analyzer keeps working on code that does not even compile yet.
std::vector<Token> Lex(const std::string& text);

/// True for identifier characters [A-Za-z0-9_].
bool IsIdentChar(char c);

/// True when `tokens[i..]` spell the `::`-joined qualified name `parts`
/// (e.g. {"std", "thread"} matches `std :: thread`). When
/// `last_is_prefix` is set, the final identifier only needs to START
/// with the last part ("mt19937" also matches `std::mt19937_64`).
bool MatchQualified(const std::vector<Token>& tokens, size_t i,
                    const std::vector<std::string>& parts,
                    bool last_is_prefix);

}  // namespace repro::analyze

#endif  // PEEGA_TOOLS_ANALYZE_LEXER_H_
