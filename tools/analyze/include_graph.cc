#include "include_graph.h"

#include <algorithm>
#include <set>

namespace repro::analyze {

namespace {

std::string DirName(const std::string& rel) {
  const size_t slash = rel.rfind('/');
  return slash == std::string::npos ? "" : rel.substr(0, slash);
}

}  // namespace

IncludeGraph IncludeGraph::Build(const std::vector<SourceFile>& files) {
  std::set<std::string> known;
  for (const SourceFile& f : files) known.insert(f.rel);

  IncludeGraph graph;
  for (const SourceFile& f : files) {
    const std::string dir = DirName(f.rel);
    for (size_t i = 0; i < f.tokens.size(); ++i) {
      const Token& tok = f.tokens[i];
      if (tok.kind != TokenKind::kQuotedHeader) continue;
      std::string resolved;
      if (!dir.empty() && known.count(dir + "/" + tok.text) != 0) {
        resolved = dir + "/" + tok.text;
      } else if (known.count("src/" + tok.text) != 0) {
        resolved = "src/" + tok.text;
      } else if (known.count(tok.text) != 0) {
        resolved = tok.text;
      } else {
        continue;
      }
      graph.edges_.push_back(IncludeEdge{f.rel, resolved, tok.line});
    }
  }
  for (const IncludeEdge& e : graph.edges_) {
    graph.by_file_[e.from].push_back(e);
  }
  return graph;
}

const std::vector<IncludeEdge>& IncludeGraph::EdgesFrom(
    const std::string& rel) const {
  static const std::vector<IncludeEdge> kEmpty;
  const auto it = by_file_.find(rel);
  return it == by_file_.end() ? kEmpty : it->second;
}

std::vector<std::string> IncludeGraph::FindCycles() const {
  // Three-color DFS; grey back-edges close cycles. by_file_ is an
  // ordered map and edges preserve token order, so discovery — and the
  // reported paths — are deterministic.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> seen_paths;
  std::vector<std::string> cycles;

  struct Dfs {
    const IncludeGraph& graph;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    std::set<std::string>& seen_paths;
    std::vector<std::string>& cycles;

    void Visit(const std::string& node) {
      color[node] = 1;
      stack.push_back(node);
      for (const IncludeEdge& e : graph.EdgesFrom(node)) {
        if (color[e.to] == 1) {
          const auto begin = std::find(stack.begin(), stack.end(), e.to);
          std::string path;
          for (auto it = begin; it != stack.end(); ++it) path += *it + " -> ";
          path += e.to;
          if (seen_paths.insert(path).second) cycles.push_back(path);
        } else if (color[e.to] == 0) {
          Visit(e.to);
        }
      }
      stack.pop_back();
      color[node] = 2;
    }
  };
  Dfs dfs{*this, color, stack, seen_paths, cycles};
  for (const auto& [file, edges] : by_file_) {
    (void)edges;
    if (color[file] == 0) dfs.Visit(file);
  }
  return cycles;
}

}  // namespace repro::analyze
