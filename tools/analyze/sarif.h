#ifndef PEEGA_TOOLS_ANALYZE_SARIF_H_
#define PEEGA_TOOLS_ANALYZE_SARIF_H_

#include <vector>

#include "analysis.h"
#include "obs/json.h"

namespace repro::analyze {

/// Renders findings as a SARIF 2.1.0 document (one run, one driver).
/// The rules array is the full pass registry — including passes that
/// produced no findings — so CI annotation tooling can show docs and
/// fix-it hints for every rule id. Built on obs::Json, whose ordered
/// object keys make the output byte-stable for a given finding set.
obs::Json SarifDocument(const std::vector<Finding>& findings);

}  // namespace repro::analyze

#endif  // PEEGA_TOOLS_ANALYZE_SARIF_H_
