#ifndef PEEGA_TOOLS_ANALYZE_PASSES_H_
#define PEEGA_TOOLS_ANALYZE_PASSES_H_

#include <vector>

#include "analysis.h"

// Internal pass entry points, one per registered rule. Only
// analysis.cc (registry assembly) should include this header; everyone
// else goes through PassRegistry().

namespace repro::analyze::passes {

// Ported peega_lint token rules.
void NoRawThread(const AnalysisContext&, std::vector<Finding>*);
void NoUnseededRng(const AnalysisContext&, std::vector<Finding>*);
void NoStdout(const AnalysisContext&, std::vector<Finding>*);
void NoRawChrono(const AnalysisContext&, std::vector<Finding>*);
void NoRawIntrinsics(const AnalysisContext&, std::vector<Finding>*);
void NoAbortOnInput(const AnalysisContext&, std::vector<Finding>*);
void HeaderGuard(const AnalysisContext&, std::vector<Finding>*);

// Include-graph passes.
void IncludeCycle(const AnalysisContext&, std::vector<Finding>*);
void Layering(const AnalysisContext&, std::vector<Finding>*);

// Deep passes.
void StatusDiscipline(const AnalysisContext&, std::vector<Finding>*);
void DeterminismHazard(const AnalysisContext&, std::vector<Finding>*);
void FpContractSync(const AnalysisContext&, std::vector<Finding>*);
void HotLoopAlloc(const AnalysisContext&, std::vector<Finding>*);

// ABI-boundary pass (src/capi only).
void CapiBoundary(const AnalysisContext&, std::vector<Finding>*);

// Sparse-first commit guard (src/core + src/attack, file allowlist).
void DenseRoundtrip(const AnalysisContext&, std::vector<Finding>*);

}  // namespace repro::analyze::passes

#endif  // PEEGA_TOOLS_ANALYZE_PASSES_H_
