#ifndef PEEGA_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
#define PEEGA_TOOLS_ANALYZE_INCLUDE_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "source.h"

namespace repro::analyze {

/// One resolved `#include "..."` edge.
struct IncludeEdge {
  std::string from;  // repo-relative includer
  std::string to;    // repo-relative included file (exists in the tree)
  int line = 0;      // line of the #include directive in `from`
};

/// The quoted-include graph over the analyzed tree. Angle includes and
/// quoted includes that do not resolve to an analyzed file (system
/// headers, generated files) carry no edge — they cannot take part in
/// project cycles or layering.
class IncludeGraph {
 public:
  /// Resolution tries, in order: relative to the including file's
  /// directory, relative to src/ (the project's include root), then
  /// repo-relative.
  static IncludeGraph Build(const std::vector<SourceFile>& files);

  const std::vector<IncludeEdge>& edges() const { return edges_; }

  /// Outgoing edges of one file (empty vector when none).
  const std::vector<IncludeEdge>& EdgesFrom(const std::string& rel) const;

  /// Every include cycle among the analyzed files, each reported once
  /// as the closed path "a.h -> b.h -> a.h", discovered in
  /// deterministic (sorted-file) order.
  std::vector<std::string> FindCycles() const;

 private:
  std::vector<IncludeEdge> edges_;
  std::map<std::string, std::vector<IncludeEdge>> by_file_;
};

}  // namespace repro::analyze

#endif  // PEEGA_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
