#ifndef PEEGA_TOOLS_ANALYZE_BASELINE_H_
#define PEEGA_TOOLS_ANALYZE_BASELINE_H_

#include <set>
#include <string>
#include <vector>

#include "analysis.h"
#include "source.h"

namespace repro::analyze {

/// \file
/// Baseline suppression: a checked-in list of fingerprints for
/// findings that predate a pass. New code is held to the full rule
/// set immediately; old findings are burned down over time — CI's
/// baseline-shrink check fails any change that GROWS the file.
///
/// A fingerprint is FNV-1a 64 over (pass, file, whitespace-squeezed
/// source line text) — deliberately line-NUMBER independent, so
/// unrelated edits above a baselined finding do not un-suppress it.

/// Fingerprint of one finding given the file it fired in.
std::string Fingerprint(const Finding& finding, const SourceFile* file);

/// Parses a baseline file's contents: one `<16-hex> <pass> <file>` line
/// per suppressed finding; `#` comments and blank lines are ignored.
/// Returns the fingerprint set.
std::set<std::string> ParseBaseline(const std::string& text);

/// Renders findings as baseline-file contents (sorted, with a header
/// explaining the burn-down contract).
std::string RenderBaseline(const std::vector<Finding>& findings,
                           const AnalysisContext& ctx);

/// Splits `all` into kept (not baselined) and suppressed findings.
void ApplyBaseline(const std::set<std::string>& baseline,
                   const AnalysisContext& ctx,
                   const std::vector<Finding>& all,
                   std::vector<Finding>* kept,
                   std::vector<Finding>* suppressed);

}  // namespace repro::analyze

#endif  // PEEGA_TOOLS_ANALYZE_BASELINE_H_
