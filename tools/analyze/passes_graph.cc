// Include-graph passes: cycle rejection and the machine-checked layer
// DAG. The DAG below mirrors the table in ARCHITECTURE.md ("Layer DAG,
// machine-checked") — change them together; docs/ANALYSIS.md is
// regenerated from this data by tools/gen_analysis_docs.

#include <map>
#include <string>
#include <vector>

#include "passes.h"

namespace repro::analyze {

const std::vector<ModuleSpec>& LayerDag() {
  // Direct-include edges each src/ module may have, leaves first.
  // `debug` and `obs` are leaves; `status` is near-leaf; `core` sits
  // ABOVE attack/defense because PeegaAttack/GnatDefender implement
  // those interfaces; `eval` orchestrates everything.
  static const std::vector<ModuleSpec>* const dag =
      new std::vector<ModuleSpec>{
          {"debug", {}},
          {"obs", {"debug"}},
          {"status", {"debug", "obs"}},
          {"parallel", {"debug", "obs"}},
          {"linalg", {"debug", "obs", "parallel"}},
          {"autograd", {"debug", "obs", "linalg"}},
          {"graph", {"debug", "obs", "status", "linalg"}},
          {"nn", {"debug", "obs", "status", "linalg", "autograd", "graph"}},
          {"attack",
           {"debug", "obs", "status", "parallel", "linalg", "autograd",
            "graph", "nn"}},
          {"defense",
           {"debug", "obs", "status", "parallel", "linalg", "autograd",
            "graph", "nn"}},
          {"core",
           {"debug", "obs", "status", "parallel", "linalg", "autograd",
            "graph", "nn", "attack", "defense"}},
          {"eval",
           {"debug", "obs", "status", "parallel", "linalg", "autograd",
            "graph", "nn", "attack", "defense", "core"}},
          {"capi",
           {"debug", "obs", "status", "parallel", "linalg", "autograd",
            "graph", "nn", "attack", "defense", "core", "eval"}},
          {"serve",
           {"debug", "obs", "status", "parallel", "linalg", "autograd",
            "graph", "nn", "attack", "defense", "core", "eval"}},
      };
  return *dag;
}

namespace passes {

void IncludeCycle(const AnalysisContext& ctx, std::vector<Finding>* out) {
  const PassInfo* info = FindPass("include-cycle");
  for (const std::string& cycle : ctx.include_graph->FindCycles()) {
    // Attribute the finding to the head of the printed path.
    const std::string head = cycle.substr(0, cycle.find(' '));
    out->push_back(Finding{"include-cycle", head, 1, 1,
                           "#include cycle: " + cycle, info->fixit,
                           info->severity});
  }
}

namespace {

// src/linalg/kernels/x.h -> "linalg"; returns "" for non-src files.
std::string ModuleOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const size_t start = 4;
  const size_t slash = rel.find('/', start);
  if (slash == std::string::npos) return "";  // loose file under src/
  return rel.substr(start, slash - start);
}

}  // namespace

void Layering(const AnalysisContext& ctx, std::vector<Finding>* out) {
  const PassInfo* info = FindPass("layering");
  std::map<std::string, const ModuleSpec*> specs;
  for (const ModuleSpec& spec : LayerDag()) specs[spec.module] = &spec;

  for (const IncludeEdge& edge : ctx.include_graph->edges()) {
    const std::string from = ModuleOf(edge.from);
    const std::string to = ModuleOf(edge.to);
    if (from.empty() || to.empty() || from == to) continue;
    const auto from_it = specs.find(from);
    if (from_it == specs.end()) {
      out->push_back(Finding{"layering", edge.from, edge.line, 1,
                             "module src/" + from +
                                 " is not in the layer DAG; add it to "
                                 "LayerDag() and ARCHITECTURE.md",
                             info->fixit, info->severity});
      continue;
    }
    bool allowed = false;
    for (const char* dep : from_it->second->allowed_deps) {
      if (to == dep) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      out->push_back(Finding{
          "layering", edge.from, edge.line, 1,
          "illegal include edge src/" + from + " -> src/" + to + " (" +
              edge.to + "); the layer DAG in ARCHITECTURE.md permits " +
              "src/" + from + " to include only its listed dependencies",
          info->fixit, info->severity});
    }
  }
}

}  // namespace passes
}  // namespace repro::analyze
