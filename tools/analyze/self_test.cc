// --self-test: plant one violation of every registered pass (plus
// decoys that must NOT fire) in a scratch tree, run the full analysis,
// and verify each pass fired exactly where expected with zero false
// positives. This is what keeps the analyzer honest: a pass that rots
// into never-firing (or into flagging comments) fails CI here.

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "analysis.h"

namespace fs = std::filesystem;

namespace repro::analyze {

namespace {

void WriteFile(const fs::path& path, const std::string& contents) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

void PlantTree(const fs::path& root) {
  // --- Ported token rules: one plant each -------------------------------
  WriteFile(root / "src/core/bad_thread.cc",
            "#include <thread>\nvoid F() { std::thread t([]{}); }\n");
  WriteFile(root / "src/core/bad_rng.cc",
            "#include <random>\nstd::mt19937 rng;\n"
            "int R() { return rand(); }\n");
  WriteFile(root / "src/core/bad_cout.cc",
            "#include <iostream>\nvoid P() { std::cout << 1; }\n");
  WriteFile(root / "src/core/bad_chrono.cc",
            "#include <chrono>\n"
            "double Now() {\n"
            "  return std::chrono::duration<double>(\n"
            "      std::chrono::steady_clock::now().time_since_epoch())\n"
            "      .count();\n"
            "}\n");
  WriteFile(root / "src/graph/io_bad.cc",
            "#include \"debug/check.h\"\n"
            "int Parse(int v) { PEEGA_CHECK_GE(v, 0); return v; }\n");
  WriteFile(root / "src/core/bad_simd.cc",
            "#include <immintrin.h>\n"
            "void S(float* p) {\n"
            "  _mm256_storeu_ps(p, _mm256_setzero_ps());\n"
            "}\n");
  WriteFile(root / "src/core/bad_guard.h",
            "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n");
  WriteFile(root / "src/core/cycle_a.h",
            "#ifndef PEEGA_CORE_CYCLE_A_H_\n#define PEEGA_CORE_CYCLE_A_H_\n"
            "#include \"core/cycle_b.h\"\n#endif  // PEEGA_CORE_CYCLE_A_H_\n");
  WriteFile(root / "src/core/cycle_b.h",
            "#ifndef PEEGA_CORE_CYCLE_B_H_\n#define PEEGA_CORE_CYCLE_B_H_\n"
            "#include \"core/cycle_a.h\"\n#endif  // PEEGA_CORE_CYCLE_B_H_\n");

  // --- Token-rule decoys ------------------------------------------------
  // Exempt directories.
  WriteFile(root / "src/parallel/pool.cc",
            "#include <thread>\nvoid G() { std::thread t([]{}); }\n");
  WriteFile(root / "src/linalg/random.cc",
            "#include <random>\nstd::mt19937 engine(42);\n");
  WriteFile(root / "src/obs/stopwatch.cc",
            "#include <chrono>\n"
            "double Tick() {\n"
            "  return std::chrono::duration<double>(\n"
            "      std::chrono::steady_clock::now().time_since_epoch())\n"
            "      .count();\n"
            "}\n");
  // Forbidden tokens inside comments, strings, and a raw string: the
  // lexer consumes them, so no pass can ever see them.
  WriteFile(root / "src/core/decoy.cc",
            "// std::thread and std::cout and rand() in a comment\n"
            "/* std::mt19937 and std::chrono in a block comment */\n"
            "// _mm256_add_ps and vld1q_f32 and immintrin.h in a comment\n"
            "const char* kMsg = \"std::cout << rand() std::chrono\";\n"
            "const char* kSimd = \"_mm_setzero_ps lives in immintrin.h\";\n"
            "const char* kRaw = R\"(std::thread in a raw string; new in a "
            "loop)\";\n"
            "int Grad(int g) { return g; }\nint Use() { return Grad(1); }\n");
  // Intrinsics are fine inside src/linalg/kernels (the exempt prefix).
  WriteFile(root / "src/linalg/kernels/ok_simd.cc",
            "#include <immintrin.h>\n"
            "void K(float* p) {\n"
            "  _mm256_storeu_ps(p, _mm256_setzero_ps());\n"
            "}\n");
  // PEEGA_CHECK is allowed outside graph/io (only-prefix scoping).
  WriteFile(root / "src/core/check_ok.cc",
            "#include \"debug/check.h\"\n"
            "void V(int n) { PEEGA_CHECK_GT(n, 0); }\n");
  WriteFile(root / "src/graph/io_decoy.cc",
            "// PEEGA_CHECK would abort here, so we do not use it\n"
            "const char* kDoc = \"never PEEGA_DCHECK parsed input\";\n");
  // Token rules are scoped to src/: the same tokens in tools/ are fine.
  WriteFile(root / "tools/tool_decoy.cc",
            "#include <iostream>\nvoid T() { std::cout << \"cli\"; }\n");

  // --- dense-roundtrip --------------------------------------------------
  // Member-call ToDense() AND free-call DenseToAdjacency() in a core
  // file outside the allowlist: both must fire.
  WriteFile(root / "src/core/bad_dense.cc",
            "struct A { int ToDense(); };\n"
            "int Densify(A a) { return a.ToDense(); }\n"
            "int Rebuild(int d) { return DenseToAdjacency(d); }\n");
  // Decoys: the same calls in an allowlisted dense-by-design file, the
  // needles in comments/strings (lexer strips them), the identifier
  // without a call, and a longer identifier that merely contains the
  // needle.
  WriteFile(root / "src/attack/pgd.cc",
            "struct M { int ToDense(); };\n"
            "int Relax(M m) { return m.ToDense(); }\n");
  WriteFile(root / "src/attack/dense_decoy.cc",
            "// ToDense() and DenseToAdjacency() in a comment\n"
            "const char* kDense = \"never call ToDense() here\";\n"
            "int to_dense_count;\n"
            "int MyToDenseHelper(int v);\n"
            "int Use(int v) { return MyToDenseHelper(v) + to_dense_count; }\n");

  // --- layering ---------------------------------------------------------
  // linalg must not reach up into nn …
  WriteFile(root / "src/nn/model.h",
            "#ifndef PEEGA_NN_MODEL_H_\n#define PEEGA_NN_MODEL_H_\n"
            "struct Model {};\n#endif  // PEEGA_NN_MODEL_H_\n");
  WriteFile(root / "src/linalg/bad_layer.cc",
            "#include \"nn/model.h\"\nModel MakeModel() { return {}; }\n");
  // … while nn including linalg (a declared edge) is a decoy.
  WriteFile(root / "src/linalg/matrix.h",
            "#ifndef PEEGA_LINALG_MATRIX_H_\n#define PEEGA_LINALG_MATRIX_H_\n"
            "struct Matrix {};\n#endif  // PEEGA_LINALG_MATRIX_H_\n");
  WriteFile(root / "src/nn/layer_ok.cc",
            "#include \"linalg/matrix.h\"\nMatrix MakeW() { return {}; }\n");

  // --- status-discipline ------------------------------------------------
  WriteFile(root / "src/graph/io_stub.h",
            "#ifndef PEEGA_GRAPH_IO_STUB_H_\n"
            "#define PEEGA_GRAPH_IO_STUB_H_\n"
            "namespace status { class Status; }\n"
            "status::Status SaveIt(int v);\n"
            "#endif  // PEEGA_GRAPH_IO_STUB_H_\n");
  WriteFile(root / "src/core/bad_status.cc",
            "#include \"graph/io_stub.h\"\n"
            "void Commit(int v) {\n"
            "  SaveIt(v);\n"  // <- discarded
            "}\n");
  WriteFile(root / "src/core/status_ok.cc",
            "#include \"graph/io_stub.h\"\n"
            "status::Status Forward(int v) { return SaveIt(v); }\n"
            "bool Try(int v) { return SaveIt(v).ok(); }\n"
            "void Shrug(int v) { SaveIt(v).IgnoreError(); }\n"
            "void Macroed(int v) { PEEGA_RETURN_IF_ERROR(SaveIt(v), "
            "\"ctx\"); }\n");

  // --- determinism-hazard -----------------------------------------------
  WriteFile(root / "src/linalg/bad_reduce.cc",
            "#include <numeric>\n#include <vector>\n"
            "float Sum(const std::vector<float>& v) {\n"
            "  return std::reduce(v.begin(), v.end(), 0.0f);\n"
            "}\n");
  WriteFile(root / "src/core/bad_unordered.cc",
            "#include <unordered_map>\n"
            "std::unordered_map<int, float> cache;\n");
  WriteFile(root / "src/linalg/bad_pragma.cc",
            "#pragma float_control(precise, off)\n"
            "float Fma(float a, float b, float c) { return a * b + c; }\n");
  // Decoys: unordered containers OUTSIDE the critical layers, and the
  // pragma INSIDE the kernels directory (owned there).
  WriteFile(root / "src/nn/optim_decoy.cc",
            "#include <unordered_map>\n"
            "std::unordered_map<int, float> moments;\n");
  WriteFile(root / "src/linalg/kernels/pragma_ok.cc",
            "#pragma float_control(precise, on)\n"
            "float K2(float a, float b) { return a * b; }\n");

  // --- fp-contract-sync -------------------------------------------------
  // A fake registry declaring one satisfied op (generic-only, generic
  // TU on the list) and one violated op (avx2 declared, avx2 TU absent
  // from the list).
  WriteFile(root / "src/linalg/op_registry.cc",
            "struct OpInfo {};\n"
            "void BuildRegistry() {\n"
            "  Push({\"fake.ok\", \"api\", \"sum\", \"O(n)\", \"rows\",\n"
            "        DeterminismClass::kLanePerOutput, true, false, false,\n"
            "        nullptr});\n"
            "  Push({\"fake.bad\", \"api\", \"sum\", \"O(n)\", \"rows\",\n"
            "        DeterminismClass::kLanePerOutput, true, true, false,\n"
            "        nullptr});\n"
            "  Push({\"fake.ref\", \"api\", \"sum\", \"O(n)\", \"rows\",\n"
            "        DeterminismClass::kReferenceOnly, true, false, false,\n"
            "        nullptr});\n"
            "}\n");
  WriteFile(root / "src/linalg/CMakeLists.txt",
            "set(PEEGA_KERNEL_SOURCES kernels/kernels_generic.cc)\n"
            "# kernels/kernels_avx2.cc deliberately NOT listed\n"
            "foreach(kernel_src IN LISTS PEEGA_KERNEL_SOURCES)\n"
            "  set_source_files_properties(${kernel_src} PROPERTIES\n"
            "    COMPILE_OPTIONS \"-ffp-contract=off\")\n"
            "endforeach()\n");

  // --- hot-loop-alloc ---------------------------------------------------
  WriteFile(root / "src/linalg/kernels/bad_alloc.cc",
            "#include <vector>\n"
            "void Accumulate(std::vector<float>* out, int n) {\n"
            "  for (int i = 0; i < n; ++i) {\n"
            "    float* scratch = new float[8];\n"
            "    out->push_back(scratch[0]);\n"
            "    delete[] scratch;\n"
            "  }\n"
            "}\n");
  // Decoys: reserve() before the loop, allocation outside any loop,
  // and a push_back-in-loop in a file that is not tagged hot.
  WriteFile(root / "src/linalg/kernels/ok_alloc.cc",
            "#include <vector>\n"
            "void Gather(std::vector<float>* out, int n) {\n"
            "  out->reserve(static_cast<size_t>(n));\n"
            "  float* once = new float[8];\n"
            "  for (int i = 0; i < n; ++i) {\n"
            "    out->push_back(once[i % 8]);\n"
            "  }\n"
            "  delete[] once;\n"
            "}\n");
  WriteFile(root / "src/eval/cold_alloc.cc",
            "#include <vector>\n"
            "void Collect(std::vector<int>* rows, int n) {\n"
            "  for (int i = 0; i < n; ++i) rows->push_back(i);\n"
            "}\n");

  // --- capi-boundary ----------------------------------------------------
  // Three violations: a body with no catch-all, a symbol outside the
  // gg_ namespace, and a C++ reference type crossing the ABI.
  WriteFile(root / "src/capi/bad_shim.cc",
            "#include <string>\n"
            "extern \"C\" int gg_bad_no_catch(int v) {\n"
            "  return v + 1;\n"
            "}\n"
            "extern \"C\" int bad_prefix(int v) {\n"
            "  try {\n"
            "    return v;\n"
            "  } catch (...) {\n"
            "    return -1;\n"
            "  }\n"
            "}\n"
            "extern \"C\" int gg_bad_cpp_sig(const std::string& name) {\n"
            "  try {\n"
            "    return (int)name.size();\n"
            "  } catch (...) {\n"
            "    return -1;\n"
            "  }\n"
            "}\n");
  // Decoys: a non-extern-C helper may use C++ freely, a declaration has
  // no body to check, and a compliant entry point must stay silent.
  WriteFile(root / "src/capi/ok_shim.cc",
            "#include <string>\n"
            "static int Helper(const std::string& tag) {\n"
            "  return (int)tag.size();\n"
            "}\n"
            "extern \"C\" int gg_ok_len(const char* tag);\n"
            "extern \"C\" int gg_ok_len(const char* tag) {\n"
            "  try {\n"
            "    return Helper(tag == nullptr ? \"\" : tag);\n"
            "  } catch (...) {\n"
            "    return -1;\n"
            "  }\n"
            "}\n");
}

struct Expect {
  const char* file;  // repo-relative
  const char* pass;
};

constexpr Expect kExpected[] = {
    {"src/core/bad_thread.cc", "no-raw-thread"},
    {"src/core/bad_rng.cc", "no-unseeded-rng"},
    {"src/core/bad_cout.cc", "no-stdout"},
    {"src/core/bad_chrono.cc", "no-raw-chrono"},
    {"src/graph/io_bad.cc", "no-abort-on-input"},
    {"src/core/bad_simd.cc", "no-raw-intrinsics"},
    {"src/core/bad_guard.h", "header-guard"},
    {"src/core/cycle_a.h", "include-cycle"},
    {"src/linalg/bad_layer.cc", "layering"},
    {"src/core/bad_status.cc", "status-discipline"},
    {"src/linalg/bad_reduce.cc", "determinism-hazard"},
    {"src/core/bad_unordered.cc", "determinism-hazard"},
    {"src/linalg/bad_pragma.cc", "determinism-hazard"},
    {"src/linalg/op_registry.cc", "fp-contract-sync"},
    {"src/linalg/kernels/bad_alloc.cc", "hot-loop-alloc"},
    {"src/capi/bad_shim.cc", "capi-boundary"},
    {"src/core/bad_dense.cc", "dense-roundtrip"},
};

constexpr const char* kCleanFiles[] = {
    "src/parallel/pool.cc",
    "src/linalg/random.cc",
    "src/obs/stopwatch.cc",
    "src/core/decoy.cc",
    "src/linalg/kernels/ok_simd.cc",
    "src/core/check_ok.cc",
    "src/graph/io_decoy.cc",
    "tools/tool_decoy.cc",
    "src/nn/layer_ok.cc",
    "src/core/status_ok.cc",
    "src/nn/optim_decoy.cc",
    "src/linalg/kernels/pragma_ok.cc",
    "src/linalg/kernels/ok_alloc.cc",
    "src/eval/cold_alloc.cc",
    "src/capi/ok_shim.cc",
    "src/attack/pgd.cc",
    "src/attack/dense_decoy.cc",
};

}  // namespace

int RunSelfTest(const std::string& scratch_dir, std::ostream& log) {
  // Per-process scratch root: the self-test runs concurrently from two
  // ctests (the standalone binary and analyze_test), and a shared path
  // would let one run's cleanup delete the tree under the other.
  const fs::path root =
      fs::path(scratch_dir) /
      ("peega_analyze_selftest." + std::to_string(::getpid()));
  fs::remove_all(root);
  PlantTree(root);

  const std::vector<SourceFile> files = LoadTree(root.string());
  const IncludeGraph graph = IncludeGraph::Build(files);
  AnalysisContext ctx;
  ctx.repo_root = root.string();
  ctx.files = &files;
  ctx.include_graph = &graph;
  const std::vector<Finding> findings = RunAllPasses(ctx);

  for (const Finding& f : findings) {
    log << "  (self-test) " << f.file << ":" << f.line << ":" << f.col
        << ": [" << f.pass << "] " << f.message << "\n";
  }

  int failures = 0;
  for (const Expect& e : kExpected) {
    const bool found = std::any_of(
        findings.begin(), findings.end(), [&](const Finding& f) {
          return f.file == e.file && f.pass == e.pass;
        });
    if (!found) {
      log << "SELF-TEST FAIL: expected [" << e.pass << "] in " << e.file
          << "\n";
      ++failures;
    }
  }
  for (const char* clean : kCleanFiles) {
    const bool flagged = std::any_of(
        findings.begin(), findings.end(),
        [&](const Finding& f) { return f.file == clean; });
    if (flagged) {
      log << "SELF-TEST FAIL: false positive in " << clean << "\n";
      ++failures;
    }
  }
  // Every registered pass must have at least one planted expectation —
  // a new pass without self-test coverage fails here, not in review.
  for (const PassInfo& pass : PassRegistry()) {
    const bool covered = std::any_of(
        std::begin(kExpected), std::end(kExpected),
        [&](const Expect& e) { return pass.name == std::string(e.pass); });
    if (!covered) {
      log << "SELF-TEST FAIL: pass '" << pass.name
          << "' has no planted violation in the self-test tree\n";
      ++failures;
    }
  }
  // bad_rng.cc plants both std::mt19937 and rand(); both must fire.
  const auto rng_hits = std::count_if(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.file == "src/core/bad_rng.cc" &&
               f.pass == "no-unseeded-rng";
      });
  if (rng_hits < 2) {
    log << "SELF-TEST FAIL: expected both mt19937 and rand() hits in "
           "src/core/bad_rng.cc\n";
    ++failures;
  }
  // The violated fake op must be named; the satisfied ones must not.
  const bool bad_op_named = std::any_of(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.pass == "fp-contract-sync" &&
               f.message.find("fake.bad") != std::string::npos;
      });
  const bool ok_op_named = std::any_of(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.pass == "fp-contract-sync" &&
               (f.message.find("fake.ok") != std::string::npos ||
                f.message.find("fake.ref") != std::string::npos);
      });
  if (!bad_op_named || ok_op_named) {
    log << "SELF-TEST FAIL: fp-contract-sync must flag exactly the op "
           "whose TU is off the -ffp-contract=off list\n";
    ++failures;
  }
  // bad_dense.cc plants both ToDense() and DenseToAdjacency(); both
  // spellings (member call, free call) must fire.
  const auto dense_hits = std::count_if(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.file == "src/core/bad_dense.cc" &&
               f.pass == "dense-roundtrip";
      });
  if (dense_hits < 2) {
    log << "SELF-TEST FAIL: expected ToDense() and DenseToAdjacency() "
           "hits in src/core/bad_dense.cc\n";
    ++failures;
  }
  // bad_shim.cc plants all three ABI violations; each must fire.
  const auto capi_hits = std::count_if(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.file == "src/capi/bad_shim.cc" &&
               f.pass == "capi-boundary";
      });
  if (capi_hits < 3) {
    log << "SELF-TEST FAIL: expected missing-catch-all, bad-prefix, and "
           "C++-signature hits in src/capi/bad_shim.cc\n";
    ++failures;
  }

  fs::remove_all(root);
  if (failures == 0) {
    log << "peega_analyze self-test: all " << PassRegistry().size()
        << " passes fire, no false positives\n";
    return 0;
  }
  log << "peega_analyze self-test: " << failures << " failure(s)\n";
  return 1;
}

}  // namespace repro::analyze
