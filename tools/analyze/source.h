#ifndef PEEGA_TOOLS_ANALYZE_SOURCE_H_
#define PEEGA_TOOLS_ANALYZE_SOURCE_H_

#include <string>
#include <vector>

#include "lexer.h"

namespace repro::analyze {

/// One analyzed file: repo-relative path, raw bytes, and token stream.
struct SourceFile {
  std::string rel;   // repo-relative, '/'-separated: "src/linalg/ops.h"
  std::string text;  // raw contents
  std::vector<Token> tokens;

  bool IsHeader() const {
    return rel.size() >= 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
  }

  /// 1-based physical line as written in the file ("" past the end).
  std::string LineText(int line) const;
};

/// The directories the analyzer walks, in scan order.
extern const char* const kAnalyzedRoots[4];  // src tools tests bench

/// Loads every .h/.cc under the analyzed roots of `repo_root`, lexing
/// each one. Missing roots are skipped (unit-test trees plant only
/// src/). Files are sorted by `rel` so every report is deterministic.
std::vector<SourceFile> LoadTree(const std::string& repo_root);

/// Reads an arbitrary repo file (e.g. a CMakeLists.txt the tree scan
/// does not tokenize). Returns false when unreadable.
bool ReadRepoFile(const std::string& repo_root, const std::string& rel,
                  std::string* out);

}  // namespace repro::analyze

#endif  // PEEGA_TOOLS_ANALYZE_SOURCE_H_
