// Token-sequence rules: the peega_lint rule set re-hosted on the real
// lexer. Working on tokens (not stripped text) means a needle inside a
// comment, string, or raw string can never fire — the lexer already
// removed it — and positions are exact token coordinates.

#include <cctype>
#include <string>
#include <vector>

#include "passes.h"

namespace repro::analyze::passes {

namespace {

enum class NeedleKind {
  kQualified,  // `::`-joined identifier path, e.g. std::thread
  kCall,       // bare function call: ident immediately called, not a
               // member access and not a longer identifier
  kHeader,     // header name of an #include (quoted or angle)
};

struct TokenRule {
  NeedleKind kind;
  std::vector<std::string> parts;  // qualified path, or single name
  bool last_is_prefix;             // "mt19937" also hits mt19937_64
  const char* only_prefix;    // non-empty: rule applies only under this
  const char* exempt_prefix;  // non-empty: files under this are exempt
  const char* message;
};

void ScanRules(const AnalysisContext& ctx, const char* pass_name,
               const std::vector<TokenRule>& rules,
               std::vector<Finding>* out) {
  const PassInfo* info = FindPass(pass_name);
  for (const SourceFile& file : *ctx.files) {
    for (const TokenRule& rule : rules) {
      if (rule.only_prefix[0] != '\0' &&
          file.rel.rfind(rule.only_prefix, 0) != 0) {
        continue;
      }
      if (rule.exempt_prefix[0] != '\0' &&
          file.rel.rfind(rule.exempt_prefix, 0) == 0) {
        continue;
      }
      const std::vector<Token>& toks = file.tokens;
      for (size_t i = 0; i < toks.size(); ++i) {
        bool hit = false;
        switch (rule.kind) {
          case NeedleKind::kQualified:
            // Reject matches that continue a longer qualified name on
            // the left (foo::std::thread).
            hit = MatchQualified(toks, i, rule.parts, rule.last_is_prefix) &&
                  (i == 0 || !toks[i - 1].IsPunct("::"));
            break;
          case NeedleKind::kCall: {
            if (!toks[i].IsIdent(rule.parts[0].c_str())) break;
            const bool member =
                i > 0 && (toks[i - 1].IsPunct(".") ||
                          toks[i - 1].IsPunct("->") ||
                          toks[i - 1].IsPunct("::"));
            hit = !member && i + 1 < toks.size() && toks[i + 1].IsPunct("(");
            break;
          }
          case NeedleKind::kHeader:
            hit = (toks[i].kind == TokenKind::kQuotedHeader ||
                   toks[i].kind == TokenKind::kAngleHeader) &&
                  toks[i].text == rule.parts[0];
            break;
        }
        if (hit) {
          std::string shown;
          for (size_t p = 0; p < rule.parts.size(); ++p) {
            if (p > 0) shown += "::";
            shown += rule.parts[p];
          }
          out->push_back(Finding{pass_name, file.rel, toks[i].line,
                                 toks[i].col, shown + ": " + rule.message,
                                 info != nullptr ? info->fixit : "",
                                 info != nullptr ? info->severity
                                                 : Severity::kError});
        }
      }
    }
  }
}

}  // namespace

void NoRawThread(const AnalysisContext& ctx, std::vector<Finding>* out) {
  static const std::vector<TokenRule> kRules = {
      {NeedleKind::kQualified, {"std", "thread"}, false, "src/",
       "src/parallel/",
       "raw std::thread outside src/parallel breaks the deterministic "
       "thread-pool contract"},
      {NeedleKind::kQualified, {"std", "jthread"}, false, "src/",
       "src/parallel/", "raw std::jthread outside src/parallel"},
      {NeedleKind::kQualified, {"std", "async"}, false, "src/",
       "src/parallel/", "std::async outside src/parallel"},
  };
  ScanRules(ctx, "no-raw-thread", kRules, out);
}

void NoUnseededRng(const AnalysisContext& ctx, std::vector<Finding>* out) {
  static const std::vector<TokenRule> kRules = {
      {NeedleKind::kQualified, {"std", "random_device"}, false, "src/",
       "src/linalg/random",
       "std::random_device is nondeterministic; all randomness must flow "
       "through the seeded linalg::Rng"},
      {NeedleKind::kQualified, {"std", "mt19937"}, true, "src/",
       "src/linalg/random",
       "raw std::mt19937 outside src/linalg/random; construct a "
       "linalg::Rng with an explicit seed instead"},
      {NeedleKind::kCall, {"rand"}, false, "src/", "src/linalg/random",
       "rand() is unseeded global state; use the seeded linalg::Rng"},
      {NeedleKind::kCall, {"srand"}, false, "src/", "src/linalg/random",
       "srand() mutates global RNG state; use the seeded linalg::Rng"},
  };
  ScanRules(ctx, "no-unseeded-rng", kRules, out);
}

void NoStdout(const AnalysisContext& ctx, std::vector<Finding>* out) {
  static const std::vector<TokenRule> kRules = {
      {NeedleKind::kQualified, {"std", "cout"}, false, "src/", "",
       "libraries must not write to stdout; return strings or take an "
       "std::ostream& so the eval/table layer owns the output format"},
  };
  ScanRules(ctx, "no-stdout", kRules, out);
}

void NoRawChrono(const AnalysisContext& ctx, std::vector<Finding>* out) {
  static const std::vector<TokenRule> kRules = {
      {NeedleKind::kQualified, {"std", "chrono"}, false, "src/",
       "src/obs/",
       "raw std::chrono outside src/obs; time with obs::StopWatch (or an "
       "obs::TraceSpan) so every duration is observable in one place"},
  };
  ScanRules(ctx, "no-raw-chrono", kRules, out);
}

void NoRawIntrinsics(const AnalysisContext& ctx, std::vector<Finding>* out) {
  static const std::vector<TokenRule> kRules = {
      {NeedleKind::kHeader, {"immintrin.h"}, false, "src/",
       "src/linalg/kernels/",
       "x86 intrinsics outside src/linalg/kernels bypass SIMD dispatch; "
       "add a kernel variant to the op's KernelTable instead"},
      {NeedleKind::kHeader, {"arm_neon.h"}, false, "src/",
       "src/linalg/kernels/",
       "NEON intrinsics outside src/linalg/kernels bypass SIMD dispatch; "
       "add a kernel variant to the op's KernelTable instead"},
      {NeedleKind::kQualified, {"_mm256_"}, true, "src/",
       "src/linalg/kernels/",
       "AVX2 intrinsics outside src/linalg/kernels bypass SIMD dispatch "
       "and the differential-test suite"},
      {NeedleKind::kQualified, {"_mm_"}, true, "src/",
       "src/linalg/kernels/",
       "SSE intrinsics outside src/linalg/kernels bypass SIMD dispatch "
       "and the differential-test suite"},
      {NeedleKind::kQualified, {"vld1q_"}, true, "src/",
       "src/linalg/kernels/",
       "NEON intrinsics outside src/linalg/kernels bypass SIMD dispatch "
       "and the differential-test suite"},
  };
  ScanRules(ctx, "no-raw-intrinsics", kRules, out);
}

void NoAbortOnInput(const AnalysisContext& ctx, std::vector<Finding>* out) {
  // graph/io parses bytes an adversary may control (PR-5 failure
  // model): malformed input must surface as a status::Status with
  // file/line context, never as a process abort. The only rule scoped
  // BY an only_prefix instead of exempted by one.
  static const std::vector<TokenRule> kRules = {
      {NeedleKind::kQualified, {"PEEGA_CHECK"}, true, "src/graph/io", "",
       "PEEGA_CHECK on externally sourced data aborts the process; return "
       "status::InvalidInput/IoError with file/line context instead"},
      {NeedleKind::kQualified, {"PEEGA_DCHECK"}, true, "src/graph/io", "",
       "PEEGA_DCHECK on externally sourced data aborts debug builds; "
       "return status::InvalidInput/IoError with file/line context "
       "instead"},
  };
  ScanRules(ctx, "no-abort-on-input", kRules, out);
}

void DenseRoundtrip(const AnalysisContext& ctx, std::vector<Finding>* out) {
  // Files allowed to densify an adjacency, each for a stated reason.
  // Everything else under src/core + src/attack commits CSR-natively
  // (graph::WithFlips / PeegaEngine::PoisonedAdjacency); a new ToDense()
  // there silently reinstates the O(N²) memory wall the scale path
  // removed, long before any test notices.
  static const char* const kAllowlist[] = {
      "src/attack/common.h",      // DenseToAdjacency's own declaration
      "src/attack/common.cc",     // ... and definition
      "src/attack/pgd.cc",        // relaxed (continuous) dense method
      "src/attack/metattack.cc",  // bilevel meta-gradients are dense
      "src/attack/gf_attack.cc",  // spectral scoring is dense
      "src/core/peega.cc",        // tape autograd reference path
      "src/core/peega_batch.cc",  // tape autograd reference path
  };
  const PassInfo* info = FindPass("dense-roundtrip");
  for (const SourceFile& file : *ctx.files) {
    if (file.rel.rfind("src/core/", 0) != 0 &&
        file.rel.rfind("src/attack/", 0) != 0) {
      continue;
    }
    bool allowed = false;
    for (const char* path : kAllowlist) allowed = allowed || file.rel == path;
    if (allowed) continue;
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      const bool is_needle = toks[i].IsIdent("ToDense") ||
                             toks[i].IsIdent("DenseToAdjacency");
      // Unlike NeedleKind::kCall, member/qualified spellings count:
      // `adjacency.ToDense()` IS the hazard this pass exists for.
      if (!is_needle || !toks[i + 1].IsPunct("(")) continue;
      out->push_back(Finding{
          "dense-roundtrip", file.rel, toks[i].line, toks[i].col,
          toks[i].text +
              "(): dense O(N²) adjacency round-trip on the sparse-first "
              "path; commit via graph::WithFlips or the engine's sparse "
              "state (or allowlist the file with a justification)",
          info != nullptr ? info->fixit : "",
          info != nullptr ? info->severity : Severity::kError});
    }
  }
}

void HeaderGuard(const AnalysisContext& ctx, std::vector<Finding>* out) {
  const PassInfo* info = FindPass("header-guard");
  for (const SourceFile& file : *ctx.files) {
    if (!file.IsHeader()) continue;
    // Guard symbol: PEEGA_ + repo-relative path uppercased, with the
    // leading src/ dropped (bench/tools/tests keep their prefix).
    std::string path = file.rel;
    if (path.rfind("src/", 0) == 0) path = path.substr(4);
    std::string expected = "PEEGA_";
    for (const char c : path) {
      expected += IsIdentChar(c)
                      ? static_cast<char>(
                            std::toupper(static_cast<unsigned char>(c)))
                      : '_';
    }
    expected += '_';

    // The first code token must open the guard: `#ifndef` + the symbol
    // (leading `#pragma` lines are tolerated for `#pragma once` files
    // that also carry a guard).
    bool checked = false;
    for (size_t i = 0; i < file.tokens.size() && !checked; ++i) {
      const Token& tok = file.tokens[i];
      if (tok.Is(TokenKind::kDirective, "#pragma")) {
        const int pragma_line = tok.line;
        while (i + 1 < file.tokens.size() &&
               file.tokens[i + 1].line == pragma_line) {
          ++i;
        }
        continue;
      }
      checked = true;
      if (tok.Is(TokenKind::kDirective, "#ifndef") &&
          i + 1 < file.tokens.size() &&
          file.tokens[i + 1].kind == TokenKind::kIdentifier) {
        const Token& sym = file.tokens[i + 1];
        if (sym.text != expected) {
          out->push_back(Finding{"header-guard", file.rel, sym.line, sym.col,
                                 "guard '" + sym.text + "' should be '" +
                                     expected +
                                     "' (PEEGA_ + path, src/ stripped)",
                                 info->fixit, info->severity});
        }
      } else {
        out->push_back(Finding{"header-guard", file.rel, tok.line, tok.col,
                               "missing include guard; expected #ifndef " +
                                   expected,
                               info->fixit, info->severity});
      }
    }
    if (!checked && !file.tokens.empty()) {
      out->push_back(Finding{"header-guard", file.rel, 1, 1,
                             "missing include guard; expected #ifndef " +
                                 expected,
                             info->fixit, info->severity});
    }
  }
}

}  // namespace repro::analyze::passes
