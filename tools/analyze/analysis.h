#ifndef PEEGA_TOOLS_ANALYZE_ANALYSIS_H_
#define PEEGA_TOOLS_ANALYZE_ANALYSIS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "include_graph.h"
#include "source.h"

namespace repro::analyze {

/// \file
/// The pass registry: rules as data over the lexed tree.
///
/// A pass is a named check with a severity, a documentation string, and
/// a fix-it hint, running over an `AnalysisContext` (token streams +
/// include graph + repo root). The registry is the single source of
/// truth for three consumers: the `peega_analyze` driver (stderr text +
/// SARIF), `tools/gen_analysis_docs` (renders docs/ANALYSIS.md, kept
/// fresh by the `analysis_docs_uptodate` ctest), and the `--self-test`
/// mode, which plants one violation and one decoy per pass and verifies
/// that every pass fires with zero false positives.

enum class Severity { kError, kWarning, kNote };

/// SARIF level string: "error" / "warning" / "note".
const char* SeverityName(Severity s);

struct Finding {
  std::string pass;     // registry name of the pass that fired
  std::string file;     // repo-relative path
  int line = 1;
  int col = 1;
  std::string message;  // what is wrong, with the offending token named
  std::string fixit;    // how to fix it (pass-level hint by default)
  Severity severity = Severity::kError;
};

/// Everything a pass may look at. Non-owning views into the caller's
/// tree; build one per analysis run.
struct AnalysisContext {
  std::string repo_root;
  const std::vector<SourceFile>* files = nullptr;
  const IncludeGraph* include_graph = nullptr;

  const SourceFile* FindFile(const std::string& rel) const;
};

struct PassInfo {
  const char* name;      // stable rule id, e.g. "status-discipline"
  Severity severity;
  const char* doc;       // one-paragraph description for docs/ANALYSIS.md
  const char* fixit;     // pass-level fix-it hint
  void (*run)(const AnalysisContext&, std::vector<Finding>*);
};

/// All passes, in docs order. Built once, never mutated.
const std::vector<PassInfo>& PassRegistry();

/// Looks up a pass by name; nullptr when absent.
const PassInfo* FindPass(const std::string& name);

/// Runs every registered pass (or one, by name) and returns findings
/// sorted by (file, line, col, pass) for deterministic reports.
std::vector<Finding> RunAllPasses(const AnalysisContext& ctx);
std::vector<Finding> RunPass(const std::string& name,
                             const AnalysisContext& ctx);

// ---------------------------------------------------------------------------
// Layer DAG — the machine-checked ARCHITECTURE.md module structure.
// ---------------------------------------------------------------------------

/// One src/ module and the modules its files may `#include` directly.
/// This table IS the layering contract: ARCHITECTURE.md renders it, the
/// `layering` pass enforces it, and docs/ANALYSIS.md regenerates from
/// it. An edge absent here is a build error waiting to be written.
struct ModuleSpec {
  const char* module;                    // "linalg"
  std::vector<const char*> allowed_deps; // modules it may include
};

/// Modules in dependency order (leaves first).
const std::vector<ModuleSpec>& LayerDag();

/// Files (repo-relative prefixes) the hot-loop-alloc pass treats as
/// hot: allocation inside a loop there is a finding.
const std::vector<const char*>& HotFilePrefixes();

/// Fires every pass against a planted tree (one violation + one decoy
/// per pass) under `scratch_dir`; prints progress to `log`. Returns 0
/// on success — every pass fired where expected, no decoy was flagged.
int RunSelfTest(const std::string& scratch_dir, std::ostream& log);

}  // namespace repro::analyze

#endif  // PEEGA_TOOLS_ANALYZE_ANALYSIS_H_
