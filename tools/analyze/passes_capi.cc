// capi-boundary: the ABI hygiene pass for src/capi (the stable C API).
//
// Exceptions must never unwind across the C boundary (that is undefined
// behavior for a C caller), and no C++ class type may appear in an
// extern "C" signature (the header must stay compilable as C11 — the CI
// serve-smoke job checks it with `gcc -std=c11`). The pass anchors on
// the per-function `extern "C"` markers in src/capi/*.cc: every such
// definition must (a) carry the gg_ symbol prefix, (b) keep its
// signature free of C++ tokens (std, ::, &, class), and (c) wrap its
// whole body in try { ... } catch (...) so nothing escapes. Helper
// functions without the extern "C" marker are free to use C++ — the
// shim exists precisely to translate between the two worlds.

#include <string>
#include <vector>

#include "passes.h"

namespace repro::analyze::passes {

namespace {

// Index just past the matching closer for the opener at `open`, or
// tokens.size() when unbalanced (degrade, never crash).
size_t SkipBalanced(const std::vector<Token>& toks, size_t open,
                    const char* opener, const char* closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].IsPunct(opener)) ++depth;
    if (toks[i].IsPunct(closer) && --depth == 0) return i + 1;
  }
  return toks.size();
}

}  // namespace

void CapiBoundary(const AnalysisContext& ctx, std::vector<Finding>* out) {
  const PassInfo* info = FindPass("capi-boundary");
  for (const SourceFile& file : *ctx.files) {
    if (file.rel.rfind("src/capi/", 0) != 0) continue;
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!toks[i].IsIdent("extern") ||
          !toks[i + 1].Is(TokenKind::kString, "C")) {
        continue;
      }
      // `extern "C" {` opens the header's linkage block, not a function.
      if (toks[i + 2].IsPunct("{")) continue;

      // The declarator: the identifier immediately before the parameter
      // list's '(' is the function name.
      size_t open_paren = toks.size();
      size_t name_idx = toks.size();
      for (size_t j = i + 2; j + 1 < toks.size(); ++j) {
        if (toks[j].IsPunct(";") || toks[j].IsPunct("{")) break;
        if (toks[j].kind == TokenKind::kIdentifier &&
            toks[j + 1].IsPunct("(")) {
          name_idx = j;
          open_paren = j + 1;
          break;
        }
      }
      if (name_idx == toks.size()) continue;  // extern "C" variable etc.
      const Token& name = toks[name_idx];

      if (name.text.rfind("gg_", 0) != 0) {
        out->push_back(Finding{
            "capi-boundary", file.rel, name.line, name.col,
            "extern \"C\" symbol '" + name.text +
                "' is outside the gg_ ABI namespace; every exported "
                "symbol must be gg_-prefixed",
            info->fixit, info->severity});
      }

      // (b) C++ tokens inside the parameter list.
      const size_t sig_end = SkipBalanced(toks, open_paren, "(", ")");
      for (size_t j = open_paren + 1; j + 1 < sig_end; ++j) {
        if (toks[j].IsIdent("std") || toks[j].IsPunct("::") ||
            toks[j].IsPunct("&") || toks[j].IsIdent("class") ||
            toks[j].IsIdent("template")) {
          out->push_back(Finding{
              "capi-boundary", file.rel, toks[j].line, toks[j].col,
              "C++ type token '" + toks[j].text +
                  "' in the extern \"C\" signature of '" + name.text +
                  "'; the ABI admits only C types (opaque pointers, "
                  "integers, doubles, const char*)",
              info->fixit, info->severity});
          break;
        }
      }

      // (c) Definitions must be exception-proof: a try + catch (...)
      // inside the body. Declarations (';') have no body to check.
      if (sig_end >= toks.size() || !toks[sig_end].IsPunct("{")) continue;
      const size_t body_end = SkipBalanced(toks, sig_end, "{", "}");
      bool has_try = false;
      bool has_catch_all = false;
      for (size_t j = sig_end + 1; j + 1 < body_end; ++j) {
        if (toks[j].IsIdent("try")) has_try = true;
        if (toks[j].IsIdent("catch") && j + 3 < body_end &&
            toks[j + 1].IsPunct("(") && toks[j + 2].IsPunct("...") &&
            toks[j + 3].IsPunct(")")) {
          has_catch_all = true;
        }
      }
      if (!has_try || !has_catch_all) {
        out->push_back(Finding{
            "capi-boundary", file.rel, name.line, name.col,
            "extern \"C\" entry point '" + name.text +
                "' lacks a catch-all wrapper; an exception unwinding "
                "into a C caller is undefined behavior, so the whole "
                "body must sit in try { ... } catch (...)",
            info->fixit, info->severity});
      }
      i = sig_end;  // resume after the signature we just handled
    }
  }
}

}  // namespace repro::analyze::passes
