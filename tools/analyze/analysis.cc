#include "analysis.h"

#include <algorithm>
#include <tuple>

#include "passes.h"

namespace repro::analyze {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "none";
}

const SourceFile* AnalysisContext::FindFile(const std::string& rel) const {
  for (const SourceFile& f : *files) {
    if (f.rel == rel) return &f;
  }
  return nullptr;
}

const std::vector<PassInfo>& PassRegistry() {
  static const std::vector<PassInfo>* const registry = new std::vector<
      PassInfo>{
      {"no-raw-thread", Severity::kError,
       "No std::thread/std::jthread/std::async outside src/parallel. "
       "Exactly one layer owns threads; everything else is serial "
       "orchestration over parallel kernels, which is what makes results "
       "bitwise-identical at any thread count.",
       "route the work through parallel::ParallelFor / ParallelReduce",
       &passes::NoRawThread},
      {"no-unseeded-rng", Severity::kError,
       "No std::random_device, raw std::mt19937, rand(), or srand() "
       "outside src/linalg/random. Unseeded or global RNG state would "
       "silently skew the paper's tables between runs.",
       "construct a linalg::Rng with an explicit seed",
       &passes::NoUnseededRng},
      {"no-stdout", Severity::kError,
       "No std::cout in src/ libraries. The eval/table layer owns the "
       "output format; libraries return strings or take an "
       "std::ostream&.",
       "return a string or take an std::ostream& parameter",
       &passes::NoStdout},
      {"no-raw-chrono", Severity::kError,
       "No std::chrono outside src/obs. All timing flows through "
       "obs::StopWatch / obs::TraceSpan so every measured duration lands "
       "in one observable place.",
       "time with obs::StopWatch or an obs::TraceSpan",
       &passes::NoRawChrono},
      {"no-raw-intrinsics", Severity::kError,
       "SIMD intrinsics (immintrin.h/arm_neon.h includes, _mm*/vld1q* "
       "identifiers) only inside src/linalg/kernels/. Vector code must "
       "be reachable only through the dispatch tables so the CPUID gate "
       "and the registry's differential tests cover every SIMD "
       "instruction in the tree.",
       "add a kernel variant to the op's KernelTable in "
       "src/linalg/kernels/",
       &passes::NoRawIntrinsics},
      {"no-abort-on-input", Severity::kError,
       "No PEEGA_CHECK/PEEGA_DCHECK in src/graph/io. Parsers of "
       "externally sourced bytes must return a status::Status with "
       "file/line context, never abort the process.",
       "return status::InvalidInput/IoError with file/line context",
       &passes::NoAbortOnInput},
      {"header-guard", Severity::kError,
       "Headers guard with PEEGA_<PATH>_H_, where <PATH> is the "
       "repo-relative path (src/ stripped) uppercased.",
       "rename the guard to PEEGA_ + the file's path",
       &passes::HeaderGuard},
      {"include-cycle", Severity::kError,
       "No #include cycles among analyzed files. Cycles make build "
       "order fragile and always indicate a layering knot.",
       "break the cycle by splitting an interface header or inverting "
       "the dependency",
       &passes::IncludeCycle},
      {"layering", Severity::kError,
       "Every #include edge between src/ modules must appear in the "
       "layer DAG (the table in ARCHITECTURE.md, encoded in "
       "tools/analyze/passes_graph.cc). An undeclared edge is a layer "
       "violation even if it happens to compile today.",
       "depend on a lower layer, or amend the DAG in passes_graph.cc "
       "AND ARCHITECTURE.md together",
       &passes::Layering},
      {"status-discipline", Severity::kError,
       "A statement that calls a Status/StatusOr-returning function and "
       "discards the result loses a failure signal: deadline expiries "
       "and IO errors would vanish. Results must be returned, assigned, "
       "checked with .ok(), propagated via PEEGA_RETURN_IF_ERROR / "
       "PEEGA_ASSIGN_OR_RETURN, or explicitly dropped with "
       ".IgnoreError().",
       "propagate with PEEGA_RETURN_IF_ERROR, branch on .ok(), or call "
       ".IgnoreError() to document the drop",
       &passes::StatusDiscipline},
      {"determinism-hazard", Severity::kError,
       "In src/linalg and src/core (the determinism-critical layers): "
       "no std::reduce/std::transform_reduce (reassociates float "
       "accumulation) and no unordered containers (iteration order "
       "varies across standard libraries and hash seeds). Everywhere in "
       "src/ outside src/linalg/kernels/: no FP-relaxation pragmas "
       "(fp_contract, float_control, fast-math) — rounding contracts "
       "are owned by the kernel TUs and their build flags.",
       "accumulate with an ordered loop or parallel::ParallelReduce; "
       "use sorted containers or index vectors",
       &passes::DeterminismHazard},
      {"fp-contract-sync", Severity::kError,
       "Cross-checks src/linalg/op_registry.cc against "
       "src/linalg/CMakeLists.txt: every op declared kLanePerOutput "
       "promises separate mul/add rounding in every variant, so each "
       "variant's kernel TU must be on the -ffp-contract=off "
       "PEEGA_KERNEL_SOURCES list. A TU missing from the list could "
       "silently fuse mul+add into FMA and break cross-variant bitwise "
       "equality.",
       "add the kernel TU to PEEGA_KERNEL_SOURCES in "
       "src/linalg/CMakeLists.txt (or declare the op kReferenceOnly)",
       &passes::FpContractSync},
      {"hot-loop-alloc", Severity::kWarning,
       "No operator new/malloc inside loops, and no "
       "push_back/emplace_back in a loop on a container that never sees "
       "reserve()/resize(), in files tagged hot (the SIMD kernel TUs, "
       "linalg/incremental, core/peega_engine). Per-iteration "
       "allocation in those files is a measurable regression on the "
       "attack hot path.",
       "hoist the allocation out of the loop or reserve() the container "
       "before entering it",
       &passes::HotLoopAlloc},
      {"capi-boundary", Severity::kError,
       "In src/capi (the stable C ABI): every extern \"C\" function must "
       "be gg_-prefixed, keep C++ tokens (std, ::, &, class) out of its "
       "signature so graphguard.h stays compilable as C11, and wrap its "
       "entire body in try { ... } catch (...) — an exception unwinding "
       "into a C caller is undefined behavior. Helper functions without "
       "the extern \"C\" marker are exempt; translating between the two "
       "worlds is what the shim is for.",
       "rename the symbol gg_*, move C++ types behind the opaque "
       "gg_ctx, and wrap the body in try { ... } catch (...) returning "
       "GG_INTERNAL",
       &passes::CapiBoundary},
      {"dense-roundtrip", Severity::kError,
       "No ToDense() / DenseToAdjacency() in src/core or src/attack "
       "outside the explicit allowlist of dense-by-design files. The "
       "PEEGA hot path commits flips CSR-natively (graph::WithFlips, "
       "PeegaEngine::PoisonedAdjacency); densifying an adjacency "
       "reintroduces the O(N²) memory wall that caps campaigns at "
       "CI-scale graphs. Dense methods (PGD/Metattack/GF-Attack) and "
       "the tape autograd paths are allowlisted by file.",
       "commit through graph::WithFlips / the engine's sparse state; if "
       "the algorithm is inherently dense, add the file to the "
       "dense-roundtrip allowlist with a justification",
       &passes::DenseRoundtrip},
  };
  return *registry;
}

const PassInfo* FindPass(const std::string& name) {
  for (const PassInfo& pass : PassRegistry()) {
    if (name == pass.name) return &pass;
  }
  return nullptr;
}

namespace {

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.pass) <
                     std::tie(b.file, b.line, b.col, b.pass);
            });
}

}  // namespace

std::vector<Finding> RunAllPasses(const AnalysisContext& ctx) {
  std::vector<Finding> findings;
  for (const PassInfo& pass : PassRegistry()) {
    pass.run(ctx, &findings);
  }
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> RunPass(const std::string& name,
                             const AnalysisContext& ctx) {
  std::vector<Finding> findings;
  if (const PassInfo* pass = FindPass(name)) {
    pass->run(ctx, &findings);
  }
  SortFindings(&findings);
  return findings;
}

}  // namespace repro::analyze
