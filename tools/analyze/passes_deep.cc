// Deep passes — the checks a regex cannot do. All four work on the
// token stream (plus, for the CMake cross-check, one raw build file):
//
//  status-discipline   a call to a Status/StatusOr-returning function
//                      whose result is dropped on the floor
//  determinism-hazard  reassociating float accumulation or unordered
//                      iteration in the determinism-critical layers,
//                      and FP-relaxation pragmas outside the kernels
//  fp-contract-sync    every kLanePerOutput op's kernel TUs must be on
//                      the -ffp-contract=off list in the linalg CMake
//  hot-loop-alloc      new/malloc/push_back-without-reserve inside a
//                      loop in a file tagged hot

#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes.h"

namespace repro::analyze {

const std::vector<const char*>& HotFilePrefixes() {
  // Files where a per-iteration allocation is a measurable regression:
  // the SIMD kernel TUs, the row-subset incremental kernels, and the
  // PEEGA objective engine. Matching is by repo-relative path prefix.
  static const std::vector<const char*>* const hot =
      new std::vector<const char*>{
          "src/linalg/kernels/",
          "src/linalg/incremental.",
          "src/core/peega_engine.",
      };
  return *hot;
}

namespace passes {
namespace {

// Index of the punct matching tokens[open] (an open paren/brace/...),
// or tokens.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& toks, size_t open,
                     const char* open_text, const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].IsPunct(open_text)) ++depth;
    if (toks[i].IsPunct(close_text) && --depth == 0) return i;
  }
  return toks.size();
}

bool UnderAnyPrefix(const std::string& rel,
                    const std::vector<const char*>& prefixes) {
  for (const char* p : prefixes) {
    if (rel.rfind(p, 0) == 0) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// status-discipline
// ---------------------------------------------------------------------------

void StatusDiscipline(const AnalysisContext& ctx,
                      std::vector<Finding>* out) {
  const PassInfo* info = FindPass("status-discipline");

  // Phase 1: harvest the names of functions returning Status or
  // StatusOr<...> from every analyzed file — declarations and
  // definitions look identical at this altitude: `Status` (or a
  // balanced `StatusOr<...>`) directly followed by `name (`.
  std::set<std::string> status_fns;
  for (const SourceFile& file : *ctx.files) {
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].IsIdent("Status") && !toks[i].IsIdent("StatusOr")) {
        continue;
      }
      if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"))) {
        continue;  // member access, not a return type
      }
      size_t j = i + 1;
      if (toks[i].text == "StatusOr") {
        // Balance the template argument list by hand: a nested close
        // like `StatusOr<std::vector<int>>` lexes its final `>>` as ONE
        // shift token, which a naive <-vs-> scan never re-balances.
        if (j >= toks.size() || !toks[j].IsPunct("<")) continue;
        int depth = 0;
        size_t k = j;
        for (; k < toks.size(); ++k) {
          if (toks[k].IsPunct("<")) ++depth;
          else if (toks[k].IsPunct(">")) --depth;
          else if (toks[k].IsPunct(">>")) depth -= 2;
          else if (toks[k].IsPunct(";") || toks[k].IsPunct("{")) break;
          if (depth <= 0) break;
        }
        if (k >= toks.size() || depth > 0) continue;
        j = k + 1;
      }
      if (j + 1 < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
          toks[j].text != "operator" && toks[j + 1].IsPunct("(")) {
        status_fns.insert(toks[j].text);
      }
    }
  }
  if (status_fns.empty()) return;

  // Phase 2: find statement-initial calls of those functions whose
  // full statement is just `call;` — nothing consumes the result: no
  // assignment, no return, no PEEGA_RETURN_IF_ERROR (the call would
  // sit inside the macro's parens), no `.ok()` / `.IgnoreError()` /
  // any other chained member. Scoped to src/: library code must
  // propagate, tools may print-and-exit.
  for (const SourceFile& file : *ctx.files) {
    if (file.rel.rfind("src/", 0) != 0) continue;
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          status_fns.count(toks[i].text) == 0 || !toks[i + 1].IsPunct("(")) {
        continue;
      }
      // Walk back over the qualifier/member chain (a::b::f, obj.f,
      // p->f) to the start of the full postfix expression.
      size_t start = i;
      while (start >= 2 &&
             (toks[start - 1].IsPunct("::") || toks[start - 1].IsPunct(".") ||
              toks[start - 1].IsPunct("->")) &&
             toks[start - 2].kind == TokenKind::kIdentifier) {
        start -= 2;
      }
      const bool stmt_initial =
          start == 0 || toks[start - 1].IsPunct(";") ||
          toks[start - 1].IsPunct("{") || toks[start - 1].IsPunct("}") ||
          toks[start - 1].IsIdent("else") || toks[start - 1].IsIdent("do");
      if (!stmt_initial) continue;
      const size_t close = MatchingClose(toks, i + 1, "(", ")");
      if (close + 1 >= toks.size() || !toks[close + 1].IsPunct(";")) {
        continue;  // chained (.ok()/.IgnoreError()) or otherwise consumed
      }
      out->push_back(Finding{
          "status-discipline", file.rel, toks[i].line, toks[i].col,
          toks[i].text + "() returns a Status/StatusOr that this "
                         "statement discards",
          info->fixit, info->severity});
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-hazard
// ---------------------------------------------------------------------------

void DeterminismHazard(const AnalysisContext& ctx,
                       std::vector<Finding>* out) {
  const PassInfo* info = FindPass("determinism-hazard");
  // FP-relaxation pragma needles, matched against the raw pragma line
  // (pragma grammar is too vendor-specific to tokenize usefully).
  static const char* const kPragmaNeedles[] = {
      "fp_contract", "FP_CONTRACT", "float_control",
      "fast-math",   "fast_math",   "fp reassociate",
  };
  for (const SourceFile& file : *ctx.files) {
    const bool critical = file.rel.rfind("src/linalg/", 0) == 0 ||
                          file.rel.rfind("src/core/", 0) == 0;
    const bool in_kernels = file.rel.rfind("src/linalg/kernels/", 0) == 0;
    const bool in_src = file.rel.rfind("src/", 0) == 0;
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (critical &&
          (i == 0 || !toks[i - 1].IsPunct("::"))) {
        for (const char* name :
             {"reduce", "transform_reduce", "unordered_map",
              "unordered_set", "unordered_multimap", "unordered_multiset"}) {
          if (MatchQualified(toks, i, {"std", name}, false)) {
            const bool container = std::string(name).rfind("unordered", 0) == 0;
            out->push_back(Finding{
                "determinism-hazard", file.rel, toks[i].line, toks[i].col,
                container
                    ? "std::" + std::string(name) +
                          " in a determinism-critical layer: iteration "
                          "order varies across libstdc++ versions and "
                          "hash seeds"
                    : "std::" + std::string(name) +
                          " reassociates float accumulation, breaking "
                          "the bitwise cross-variant guarantee",
                info->fixit, info->severity});
          }
        }
      }
      if (in_src && !in_kernels &&
          toks[i].Is(TokenKind::kDirective, "#pragma")) {
        const std::string line = file.LineText(toks[i].line);
        for (const char* needle : kPragmaNeedles) {
          if (line.find(needle) != std::string::npos) {
            out->push_back(Finding{
                "determinism-hazard", file.rel, toks[i].line, toks[i].col,
                std::string("FP-relaxation pragma ('") + needle +
                    "') outside src/linalg/kernels/ — rounding contracts "
                    "are owned by the kernel TUs and their build flags",
                info->fixit, info->severity});
            break;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// fp-contract-sync
// ---------------------------------------------------------------------------

void FpContractSync(const AnalysisContext& ctx, std::vector<Finding>* out) {
  const PassInfo* info = FindPass("fp-contract-sync");
  const SourceFile* registry = ctx.FindFile("src/linalg/op_registry.cc");
  if (registry == nullptr) return;  // tree without the registry: no-op

  // Harvest (op name, line, generic/avx2/neon) for every op whose
  // determinism class is kLanePerOutput. In the registry source each
  // entry is a braced initializer whose first token is the op-name
  // string and whose variant booleans directly follow the determinism
  // class: `DeterminismClass::kLanePerOutput, true, true, false,`.
  struct LaneOp {
    std::string name;
    int line;
    bool variants[3];  // generic, avx2, neon
  };
  std::vector<LaneOp> lane_ops;
  const std::vector<Token>& toks = registry->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!MatchQualified(toks, i, {"DeterminismClass", "kLanePerOutput"},
                        false)) {
      continue;
    }
    LaneOp op;
    op.line = toks[i].line;
    op.name = "<unknown>";
    for (size_t back = i; back > 0; --back) {
      if (toks[back - 1].IsPunct("{")) {
        if (back < toks.size() && toks[back].kind == TokenKind::kString) {
          op.name = toks[back].text;
        }
        break;
      }
    }
    size_t j = i + 2;  // DeterminismClass :: kLanePerOutput → past it
    ++j;               // MatchQualified consumed 3 tokens ending at i+2
    bool parsed = true;
    for (bool& variant : op.variants) {
      if (j + 1 < toks.size() && toks[j].IsPunct(",") &&
          (toks[j + 1].IsIdent("true") || toks[j + 1].IsIdent("false"))) {
        variant = toks[j + 1].text == "true";
        j += 2;
      } else {
        parsed = false;
        break;
      }
    }
    if (!parsed) {
      // Mentions of kLanePerOutput outside an OpInfo initializer (the
      // DeterminismClassName switch, comparisons) have no op-name
      // string before them and no boolean list after — not entries.
      if (op.name != "<unknown>") {
        out->push_back(Finding{
            "fp-contract-sync", registry->rel, op.line, 1,
            "could not parse the variant booleans after kLanePerOutput "
            "for op '" + op.name + "' — keep the OpInfo initializer "
            "literal",
            info->fixit, info->severity});
      }
      continue;
    }
    lane_ops.push_back(op);
  }
  if (lane_ops.empty()) return;

  const std::string cmake_rel = "src/linalg/CMakeLists.txt";
  std::string cmake;
  if (!ReadRepoFile(ctx.repo_root, cmake_rel, &cmake)) {
    out->push_back(Finding{"fp-contract-sync", registry->rel, 1, 1,
                           "kLanePerOutput ops are declared but " +
                               cmake_rel + " is missing",
                           info->fixit, info->severity});
    return;
  }
  if (cmake.find("-ffp-contract=off") == std::string::npos) {
    out->push_back(Finding{
        "fp-contract-sync", cmake_rel, 1, 1,
        "no -ffp-contract=off block: kernel TUs would be free to fuse "
        "mul+add into FMA, breaking cross-variant bitwise equality",
        info->fixit, info->severity});
    return;
  }
  // The TU list is whatever accumulates into PEEGA_KERNEL_SOURCES —
  // the variable the -ffp-contract=off foreach iterates.
  std::set<std::string> fp_tus;
  size_t pos = 0;
  std::string line;
  while (pos <= cmake.size()) {
    const size_t eol = cmake.find('\n', pos);
    line = cmake.substr(pos, eol == std::string::npos ? std::string::npos
                                                      : eol - pos);
    if (line.find("PEEGA_KERNEL_SOURCES") != std::string::npos) {
      size_t at = 0;
      while ((at = line.find("kernels/kernels_", at)) != std::string::npos) {
        const size_t end = line.find(".cc", at);
        if (end == std::string::npos) break;
        fp_tus.insert(line.substr(at, end + 3 - at));
        at = end + 3;
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }

  static const std::pair<const char*, const char*> kVariantTus[3] = {
      {"generic", "kernels/kernels_generic.cc"},
      {"avx2", "kernels/kernels_avx2.cc"},
      {"neon", "kernels/kernels_neon.cc"},
  };
  for (const LaneOp& op : lane_ops) {
    for (int v = 0; v < 3; ++v) {
      if (!op.variants[v]) continue;
      if (fp_tus.count(kVariantTus[v].second) == 0) {
        out->push_back(Finding{
            "fp-contract-sync", registry->rel, op.line, 1,
            "op '" + op.name + "' is kLanePerOutput with a " +
                kVariantTus[v].first + " variant, but " +
                kVariantTus[v].second + " is not on the " +
                "-ffp-contract=off PEEGA_KERNEL_SOURCES list in " +
                cmake_rel,
            info->fixit, info->severity});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hot-loop-alloc
// ---------------------------------------------------------------------------

void HotLoopAlloc(const AnalysisContext& ctx, std::vector<Finding>* out) {
  const PassInfo* info = FindPass("hot-loop-alloc");
  for (const SourceFile& file : *ctx.files) {
    if (!UnderAnyPrefix(file.rel, HotFilePrefixes())) continue;
    const std::vector<Token>& toks = file.tokens;

    // Identifiers that had capacity established anywhere in this file
    // (reserve/resize/assign); push_back on them inside a loop is fine.
    std::set<std::string> reserved;
    for (size_t i = 2; i < toks.size(); ++i) {
      if ((toks[i].IsIdent("reserve") || toks[i].IsIdent("resize") ||
           toks[i].IsIdent("assign")) &&
          i + 1 < toks.size() && toks[i + 1].IsPunct("(") &&
          (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) &&
          toks[i - 2].kind == TokenKind::kIdentifier) {
        reserved.insert(toks[i - 2].text);
      }
    }

    // Loop-body regions as [first, last] token index ranges.
    std::vector<std::pair<size_t, size_t>> regions;
    for (size_t i = 0; i < toks.size(); ++i) {
      size_t body = toks.size();
      if ((toks[i].IsIdent("for") || toks[i].IsIdent("while")) &&
          i + 1 < toks.size() && toks[i + 1].IsPunct("(")) {
        const size_t close = MatchingClose(toks, i + 1, "(", ")");
        if (close >= toks.size()) continue;
        body = close + 1;
      } else if (toks[i].IsIdent("do") && i + 1 < toks.size() &&
                 toks[i + 1].IsPunct("{")) {
        body = i + 1;
      } else {
        continue;
      }
      if (body >= toks.size()) continue;
      if (toks[body].IsPunct("{")) {
        const size_t end = MatchingClose(toks, body, "{", "}");
        if (end < toks.size()) regions.emplace_back(body, end);
      } else {
        // Single-statement body: up to the `;` closing it.
        for (size_t j = body; j < toks.size(); ++j) {
          if (toks[j].IsPunct("(")) {
            j = MatchingClose(toks, j, "(", ")");
            if (j >= toks.size()) break;
          } else if (toks[j].IsPunct(";")) {
            regions.emplace_back(body, j);
            break;
          }
        }
      }
    }

    const auto in_loop = [&regions](size_t i) {
      for (const auto& [lo, hi] : regions) {
        if (i > lo && i < hi) return true;
      }
      return false;
    };

    for (size_t i = 0; i < toks.size(); ++i) {
      if (!in_loop(i)) continue;
      if (toks[i].IsIdent("new") &&
          !(i > 0 && toks[i - 1].IsIdent("operator"))) {
        out->push_back(Finding{"hot-loop-alloc", file.rel, toks[i].line,
                               toks[i].col,
                               "operator new inside a loop in a hot file",
                               info->fixit, info->severity});
        continue;
      }
      const bool is_alloc_call =
          (toks[i].IsIdent("malloc") || toks[i].IsIdent("calloc") ||
           toks[i].IsIdent("realloc")) &&
          i + 1 < toks.size() && toks[i + 1].IsPunct("(") &&
          !(i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->") ||
                      toks[i - 1].IsPunct("::")));
      if (is_alloc_call) {
        out->push_back(Finding{"hot-loop-alloc", file.rel, toks[i].line,
                               toks[i].col,
                               toks[i].text + "() inside a loop in a hot "
                                              "file",
                               info->fixit, info->severity});
        continue;
      }
      if ((toks[i].IsIdent("push_back") || toks[i].IsIdent("emplace_back")) &&
          i + 1 < toks.size() && toks[i + 1].IsPunct("(") && i >= 2 &&
          (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"))) {
        // Receiver: the identifier before the member access, looking
        // through one trailing [index] group (rows[u].push_back).
        size_t r = i - 2;
        if (toks[r].IsPunct("]")) {
          int depth = 0;
          while (r > 0) {
            if (toks[r].IsPunct("]")) ++depth;
            if (toks[r].IsPunct("[") && --depth == 0) {
              --r;
              break;
            }
            --r;
          }
        }
        if (toks[r].kind == TokenKind::kIdentifier &&
            reserved.count(toks[r].text) == 0) {
          out->push_back(Finding{
              "hot-loop-alloc", file.rel, toks[i].line, toks[i].col,
              toks[i].text + " on '" + toks[r].text +
                  "' inside a loop with no reserve()/resize() for it "
                  "anywhere in this file",
              info->fixit, info->severity});
        }
      }
    }
  }
}

}  // namespace passes
}  // namespace repro::analyze
