#include "baseline.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace repro::analyze {

namespace {

std::string SqueezeWhitespace(const std::string& s) {
  std::string out;
  bool in_ws = true;  // also trims leading whitespace
  for (const char c : s) {
    if (c == ' ' || c == '\t') {
      if (!in_ws) out += ' ';
      in_ws = true;
    } else {
      out += c;
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string Fnv1a64Hex(const std::string& data) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

std::string Fingerprint(const Finding& finding, const SourceFile* file) {
  const std::string line_text =
      file != nullptr ? SqueezeWhitespace(file->LineText(finding.line)) : "";
  return Fnv1a64Hex(finding.pass + '\0' + finding.file + '\0' + line_text);
}

std::set<std::string> ParseBaseline(const std::string& text) {
  std::set<std::string> fingerprints;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string fp;
    fields >> fp;
    if (fp.empty() || fp[0] == '#') continue;
    fingerprints.insert(fp);
  }
  return fingerprints;
}

std::string RenderBaseline(const std::vector<Finding>& findings,
                           const AnalysisContext& ctx) {
  std::ostringstream out;
  out << "# peega_analyze baseline — pre-existing findings suppressed for\n"
         "# incremental burn-down. Each line: <fingerprint> <pass> <file>.\n"
         "# Regenerate with `peega_analyze <root> --write-baseline <this "
         "file>`.\n"
         "# CI fails when this file GROWS: fix new findings instead of\n"
         "# baselining them, and delete lines as old ones are fixed.\n";
  for (const Finding& f : findings) {
    out << Fingerprint(f, ctx.FindFile(f.file)) << " " << f.pass << " "
        << f.file << "\n";
  }
  return out.str();
}

void ApplyBaseline(const std::set<std::string>& baseline,
                   const AnalysisContext& ctx,
                   const std::vector<Finding>& all,
                   std::vector<Finding>* kept,
                   std::vector<Finding>* suppressed) {
  for (const Finding& f : all) {
    if (baseline.count(Fingerprint(f, ctx.FindFile(f.file))) != 0) {
      suppressed->push_back(f);
    } else {
      kept->push_back(f);
    }
  }
}

}  // namespace repro::analyze
