// peega_analyze — the project's static analyzer (see docs/ANALYSIS.md).
//
//   peega_analyze <repo_root> [options]     analyze the tree
//   peega_analyze --self-test               plant violations, verify passes
//
// Options:
//   --baseline FILE        suppress findings fingerprinted in FILE
//   --write-baseline FILE  write the current findings as a new baseline
//   --sarif FILE           also write a SARIF 2.1.0 report to FILE
//   --pass NAME            run a single pass instead of all of them
//
// Findings go to stderr, one per line:
//   file:line:col: severity: [pass] message (fix: hint)
// Exit status is 1 when any non-baselined finding remains, 0 otherwise.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis.h"
#include "baseline.h"
#include "sarif.h"

namespace {

using namespace repro::analyze;

int Usage() {
  std::cerr
      << "usage: peega_analyze <repo_root> [--baseline FILE]\n"
         "                     [--write-baseline FILE] [--sarif FILE]\n"
         "                     [--pass NAME]\n"
         "       peega_analyze --self-test\n"
         "       peega_analyze --list-passes\n";
  return 2;
}

int ListPasses() {
  for (const PassInfo& pass : PassRegistry()) {
    std::cout << pass.name << " (" << SeverityName(pass.severity) << ")\n"
              << "  " << pass.doc << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo_root;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string only_pass;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--self-test") {
      const std::string scratch =
          std::filesystem::temp_directory_path().string();
      return RunSelfTest(scratch, std::cerr);
    } else if (arg == "--list-passes") {
      return ListPasses();
    } else if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--write-baseline") {
      write_baseline_path = value();
    } else if (arg == "--sarif") {
      sarif_path = value();
    } else if (arg == "--pass") {
      only_pass = value();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "peega_analyze: unknown option '" << arg << "'\n";
      return Usage();
    } else if (repo_root.empty()) {
      repo_root = arg;
    } else {
      return Usage();
    }
  }
  if (repo_root.empty()) return Usage();
  if (!only_pass.empty() && FindPass(only_pass) == nullptr) {
    std::cerr << "peega_analyze: no pass named '" << only_pass
              << "' (try --list-passes)\n";
    return 2;
  }

  const std::vector<SourceFile> files = LoadTree(repo_root);
  if (files.empty()) {
    std::cerr << "peega_analyze: no .h/.cc files under " << repo_root
              << " (src/ tools/ tests/ bench/)\n";
    return 2;
  }
  const IncludeGraph graph = IncludeGraph::Build(files);
  AnalysisContext ctx;
  ctx.repo_root = repo_root;
  ctx.files = &files;
  ctx.include_graph = &graph;

  const std::vector<Finding> all =
      only_pass.empty() ? RunAllPasses(ctx) : RunPass(only_pass, ctx);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "peega_analyze: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    out << RenderBaseline(all, ctx);
    std::cerr << "peega_analyze: wrote " << all.size()
              << " fingerprint(s) to " << write_baseline_path << "\n";
    return 0;
  }

  std::vector<Finding> kept;
  std::vector<Finding> suppressed;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "peega_analyze: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ApplyBaseline(ParseBaseline(text), ctx, all, &kept, &suppressed);
  } else {
    kept = all;
  }

  for (const Finding& f : kept) {
    std::cerr << f.file << ":" << f.line << ":" << f.col << ": "
              << SeverityName(f.severity) << ": [" << f.pass << "] "
              << f.message;
    if (!f.fixit.empty()) std::cerr << " (fix: " << f.fixit << ")";
    std::cerr << "\n";
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "peega_analyze: cannot write " << sarif_path << "\n";
      return 2;
    }
    SarifDocument(kept).Write(out);
    out << "\n";
  }

  std::cerr << "peega_analyze: " << files.size() << " files, "
            << kept.size() << " finding(s)";
  if (!suppressed.empty()) {
    std::cerr << " (" << suppressed.size() << " baselined)";
  }
  std::cerr << "\n";
  return kept.empty() ? 0 : 1;
}
