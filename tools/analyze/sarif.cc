#include "sarif.h"

namespace repro::analyze {

using repro::obs::Json;

obs::Json SarifDocument(const std::vector<Finding>& findings) {
  Json rules = Json::MakeArray();
  for (const PassInfo& pass : PassRegistry()) {
    Json rule = Json::MakeObject();
    rule.object["id"] = Json::MakeString(pass.name);
    Json short_desc = Json::MakeObject();
    short_desc.object["text"] = Json::MakeString(pass.doc);
    rule.object["shortDescription"] = short_desc;
    Json help = Json::MakeObject();
    help.object["text"] = Json::MakeString(std::string("Fix: ") + pass.fixit);
    rule.object["help"] = help;
    Json config = Json::MakeObject();
    config.object["level"] = Json::MakeString(SeverityName(pass.severity));
    rule.object["defaultConfiguration"] = config;
    rules.array.push_back(std::move(rule));
  }

  Json results = Json::MakeArray();
  for (const Finding& f : findings) {
    Json result = Json::MakeObject();
    result.object["ruleId"] = Json::MakeString(f.pass);
    result.object["level"] = Json::MakeString(SeverityName(f.severity));
    Json message = Json::MakeObject();
    message.object["text"] =
        Json::MakeString(f.message + " [fix: " + f.fixit + "]");
    result.object["message"] = message;
    Json region = Json::MakeObject();
    region.object["startLine"] = Json::MakeNumber(f.line);
    region.object["startColumn"] = Json::MakeNumber(f.col);
    Json artifact = Json::MakeObject();
    artifact.object["uri"] = Json::MakeString(f.file);
    Json physical = Json::MakeObject();
    physical.object["artifactLocation"] = artifact;
    physical.object["region"] = region;
    Json location = Json::MakeObject();
    location.object["physicalLocation"] = physical;
    Json locations = Json::MakeArray();
    locations.array.push_back(std::move(location));
    result.object["locations"] = locations;
    results.array.push_back(std::move(result));
  }

  Json driver = Json::MakeObject();
  driver.object["name"] = Json::MakeString("peega_analyze");
  driver.object["informationUri"] =
      Json::MakeString("docs/ANALYSIS.md");
  driver.object["rules"] = rules;
  Json tool = Json::MakeObject();
  tool.object["driver"] = driver;
  Json run = Json::MakeObject();
  run.object["tool"] = tool;
  run.object["results"] = results;
  Json runs = Json::MakeArray();
  runs.array.push_back(std::move(run));

  Json doc = Json::MakeObject();
  doc.object["$schema"] = Json::MakeString(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  doc.object["version"] = Json::MakeString("2.1.0");
  doc.object["runs"] = runs;
  return doc;
}

}  // namespace repro::analyze
