#include "source.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace repro::analyze {

const char* const kAnalyzedRoots[4] = {"src", "tools", "tests", "bench"};

std::string SourceFile::LineText(int line) const {
  if (line < 1) return "";
  size_t start = 0;
  for (int l = 1; l < line; ++l) {
    start = text.find('\n', start);
    if (start == std::string::npos) return "";
    ++start;
  }
  const size_t end = text.find('\n', start);
  return text.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

std::vector<SourceFile> LoadTree(const std::string& repo_root) {
  std::vector<SourceFile> files;
  for (const char* root : kAnalyzedRoots) {
    const fs::path dir = fs::path(repo_root) / root;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      SourceFile file;
      file.rel = (fs::path(root) /
                  fs::relative(entry.path(), dir))
                     .generic_string();
      if (!ReadRepoFile(repo_root, file.rel, &file.text)) continue;
      file.tokens = Lex(file.text);
      files.push_back(std::move(file));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return files;
}

bool ReadRepoFile(const std::string& repo_root, const std::string& rel,
                  std::string* out) {
  std::ifstream in(fs::path(repo_root) / rel, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace repro::analyze
