// peega_lint — project-specific static checks for the src/ tree.
//
// The determinism guarantee (bitwise-identical attack/defense runs at any
// thread count, any machine) rests on conventions no compiler enforces:
// all threading goes through src/parallel, all randomness through the
// seeded linalg::Rng in src/linalg/random, and libraries never write to
// stdout (tables/benches own the output format). This tool turns those
// conventions into machine-checked rules and runs as a ctest, so a stray
// `std::mt19937 rng;` fails CI instead of silently skewing Table 4.
//
// Usage:
//   peega_lint <repo_root>   lint <repo_root>/src, exit 1 on any violation
//   peega_lint --self-test   plant violations of every rule in a temp tree
//                            and verify each one is caught (and that code
//                            in comments/strings is NOT flagged)
//
// Rules (token rules are data in kTokenRules; two structural passes):
//   no-raw-thread   std::thread/std::jthread/std::async outside src/parallel
//   no-unseeded-rng std::random_device/std::mt19937/rand()/srand() outside
//                   src/linalg/random
//   no-stdout       std::cout anywhere in src/ libraries
//   no-raw-chrono   std::chrono outside src/obs — all timing goes through
//                   obs::StopWatch / obs::TraceSpan so instrumented time
//                   lands in one place (bench/ is outside src/ and exempt
//                   by construction)
//   no-raw-intrinsics  SIMD intrinsics (immintrin.h/arm_neon.h/_mm*/vld1q*)
//                   outside src/linalg/kernels — vector code must be
//                   reachable only through the dispatch tables so the
//                   CPUID gate and the registry's differential tests
//                   cover every SIMD instruction in the tree
//   no-abort-on-input  PEEGA_CHECK/PEEGA_DCHECK inside src/graph/io —
//                   parsers of externally sourced bytes must return a
//                   status::Status with file/line context, never abort
//                   (the only rule scoped BY an only_prefix instead of
//                   exempted by one)
//   header-guard    headers must guard with PEEGA_<PATH>_H_
//   include-cycle   no #include cycles among src/ headers

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // path relative to src/
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Token rules as data
// ---------------------------------------------------------------------------

enum class MatchKind {
  kToken,  // needle preceded by a non-identifier char (catches std::x forms)
  kCall,   // identifier needle with word boundaries, followed by '('
};

struct TokenRule {
  const char* name;
  const char* needle;
  MatchKind kind;
  // Files whose src/-relative path starts with this prefix are exempt
  // (empty = no exemption).
  const char* exempt_prefix;
  // When non-empty the rule applies ONLY to files whose src/-relative
  // path starts with this prefix (the inverse of exempt_prefix; used
  // for rules about what a specific module must not do).
  const char* only_prefix;
  const char* message;
};

constexpr TokenRule kTokenRules[] = {
    {"no-raw-thread", "std::thread", MatchKind::kToken, "parallel/", "",
     "raw std::thread outside src/parallel breaks the deterministic "
     "thread-pool contract; use parallel::ParallelFor"},
    {"no-raw-thread", "std::jthread", MatchKind::kToken, "parallel/", "",
     "raw std::jthread outside src/parallel; use parallel::ParallelFor"},
    {"no-raw-thread", "std::async", MatchKind::kToken, "parallel/", "",
     "std::async outside src/parallel; use parallel::ParallelFor"},
    {"no-unseeded-rng", "std::random_device", MatchKind::kToken,
     "linalg/random", "",
     "std::random_device is nondeterministic; all randomness must flow "
     "through the seeded linalg::Rng"},
    {"no-unseeded-rng", "std::mt19937", MatchKind::kToken, "linalg/random",
     "",
     "raw std::mt19937 outside src/linalg/random; construct a linalg::Rng "
     "with an explicit seed instead"},
    {"no-unseeded-rng", "rand", MatchKind::kCall, "linalg/random", "",
     "rand() is unseeded global state; use the seeded linalg::Rng"},
    {"no-unseeded-rng", "srand", MatchKind::kCall, "linalg/random", "",
     "srand() mutates global RNG state; use the seeded linalg::Rng"},
    {"no-stdout", "std::cout", MatchKind::kToken, "", "",
     "libraries must not write to stdout; return strings or take an "
     "std::ostream& so the eval/table layer owns the output format"},
    {"no-raw-chrono", "std::chrono", MatchKind::kToken, "obs/", "",
     "raw std::chrono outside src/obs; time with obs::StopWatch (or an "
     "obs::TraceSpan) so every duration is observable in one place"},
    // SIMD intrinsics live ONLY in src/linalg/kernels: every vector
    // code path must be reachable through the dispatch tables (and
    // hence covered by the registry's differential tests); a raw
    // intrinsic elsewhere would dodge both the CPUID check and the
    // bitwise-equality suite.
    {"no-raw-intrinsics", "immintrin.h", MatchKind::kToken,
     "linalg/kernels/", "",
     "x86 intrinsics outside src/linalg/kernels bypass SIMD dispatch; "
     "add a kernel variant to the op's KernelTable instead"},
    {"no-raw-intrinsics", "arm_neon.h", MatchKind::kToken,
     "linalg/kernels/", "",
     "NEON intrinsics outside src/linalg/kernels bypass SIMD dispatch; "
     "add a kernel variant to the op's KernelTable instead"},
    {"no-raw-intrinsics", "_mm256_", MatchKind::kToken, "linalg/kernels/",
     "",
     "AVX2 intrinsics outside src/linalg/kernels bypass SIMD dispatch "
     "and the differential-test suite"},
    {"no-raw-intrinsics", "_mm_", MatchKind::kToken, "linalg/kernels/", "",
     "SSE intrinsics outside src/linalg/kernels bypass SIMD dispatch "
     "and the differential-test suite"},
    {"no-raw-intrinsics", "vld1q_", MatchKind::kToken, "linalg/kernels/",
     "",
     "NEON intrinsics outside src/linalg/kernels bypass SIMD dispatch "
     "and the differential-test suite"},
    // graph/io parses bytes an adversary may control (PR-5 failure
    // model): malformed input must surface as a status::Status with
    // file/line context, never as a process abort.
    {"no-abort-on-input", "PEEGA_CHECK", MatchKind::kToken, "",
     "graph/io",
     "PEEGA_CHECK on externally sourced data aborts the process; return "
     "status::InvalidInput/IoError with file/line context instead"},
    {"no-abort-on-input", "PEEGA_DCHECK", MatchKind::kToken, "",
     "graph/io",
     "PEEGA_DCHECK on externally sourced data aborts debug builds; return "
     "status::InvalidInput/IoError with file/line context instead"},
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Comment / string stripping
// ---------------------------------------------------------------------------

// Replaces the contents of comments, string literals, and char literals
// with spaces so token rules never fire on documentation or messages.
// Newlines are preserved, keeping line numbers stable. Handles //, /* */,
// "..." (with escapes), '...', and R"delim(...)delim".
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(text[i - 1]))) {
          const size_t open = text.find('(', i + 2);
          if (open != std::string::npos) {
            raw_delim = ")" + text.substr(i + 2, open - (i + 2)) + "\"";
            state = State::kRaw;
            for (size_t j = i; j <= open && j < text.size(); ++j) {
              if (out[j] != '\n') out[j] = ' ';
            }
            i = open;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = i; j < i + raw_delim.size(); ++j) out[j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

int LineOfOffset(const std::string& text, size_t offset) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                         static_cast<long>(offset), '\n'));
}

// ---------------------------------------------------------------------------
// Per-file scanning
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel;       // path relative to the src root, '/'-separated
  std::string raw;       // original contents
  std::string stripped;  // comments/strings blanked
};

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void ScanTokenRules(const SourceFile& file, std::vector<Violation>* out) {
  for (const TokenRule& rule : kTokenRules) {
    if (rule.exempt_prefix[0] != '\0' &&
        file.rel.rfind(rule.exempt_prefix, 0) == 0) {
      continue;
    }
    if (rule.only_prefix[0] != '\0' &&
        file.rel.rfind(rule.only_prefix, 0) != 0) {
      continue;
    }
    const std::string needle = rule.needle;
    size_t pos = 0;
    while ((pos = file.stripped.find(needle, pos)) != std::string::npos) {
      const size_t end = pos + needle.size();
      const char prev = pos > 0 ? file.stripped[pos - 1] : '\0';
      const char after = end < file.stripped.size() ? file.stripped[end] : '\0';
      bool hit = false;
      if (rule.kind == MatchKind::kToken) {
        // "std::mt19937" must not be part of a longer identifier on the
        // left; suffixes like "_64" ARE a match.
        hit = !IsIdentChar(prev);
      } else {
        // Bare or std:: qualified call: word boundaries and a '(' next.
        // A preceding '.', '->', or identifier char means a member or a
        // longer name (grad(...), rng.rand(...)) — not the C library call.
        const bool member =
            prev == '.' || (pos >= 2 && file.stripped.compare(pos - 2, 2,
                                                              "->") == 0);
        size_t paren = end;
        while (paren < file.stripped.size() &&
               (file.stripped[paren] == ' ' || file.stripped[paren] == '\t')) {
          ++paren;
        }
        hit = !IsIdentChar(prev) && !member && !IsIdentChar(after) &&
              paren < file.stripped.size() && file.stripped[paren] == '(';
      }
      if (hit) {
        out->push_back({file.rel, LineOfOffset(file.stripped, pos), rule.name,
                        std::string(rule.needle) + ": " + rule.message});
      }
      pos = end;
    }
  }
}

std::string ExpectedGuard(const std::string& rel) {
  std::string guard = "PEEGA_";
  for (char c : rel) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void ScanHeaderGuard(const SourceFile& file, std::vector<Violation>* out) {
  if (file.rel.size() < 2 ||
      file.rel.compare(file.rel.size() - 2, 2, ".h") != 0) {
    return;
  }
  const std::string expected = ExpectedGuard(file.rel);
  std::istringstream lines(file.stripped);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string directive, symbol;
    tokens >> directive >> symbol;
    if (directive == "#ifndef") {
      if (symbol != expected) {
        out->push_back({file.rel, line_no, "header-guard",
                        "guard '" + symbol + "' should be '" + expected +
                            "' (PEEGA_ + path under src/)"});
      }
      return;
    }
    if (!directive.empty() && directive != "#pragma") break;
  }
  out->push_back({file.rel, 1, "header-guard",
                  "missing include guard; expected #ifndef " + expected});
}

std::vector<std::string> QuotedIncludes(const std::string& raw) {
  std::vector<std::string> includes;
  std::istringstream lines(raw);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    const size_t inc = line.find("include", hash);
    if (inc == std::string::npos) continue;
    const size_t open = line.find('"', inc);
    if (open == std::string::npos) continue;
    const size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    includes.push_back(line.substr(open + 1, close - open - 1));
  }
  return includes;
}

// DFS three-color cycle detection over the quoted-include graph of src/
// headers. Reports each cycle once, with the full path in the message.
void ScanIncludeCycles(const std::vector<SourceFile>& files,
                       std::vector<Violation>* out) {
  std::map<std::string, std::vector<std::string>> edges;
  std::set<std::string> headers;
  for (const SourceFile& f : files) {
    if (f.rel.size() < 2 || f.rel.compare(f.rel.size() - 2, 2, ".h") != 0) {
      continue;
    }
    headers.insert(f.rel);
  }
  for (const SourceFile& f : files) {
    if (headers.count(f.rel) == 0) continue;
    for (const std::string& inc : QuotedIncludes(f.raw)) {
      if (headers.count(inc) != 0) edges[f.rel].push_back(inc);
    }
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;

  struct Dfs {
    std::map<std::string, std::vector<std::string>>& edges;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    std::set<std::string>& reported;
    std::vector<Violation>* out;

    void Visit(const std::string& node) {
      color[node] = 1;
      stack.push_back(node);
      for (const std::string& next : edges[node]) {
        if (color[next] == 1) {
          auto begin = std::find(stack.begin(), stack.end(), next);
          std::string path;
          for (auto it = begin; it != stack.end(); ++it) path += *it + " -> ";
          path += next;
          if (reported.insert(path).second) {
            // Attribute the violation to the head of the cycle, the first
            // node on the printed path.
            out->push_back({next, 1, "include-cycle",
                            "#include cycle: " + path});
          }
        } else if (color[next] == 0) {
          Visit(next);
        }
      }
      stack.pop_back();
      color[node] = 2;
    }
  };
  Dfs dfs{edges, color, stack, reported, out};
  for (const std::string& h : headers) {
    if (color[h] == 0) dfs.Visit(h);
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Violation> LintTree(const fs::path& src_root,
                                size_t* scanned = nullptr) {
  std::vector<SourceFile> files;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    SourceFile file;
    file.rel = fs::relative(entry.path(), src_root).generic_string();
    if (!ReadFile(entry.path(), &file.raw)) continue;
    file.stripped = StripCommentsAndStrings(file.raw);
    files.push_back(std::move(file));
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  if (scanned != nullptr) *scanned = files.size();
  std::vector<Violation> violations;
  for (const SourceFile& f : files) {
    ScanTokenRules(f, &violations);
    ScanHeaderGuard(f, &violations);
  }
  ScanIncludeCycles(files, &violations);
  return violations;
}

int ReportAndExit(const std::vector<Violation>& violations, size_t scanned) {
  for (const Violation& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (scanned == 0) {
    std::cout << "peega_lint: no source files found — wrong root?\n";
    return 2;
  }
  if (violations.empty()) {
    std::cout << "peega_lint: clean (" << scanned << " files)\n";
    return 0;
  }
  std::cout << "peega_lint: " << violations.size() << " violation(s)\n";
  return 1;
}

// ---------------------------------------------------------------------------
// Self-test: plant one violation per rule, plus decoys that must NOT fire.
// ---------------------------------------------------------------------------

void WriteFile(const fs::path& path, const std::string& contents) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

int RunSelfTest() {
  const fs::path root =
      fs::temp_directory_path() / "peega_lint_selftest" / "src";
  fs::remove_all(root.parent_path());

  // One planted violation per rule.
  WriteFile(root / "core/bad_thread.cc",
            "#include <thread>\nvoid F() { std::thread t([]{}); }\n");
  WriteFile(root / "core/bad_rng.cc",
            "#include <random>\nstd::mt19937 rng;\n"
            "int R() { return rand(); }\n");
  WriteFile(root / "core/bad_cout.cc",
            "#include <iostream>\nvoid P() { std::cout << 1; }\n");
  WriteFile(root / "core/bad_chrono.cc",
            "#include <chrono>\n"
            "double Now() {\n"
            "  return std::chrono::duration<double>(\n"
            "      std::chrono::steady_clock::now().time_since_epoch())\n"
            "      .count();\n"
            "}\n");
  WriteFile(root / "graph/io_bad.cc",
            "#include \"debug/check.h\"\n"
            "int Parse(int v) { PEEGA_CHECK_GE(v, 0); return v; }\n");
  WriteFile(root / "core/bad_simd.cc",
            "#include <immintrin.h>\n"
            "void S(float* p) {\n"
            "  _mm256_storeu_ps(p, _mm256_setzero_ps());\n"
            "}\n");
  WriteFile(root / "core/bad_guard.h",
            "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n");
  WriteFile(root / "core/cycle_a.h",
            "#ifndef PEEGA_CORE_CYCLE_A_H_\n#define PEEGA_CORE_CYCLE_A_H_\n"
            "#include \"core/cycle_b.h\"\n#endif  // PEEGA_CORE_CYCLE_A_H_\n");
  WriteFile(root / "core/cycle_b.h",
            "#ifndef PEEGA_CORE_CYCLE_B_H_\n#define PEEGA_CORE_CYCLE_B_H_\n"
            "#include \"core/cycle_a.h\"\n#endif  // PEEGA_CORE_CYCLE_B_H_\n");
  // Decoys that must NOT be flagged: exempt directories, and forbidden
  // tokens that appear only inside comments or string literals.
  WriteFile(root / "parallel/pool.cc",
            "#include <thread>\nvoid G() { std::thread t([]{}); }\n");
  WriteFile(root / "linalg/random.cc",
            "#include <random>\nstd::mt19937 engine(42);\n");
  WriteFile(root / "obs/stopwatch.cc",
            "#include <chrono>\n"
            "double Tick() {\n"
            "  return std::chrono::duration<double>(\n"
            "      std::chrono::steady_clock::now().time_since_epoch())\n"
            "      .count();\n"
            "}\n");
  WriteFile(root / "core/decoy.cc",
            "// std::thread and std::cout and rand() in a comment\n"
            "/* std::mt19937 and std::chrono in a block comment */\n"
            "// _mm256_add_ps and vld1q_f32 and immintrin.h in a comment\n"
            "const char* kMsg = \"std::cout << rand() std::chrono\";\n"
            "const char* kSimd = \"_mm_setzero_ps lives in immintrin.h\";\n"
            "int Grad(int g) { return g; }\nint Use() { return Grad(1); }\n");
  // Intrinsics are fine inside src/linalg/kernels (exempt_prefix).
  WriteFile(root / "linalg/kernels/ok_simd.cc",
            "#include <immintrin.h>\n"
            "void K(float* p) {\n"
            "  _mm256_storeu_ps(p, _mm256_setzero_ps());\n"
            "}\n");
  // PEEGA_CHECK is allowed outside graph/io (only_prefix scoping), and
  // in graph/io comments/strings (stripping).
  WriteFile(root / "core/check_ok.cc",
            "#include \"debug/check.h\"\n"
            "void V(int n) { PEEGA_CHECK_GT(n, 0); }\n");
  WriteFile(root / "graph/io_decoy.cc",
            "// PEEGA_CHECK would abort here, so we do not use it\n"
            "const char* kDoc = \"never PEEGA_DCHECK parsed input\";\n");

  const std::vector<Violation> violations = LintTree(root);
  for (const Violation& v : violations) {
    std::cout << "  (self-test) " << v.file << ":" << v.line << ": ["
              << v.rule << "] " << v.message << "\n";
  }

  struct Expect {
    const char* file;
    const char* rule;
  };
  const Expect expected[] = {
      {"core/bad_thread.cc", "no-raw-thread"},
      {"core/bad_rng.cc", "no-unseeded-rng"},
      {"core/bad_cout.cc", "no-stdout"},
      {"core/bad_chrono.cc", "no-raw-chrono"},
      {"graph/io_bad.cc", "no-abort-on-input"},
      {"core/bad_simd.cc", "no-raw-intrinsics"},
      {"core/bad_guard.h", "header-guard"},
      {"core/cycle_a.h", "include-cycle"},
  };
  int failures = 0;
  for (const Expect& e : expected) {
    const bool found =
        std::any_of(violations.begin(), violations.end(),
                    [&](const Violation& v) {
                      return v.file == e.file && v.rule == e.rule;
                    });
    if (!found) {
      std::cout << "SELF-TEST FAIL: expected [" << e.rule << "] in "
                << e.file << "\n";
      ++failures;
    }
  }
  for (const char* clean_file :
       {"parallel/pool.cc", "linalg/random.cc", "obs/stopwatch.cc",
        "core/decoy.cc", "core/check_ok.cc", "graph/io_decoy.cc",
        "linalg/kernels/ok_simd.cc"}) {
    const bool flagged =
        std::any_of(violations.begin(), violations.end(),
                    [&](const Violation& v) { return v.file == clean_file; });
    if (flagged) {
      std::cout << "SELF-TEST FAIL: false positive in " << clean_file << "\n";
      ++failures;
    }
  }
  // bad_rng.cc plants both std::mt19937 and rand(); both must fire.
  const auto rng_hits = std::count_if(
      violations.begin(), violations.end(), [](const Violation& v) {
        return v.file == "core/bad_rng.cc" && v.rule == "no-unseeded-rng";
      });
  if (rng_hits < 2) {
    std::cout << "SELF-TEST FAIL: expected both mt19937 and rand() hits in "
                 "core/bad_rng.cc\n";
    ++failures;
  }

  fs::remove_all(root.parent_path());
  if (failures == 0) {
    std::cout << "peega_lint self-test: all rules fire, no false positives\n";
    return 0;
  }
  std::cout << "peega_lint self-test: " << failures << " failure(s)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--self-test") {
    return RunSelfTest();
  }
  const fs::path root = argc >= 2 ? fs::path(argv[1]) : fs::path(".");
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::cout << "peega_lint: no src/ directory under " << root << "\n";
    return 2;
  }
  size_t scanned = 0;
  const std::vector<Violation> violations = LintTree(src, &scanned);
  return ReportAndExit(violations, scanned);
}
