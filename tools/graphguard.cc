// graphguard — command-line front end to the library.
//
//   graphguard generate --dataset cora --scale 1.0 --seed 42 --out g.txt
//   graphguard attack   --in g.txt --out poisoned.txt --attacker peega
//                       --rate 0.1 [--lambda 0.01 --p 2 --layers 2]
//                       [--deadline SECONDS] [--checkpoint FILE
//                        --checkpoint-every K]
//   graphguard defend   --in poisoned.txt --defender gnat [--runs 3]
//   graphguard inspect  --in g.txt [--clean g_clean.txt]
//
// `defend` prints mean±std test accuracy; `inspect` prints homophily and
// (given a clean reference) the Add/Del x Same/Diff forensics of Fig. 2.
//
// `attack --deadline` caps the wall-clock budget: on expiry the
// best-so-far poisoned graph is still written and the exit stays 0, but
// the status line reports DEADLINE_EXCEEDED. `--checkpoint` makes PEEGA
// periodically persist its campaign state; re-running the same command
// after an interruption resumes from the file and reproduces the
// uninterrupted flip sequence bit for bit.
#include <cstdio>
#include <memory>
#include <string>

#include "attack/dice.h"
#include "attack/gf_attack.h"
#include "attack/metattack.h"
#include "attack/pgd.h"
#include "attack/random_attack.h"
#include "core/gnat.h"
#include "core/peega.h"
#include "core/peega_batch.h"
#include "defense/gnnguard.h"
#include "defense/jaccard.h"
#include "defense/model_defenders.h"
#include "defense/prognn.h"
#include "defense/svd.h"
#include "eval/args.h"
#include "eval/pipeline.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "status/deadline.h"
#include "status/status.h"

namespace {

using namespace repro;

int Usage() {
  std::fprintf(
      stderr,
      "usage: graphguard <generate|attack|defend|inspect> [--flags]\n"
      "  generate --dataset cora|citeseer|polblogs|pubmed|blog\n"
      "           [--scale S] [--seed N] --out FILE\n"
      "  attack   --in FILE --out FILE\n"
      "           [--attacker peega|peega-batch|metattack|pgd|minmax|\n"
      "            gf|dice|random] [--rate R] [--lambda L] [--p P]\n"
      "           [--layers K] [--mode both|tm|fp] [--seed N]\n"
      "           [--deadline SECONDS]\n"
      "           [--checkpoint FILE] [--checkpoint-every K]\n"
      "  defend   --in FILE [--defender gnat|gcn|gat|jaccard|svd|rgcn|\n"
      "            prognn|simpgcn|gnnguard] [--runs N] [--seed N]\n"
      "  inspect  --in FILE [--clean FILE]\n");
  return 2;
}

std::unique_ptr<attack::Attacker> MakeAttacker(const eval::Args& args) {
  const std::string name = args.GetString("attacker", "peega");
  if (name == "peega" || name == "peega-batch") {
    core::PeegaAttack::Options options;
    options.lambda = static_cast<float>(args.GetDouble("lambda", 0.01));
    options.norm_p = args.GetInt("p", 2);
    options.layers = args.GetInt("layers", 2);
    options.checkpoint_path = args.GetString("checkpoint", "");
    options.checkpoint_every = args.GetInt("checkpoint-every", 16);
    const std::string mode = args.GetString("mode", "both");
    if (mode == "tm") options.mode = core::PeegaAttack::Mode::kTopologyOnly;
    if (mode == "fp") options.mode = core::PeegaAttack::Mode::kFeaturesOnly;
    if (name == "peega-batch") {
      core::PeegaBatchAttack::Options batch;
      batch.peega = options;
      batch.batch_size = args.GetInt("batch", 16);
      return std::make_unique<core::PeegaBatchAttack>(batch);
    }
    return std::make_unique<core::PeegaAttack>(options);
  }
  if (name == "metattack") return std::make_unique<attack::Metattack>();
  if (name == "pgd") return std::make_unique<attack::PgdAttack>();
  if (name == "minmax") return std::make_unique<attack::MinMaxAttack>();
  if (name == "gf") return std::make_unique<attack::GfAttack>();
  if (name == "dice") return std::make_unique<attack::DiceAttack>();
  if (name == "random") return std::make_unique<attack::RandomAttack>();
  return nullptr;
}

std::unique_ptr<defense::Defender> MakeDefender(const eval::Args& args) {
  const std::string name = args.GetString("defender", "gnat");
  if (name == "gnat") return std::make_unique<core::GnatDefender>();
  if (name == "gcn") return std::make_unique<defense::GcnDefender>();
  if (name == "gat") return std::make_unique<defense::GatDefender>();
  if (name == "jaccard") return std::make_unique<defense::JaccardDefender>();
  if (name == "svd") return std::make_unique<defense::SvdDefender>();
  if (name == "rgcn") return std::make_unique<defense::RGcnDefender>();
  if (name == "prognn") return std::make_unique<defense::ProGnnDefender>();
  if (name == "gnnguard") {
    return std::make_unique<defense::GnnGuardDefender>();
  }
  if (name == "simpgcn") {
    return std::make_unique<defense::SimPGcnDefender>();
  }
  return nullptr;
}

int Generate(const eval::Args& args) {
  const std::string dataset = args.GetString("dataset", "cora");
  const double scale = args.GetDouble("scale", 1.0);
  linalg::Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  graph::Graph g;
  if (dataset == "cora") g = graph::MakeCoraLike(&rng, scale);
  else if (dataset == "citeseer") g = graph::MakeCiteseerLike(&rng, scale);
  else if (dataset == "polblogs") g = graph::MakePolblogsLike(&rng, scale);
  else if (dataset == "pubmed") g = graph::MakePubmedLike(&rng, scale);
  else if (dataset == "blog") g = graph::MakeBlogLike(&rng, scale);
  else return Usage();
  const std::string out = args.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  if (const status::Status save = graph::SaveGraph(g, out); !save.ok()) {
    std::fprintf(stderr, "error: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d nodes, %lld edges, homophily %.3f\n",
              out.c_str(), g.num_nodes,
              static_cast<long long>(g.NumEdges()),
              graph::HomophilyRatio(g));
  return 0;
}

int AttackCmd(const eval::Args& args) {
  status::StatusOr<graph::Graph> loaded =
      graph::LoadGraph(args.GetString("in"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = *loaded;
  auto attacker = MakeAttacker(args);
  if (attacker == nullptr) return Usage();
  attack::AttackOptions options;
  options.perturbation_rate = args.GetDouble("rate", 0.1);
  const double deadline = args.GetDouble("deadline", 0.0);
  if (deadline > 0.0) {
    options.deadline = status::Deadline::AfterSeconds(deadline);
  }
  linalg::Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  const auto result = attacker->Attack(g, options, &rng);
  if (!result.status.ok() &&
      result.status.code() == status::Code::kInvalidInput) {
    // A rejected (stale/corrupt) checkpoint: nothing was attacked, so
    // writing the clean graph out would be misleading.
    std::fprintf(stderr, "error: %s\n", result.status.ToString().c_str());
    return 1;
  }
  const std::string out = args.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  if (const status::Status save = graph::SaveGraph(result.poisoned, out);
      !save.ok()) {
    std::fprintf(stderr, "error: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("%s: %d edge flips, %d feature flips in %.2fs -> %s\n",
              attacker->name().c_str(), result.edge_modifications,
              result.feature_modifications, result.elapsed_seconds,
              out.c_str());
  if (!result.status.ok()) {
    // Best-so-far output: the written graph is valid but the campaign
    // stopped early (deadline, cancellation, numeric fault).
    std::printf("attack-status: %s\n", result.status.ToString().c_str());
  }
  return 0;
}

int Defend(const eval::Args& args) {
  status::StatusOr<graph::Graph> loaded =
      graph::LoadGraph(args.GetString("in"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = *loaded;
  auto defender = MakeDefender(args);
  if (defender == nullptr) return Usage();
  eval::PipelineOptions pipeline;
  pipeline.runs = args.GetInt("runs", 3);
  pipeline.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const auto result =
      eval::EvaluateDefense(defender.get(), g, pipeline);
  std::printf("%s on %s: %s test accuracy (%.2fs/run)\n",
              defender->name().c_str(), g.name.c_str(),
              eval::FormatMeanStd(result.accuracy).c_str(),
              result.mean_train_seconds);
  return 0;
}

int Inspect(const eval::Args& args) {
  status::StatusOr<graph::Graph> loaded =
      graph::LoadGraph(args.GetString("in"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = *loaded;
  std::printf("%s: %d nodes, %lld edges, %d classes, homophily %.3f\n",
              g.name.c_str(), g.num_nodes,
              static_cast<long long>(g.NumEdges()), g.num_classes,
              graph::HomophilyRatio(g));
  const auto sim =
      graph::SummarizeLabelSimilarity(graph::CrossLabelSimilarity(g));
  std::printf("context similarity: intra %.3f, inter %.3f\n", sim.intra,
              sim.inter);
  if (args.Has("clean")) {
    status::StatusOr<graph::Graph> clean_loaded =
        graph::LoadGraph(args.GetString("clean"));
    if (!clean_loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   clean_loaded.status().ToString().c_str());
      return 1;
    }
    const graph::Graph& clean = *clean_loaded;
    const auto diff = graph::ComputeEdgeDiff(clean, g);
    std::printf("vs clean: +same %d, +diff %d, -same %d, -diff %d, "
                "feature edits %lld\n",
                diff.add_same, diff.add_diff, diff.del_same,
                diff.del_diff,
                static_cast<long long>(graph::FeatureDiffCount(clean, g)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const eval::Args args = eval::Args::Parse(argc, argv);
  if (args.command() == "generate") return Generate(args);
  if (args.command() == "attack") return AttackCmd(args);
  if (args.command() == "defend") return Defend(args);
  if (args.command() == "inspect") return Inspect(args);
  return Usage();
}
