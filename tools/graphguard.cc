// graphguard — command-line front end to the library.
//
//   graphguard generate --dataset cora --scale 1.0 --seed 42 --out g.txt
//   graphguard attack   --in g.txt --out poisoned.txt --attacker peega
//                       --rate 0.1 [--lambda 0.01 --p 2 --layers 2]
//                       [--deadline SECONDS] [--checkpoint FILE
//                        --checkpoint-every K]
//   graphguard defend   --in poisoned.txt --defender gnat [--runs 3]
//   graphguard inspect  --in g.txt [--clean g_clean.txt]
//   graphguard serve    --socket /tmp/graphguard.sock [--max-queue 64]
//                       [--journal DIR] [--max-attempts 3]
//                       [--retry-backoff-ms 100]
//
// `defend` prints mean±std test accuracy; `inspect` prints homophily and
// (given a clean reference) the Add/Del x Same/Diff forensics of Fig. 2.
//
// `attack --deadline` caps the wall-clock budget: on expiry the
// best-so-far poisoned graph is still written and the exit stays 0, but
// the status line reports DEADLINE_EXCEEDED. `--checkpoint` makes PEEGA
// periodically persist its campaign state; re-running the same command
// after an interruption resumes from the file and reproduces the
// uninterrupted flip sequence bit for bit.
//
// The one-shot attack/defend paths run through the stable C ABI
// (capi/graphguard.h) rather than the C++ library directly: the CLI is
// the ABI's first consumer, so any capability it needs the ABI must
// provide — embedders get the same guarantee for free. `serve` starts
// the long-running multi-tenant job server (src/serve; DESIGN.md
// "Serving model & admission control").
#include <cstdio>
#include <string>

#include "capi/graphguard.h"
#include "eval/args.h"
#include "eval/stats.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "serve/server.h"
#include "status/status.h"

namespace {

using namespace repro;

int Usage() {
  std::fprintf(
      stderr,
      "usage: graphguard <generate|attack|defend|inspect|serve> "
      "[--flags]\n"
      "  generate --dataset cora|citeseer|polblogs|pubmed|blog\n"
      "           [--scale S] [--seed N] --out FILE\n"
      "  attack   --in FILE --out FILE\n"
      "           [--attacker peega|peega-batch|metattack|pgd|minmax|\n"
      "            gf|dice|random] [--rate R] [--lambda L] [--p P]\n"
      "           [--layers K] [--mode both|tm|fp] [--seed N]\n"
      "           [--deadline SECONDS]\n"
      "           [--checkpoint FILE] [--checkpoint-every K]\n"
      "  defend   --in FILE [--defender gnat|gcn|gat|jaccard|svd|rgcn|\n"
      "            prognn|simpgcn|gnnguard] [--runs N] [--seed N]\n"
      "  inspect  --in FILE [--clean FILE]\n"
      "  serve    [--socket PATH] [--max-queue N] [--journal DIR]\n"
      "           [--max-attempts N] [--retry-backoff-ms MS]\n");
  return 2;
}

int CapiError(gg_ctx* gg) {
  std::fprintf(stderr, "error: %s\n", gg_last_error(gg));
  gg_free(gg);
  return 1;
}

int Generate(const eval::Args& args) {
  const std::string dataset = args.GetString("dataset", "cora");
  const double scale = args.GetDouble("scale", 1.0);
  linalg::Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  graph::Graph g;
  if (dataset == "cora") g = graph::MakeCoraLike(&rng, scale);
  else if (dataset == "citeseer") g = graph::MakeCiteseerLike(&rng, scale);
  else if (dataset == "polblogs") g = graph::MakePolblogsLike(&rng, scale);
  else if (dataset == "pubmed") g = graph::MakePubmedLike(&rng, scale);
  else if (dataset == "blog") g = graph::MakeBlogLike(&rng, scale);
  else return Usage();
  const std::string out = args.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  if (const status::Status save = graph::SaveGraph(g, out); !save.ok()) {
    std::fprintf(stderr, "error: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d nodes, %lld edges, homophily %.3f\n",
              out.c_str(), g.num_nodes,
              static_cast<long long>(g.NumEdges()),
              graph::HomophilyRatio(g));
  return 0;
}

int AttackCmd(const eval::Args& args) {
  const std::string out = args.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  gg_ctx* gg = gg_init();
  if (gg == nullptr) {
    std::fprintf(stderr, "error: gg_init failed\n");
    return 1;
  }
  if (gg_load_graph(gg, args.GetString("in").c_str()) != GG_OK) {
    return CapiError(gg);
  }
  // The option strings must outlive the gg_attack call.
  const std::string attacker = args.GetString("attacker", "peega");
  const std::string mode = args.GetString("mode", "both");
  const std::string checkpoint = args.GetString("checkpoint", "");
  gg_attack_options options;
  gg_attack_options_init(&options);
  options.attacker = attacker.c_str();
  options.rate = args.GetDouble("rate", 0.1);
  options.lambda = args.GetDouble("lambda", 0.01);
  options.norm_p = args.GetInt("p", 2);
  options.layers = args.GetInt("layers", 2);
  options.batch_size = args.GetInt("batch", 16);
  options.mode = mode.c_str();
  options.checkpoint_path = checkpoint.empty() ? nullptr
                                               : checkpoint.c_str();
  options.checkpoint_every = args.GetInt("checkpoint-every", 16);
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const double deadline = args.GetDouble("deadline", 0.0);
  if (deadline > 0.0) gg_set_deadline_ms(gg, deadline * 1000.0);
  const gg_status attacked = gg_attack(gg, &options);
  if (attacked == GG_INVALID_INPUT) {
    // Nothing was attacked (unknown attacker, rejected checkpoint):
    // writing the clean graph out would be misleading.
    return CapiError(gg);
  }
  if (gg_save_graph(gg, out.c_str()) != GG_OK) return CapiError(gg);
  std::printf("%s: %d edge flips, %d feature flips in %.2fs -> %s\n",
              gg_result_name(gg), gg_edge_modifications(gg),
              gg_feature_modifications(gg), gg_elapsed_seconds(gg),
              out.c_str());
  if (attacked != GG_OK) {
    // Best-so-far output: the written graph is valid but the campaign
    // stopped early (deadline, cancellation, numeric fault).
    std::printf("attack-status: %s\n", gg_last_error(gg));
  }
  gg_free(gg);
  return 0;
}

int Defend(const eval::Args& args) {
  gg_ctx* gg = gg_init();
  if (gg == nullptr) {
    std::fprintf(stderr, "error: gg_init failed\n");
    return 1;
  }
  if (gg_load_graph(gg, args.GetString("in").c_str()) != GG_OK) {
    return CapiError(gg);
  }
  const std::string defender = args.GetString("defender", "gnat");
  gg_eval_result result;
  const gg_status evaluated = gg_eval(
      gg, defender.c_str(), args.GetInt("runs", 3),
      static_cast<uint64_t>(args.GetInt("seed", 42)), &result);
  if (evaluated == GG_INVALID_INPUT) return CapiError(gg);
  const eval::MeanStd accuracy{result.accuracy_mean,
                               result.accuracy_std};
  std::printf("%s on %s: %s test accuracy (%.2fs/run)\n",
              defender.c_str(), gg_graph_name(gg),
              eval::FormatMeanStd(accuracy).c_str(),
              result.mean_train_seconds);
  if (evaluated != GG_OK) {
    std::printf("eval-status: %s\n", gg_last_error(gg));
  }
  gg_free(gg);
  return 0;
}

int Inspect(const eval::Args& args) {
  status::StatusOr<graph::Graph> loaded =
      graph::LoadGraph(args.GetString("in"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::Graph& g = *loaded;
  std::printf("%s: %d nodes, %lld edges, %d classes, homophily %.3f\n",
              g.name.c_str(), g.num_nodes,
              static_cast<long long>(g.NumEdges()), g.num_classes,
              graph::HomophilyRatio(g));
  const auto sim =
      graph::SummarizeLabelSimilarity(graph::CrossLabelSimilarity(g));
  std::printf("context similarity: intra %.3f, inter %.3f\n", sim.intra,
              sim.inter);
  if (args.Has("clean")) {
    status::StatusOr<graph::Graph> clean_loaded =
        graph::LoadGraph(args.GetString("clean"));
    if (!clean_loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   clean_loaded.status().ToString().c_str());
      return 1;
    }
    const graph::Graph& clean = *clean_loaded;
    const auto diff = graph::ComputeEdgeDiff(clean, g);
    std::printf("vs clean: +same %d, +diff %d, -same %d, -diff %d, "
                "feature edits %lld\n",
                diff.add_same, diff.add_diff, diff.del_same,
                diff.del_diff,
                static_cast<long long>(graph::FeatureDiffCount(clean, g)));
  }
  return 0;
}

int ServeCmd(const eval::Args& args) {
  serve::ServerOptions options;
  options.socket_path =
      args.GetString("socket", "/tmp/graphguard.sock");
  options.max_queue = args.GetInt("max-queue", 64);
  options.journal_dir = args.GetString("journal", "");
  options.max_attempts = args.GetInt("max-attempts", 3);
  options.retry_backoff_ms = args.GetDouble("retry-backoff-ms", 100.0);
  serve::Server server(options);
  if (const status::Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("graphguard serve: listening on %s (max queue %d)\n",
              options.socket_path.c_str(), options.max_queue);
  if (!options.journal_dir.empty()) {
    const serve::RecoveryInfo& recovery = server.recovery();
    std::printf(
        "graphguard serve: journal %s — recovered %d job(s) from %d "
        "record(s) in %.1fms (%d corrupt skipped, %lld bytes "
        "truncated)\n",
        options.journal_dir.c_str(), recovery.requeued_jobs,
        recovery.replayed_records, recovery.recovery_ms,
        recovery.corrupt_records,
        static_cast<long long>(recovery.truncated_bytes));
    for (const std::string& warning : recovery.warnings) {
      std::fprintf(stderr, "graphguard serve: journal warning: %s\n",
                   warning.c_str());
    }
  }
  std::fflush(stdout);  // the CI smoke job backgrounds this process
  server.Wait();
  std::printf("graphguard serve: drained, exiting\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const eval::Args args = eval::Args::Parse(argc, argv);
  if (args.command() == "generate") return Generate(args);
  if (args.command() == "attack") return AttackCmd(args);
  if (args.command() == "defend") return Defend(args);
  if (args.command() == "inspect") return Inspect(args);
  if (args.command() == "serve") return ServeCmd(args);
  return Usage();
}
