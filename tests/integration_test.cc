// End-to-end integration tests across modules: attack -> persist ->
// reload -> defend pipelines, multi-dataset smoke coverage, and abort-on
// -misuse contracts of the CHECK layer.
#include <cstdio>

#include <gtest/gtest.h>

#include "attack/random_attack.h"
#include "core/gnat.h"
#include "core/peega.h"
#include "defense/model_defenders.h"
#include "eval/pipeline.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "linalg/ops.h"
#include "nn/trainer.h"

namespace repro {
namespace {

using graph::Graph;
using linalg::Matrix;
using linalg::Rng;

TEST(IntegrationTest, AttackPersistReloadDefend) {
  // The full workflow of the privacy_publication example: poison, save,
  // reload, train — the reloaded graph must behave identically.
  Rng rng(1);
  const Graph clean = graph::MakeCoraLike(&rng, 0.3);
  core::PeegaAttack attacker;
  attack::AttackOptions options;
  options.perturbation_rate = 0.1;
  Rng attack_rng(2);
  const Graph poisoned = attacker.Attack(clean, options, &attack_rng).poisoned;

  const std::string path = ::testing::TempDir() + "/poisoned.txt";
  ASSERT_TRUE(graph::SaveGraph(poisoned, path).ok());
  repro::status::StatusOr<Graph> loaded = graph::LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& reloaded = *loaded;
  std::remove(path.c_str());

  EXPECT_EQ(reloaded.EdgeList(), poisoned.EdgeList());
  nn::TrainOptions train;
  train.max_epochs = 60;
  defense::GcnDefender gcn;
  Rng rng1(3), rng2(3);
  EXPECT_DOUBLE_EQ(gcn.Run(poisoned, train, &rng1).test_accuracy,
                   gcn.Run(reloaded, train, &rng2).test_accuracy);
}

TEST(IntegrationTest, FullPipelineOnAllThreeDatasets) {
  Rng gen(4);
  const std::vector<Graph> graphs = {
      graph::MakeCoraLike(&gen, 0.25),
      graph::MakeCiteseerLike(&gen, 0.25),
      graph::MakePolblogsLike(&gen, 0.5),
  };
  for (const Graph& g : graphs) {
    core::PeegaAttack::Options peega;
    if (g.name == "polblogs-like") {
      peega.mode = core::PeegaAttack::Mode::kTopologyOnly;
    }
    core::PeegaAttack attacker(peega);
    attack::AttackOptions options;
    options.perturbation_rate = 0.1;
    eval::PipelineOptions pipeline;
    pipeline.runs = 1;
    pipeline.train.max_epochs = 60;
    core::GnatDefender::Options gnat_options;
    if (g.name == "polblogs-like") gnat_options.use_feature = false;
    core::GnatDefender gnat(gnat_options);
    const auto result = eval::EvaluateAttackDefense(&attacker, &gnat, g,
                                                    options, pipeline);
    EXPECT_GT(result.accuracy.mean, 1.5 / g.num_classes) << g.name;
  }
}

TEST(IntegrationTest, GnatBeatsGcnAcrossSeeds) {
  // Statistical version of the headline claim: across several generator
  // seeds, GNAT's mean accuracy on PEEGA-poisoned graphs must exceed
  // GCN's.
  double gnat_total = 0.0, gcn_total = 0.0;
  const int trials = 3;
  for (int trial = 0; trial < trials; ++trial) {
    Rng gen(50 + trial);
    const Graph g = graph::MakeCoraLike(&gen, 0.4);
    core::PeegaAttack attacker;
    attack::AttackOptions options;
    options.perturbation_rate = 0.15;
    Rng attack_rng(60 + trial);
    const Graph poisoned =
        attacker.Attack(g, options, &attack_rng).poisoned;
    nn::TrainOptions train;
    train.max_epochs = 100;
    core::GnatDefender gnat;
    defense::GcnDefender gcn;
    Rng rng1(70 + trial), rng2(70 + trial);
    gnat_total += gnat.Run(poisoned, train, &rng1).test_accuracy;
    gcn_total += gcn.Run(poisoned, train, &rng2).test_accuracy;
  }
  EXPECT_GT(gnat_total / trials, gcn_total / trials);
}

TEST(IntegrationTest, PoisonedGraphStillValidForEveryDefender) {
  Rng gen(80);
  const Graph g = graph::MakeCoraLike(&gen, 0.2);
  attack::RandomAttack attacker;
  attack::AttackOptions options;
  options.perturbation_rate = 0.2;
  Rng attack_rng(81);
  const Graph poisoned = attacker.Attack(g, options, &attack_rng).poisoned;
  poisoned.CheckInvariants();
  // Quick GCN fit validates trainability after heavy perturbation.
  nn::TrainOptions train;
  train.max_epochs = 40;
  defense::GcnDefender gcn;
  Rng rng(82);
  EXPECT_GT(gcn.Run(poisoned, train, &rng).test_accuracy,
            1.0 / g.num_classes);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, MatrixShapeMismatchAborts) {
  const Matrix a(2, 3);
  const Matrix b(3, 3);
  EXPECT_DEATH((void)linalg::Add(a, b), "CHECK failed");
}

TEST(CheckDeathTest, MatMulInnerDimMismatchAborts) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_DEATH((void)linalg::MatMul(a, b), "CHECK failed");
}

TEST(CheckDeathTest, OutOfRangeAccessAborts) {
  const Matrix a(2, 2);
  EXPECT_DEATH((void)a(2, 0), "CHECK failed");
}

TEST(CheckDeathTest, SelfLoopEdgeAborts) {
  EXPECT_DEATH((void)graph::AdjacencyFromEdges(3, {{1, 1}}),
               "CHECK failed");
}

}  // namespace
}  // namespace repro
