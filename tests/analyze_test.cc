// Unit tests for tools/analyze — the lexer goldens, the include graph,
// one plant + one decoy per registered pass, SARIF parse-back through
// obs::Json, and the baseline fingerprint round-trip. The planted trees
// here are in-memory SourceFiles; the end-to-end filesystem walk is
// covered by `peega_analyze --self-test` (also run as a ctest).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis.h"
#include "baseline.h"
#include "include_graph.h"
#include "lexer.h"
#include "obs/json.h"
#include "sarif.h"
#include "source.h"

namespace repro::analyze {
namespace {

SourceFile MakeFile(std::string rel, std::string text) {
  SourceFile f;
  f.rel = std::move(rel);
  f.text = std::move(text);
  f.tokens = Lex(f.text);
  return f;
}

// Mimics LoadTree's contract (sorted by rel), builds the include graph,
// and runs one pass. `root` only matters for fp-contract-sync.
std::vector<Finding> RunOn(const std::string& pass,
                           std::vector<SourceFile> files,
                           const std::string& root = "") {
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  const IncludeGraph graph = IncludeGraph::Build(files);
  AnalysisContext ctx;
  ctx.repo_root = root;
  ctx.files = &files;
  ctx.include_graph = &graph;
  return RunPass(pass, ctx);
}

int CountIn(const std::vector<Finding>& findings, const std::string& file) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.file == file; }));
}

// ---------------------------------------------------------------------------
// Lexer goldens
// ---------------------------------------------------------------------------

TEST(AnalyzeLexer, RawStringSwallowsNeedles) {
  const auto toks =
      Lex("const char* s = R\"x(std::thread \"quoted\" // not a comment)x\";");
  const auto str = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.kind == TokenKind::kString;
  });
  ASSERT_NE(str, toks.end());
  EXPECT_EQ(str->text, "std::thread \"quoted\" // not a comment");
  // Nothing inside the raw string leaked out as identifiers.
  for (const Token& t : toks) {
    EXPECT_FALSE(t.IsIdent("thread")) << "raw-string body leaked";
  }
}

TEST(AnalyzeLexer, RawStringEmptyDelimiter) {
  const auto toks = Lex("auto s = R\"(a)b(c)\";");
  const auto str = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.kind == TokenKind::kString;
  });
  ASSERT_NE(str, toks.end());
  EXPECT_EQ(str->text, "a)b(c");
}

TEST(AnalyzeLexer, BlockCommentHidesLineCommentAndNeedles) {
  // "Nested" comment forms: a block comment containing // and a line
  // comment containing /*. Neither may produce tokens; the trailing
  // code must survive.
  const auto toks = Lex(
      "/* std::cout << x; // still in the block\n"
      "   rand(); */\n"
      "// trailing /* does not open a block\n"
      "int alive;\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_TRUE(toks[0].IsIdent("int"));
  EXPECT_TRUE(toks[1].IsIdent("alive"));
  EXPECT_EQ(toks[0].line, 4);
}

TEST(AnalyzeLexer, LineContinuations) {
  // A backslash-newline splice glues identifiers and keeps a spliced
  // line comment commented.
  const auto toks = Lex(
      "int spli\\\nced;\n"
      "// comment continues \\\nstd::thread ghost;\n"
      "int after;\n");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_TRUE(toks[1].IsIdent("spliced"));
  EXPECT_TRUE(toks[4].IsIdent("after"));
  // The spliced comment swallowed the std::thread line entirely.
  for (const Token& t : toks) EXPECT_FALSE(t.IsIdent("ghost"));
  // Physical positions: `after` is on line 5 of the file.
  EXPECT_EQ(toks[4].line, 5);
}

TEST(AnalyzeLexer, HeaderNamesAreSingleTokens) {
  const auto toks = Lex(
      "#include <immintrin.h>\n"
      "#  include \"linalg/matrix.h\"\n"
      "#pragma once\n");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_TRUE(toks[0].Is(TokenKind::kDirective, "#include"));
  EXPECT_TRUE(toks[1].Is(TokenKind::kAngleHeader, "immintrin.h"));
  EXPECT_TRUE(toks[2].Is(TokenKind::kDirective, "#include"));
  EXPECT_TRUE(toks[3].Is(TokenKind::kQuotedHeader, "linalg/matrix.h"));
  EXPECT_TRUE(toks[4].Is(TokenKind::kDirective, "#pragma"));
}

TEST(AnalyzeLexer, StringsCharsAndNumbers) {
  const auto toks = Lex("f(\"a\\\"b\", 'x', 1e+5, 0x1p-3);");
  ASSERT_EQ(toks.size(), 11u);
  EXPECT_EQ(toks[2].kind, TokenKind::kString);
  EXPECT_EQ(toks[2].text, "a\\\"b");
  EXPECT_EQ(toks[4].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(toks[6].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[6].text, "1e+5");
  EXPECT_EQ(toks[8].text, "0x1p-3");
}

TEST(AnalyzeLexer, PositionsAndMaximalMunch) {
  const auto toks = Lex("a <<= b::c;\n  d->e;");
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_TRUE(toks[1].IsPunct("<<="));
  EXPECT_TRUE(toks[3].IsPunct("::"));
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[6].line, 2);
  EXPECT_EQ(toks[6].col, 3);  // `d` after two spaces
  EXPECT_TRUE(toks[7].IsPunct("->"));
}

TEST(AnalyzeLexer, MatchQualifiedPaths) {
  const auto toks = Lex("std::mt19937_64 r; foo::std::thread t;");
  EXPECT_TRUE(MatchQualified(toks, 0, {"std", "mt19937"}, true));
  EXPECT_FALSE(MatchQualified(toks, 0, {"std", "mt19937"}, false));
  // A match that is a mid-path suffix still matches positionally —
  // callers reject it by looking at the preceding token.
  EXPECT_TRUE(MatchQualified(toks, 7, {"std", "thread"}, false));
  EXPECT_TRUE(toks[6].IsPunct("::"));
}

// ---------------------------------------------------------------------------
// Include graph
// ---------------------------------------------------------------------------

TEST(AnalyzeIncludeGraph, ResolutionOrder) {
  const std::vector<SourceFile> files = {
      MakeFile("src/linalg/ops.h", "#ifndef G\n#define G\n#endif\n"),
      MakeFile("src/linalg/local.h", "#ifndef H\n#define H\n#endif\n"),
      MakeFile("src/linalg/use.cc",
               "#include \"local.h\"\n"        // same-dir
               "#include \"linalg/ops.h\"\n"   // src/-rooted
               "#include \"tools/t.h\"\n"      // repo-relative
               "#include <vector>\n"           // system: no edge
               "#include \"no/such.h\"\n"),    // unresolved: no edge
      MakeFile("tools/t.h", "#ifndef T\n#define T\n#endif\n"),
  };
  const IncludeGraph graph = IncludeGraph::Build(files);
  const auto& edges = graph.EdgesFrom("src/linalg/use.cc");
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].to, "src/linalg/local.h");
  EXPECT_EQ(edges[1].to, "src/linalg/ops.h");
  EXPECT_EQ(edges[2].to, "tools/t.h");
  EXPECT_EQ(edges[1].line, 2);
}

TEST(AnalyzeIncludeGraph, FindsEachCycleOnce) {
  const std::vector<SourceFile> files = {
      MakeFile("src/a.h", "#include \"b.h\"\n"),
      MakeFile("src/b.h", "#include \"a.h\"\n"),
      MakeFile("src/c.h", "#include \"a.h\"\n"),  // feeds in, not cyclic
  };
  const auto cycles = IncludeGraph::Build(files).FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], "src/a.h -> src/b.h -> src/a.h");
}

// ---------------------------------------------------------------------------
// Passes: one plant + one decoy each
// ---------------------------------------------------------------------------

TEST(AnalyzePasses, NoRawThread) {
  const auto f = RunOn("no-raw-thread",
                       {MakeFile("src/core/a.cc", "std::thread t;"),
                        MakeFile("src/parallel/p.cc", "std::thread t;"),
                        MakeFile("src/core/c.cc", "// std::thread\n")});
  EXPECT_EQ(CountIn(f, "src/core/a.cc"), 1);
  EXPECT_EQ(CountIn(f, "src/parallel/p.cc"), 0);
  EXPECT_EQ(CountIn(f, "src/core/c.cc"), 0);
}

TEST(AnalyzePasses, NoUnseededRng) {
  const auto f = RunOn(
      "no-unseeded-rng",
      {MakeFile("src/core/a.cc", "std::mt19937_64 r; int x = rand();"),
       MakeFile("src/linalg/random.cc", "std::mt19937 engine(7);"),
       MakeFile("src/core/b.cc", "int y = obj.rand();")});
  EXPECT_EQ(CountIn(f, "src/core/a.cc"), 2);  // mt19937_64 prefix + rand()
  EXPECT_EQ(CountIn(f, "src/linalg/random.cc"), 0);
  EXPECT_EQ(CountIn(f, "src/core/b.cc"), 0);  // member call, not ::rand
}

TEST(AnalyzePasses, NoStdoutScopedToSrc) {
  const auto f = RunOn("no-stdout",
                       {MakeFile("src/eval/t.cc", "std::cout << 1;"),
                        MakeFile("tools/cli.cc", "std::cout << 1;")});
  EXPECT_EQ(CountIn(f, "src/eval/t.cc"), 1);
  EXPECT_EQ(CountIn(f, "tools/cli.cc"), 0);
}

TEST(AnalyzePasses, NoRawChrono) {
  const auto f =
      RunOn("no-raw-chrono",
            {MakeFile("src/core/t.cc", "auto n = std::chrono::now();"),
             MakeFile("src/obs/sw.cc", "auto n = std::chrono::now();")});
  EXPECT_EQ(CountIn(f, "src/core/t.cc"), 1);
  EXPECT_EQ(CountIn(f, "src/obs/sw.cc"), 0);
}

TEST(AnalyzePasses, NoRawIntrinsics) {
  const auto f = RunOn(
      "no-raw-intrinsics",
      {MakeFile("src/core/v.cc",
                "#include <immintrin.h>\nauto z = _mm256_setzero_ps();"),
       MakeFile("src/linalg/kernels/k.cc",
                "#include <immintrin.h>\nauto z = _mm256_setzero_ps();"),
       MakeFile("src/core/s.cc", "const char* d = \"_mm256_add_ps\";")});
  EXPECT_EQ(CountIn(f, "src/core/v.cc"), 2);  // header + intrinsic ident
  EXPECT_EQ(CountIn(f, "src/linalg/kernels/k.cc"), 0);
  EXPECT_EQ(CountIn(f, "src/core/s.cc"), 0);
}

TEST(AnalyzePasses, NoAbortOnInputOnlyInGraphIo) {
  const auto f =
      RunOn("no-abort-on-input",
            {MakeFile("src/graph/io_text.cc", "PEEGA_CHECK_GE(v, 0);"),
             MakeFile("src/core/engine.cc", "PEEGA_CHECK_GE(v, 0);")});
  EXPECT_EQ(CountIn(f, "src/graph/io_text.cc"), 1);
  EXPECT_EQ(CountIn(f, "src/core/engine.cc"), 0);
}

TEST(AnalyzePasses, HeaderGuard) {
  const auto f = RunOn(
      "header-guard",
      {MakeFile("src/core/bad.h", "#ifndef WRONG_H_\n#define WRONG_H_\n"),
       MakeFile("src/core/none.h", "int x;\n"),
       MakeFile("src/core/good.h",
                "#ifndef PEEGA_CORE_GOOD_H_\n#define PEEGA_CORE_GOOD_H_\n"
                "#endif\n"),
       MakeFile("bench/b.h",
                "#ifndef PEEGA_BENCH_B_H_\n#define PEEGA_BENCH_B_H_\n"
                "#endif\n"),
       MakeFile("src/core/guarded.cc", "int y;\n")});
  EXPECT_EQ(CountIn(f, "src/core/bad.h"), 1);
  EXPECT_EQ(CountIn(f, "src/core/none.h"), 1);
  EXPECT_EQ(CountIn(f, "src/core/good.h"), 0);
  EXPECT_EQ(CountIn(f, "bench/b.h"), 0);  // bench/ keeps its prefix
  EXPECT_EQ(CountIn(f, "src/core/guarded.cc"), 0);
}

TEST(AnalyzePasses, IncludeCycle) {
  const auto f = RunOn("include-cycle",
                       {MakeFile("src/core/a.h", "#include \"core/b.h\"\n"),
                        MakeFile("src/core/b.h", "#include \"core/a.h\"\n"),
                        MakeFile("src/core/c.h", "#include \"core/b.h\"\n")});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].file, "src/core/a.h");
  EXPECT_NE(f[0].message.find("src/core/b.h"), std::string::npos);
}

TEST(AnalyzePasses, LayeringEnforcesTheDag) {
  const auto f = RunOn(
      "layering",
      {MakeFile("src/nn/model.h", "#ifndef PEEGA_NN_MODEL_H_\n"
                                  "#define PEEGA_NN_MODEL_H_\n#endif\n"),
       MakeFile("src/linalg/matrix.h",
                "#ifndef PEEGA_LINALG_MATRIX_H_\n"
                "#define PEEGA_LINALG_MATRIX_H_\n#endif\n"),
       MakeFile("src/linalg/up.cc", "#include \"nn/model.h\"\n"),
       MakeFile("src/nn/down.cc", "#include \"linalg/matrix.h\"\n"),
       MakeFile("src/linalg/peer.cc", "#include \"linalg/matrix.h\"\n")});
  EXPECT_EQ(CountIn(f, "src/linalg/up.cc"), 1);   // linalg -> nn: illegal
  EXPECT_EQ(CountIn(f, "src/nn/down.cc"), 0);     // nn -> linalg: declared
  EXPECT_EQ(CountIn(f, "src/linalg/peer.cc"), 0); // same module
}

TEST(AnalyzePasses, LayerDagCoversEveryModuleOnce) {
  std::vector<std::string> names;
  for (const ModuleSpec& spec : LayerDag()) {
    names.emplace_back(spec.module);
    for (const char* dep : spec.allowed_deps) {
      // Leaves-first order: every allowed dep is already declared.
      EXPECT_NE(std::find(names.begin(), names.end(), std::string(dep)),
                names.end())
          << spec.module << " depends on undeclared module " << dep;
    }
  }
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(AnalyzePasses, StatusDiscipline) {
  const char* header =
      "#ifndef PEEGA_GRAPH_S_H_\n#define PEEGA_GRAPH_S_H_\n"
      "status::Status Save(int v);\n"
      "StatusOr<std::vector<int>> Load();\n"
      "#endif\n";
  const auto f = RunOn(
      "status-discipline",
      {MakeFile("src/graph/s.h", header),
       MakeFile("src/core/bad.cc",
                "#include \"graph/s.h\"\n"
                "void A(int v) { Save(v); }\n"
                "void B() { Load(); }\n"),
       MakeFile("src/core/ok.cc",
                "#include \"graph/s.h\"\n"
                "status::Status C(int v) { return Save(v); }\n"
                "bool D(int v) { return Save(v).ok(); }\n"
                "void E(int v) { Save(v).IgnoreError(); }\n"
                "void F(int v) { auto s = Save(v); s.IgnoreError(); }\n"
                "status::Status G(int v) {\n"
                "  PEEGA_RETURN_IF_ERROR(Save(v), \"ctx\");\n"
                "  return status::Status();\n"
                "}\n"),
       MakeFile("tools/cli.cc",  // tools may print-and-exit
                "#include \"graph/s.h\"\nvoid H(int v) { Save(v); }\n")});
  EXPECT_EQ(CountIn(f, "src/core/bad.cc"), 2);  // Status and StatusOr
  EXPECT_EQ(CountIn(f, "src/core/ok.cc"), 0);
  EXPECT_EQ(CountIn(f, "tools/cli.cc"), 0);
  EXPECT_EQ(CountIn(f, "src/graph/s.h"), 0);  // declarations don't fire
}

TEST(AnalyzePasses, DeterminismHazard) {
  const auto f = RunOn(
      "determinism-hazard",
      {MakeFile("src/linalg/sum.cc",
                "float S(std::vector<float> v) {\n"
                "  return std::reduce(v.begin(), v.end());\n"
                "}\n"),
       MakeFile("src/core/cache.cc", "std::unordered_map<int, int> m;\n"),
       MakeFile("src/nn/opt.cc", "std::unordered_map<int, int> m;\n"),
       MakeFile("src/linalg/frag.cc", "#pragma float_control(push)\n"),
       MakeFile("src/linalg/kernels/k.cc", "#pragma float_control(push)\n")});
  EXPECT_EQ(CountIn(f, "src/linalg/sum.cc"), 1);
  EXPECT_EQ(CountIn(f, "src/core/cache.cc"), 1);
  EXPECT_EQ(CountIn(f, "src/nn/opt.cc"), 0);  // not a critical layer
  EXPECT_EQ(CountIn(f, "src/linalg/frag.cc"), 1);
  EXPECT_EQ(CountIn(f, "src/linalg/kernels/k.cc"), 0);  // pragma owner
}

TEST(AnalyzePasses, FpContractSyncCrossChecksCmake) {
  const std::string root =
      (std::filesystem::path(::testing::TempDir()) / "fp_sync").string();
  std::filesystem::create_directories(
      std::filesystem::path(root) / "src/linalg");
  {
    std::ofstream cmake(std::filesystem::path(root) /
                        "src/linalg/CMakeLists.txt");
    cmake << "set(PEEGA_KERNEL_SOURCES kernels/kernels_generic.cc)\n"
             "-ffp-contract=off\n";
  }
  const char* registry =
      "void R() {\n"
      "  Push({\"op.generic_only\", \"a\", \"b\", \"c\", \"d\",\n"
      "        DeterminismClass::kLanePerOutput, true, false, false, f});\n"
      "  Push({\"op.wants_avx2\", \"a\", \"b\", \"c\", \"d\",\n"
      "        DeterminismClass::kLanePerOutput, true, true, false, f});\n"
      "  Push({\"op.reference\", \"a\", \"b\", \"c\", \"d\",\n"
      "        DeterminismClass::kReferenceOnly, true, true, true, f});\n"
      "  switch (c) { case DeterminismClass::kLanePerOutput: break; }\n"
      "}\n";
  const auto f = RunOn("fp-contract-sync",
                       {MakeFile("src/linalg/op_registry.cc", registry)},
                       root);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_NE(f[0].message.find("op.wants_avx2"), std::string::npos);
  EXPECT_NE(f[0].message.find("kernels_avx2.cc"), std::string::npos);
  std::filesystem::remove_all(root);
}

TEST(AnalyzePasses, HotLoopAlloc) {
  const auto f = RunOn(
      "hot-loop-alloc",
      {MakeFile("src/linalg/kernels/hot.cc",
                "void K(std::vector<float>* out, int n) {\n"
                "  for (int i = 0; i < n; ++i) {\n"
                "    float* s = new float[4];\n"
                "    out->push_back(s[0]);\n"
                "    delete[] s;\n"
                "  }\n"
                "}\n"),
       MakeFile("src/linalg/kernels/cold.cc",
                "void K(std::vector<float>* out, int n) {\n"
                "  out->reserve(n);\n"
                "  float* s = new float[4];\n"
                "  for (int i = 0; i < n; ++i) out->push_back(s[i % 4]);\n"
                "  delete[] s;\n"
                "}\n"),
       MakeFile("src/eval/tables.cc",
                "void T(std::vector<int>* rows, int n) {\n"
                "  for (int i = 0; i < n; ++i) rows->push_back(i);\n"
                "}\n")});
  EXPECT_EQ(CountIn(f, "src/linalg/kernels/hot.cc"), 2);  // new + push_back
  EXPECT_EQ(CountIn(f, "src/linalg/kernels/cold.cc"), 0);
  EXPECT_EQ(CountIn(f, "src/eval/tables.cc"), 0);  // not a hot file
  for (const Finding& finding : f) {
    EXPECT_EQ(finding.severity, Severity::kWarning);
  }
}

// ---------------------------------------------------------------------------
// Registry, SARIF, baseline
// ---------------------------------------------------------------------------

TEST(AnalyzeRegistry, NamesAreUniqueAndResolvable) {
  std::vector<std::string> names;
  for (const PassInfo& pass : PassRegistry()) {
    names.emplace_back(pass.name);
    const PassInfo* found = FindPass(pass.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->run, pass.run);
    EXPECT_NE(std::string(pass.doc), "");
    EXPECT_NE(std::string(pass.fixit), "");
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(FindPass("no-such-pass"), nullptr);
}

TEST(AnalyzeSarif, ParsesBackWithObsJson) {
  const auto findings = RunOn(
      "no-stdout", {MakeFile("src/eval/t.cc", "std::cout << 1;")});
  ASSERT_EQ(findings.size(), 1u);
  const std::string text = SarifDocument(findings).Dump();

  obs::Json doc;
  std::string error;
  ASSERT_TRUE(obs::Json::Parse(text, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("version")->string_value, "2.1.0");
  const obs::Json& run = doc.Find("runs")->array.at(0);
  const obs::Json& driver = *run.Find("tool")->Find("driver");
  EXPECT_EQ(driver.Find("name")->string_value, "peega_analyze");
  // Every registered rule ships in the rules array, fired or not.
  EXPECT_EQ(driver.Find("rules")->array.size(), PassRegistry().size());
  const obs::Json& result = run.Find("results")->array.at(0);
  EXPECT_EQ(result.Find("ruleId")->string_value, "no-stdout");
  EXPECT_EQ(result.Find("level")->string_value, "error");
  const obs::Json& physical =
      *result.Find("locations")->array.at(0).Find("physicalLocation");
  EXPECT_EQ(physical.Find("artifactLocation")->Find("uri")->string_value,
            "src/eval/t.cc");
  EXPECT_EQ(physical.Find("region")->Find("startLine")->number_value, 1.0);
}

TEST(AnalyzeBaseline, RoundTripSuppresses) {
  std::vector<SourceFile> files = {
      MakeFile("src/eval/t.cc", "std::cout << 1;")};
  const IncludeGraph graph = IncludeGraph::Build(files);
  AnalysisContext ctx;
  ctx.files = &files;
  ctx.include_graph = &graph;
  const auto all = RunPass("no-stdout", ctx);
  ASSERT_EQ(all.size(), 1u);

  const std::string rendered = RenderBaseline(all, ctx);
  EXPECT_NE(rendered.find("no-stdout src/eval/t.cc"), std::string::npos);
  const auto fingerprints = ParseBaseline(rendered);
  EXPECT_EQ(fingerprints.size(), 1u);

  std::vector<Finding> kept, suppressed;
  ApplyBaseline(fingerprints, ctx, all, &kept, &suppressed);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(suppressed.size(), 1u);
}

TEST(AnalyzeBaseline, FingerprintSurvivesLineShifts) {
  std::vector<SourceFile> before = {
      MakeFile("src/eval/t.cc", "std::cout << 1;")};
  std::vector<SourceFile> after = {
      MakeFile("src/eval/t.cc", "int pad;\n\n  std::cout << 1;")};
  const IncludeGraph g1 = IncludeGraph::Build(before);
  const IncludeGraph g2 = IncludeGraph::Build(after);
  AnalysisContext c1, c2;
  c1.files = &before;
  c1.include_graph = &g1;
  c2.files = &after;
  c2.include_graph = &g2;
  const auto f1 = RunPass("no-stdout", c1);
  const auto f2 = RunPass("no-stdout", c2);
  ASSERT_EQ(f1.size(), 1u);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_NE(f1[0].line, f2[0].line);
  // Line moved, indentation changed — fingerprint is unchanged, so the
  // baseline keeps suppressing it.
  EXPECT_EQ(Fingerprint(f1[0], c1.FindFile("src/eval/t.cc")),
            Fingerprint(f2[0], c2.FindFile("src/eval/t.cc")));
  // Different pass on the same line would NOT collide.
  Finding other = f1[0];
  other.pass = "no-raw-chrono";
  EXPECT_NE(Fingerprint(other, c1.FindFile("src/eval/t.cc")),
            Fingerprint(f1[0], c1.FindFile("src/eval/t.cc")));
}

TEST(AnalyzeSelfTest, AllPassesFireNoFalsePositives) {
  std::ostringstream log;
  EXPECT_EQ(RunSelfTest(::testing::TempDir(), log), 0) << log.str();
}

}  // namespace
}  // namespace repro::analyze
