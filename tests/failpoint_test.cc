// Failpoint sweep: arm every registered failpoint one at a time, drive a
// small end-to-end pipeline (save → load → PEEGA attack → GCN defense)
// through it, and assert the failure surfaces as a non-OK status — never
// a crash — with a valid best-so-far result. Runs under the release and
// asan-ubsan presets, so every degradation path is also sanitizer-clean.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/attacker.h"
#include "core/peega.h"
#include "debug/failpoints.h"
#include "defense/model_defenders.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "status/status.h"

namespace repro {
namespace {

using graph::Graph;
using linalg::Rng;

Graph SweepGraph() {
  Rng rng(20240501);
  return graph::MakeCoraLike(&rng, 0.15);
}

struct PipelineOutcome {
  status::Status save;
  status::Status load;
  status::Status attack;
  status::Status defense;

  bool AnyFailure() const {
    return !save.ok() || !load.ok() || !attack.ok() || !defense.ok();
  }
};

// One pass through the stack, collecting every stage's status. Each
// stage degrades instead of aborting: a failed save/load falls back to
// the in-memory graph, a failed attack still yields a valid (possibly
// clean) poisoned graph, a failed defense still returns a report.
PipelineOutcome RunSmallPipeline(const Graph& g) {
  PipelineOutcome outcome;

  const std::string path =
      ::testing::TempDir() + "/failpoint_sweep_graph.txt";
  outcome.save = graph::SaveGraph(g, path);
  Graph working = g;
  status::StatusOr<Graph> loaded = graph::LoadGraph(path);
  outcome.load = loaded.ok() ? status::Status::Ok() : loaded.status();
  if (loaded.ok()) working = *std::move(loaded);
  std::remove(path.c_str());

  core::PeegaAttack attacker;
  attack::AttackOptions attack_options;
  attack_options.perturbation_rate = 0.05;
  Rng attack_rng(7);
  const attack::AttackResult result =
      attacker.Attack(working, attack_options, &attack_rng);
  outcome.attack = result.status;
  // Best-so-far contract: whatever the failure, the emitted graph must
  // be structurally valid and usable downstream.
  result.poisoned.CheckInvariants();

  defense::GcnDefender defender;
  nn::TrainOptions train;
  train.max_epochs = 12;
  Rng defense_rng(8);
  const defense::DefenseReport report =
      defender.Run(result.poisoned, train, &defense_rng);
  outcome.defense = report.status;
  return outcome;
}

TEST(FailpointSweepTest, PipelineIsCleanWithNothingArmed) {
  debug::DisarmAllFailpoints();
  const PipelineOutcome outcome = RunSmallPipeline(SweepGraph());
  EXPECT_TRUE(outcome.save.ok()) << outcome.save.ToString();
  EXPECT_TRUE(outcome.load.ok()) << outcome.load.ToString();
  EXPECT_TRUE(outcome.attack.ok()) << outcome.attack.ToString();
  EXPECT_TRUE(outcome.defense.ok()) << outcome.defense.ToString();
}

TEST(FailpointSweepTest, EveryArmedFailpointSurfacesNonOkStatus) {
  const Graph g = SweepGraph();
  for (const std::string& name : debug::RegisteredFailpoints()) {
    // serve.* sites live in the job server's IO/scheduler threads, not
    // in this save/load/attack/defend pipeline; journal_test sweeps
    // them through a real server instead.
    if (name.rfind("serve.", 0) == 0) continue;
#ifdef PEEGA_DEBUG_NUMERICS
    // linalg.spmm plants a real NaN in kernel output, which the
    // debug-numerics finite checks (correctly) abort on before the
    // graceful-degradation layer can see it.
    if (name == "linalg.spmm") continue;
#endif
    SCOPED_TRACE("failpoint " + name);
    debug::DisarmAllFailpoints();
    debug::ArmFailpoint(name, "1");
    const PipelineOutcome outcome = RunSmallPipeline(g);
    EXPECT_TRUE(outcome.AnyFailure())
        << "armed failpoint " << name
        << " never fired or its failure was swallowed; statuses: save="
        << outcome.save.ToString() << " load=" << outcome.load.ToString()
        << " attack=" << outcome.attack.ToString()
        << " defense=" << outcome.defense.ToString();
  }
  debug::DisarmAllFailpoints();
}

// The interrupt failpoint makes "stopped-early" deterministic: armed at
// hit K, PEEGA commits exactly K-1 flips, and those flips are a prefix
// of the unbounded run's sequence — the best-so-far contract in its
// sharpest form.
TEST(FailpointSweepTest, InterruptedPeegaFlipsArePrefixOfFullRun) {
  const Graph g = SweepGraph();
  attack::AttackOptions options;
  options.perturbation_rate = 0.05;

  debug::DisarmAllFailpoints();
  core::PeegaAttack attacker;
  Rng full_rng(7);
  const attack::AttackResult full = attacker.Attack(g, options, &full_rng);
  ASSERT_TRUE(full.status.ok()) << full.status.ToString();
  ASSERT_GT(full.flips.size(), 4u);

  for (const auto& engine : {core::PeegaAttack::Engine::kIncremental,
                             core::PeegaAttack::Engine::kTape}) {
    SCOPED_TRACE(engine == core::PeegaAttack::Engine::kIncremental
                     ? "incremental"
                     : "tape");
    debug::ArmFailpoint("peega.interrupt", "4");
    core::PeegaAttack::Options peega;
    peega.engine = engine;
    core::PeegaAttack interrupted_attacker(peega);
    Rng rng(7);
    const attack::AttackResult interrupted =
        interrupted_attacker.Attack(g, options, &rng);
    debug::DisarmAllFailpoints();

    EXPECT_EQ(interrupted.status.code(), status::Code::kCancelled)
        << interrupted.status.ToString();
    ASSERT_EQ(interrupted.flips.size(), 3u);
    for (size_t i = 0; i < interrupted.flips.size(); ++i) {
      EXPECT_EQ(interrupted.flips[i], full.flips[i]) << "flip " << i;
    }
    interrupted.poisoned.CheckInvariants();
  }
}

// Wall-clock deadline: wherever the clock happens to stop the loop, the
// committed flips must be a prefix of the unbounded run's and the
// emitted graph must be valid. (The stop point is timing-dependent; the
// prefix property is not.)
TEST(FailpointSweepTest, DeadlineExpiredPeegaReturnsBestSoFarPrefix) {
  debug::DisarmAllFailpoints();
  const Graph g = SweepGraph();
  attack::AttackOptions options;
  options.perturbation_rate = 0.05;
  core::PeegaAttack attacker;
  Rng full_rng(7);
  const attack::AttackResult full = attacker.Attack(g, options, &full_rng);
  ASSERT_TRUE(full.status.ok()) << full.status.ToString();

  attack::AttackOptions bounded = options;
  bounded.deadline =
      status::Deadline::AfterSeconds(full.elapsed_seconds / 2.0);
  Rng rng(7);
  const attack::AttackResult limited = attacker.Attack(g, bounded, &rng);

  ASSERT_LE(limited.flips.size(), full.flips.size());
  for (size_t i = 0; i < limited.flips.size(); ++i) {
    EXPECT_EQ(limited.flips[i], full.flips[i]) << "flip " << i;
  }
  if (limited.flips.size() < full.flips.size()) {
    EXPECT_EQ(limited.status.code(), status::Code::kDeadlineExceeded)
        << limited.status.ToString();
  }
  limited.poisoned.CheckInvariants();
}

// Cancellation observed mid-flight: a pre-cancelled deadline stops the
// loop before the first commit and still emits the clean graph intact.
TEST(FailpointSweepTest, CancelledPeegaReturnsCleanGraph) {
  debug::DisarmAllFailpoints();
  const Graph g = SweepGraph();
  attack::AttackOptions options;
  options.perturbation_rate = 0.05;
  options.deadline = status::Deadline::Cancellable();
  options.deadline.RequestCancel();
  core::PeegaAttack attacker;
  Rng rng(7);
  const attack::AttackResult result = attacker.Attack(g, options, &rng);
  EXPECT_EQ(result.status.code(), status::Code::kCancelled)
      << result.status.ToString();
  EXPECT_TRUE(result.flips.empty());
  EXPECT_EQ(graph::ComputeEdgeDiff(g, result.poisoned).total(), 0);
}

}  // namespace
}  // namespace repro
